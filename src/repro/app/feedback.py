"""The two concrete feedback paths of the three-scale campaign (§4.1 (7)).

CG→continuum
    "aggregates the protein-lipid radial distribution functions (RDFs)
    computed through the online analysis of CG simulations and
    propagates the aggregated result to the ongoing continuum
    simulation, which reads and updates these parameters on the fly."

AA→CG
    "the secondary structures of the proteins are calculated from AA
    frames and analyzed to determine the most common pattern ... the
    [CG force field] parameters are progressively refined." Each frame
    costs ~2 s of external-tool time in production; the processor is
    injectable here so benchmarks can dial that cost, and a worker pool
    bounds the iteration time exactly as §5.2 describes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.feedback import FeedbackManager, StoreFeedbackMixin
from repro.datastore.base import DataStore
from repro.sims.aa.analysis import consensus_pattern
from repro.sims.cg.analysis import RDFResult
from repro.sims.cg.forcefield import CGForceField
from repro.sims.continuum.ddft import ContinuumSim

__all__ = ["CGToContinuumFeedback", "AAToCGFeedback", "rdf_to_coupling"]


def rdf_to_coupling(edges: np.ndarray, g: np.ndarray, scale: float = 1.0) -> np.ndarray:
    """Convert per-type RDFs into protein-lipid coupling strengths.

    Excess density near the protein (g(r) > 1 at small r) means the
    lipid is attracted — a positive coupling; depletion means repulsion.
    The excess is integrated with a linearly decaying weight over the
    sampled range::

        coupling_l = scale * sum_r (g_l(r) - 1) * w(r) * dr,  w(r) = 1 - r/rmax

    Returns one coupling per lipid type.
    """
    edges = np.asarray(edges, dtype=float)
    g = np.atleast_2d(np.asarray(g, dtype=float))
    centers = 0.5 * (edges[:-1] + edges[1:])
    dr = np.diff(edges)
    rmax = edges[-1]
    w = 1.0 - centers / rmax
    return scale * np.sum((g - 1.0) * w * dr, axis=1)


class CGToContinuumFeedback(StoreFeedbackMixin, FeedbackManager):
    """Aggregate CG RDFs and push coupling updates into the continuum.

    Works through any DataStore backend; the paper's production path is
    the Redis cluster ("we leverage Redis as a short-term and highly
    responsive in-memory cache"), and the S3 ablation runs this same
    class against the filesystem backend.
    """

    def __init__(
        self,
        store: DataStore,
        continuum: ContinuumSim,
        live_prefix: str = "rdf/live/",
        done_prefix: str = "rdf/done/",
        coupling_scale: float = 1.0,
        blend: float = 0.3,
        fetch_workers: int = 1,
    ) -> None:
        FeedbackManager.__init__(self)
        StoreFeedbackMixin.__init__(self, store, live_prefix, done_prefix,
                                    fetch_workers=fetch_workers)
        if not 0.0 < blend <= 1.0:
            raise ValueError("blend must be in (0, 1]")
        self.continuum = continuum
        self.coupling_scale = coupling_scale
        self.blend = blend

    def process(self, items: Sequence[Tuple[str, bytes]]) -> Optional[np.ndarray]:
        """Mean the RDFs over all new frames, then derive couplings."""
        if not items:
            return None
        rdfs = [RDFResult.from_bytes(payload) for _, payload in items]
        edges = rdfs[0].edges
        mean_g = np.mean([r.g for r in rdfs], axis=0)
        return rdf_to_coupling(edges, mean_g, scale=self.coupling_scale)

    def report(self, couplings: np.ndarray) -> None:
        """Blend new couplings into the live continuum parameters.

        The CG model resolves fewer lipid types than the continuum; the
        first ``len(couplings)`` inner-leaflet types are updated (both
        protein states alike) and the rest are left untouched.
        """
        g_inner = self.continuum.g_inner.copy()
        n = min(len(couplings), g_inner.shape[0])
        for s in range(g_inner.shape[1]):
            g_inner[:n, s] = (1 - self.blend) * g_inner[:n, s] + self.blend * couplings[:n]
        self.continuum.update_couplings(g_inner, self.continuum.g_outer.copy())


class AAToCGFeedback(StoreFeedbackMixin, FeedbackManager):
    """Vote a consensus secondary structure and refine the CG force field.

    Parameters
    ----------
    targets:
        Objects with ``update_secondary_structure`` /``apply_feedback``;
        typically the shared :class:`CGForceField` (new sims pick it up)
        plus any running :class:`CGSim` instances.
    external_processor:
        Per-frame processing callable standing in for the paper's ~2 s
        external-module system call. The Fig. 8 bench injects a costed
        version; the default is free.
    pool_size:
        Worker threads over the external processor ("tailored
        multiprocessing pools", §4.4).
    """

    def __init__(
        self,
        store: DataStore,
        forcefield: CGForceField,
        sims: Sequence = (),
        live_prefix: str = "ss/live/",
        done_prefix: str = "ss/done/",
        external_processor: Optional[Callable[[str], str]] = None,
        pool_size: int = 4,
        fetch_workers: int = 1,
    ) -> None:
        FeedbackManager.__init__(self)
        StoreFeedbackMixin.__init__(self, store, live_prefix, done_prefix,
                                    fetch_workers=fetch_workers)
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        self.forcefield = forcefield
        self.sims = list(sims)
        self.external_processor = external_processor or (lambda pattern: pattern)
        self.pool_size = pool_size

    def process(self, items: Sequence[Tuple[str, bytes]]) -> Optional[str]:
        """Run every frame through the external processor, then vote."""
        if not items:
            return None
        patterns = [payload.decode("utf-8") for _, payload in items]
        with ThreadPoolExecutor(max_workers=self.pool_size) as pool:
            processed = list(pool.map(self.external_processor, patterns))
        lengths = {len(p) for p in processed}
        if len(lengths) > 1:
            # Mixed chain lengths (different systems): vote per length
            # group and keep the most observed group.
            by_len: dict = {}
            for p in processed:
                by_len.setdefault(len(p), []).append(p)
            processed = max(by_len.values(), key=len)
        return consensus_pattern(processed)

    def report(self, pattern: str) -> None:
        """Refine the force field and every registered running sim."""
        self.forcefield.update_secondary_structure(pattern)
        for sim in self.sims:
            sim._refresh_bond_stiffness()
