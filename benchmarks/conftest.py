"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and both
prints the series and appends it to ``benchmarks/results/<name>.txt``
so the numbers survive pytest's output capture. EXPERIMENTS.md records
the paper-vs-measured comparison for each.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable

import pytest

from repro.core.campaign import CampaignConfig, CampaignSimulator

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "multi_server: bench spins up several live NetKV servers at once; "
        "set REPRO_SKIP_MULTI_SERVER=1 to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "service: bench runs a live control-plane daemon over HTTP; "
        "set REPRO_SKIP_SERVICE=1 to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "async_transport: bench targets the asyncio NetKV transport "
        "(connection sweeps, coalescing throughput); set "
        "REPRO_SKIP_ASYNC=1 to skip on constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "persist: bench measures durable-shard overhead (WAL fsync, "
        "snapshots, migration); set REPRO_SKIP_PERSIST=1 to skip on "
        "constrained runners",
    )
    config.addinivalue_line(
        "markers",
        "matcher_scale: bench sweeps 4k-40k-node resource graphs "
        "(partitioned vs flat matcher); set REPRO_SKIP_MATCHER_SCALE=1 "
        "to skip on small CI runners",
    )


def pytest_collection_modifyitems(config, items):
    gates = [("REPRO_SKIP_MULTI_SERVER", "multi_server"),
             ("REPRO_SKIP_SERVICE", "service"),
             ("REPRO_SKIP_ASYNC", "async_transport"),
             ("REPRO_SKIP_PERSIST", "persist"),
             ("REPRO_SKIP_MATCHER_SCALE", "matcher_scale")]
    for env, marker in gates:
        if not os.environ.get(env):
            continue
        skip = pytest.mark.skip(reason=f"{env} is set")
        for item in items:
            if item.get_closest_marker(marker):
                item.add_marker(skip)


def report(name: str, lines: Iterable[str]) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(f"\n[{name}]\n{text}")
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")


def record_json(filename: str, key: str, payload: Dict[str, Any]) -> None:
    """Merge one benchmark's machine-readable results into a repo-root
    JSON ledger (e.g. ``BENCH_sampler.json``) under ``key``.

    Merge-on-write so independent benchmarks (run in any order, or one
    at a time) never clobber each other's sections.
    """
    path = os.path.join(REPO_ROOT, filename)
    data: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (ValueError, OSError):
            data = {}
    data[key] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.fixture(scope="session")
def campaign_result():
    """The full paper-ledger campaign, simulated once per bench session.

    Takes about a minute of wall time for 600,600 virtual node-hours;
    Table 1 and Figs. 3-5 all read from this one run.
    """
    sim = CampaignSimulator(CampaignConfig(seed=2021))
    return sim.run()
