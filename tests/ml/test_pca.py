"""Tests for the PCA patch encoder."""

import numpy as np
import pytest

from repro.ml.pca import PCAEncoder


def clustered_data(rng, n_per=50, dim=20, sep=5.0):
    a = rng.normal(0.0, 0.2, size=(n_per, dim))
    b = rng.normal(0.0, 0.2, size=(n_per, dim))
    b[:, 0] += sep
    return np.vstack([a, b])


class TestFitEncode:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        enc = PCAEncoder(input_dim=20, latent_dim=4).fit(rng.random((30, 20)))
        z = enc.encode(rng.random((7, 20)))
        assert z.shape == (7, 4)

    def test_encode_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PCAEncoder(10, 2).encode(np.zeros((1, 10)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PCAEncoder(input_dim=5, latent_dim=6)
        with pytest.raises(ValueError):
            PCAEncoder(input_dim=5, latent_dim=0)
        enc = PCAEncoder(10, 3)
        with pytest.raises(ValueError):
            enc.fit(np.zeros((2, 10)))  # fewer samples than components
        enc.fit(np.random.default_rng(0).random((20, 10)))
        with pytest.raises(ValueError):
            enc.encode(np.zeros((1, 9)))

    def test_first_component_captures_separation(self):
        rng = np.random.default_rng(1)
        data = clustered_data(rng)
        enc = PCAEncoder(20, 3).fit(data)
        z = enc.encode(data)
        # The dominant direction separates the two clusters.
        za, zb = z[:50, 0], z[50:, 0]
        assert abs(za.mean() - zb.mean()) > 5 * (za.std() + zb.std()) / 2

    def test_explained_variance_sorted_and_dominant(self):
        rng = np.random.default_rng(2)
        enc = PCAEncoder(20, 5).fit(clustered_data(rng))
        evr = enc.explained_variance_ratio
        assert np.all(np.diff(evr) <= 1e-12)
        assert evr[0] > 0.5  # the separation axis dominates

    def test_projection_preserves_distances_better_than_random(self):
        rng = np.random.default_rng(3)
        data = rng.random((100, 30))
        enc = PCAEncoder(30, 10).fit(data)
        z = enc.encode(data)
        d_full = np.linalg.norm(data[:50] - data[50:], axis=1)
        d_pca = np.linalg.norm(z[:50] - z[50:], axis=1)
        corr = np.corrcoef(d_full, d_pca)[0, 1]
        assert corr > 0.7

    def test_mean_centering(self):
        rng = np.random.default_rng(4)
        data = rng.random((40, 12)) + 100.0  # big offset
        enc = PCAEncoder(12, 3).fit(data)
        z = enc.encode(data)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)


class TestPersistence:
    def test_state_roundtrip(self):
        rng = np.random.default_rng(5)
        data = rng.random((30, 15))
        enc = PCAEncoder(15, 4).fit(data)
        other = PCAEncoder(15, 4)
        other.load_state_dict(enc.state_dict())
        np.testing.assert_array_equal(enc.encode(data), other.encode(data))

    def test_unfitted_checkpoint_rejected(self):
        with pytest.raises(RuntimeError):
            PCAEncoder(10, 2).state_dict()

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(6)
        enc = PCAEncoder(15, 4).fit(rng.random((30, 15)))
        other = PCAEncoder(15, 3)
        with pytest.raises(ValueError):
            other.load_state_dict(enc.state_dict())


class TestWorkflowIntegration:
    def test_pca_encoder_drives_the_wm(self):
        """Duck-type compatibility: the WM runs with a PCA encoder."""
        from repro.core.patches import PatchCreator
        from repro.core.wm import WorkflowConfig, WorkflowManager
        from repro.datastore import KVStore
        from repro.sims.cg.forcefield import martini_like
        from repro.sims.continuum import ContinuumConfig, ContinuumSim

        macro = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                             n_proteins=3, dt=0.25, seed=0))
        # Fit the PCA on a burn-in crop of patches.
        burn = ContinuumSim(macro.config)
        creator = PatchCreator(patch_grid=9)
        flats = []
        for _ in range(4):
            burn.step(4)
            flats.extend(p.flat() for p in creator.create(burn.snapshot()))
        enc = PCAEncoder(input_dim=2 * 81, latent_dim=9).fit(np.stack(flats))

        wm = WorkflowManager(
            macro=macro,
            encoder=enc,
            forcefield=martini_like(2),
            store=KVStore(nservers=2),
            config=WorkflowConfig(beads_per_type=6, cg_chunks_per_job=1,
                                  cg_steps_per_chunk=5, seed=0),
            patch_creator=PatchCreator(patch_grid=9),
        )
        counters = wm.round()
        assert counters["patches"] == 3
        assert counters["cg_finished"] > 0
