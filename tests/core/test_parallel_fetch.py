"""Tests for parallel frame fetching in the feedback collect phase."""

import numpy as np
import pytest

from repro.app.feedback import CGToContinuumFeedback
from repro.core.feedback import FeedbackManager, StoreFeedbackMixin
from repro.datastore import FSStore, KVStore
from repro.sims.cg.analysis import RDFResult
from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim


class Collector(StoreFeedbackMixin, FeedbackManager):
    def __init__(self, store, workers):
        FeedbackManager.__init__(self)
        StoreFeedbackMixin.__init__(self, store, "x/live/", "x/done/",
                                    fetch_workers=workers)

    def process(self, items):
        return len(items)

    def report(self, result):
        pass


class TestParallelCollect:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_collect_returns_all_items(self, tmp_path, workers):
        store = FSStore(str(tmp_path))
        for i in range(20):
            store.write(f"x/live/f{i:02d}", str(i).encode())
        mgr = Collector(store, workers)
        items = mgr.collect()
        assert len(items) == 20
        assert dict(items)["x/live/f07"] == b"7"

    def test_parallel_and_serial_agree(self, tmp_path):
        store = FSStore(str(tmp_path))
        for i in range(15):
            store.write(f"x/live/f{i:02d}", bytes([i]))
        serial = sorted(Collector(store, 1).collect())
        parallel = sorted(Collector(store, 8).collect())
        assert serial == parallel

    def test_iteration_identical_results(self, tmp_path):
        """The CG->continuum aggregate is invariant to the fetch mode."""
        def run(workers):
            store = FSStore(str(tmp_path / f"w{workers}"))
            edges = np.linspace(0, 3, 11)
            g = np.ones((2, 10)); g[0, :3] = 2.5
            for i in range(30):
                store.write(f"rdf/live/f{i:02d}",
                            RDFResult(f"c{i}", 1.0, edges, g).to_bytes())
            cont = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                                n_proteins=2, dt=0.25, seed=0))
            CGToContinuumFeedback(store, cont, fetch_workers=workers).run_iteration()
            return cont.g_inner

        np.testing.assert_array_equal(run(1), run(6))

    def test_single_item_skips_pool(self):
        store = KVStore()
        store.write("x/live/only", b"1")
        assert Collector(store, 8).collect() == [("x/live/only", b"1")]

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            Collector(KVStore(), 0)
