#!/usr/bin/env python
"""Quickstart: a complete three-scale MuMMI workflow in ~30 lines.

Builds the RAS-RAF-membrane application (continuum DDFT + CG + AA with
ML-driven selection and both feedback loops), runs a few coordination
rounds on this machine, and prints what happened at each scale.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace trace.jsonl   # + span trace
"""

import sys

from repro import trace
from repro.app import build_application
from repro.core.wm import WorkflowConfig


def main() -> None:
    trace_path = None
    if "--trace" in sys.argv:
        trace_path = sys.argv[sys.argv.index("--trace") + 1]
        trace.enable()

    # One URL picks the data backend: kv:// (Redis-like), fs://, taridx://.
    app = build_application(
        store_url="kv://4",
        workflow=WorkflowConfig(beads_per_type=10, seed=0),
        seed=0,
    )

    print("Running 3 coordination rounds (continuum -> CG -> AA + feedback)...")
    counters = app.run(nrounds=3)

    print("\n--- what the Workflow Manager did ---")
    for key in (
        "snapshots", "patches", "patches_selected", "cg_spawned",
        "cg_finished", "frames_seen", "frames_selected", "aa_spawned",
        "aa_finished", "feedback_iterations",
    ):
        print(f"  {key:20s} {counters[key]}")

    print("\n--- backward coupling (in situ feedback) ---")
    print(f"  continuum coupling updates : {app.macro.coupling_version}")
    print(f"  CG force-field refinements : {app.forcefield.version}")
    print(f"  consensus secondary structure: {app.forcefield.ss_pattern!r}")

    print("\n--- data management ---")
    for ns in ("patches/", "rdf/done/", "ss/done/"):
        print(f"  {ns:10s} {len(app.store.keys(ns))} objects")

    if trace_path:
        n = trace.get_tracer().export_jsonl(trace_path)
        trace.disable()
        print(f"\nwrote {n} spans to {trace_path}"
              f" (analyze: python -m repro trace {trace_path})")


if __name__ == "__main__":
    main()
