"""Tiered storage: fast local tier over a durable backing tier.

§6 ("Responsible Use of Shared Resources"): "MuMMI employs a conscious
mix of the shared filesystem and local on-node RAM disk, which
alleviates its footprint by reducing frequency of high-bandwidth file
I/O operations." And §4.1 (4): backmapping works on "the local on-node
RAM disk and about 0.5 GB data is backed up to GPFS".

:class:`TieredStore` composes any two backends that way:

- **writes** land in the fast tier; keys matching ``persist_prefixes``
  are also written through to the backing tier (the checkpoint/backup
  class of data);
- **reads** hit the fast tier first and fall back to the backing tier
  (optionally promoting the value back into the fast tier);
- **evict()** drops non-persistent keys from the fast tier (the RAM
  disk is bounded), leaving persistent data recoverable from backing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.datastore.base import DataStore, KeyNotFound, StoreUnavailable

__all__ = ["TieredStore"]


class TieredStore(DataStore):
    """A fast tier backed by a durable tier.

    Parameters
    ----------
    fast:
        The RAM-disk stand-in (typically ``kv://``).
    backing:
        The durable tier (typically ``fs://`` or ``taridx://``).
    persist_prefixes:
        Key prefixes written through to the backing tier. Everything
        else lives only in the fast tier until evicted or deleted.
    promote_on_read:
        Copy backing-tier hits back into the fast tier.

    When the fast tier is a networked store and becomes unreachable
    (:class:`StoreUnavailable`), the tiered store degrades instead of
    failing: persistent keys keep flowing to the backing tier, reads
    and scans fall through to backing, and :attr:`degraded_ops` counts
    how many operations ran in that mode. Only a write that would live
    *solely* in the unreachable fast tier still raises — swallowing it
    would silently lose data.
    """

    def __init__(
        self,
        fast: DataStore,
        backing: DataStore,
        persist_prefixes: Sequence[str] = (),
        promote_on_read: bool = True,
    ) -> None:
        self.fast = fast
        self.backing = backing
        self.persist_prefixes = tuple(persist_prefixes)
        self.promote_on_read = promote_on_read
        self.degraded_ops = 0

    def _persistent(self, key: str) -> bool:
        return any(key.startswith(p) for p in self.persist_prefixes)

    # --- primitives -----------------------------------------------------

    def write(self, key: str, data: bytes) -> None:
        persistent = self._persistent(key)
        try:
            self.fast.write(key, data)
        except StoreUnavailable:
            if not persistent:
                raise
            self.degraded_ops += 1
        if persistent:
            self.backing.write(key, data)

    def read(self, key: str) -> bytes:
        try:
            return self.fast.read(key)
        except KeyNotFound:
            pass
        except StoreUnavailable:
            self.degraded_ops += 1
        data = self.backing.read(key)  # raises KeyNotFound if truly gone
        if self.promote_on_read:
            try:
                self.fast.write(key, data)
            except StoreUnavailable:
                self.degraded_ops += 1
        return data

    def delete(self, key: str) -> None:
        found = False
        try:
            self.fast.delete(key)
            found = True
        except KeyNotFound:
            pass
        except StoreUnavailable:
            self.degraded_ops += 1
        try:
            self.backing.delete(key)
            found = True
        except KeyNotFound:
            pass
        if not found:
            raise KeyNotFound(key)

    def keys(self, prefix: str = "") -> List[str]:
        try:
            fast_keys = set(self.fast.keys(prefix))
        except StoreUnavailable:
            self.degraded_ops += 1
            fast_keys = set()
        return sorted(fast_keys | set(self.backing.keys(prefix)))

    def move(self, src: str, dst: str) -> None:
        data = self.read(src)
        self.write(dst, data)
        self.delete(src)

    # --- batched defaults, tier-aware ------------------------------------

    def read_present(self, keys) -> dict:
        """Batched read across both tiers: one fast-tier batch, then one
        backing-tier batch for the misses (promoted back like reads)."""
        keys = list(keys)
        try:
            found = dict(self.fast.read_present(keys))
        except StoreUnavailable:
            self.degraded_ops += 1
            found = {}
        missing = [k for k in keys if k not in found]
        if missing:
            recovered = self.backing.read_present(missing)
            found.update(recovered)
            if self.promote_on_read and recovered:
                try:
                    self.fast.write_many(recovered)
                except StoreUnavailable:
                    self.degraded_ops += 1
        return found

    def read_many(self, keys) -> dict:
        keys = list(keys)
        found = self.read_present(keys)
        for k in keys:
            if k not in found:
                raise KeyNotFound(k)
        return found

    def write_many(self, items) -> None:
        pairs = list(items.items()) if hasattr(items, "items") else list(items)
        persistent = [(k, v) for k, v in pairs if self._persistent(k)]
        try:
            self.fast.write_many(pairs)
        except StoreUnavailable:
            self.degraded_ops += 1
            if persistent:
                self.backing.write_many(persistent)
            if len(persistent) < len(pairs):
                raise  # some keys would live solely in the dead fast tier
            return
        if persistent:
            self.backing.write_many(persistent)

    def close(self) -> None:
        self.fast.close()
        self.backing.close()

    # --- tier management ----------------------------------------------------

    def evict(self, prefix: str = "") -> int:
        """Drop fast-tier entries under ``prefix``; persistent keys stay
        recoverable from the backing tier. Returns entries evicted."""
        n = 0
        for key in self.fast.keys(prefix):
            self.fast.delete(key)
            n += 1
        return n

    def fast_keys(self, prefix: str = "") -> List[str]:
        return self.fast.keys(prefix)

    def backing_keys(self, prefix: str = "") -> List[str]:
        return self.backing.keys(prefix)

    def durable(self, key: str) -> bool:
        """Whether ``key`` would survive losing the fast tier."""
        return self.backing.exists(key)
