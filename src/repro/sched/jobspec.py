"""Job specifications and lifecycle records.

A :class:`JobSpec` describes what a job needs (the paper's four job
types need either "1 GPU + a few cores" or "24 cores on one node" or,
for the continuum simulation, "150 nodes × 24 cores"); a
:class:`JobRecord` tracks one submitted instance through its lifecycle.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.sched.resources import Allocation

__all__ = ["JobSpec", "JobState", "JobRecord"]


class JobState(enum.Enum):
    """Lifecycle of a job inside the scheduler."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """Resource and runtime requirements of one job.

    Parameters
    ----------
    name:
        Job-type label (e.g. ``"cg-sim"``, ``"createsim"``); the workflow
        maps each simulation to exactly one job, so instance identity
        lives in :attr:`tag`.
    ncores, ngpus:
        Per-node requirements. For single-node jobs these are the whole
        request; for multi-node jobs they are per node.
    nnodes:
        Number of nodes (1 for the unbundled simulation jobs; 150 for
        the continuum run).
    duration:
        Expected runtime in seconds (the campaign simulator completes
        the job after this much virtual time). ``None`` = runs until
        cancelled.
    exclusive:
        Whole-node job: claims every core and GPU of each node.
    tag:
        Free-form identity payload (e.g. the simulation id) — the
        explicit simulation-to-job mapping of §4.3.
    priority:
        Scheduling priority (higher wins). A queue with preemption
        enabled may evict running jobs of *strictly lower* priority to
        make room for a blocked higher-priority head; evicted jobs are
        requeued, not lost.
    gang_id:
        Names the co-scheduled ensemble this job belongs to. Under
        :attr:`~repro.sched.matcher.MatchPolicy.GANG`, every queued job
        sharing a ``gang_id`` starts all-or-nothing.
    """

    name: str
    ncores: int = 1
    ngpus: int = 0
    nnodes: int = 1
    duration: Optional[float] = None
    exclusive: bool = False
    tag: Optional[str] = None
    priority: int = 0
    gang_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ValueError("nnodes must be >= 1")
        if self.ncores < 0 or self.ngpus < 0:
            raise ValueError("resource counts must be >= 0")
        if not self.exclusive and self.ncores == 0 and self.ngpus == 0:
            raise ValueError("job must request some resource")
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.gang_id is not None and not self.gang_id:
            raise ValueError("gang_id must be a non-empty name")

    @property
    def total_cores(self) -> int:
        return self.ncores * self.nnodes

    @property
    def total_gpus(self) -> int:
        return self.ngpus * self.nnodes


_job_counter = itertools.count(1)


@dataclass
class JobRecord:
    """One submitted job instance and its scheduling history."""

    spec: JobSpec
    job_id: int = field(default_factory=lambda: next(_job_counter))
    state: JobState = JobState.PENDING
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    allocation: Optional[Allocation] = None
    result: Any = None

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait (submit -> start), if started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> Optional[float]:
        """Execution time (start -> end), if finished."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def to_dict(self) -> Dict[str, Any]:
        """History-file row (replayable scheduler history, §4.4)."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "tag": self.spec.tag,
            "state": self.state.value,
            "submit": self.submit_time,
            "start": self.start_time,
            "end": self.end_time,
            "ncores": self.spec.total_cores,
            "ngpus": self.spec.total_gpus,
            "priority": self.spec.priority,
            "gang_id": self.spec.gang_id,
        }
