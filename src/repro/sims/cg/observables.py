"""Physical diagnostics for the CG engine.

The production campaign validated its MD engines against benchmarks
(§5.1, Fig. 4). These observables are the laptop-scale equivalent: they
verify the Brownian integrator reproduces the statistical mechanics it
claims (free-particle diffusion, bond-length distributions, energy
behaviour), which is what the engine tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sims.cg.engine import CGSim

__all__ = ["TrajectoryRecorder", "mean_squared_displacement", "diffusion_coefficient",
           "bond_length_stats", "EnergySeries"]


class TrajectoryRecorder:
    """Records unwrapped positions so displacement statistics work.

    The engine wraps positions into the periodic box; the recorder
    accumulates minimum-image displacements between frames, recovering
    the unwrapped trajectory (valid while per-step moves stay below
    half the box, which the stability limits guarantee).
    """

    def __init__(self, sim: CGSim) -> None:
        self.sim = sim
        self._last_wrapped = sim.positions.copy()
        self._unwrapped = sim.positions.copy()
        self.frames: List[np.ndarray] = [self._unwrapped.copy()]
        self.times: List[float] = [sim.time]

    def record(self) -> None:
        """Capture the current state as one frame."""
        delta = self.sim._min_image(self.sim.positions - self._last_wrapped)
        self._unwrapped = self._unwrapped + delta
        self._last_wrapped = self.sim.positions.copy()
        self.frames.append(self._unwrapped.copy())
        self.times.append(self.sim.time)

    def run(self, nframes: int, steps_per_frame: int) -> "TrajectoryRecorder":
        for _ in range(nframes):
            self.sim.step(steps_per_frame)
            self.record()
        return self

    def trajectory(self) -> np.ndarray:
        """(nframes, n, 2) unwrapped positions."""
        return np.stack(self.frames)


def mean_squared_displacement(
    trajectory: np.ndarray, select: Optional[np.ndarray] = None
) -> np.ndarray:
    """MSD per lag from frame 0: (nframes,) averaged over particles."""
    traj = np.asarray(trajectory, dtype=float)
    if traj.ndim != 3:
        raise ValueError("trajectory must be (nframes, n, 2)")
    if select is not None:
        traj = traj[:, select, :]
    disp = traj - traj[0]
    return np.einsum("fnd,fnd->fn", disp, disp).mean(axis=1)


def diffusion_coefficient(times: np.ndarray, msd: np.ndarray) -> float:
    """Fit MSD = 4 D t (2-D Einstein relation) by least squares."""
    t = np.asarray(times, dtype=float)
    m = np.asarray(msd, dtype=float)
    if t.shape != m.shape or t.size < 2:
        raise ValueError("times and msd must be equal-length (>= 2)")
    denom = float(np.dot(t, t))
    if denom == 0:
        raise ValueError("times are all zero")
    slope = float(np.dot(t, m)) / denom
    return slope / 4.0


def bond_length_stats(sim: CGSim) -> Dict[str, float]:
    """Mean/std of current bond lengths vs their rest lengths."""
    if sim.bonds.shape[0] == 0:
        raise ValueError("system has no bonds")
    bi = sim.bonds[:, 0].astype(int)
    bj = sim.bonds[:, 1].astype(int)
    r0 = sim.bonds[:, 2]
    d = sim._min_image(sim.positions[bi] - sim.positions[bj])
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    return {
        "mean": float(r.mean()),
        "std": float(r.std()),
        "rest_mean": float(r0.mean()),
        "max_strain": float(np.max(np.abs(r - r0) / np.maximum(r0, 1e-9))),
    }


@dataclass
class EnergySeries:
    """Streaming record of potential energy along a run."""

    times: List[float]
    energies: List[float]

    @classmethod
    def collect(cls, sim: CGSim, nsamples: int, steps_per_sample: int) -> "EnergySeries":
        times, energies = [], []
        for _ in range(nsamples):
            sim.step(steps_per_sample)
            _F, e = sim.forces()
            times.append(sim.time)
            energies.append(e)
        return cls(times=times, energies=energies)

    def drift(self) -> float:
        """Relative drift of the second half's mean vs the first half's."""
        e = np.asarray(self.energies)
        half = e.size // 2
        first, second = e[:half].mean(), e[half:].mean()
        scale = max(abs(first), 1e-12)
        return float((second - first) / scale)
