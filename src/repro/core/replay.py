"""History files and exact replay (paper §4.4, Resilience).

"In addition to checkpointing, key components (ML and job scheduling)
also maintain elaborate history files that may be replayed exactly, if
necessary." Two replayable components ship here:

- **selector histories** — the sequence of (time, selected ids,
  candidate counts); :func:`verify_selector_replay` feeds the same
  candidate stream to a fresh sampler and checks it makes the identical
  picks, which is the property that makes the history a usable audit
  trail;
- **scheduler histories** — the per-job rows from
  :meth:`repro.sched.flux.FluxInstance.history_rows`;
  :class:`ScheduleTimeline` reconstructs running/pending time series
  and wait/runtime statistics from the rows alone, without re-running
  the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datastore.base import DataStore
from repro.sampling.base import Sampler
from repro.sampling.points import Point

__all__ = [
    "save_history",
    "load_history",
    "ReplayMismatch",
    "verify_selector_replay",
    "ScheduleTimeline",
]


def save_history(store: DataStore, key: str, rows: Sequence[dict]) -> None:
    """Persist a component's history rows as one JSON payload."""
    store.write_json(key, list(rows))


def load_history(store: DataStore, key: str) -> List[dict]:
    return list(store.read_json(key))


@dataclass(frozen=True)
class ReplayMismatch:
    """First divergence found between a history and its replay."""

    event_index: int
    expected: Tuple[str, ...]
    actual: Tuple[str, ...]


def verify_selector_replay(
    sampler_factory: Callable[[], Sampler],
    additions: Sequence[Tuple[int, Point]],
    history: Sequence[dict],
) -> Optional[ReplayMismatch]:
    """Replay a selection history against a fresh sampler.

    Parameters
    ----------
    sampler_factory:
        Builds a sampler identical to the original (same seeds/config).
    additions:
        The candidate stream as (event_index, point): all points with
        ``event_index <= i`` were ingested before history event ``i``
        ran. This is what the WM's candidate log records.
    history:
        Rows from :meth:`repro.sampling.base.Sampler.history_rows`.

    Returns None if the replay reproduces every selection exactly, else
    the first :class:`ReplayMismatch`.
    """
    sampler = sampler_factory()
    cursor = 0
    additions = sorted(additions, key=lambda pair: pair[0])
    for i, event in enumerate(history):
        while cursor < len(additions) and additions[cursor][0] <= i:
            sampler.add(additions[cursor][1])
            cursor += 1
        expected = tuple(event["selected"])
        picked = sampler.select(len(expected), now=float(event["time"]))
        actual = tuple(p.id for p in picked)
        if actual != expected:
            return ReplayMismatch(event_index=i, expected=expected, actual=actual)
    return None


class ScheduleTimeline:
    """Reconstructs scheduler behaviour from history rows alone."""

    def __init__(self, rows: Sequence[dict]) -> None:
        self.rows = [dict(r) for r in rows]

    # --- scalar statistics -------------------------------------------------

    def wait_times(self) -> np.ndarray:
        """Queue waits of every job that started."""
        return np.array(
            [r["start"] - r["submit"] for r in self.rows if r["start"] is not None]
        )

    def run_times(self) -> np.ndarray:
        return np.array(
            [
                r["end"] - r["start"]
                for r in self.rows
                if r["start"] is not None and r["end"] is not None
            ]
        )

    def counts_by_state(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.rows:
            out[r["state"]] = out.get(r["state"], 0) + 1
        return out

    # --- time series --------------------------------------------------------

    def running_series(self, times: Sequence[float], name: Optional[str] = None) -> np.ndarray:
        """Jobs running at each query time (optionally one job type)."""
        rows = [r for r in self.rows if name is None or r["name"] == name]
        starts = np.array([r["start"] if r["start"] is not None else np.inf for r in rows])
        ends = np.array([r["end"] if r["end"] is not None else np.inf for r in rows])
        times_arr = np.asarray(times, dtype=float)
        return np.array(
            [int(np.sum((starts <= t) & (t < ends))) for t in times_arr]
        )

    def gpu_usage_series(self, times: Sequence[float]) -> np.ndarray:
        """GPUs held at each query time, from the rows' resource counts."""
        starts = np.array([r["start"] if r["start"] is not None else np.inf for r in self.rows])
        ends = np.array([r["end"] if r["end"] is not None else np.inf for r in self.rows])
        gpus = np.array([r["ngpus"] for r in self.rows])
        out = []
        for t in np.asarray(times, dtype=float):
            active = (starts <= t) & (t < ends)
            out.append(int(gpus[active].sum()))
        return np.array(out)

    def replay_matches_profile(
        self, profile_times: Sequence[float], observed_gpus: Sequence[int]
    ) -> bool:
        """Does the reconstruction agree with live profiling samples?"""
        rebuilt = self.gpu_usage_series(profile_times)
        return bool(np.array_equal(rebuilt, np.asarray(observed_gpus)))
