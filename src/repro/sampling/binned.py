"""The binned (histogram) sampler for CG-frame selection.

§4.4 Task 2: the CG-frame encoding is 3-D but "represents three
disparate quantities; therefore, the L2 distance is not meaningful. To
support a functionally useful sampling, a binned sampler was developed
... that allows treating the three dimensions of the encoding
separately. The binned sampling approach also facilitates control over
the balance between importance and randomness ... This new sampling
approach is capable of providing significantly faster updates to
ranking: 3-4 minutes for 9M candidates."

The speed claim is structural: candidates are bucketed into a discrete
histogram at ingest (O(1) per candidate, or one vectorized
``ravel_multi_index`` pass for a whole batch via :meth:`~BinnedSampler.add_batch`),
and a selection just finds the least-simulated occupied bin from a
maintained occupied-bin array (O(#occupied), never rebuilt per pop) —
no distance computation ever touches the millions of candidates. That
is the 165× capacity improvement the S4 ablation bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import trace
from repro.sampling.base import Sampler
from repro.sampling.points import Point

__all__ = ["BinSpec", "BinnedSampler"]


@dataclass(frozen=True)
class BinSpec:
    """Per-dimension binning: ``nbins`` equal bins over [lo, hi].

    Out-of-range values clamp into the edge bins — every candidate must
    land somewhere; the encoding bounds are advisory.
    """

    lo: float
    hi: float
    nbins: int

    def __post_init__(self) -> None:
        if self.nbins < 1:
            raise ValueError("nbins must be >= 1")
        if not self.hi > self.lo:
            raise ValueError("hi must exceed lo")

    def bin_of(self, values: np.ndarray) -> np.ndarray:
        """Vectorized bin index for each value, clamped to [0, nbins-1]."""
        scaled = (np.asarray(values, dtype=float) - self.lo) / (self.hi - self.lo)
        idx = np.floor(scaled * self.nbins).astype(np.int64)
        return np.clip(idx, 0, self.nbins - 1)


class BinnedSampler(Sampler):
    """Histogram-based selection balancing importance and randomness.

    Parameters
    ----------
    specs:
        One :class:`BinSpec` per encoding dimension (three for CG frames).
    randomness:
        Probability that a selection ignores the histogram and picks a
        uniformly random candidate — the paper's "balance between
        importance and randomness". 0 = always least-simulated bin.
    rng:
        Seeded generator (selection is stochastic by design).
    """

    def __init__(
        self,
        specs: Sequence[BinSpec],
        randomness: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not specs:
            raise ValueError("need at least one BinSpec")
        if not 0.0 <= randomness <= 1.0:
            raise ValueError("randomness must be in [0, 1]")
        self.specs = tuple(specs)
        self.randomness = randomness
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._shape = tuple(s.nbins for s in self.specs)
        self._nbins = int(np.prod(self._shape))
        # candidates bucketed by flat bin id as (id, coords) pairs;
        # lists support O(1) swap-pop. Points materialize on selection.
        self._bins: Dict[int, List[Tuple[str, np.ndarray]]] = {}
        self._total = 0
        self._ids = set()
        self.duplicates = 0
        """Silently-ignored duplicate frame ids (ingest dedup)."""
        # how many selections each bin has produced ("simulated density")
        self.selected_counts = np.zeros(self._nbins, dtype=np.int64)
        # Occupied-bin cache: contiguous array + slot map, swap-deleted,
        # so _pop_least_simulated never rebuilds it per pop.
        self._occ = np.empty(min(self._nbins, 1024), dtype=np.int64)
        self._occ_n = 0
        self._occ_slot: Dict[int, int] = {}

    # --- binning ---------------------------------------------------------

    def flat_bins(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized flat bin indices for an (n, ndim) coordinate batch —
        one ``ravel_multi_index`` call for the whole batch."""
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != len(self.specs):
            raise ValueError(
                f"expected (n, {len(self.specs)}) encodings, got shape {coords.shape}"
            )
        multi = [spec.bin_of(coords[:, d]) for d, spec in enumerate(self.specs)]
        return np.ravel_multi_index(multi, self._shape)

    def flat_bin(self, coords: np.ndarray) -> int:
        """Flat bin index of one encoding vector."""
        coords = np.asarray(coords, dtype=float)
        if coords.shape != (len(self.specs),):
            raise ValueError(
                f"expected {len(self.specs)}-D encoding, got shape {coords.shape}"
            )
        return int(self.flat_bins(coords[None, :])[0])

    # --- occupied-bin cache ------------------------------------------------

    def _occ_add(self, bin_id: int) -> None:
        if self._occ_n >= self._occ.shape[0]:
            grown = np.empty(2 * self._occ.shape[0], dtype=np.int64)
            grown[: self._occ_n] = self._occ[: self._occ_n]
            self._occ = grown
        self._occ[self._occ_n] = bin_id
        self._occ_slot[bin_id] = self._occ_n
        self._occ_n += 1

    def _occ_remove(self, bin_id: int) -> None:
        slot = self._occ_slot.pop(bin_id)
        last = self._occ_n - 1
        if slot != last:
            moved = self._occ[last]
            self._occ[slot] = moved
            self._occ_slot[int(moved)] = slot
        self._occ_n -= 1

    def _bucket_append(self, bin_id: int, item: Tuple[str, np.ndarray]) -> None:
        bucket = self._bins.get(bin_id)
        if bucket is None:
            self._bins[bin_id] = [item]
            self._occ_add(bin_id)
        else:
            bucket.append(item)

    # --- Sampler API -------------------------------------------------------

    def add(self, point: Point) -> None:
        """O(1) ingest: bucket the candidate, nothing else."""
        if point.id in self._ids:
            self.duplicates += 1
            return  # duplicate frame id (analysis re-emitted it)
        b = self.flat_bin(point.coords)
        self._bucket_append(b, (point.id, point.coords))
        self._ids.add(point.id)
        self._total += 1

    def add_batch(
        self,
        points: Optional[Sequence[Point]] = None,
        *,
        ids: Optional[Sequence[str]] = None,
        coords: Optional[np.ndarray] = None,
    ) -> int:
        """Vectorized batch ingest; returns how many were accepted.

        Pass either a sequence of :class:`Point` objects, or parallel
        ``ids`` + ``coords`` ((n, ndim) array) straight from an encoder
        — the array form skips per-candidate object construction
        entirely. All flat bins come from one :meth:`flat_bins` call;
        duplicates (against the sampler and within the batch) are
        counted, not ingested.
        """
        if points is not None:
            if ids is not None or coords is not None:
                raise ValueError("pass either points or ids+coords, not both")
            ids = [p.id for p in points]
            coords = np.stack([p.coords for p in points]) if points else np.empty((0, len(self.specs)))
        elif ids is None or coords is None:
            raise ValueError("need points, or both ids and coords")
        coords = np.asarray(coords, dtype=float)
        if len(ids) != coords.shape[0]:
            raise ValueError(f"{len(ids)} ids vs {coords.shape[0]} coordinate rows")
        if coords.shape[0] == 0:
            return 0
        known = self._ids
        keep: List[int] = []
        seen_new = set()
        for i, pid in enumerate(ids):
            if pid in known or pid in seen_new:
                self.duplicates += 1
            else:
                seen_new.add(pid)
                keep.append(i)
        if not keep:
            return 0
        rows = np.asarray(keep, dtype=np.int64)
        flats = self.flat_bins(coords[rows])
        # Group rows by bin: one stable sort, then per-bin bulk appends.
        order = np.argsort(flats, kind="stable")
        flats_sorted = flats[order]
        rows_sorted = rows[order]
        boundaries = np.flatnonzero(np.diff(flats_sorted)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [rows_sorted.size]])
        for s, e in zip(starts, ends):
            bin_id = int(flats_sorted[s])
            items = [(ids[int(r)], coords[int(r)]) for r in rows_sorted[s:e]]
            bucket = self._bins.get(bin_id)
            if bucket is None:
                self._bins[bin_id] = items
                self._occ_add(bin_id)
            else:
                bucket.extend(items)
        known.update(seen_new)
        self._total += rows.size
        return int(rows.size)

    def ncandidates(self) -> int:
        return self._total

    def candidate_ids(self) -> set:
        """Snapshot of every queued candidate id."""
        return set(self._ids)

    def discard(self, point_id: str) -> bool:
        """Withdraw one candidate without selecting it; returns whether
        it was present. Unlike selection, a discard does not touch the
        simulated-density counts — the candidate was never run."""
        if point_id not in self._ids:
            return False
        for bin_id, bucket in self._bins.items():
            for i, (pid, _) in enumerate(bucket):
                if pid != point_id:
                    continue
                bucket[i] = bucket[-1]
                bucket.pop()
                if not bucket:
                    del self._bins[bin_id]
                    self._occ_remove(bin_id)
                self._ids.discard(point_id)
                self._total -= 1
                return True
        return False

    def select(self, k: int, now: float = 0.0) -> List[Point]:
        """Consume ``k`` candidates, preferring under-simulated bins."""
        if k < 1:
            raise ValueError("k must be >= 1")
        with trace.span("select.frame") as sp:
            chosen: List[Point] = []
            for _ in range(k):
                if self._total == 0:
                    break
                if self.randomness > 0 and self.rng.random() < self.randomness:
                    point = self._pop_random()
                else:
                    point = self._pop_least_simulated()
                chosen.append(point)
            if sp:
                sp.set(k=k, chosen=len(chosen), candidates=self._total,
                       occupied_bins=self._occ_n)
        self._record(now, chosen, detail=f"randomness={self.randomness}")
        return chosen

    # --- selection internals -----------------------------------------------

    def _pop_from_bin(self, bin_id: int) -> Point:
        bucket = self._bins[bin_id]
        i = int(self.rng.integers(len(bucket)))
        bucket[i], bucket[-1] = bucket[-1], bucket[i]
        pid, coords = bucket.pop()
        if not bucket:
            del self._bins[bin_id]
            self._occ_remove(bin_id)
        self._ids.discard(pid)
        self._total -= 1
        self.selected_counts[bin_id] += 1
        return Point(id=pid, coords=coords)

    def _pop_least_simulated(self) -> Point:
        occupied = self._occ[: self._occ_n]
        counts = self.selected_counts[occupied]
        best = occupied[counts == counts.min()]
        # Sorted so the tie-break is canonical (independent of the
        # cache's swap-delete history — checkpoint replays must agree).
        bin_id = int(self.rng.choice(np.sort(best)))  # random among tied bins
        return self._pop_from_bin(bin_id)

    def _pop_random(self) -> Point:
        # Weight bins by occupancy so every candidate is equally likely.
        occupied = np.sort(self._occ[: self._occ_n])
        weights = np.array([len(self._bins[int(b)]) for b in occupied], dtype=float)
        bin_id = int(self.rng.choice(occupied, p=weights / weights.sum()))
        return self._pop_from_bin(bin_id)

    # --- introspection ---------------------------------------------------------

    def occupancy(self) -> Dict[int, int]:
        """Candidates per occupied flat bin."""
        return {b: len(items) for b, items in self._bins.items()}

    def coverage(self) -> float:
        """Fraction of bins that have produced at least one selection."""
        return float(np.count_nonzero(self.selected_counts)) / self._nbins
