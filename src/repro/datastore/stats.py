"""I/O accounting shared by every backend.

The campaign "creat[es] and manag[es] several TBs of data each day"; the
WM needs to know how much each store moved to report that. Backends
call :meth:`IOStats.note` from their primitives; the WM and benches
read the counters. Networked backends additionally keep
:class:`TransportStats` — the retry/timeout/reconnect counters and the
round-trip latency histogram the telemetry report surfaces.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["IOStats", "LatencyHistogram", "TransportStats"]


@dataclass
class IOStats:
    """Byte and operation counters for one store.

    Units: ``bytes_written`` and ``bytes_read`` are bytes;
    ``writes``, ``reads``, ``deletes``, ``moves``, and ``scans`` are
    operation counts. All counters are cumulative since construction
    (or the last :meth:`reset`).
    """

    bytes_written: int = 0
    bytes_read: int = 0
    writes: int = 0
    reads: int = 0
    deletes: int = 0
    moves: int = 0
    scans: int = 0

    def note(self, op: str, nbytes: int = 0) -> None:
        if op == "write":
            self.writes += 1
            self.bytes_written += nbytes
        elif op == "read":
            self.reads += 1
            self.bytes_read += nbytes
        elif op == "delete":
            self.deletes += 1
        elif op == "move":
            self.moves += 1
        elif op == "scan":
            self.scans += 1
        else:
            raise ValueError(f"unknown op {op!r}")

    def ops(self) -> int:
        return self.writes + self.reads + self.deletes + self.moves + self.scans

    def as_dict(self) -> Dict[str, int]:
        return {
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "writes": self.writes,
            "reads": self.reads,
            "deletes": self.deletes,
            "moves": self.moves,
            "scans": self.scans,
        }

    def reset(self) -> None:
        self.bytes_written = self.bytes_read = 0
        self.writes = self.reads = self.deletes = self.moves = self.scans = 0


# Log-spaced round-trip buckets, in milliseconds: sub-ms in-process hops
# through multi-second timeout-bound stalls all land in a useful bin.
_LATENCY_EDGES_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class LatencyHistogram:
    """Fixed log-bucket latency accumulator (no per-sample retention).

    All values are milliseconds: ``edges_ms`` are bucket upper edges,
    ``sum_ms`` and ``max_ms`` accumulate observed round trips, and the
    exported ``mean_ms`` / ``p50_ms`` / ``p99_ms`` derive from them.
    ``counts`` holds per-bucket sample counts (exported as the sparse
    ``buckets`` map; the final entry is the overflow bucket) and
    ``count`` is the total number of samples.
    Quantiles are bucket upper bounds, i.e. conservative: the true
    quantile is at most the reported value.
    """

    def __init__(self) -> None:
        self.edges_ms = _LATENCY_EDGES_MS
        self.counts = [0] * (len(self.edges_ms) + 1)  # last bucket = overflow
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float) -> None:
        ms = seconds * 1e3
        self.counts[bisect.bisect_left(self.edges_ms, ms)] += 1
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def quantile_ms(self, q: float) -> float:
        """Upper edge of the bucket holding the q-quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return self.edges_ms[i] if i < len(self.edges_ms) else self.max_ms
        return self.max_ms

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms(),
            "p50_ms": self.quantile_ms(0.5),
            "p99_ms": self.quantile_ms(0.99),
            "max_ms": self.max_ms,
            "buckets": {
                f"<={edge:g}ms": n
                for edge, n in zip(self.edges_ms, self.counts)
                if n
            } | ({f">{self.edges_ms[-1]:g}ms": self.counts[-1]}
                 if self.counts[-1] else {}),
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges_ms) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0


class TransportStats:
    """Wire-level counters for one networked store (shared by its clients).

    Tracks what :class:`IOStats` cannot see: how hard the transport had
    to work to complete each logical operation. A cluster hands one
    instance to all of its per-shard clients, so the numbers describe
    the store as the workflow experiences it. Increments are
    lock-guarded because feedback managers fetch through thread pools.

    Counters (all cumulative counts unless noted): ``requests`` —
    attempts that reached the wire; ``retries`` — failed attempts that
    were re-tried, of which ``timeouts`` hit the op timeout and
    ``protocol_errors`` were unframeable responses; ``reconnects`` —
    fresh connections after the first; ``exhausted`` — operations that
    spent the whole retry budget and raised ``StoreUnavailable``;
    ``bytes_sent`` / ``bytes_received`` — payload volume in bytes;
    ``latency`` — a :class:`LatencyHistogram` of round-trip times.

    Replicated-cluster counters: ``failovers`` — reads served by a
    non-primary replica because an earlier replica was down or missed
    the key; ``shard_down_events`` / ``shard_up_events`` — health
    transitions (fail-over and fail-back); ``read_repairs`` — stale or
    missing replica copies refreshed from a healthy peer;
    ``rename_orphans`` — two-phase renames whose delete leg could not
    complete (the source copy survives on a dead shard as a duplicate,
    never as a loss). Pipelining counters: ``batched_requests`` —
    MGET/MSET/MDEL round trips; ``batched_keys`` — keys carried by
    those round trips; ``max_batch_keys`` — the deepest single batch
    (pipeline-depth high-water mark, a count not a cumulative sum).
    Coalescing counters (async transport): ``coalesced_requests`` —
    count of batch round trips the client channel synthesized by
    folding concurrent single-key GET/SET/DEL ops into one
    MGET/MSET/MDEL frame; ``coalesced_keys`` — cumulative count of
    single-key ops absorbed by those folds (each fold saves
    ``keys - 1`` round trips).
    Slot-migration counters: ``migrated_slots`` / ``migrated_keys`` —
    hash slots cut over and keys copied by ``migrate_slots``;
    ``dual_writes`` — writes mirrored to both the old and new replica
    windows while their slot was mid-migration; ``route_refreshes`` —
    times this client adopted a newer routing map published by another
    cluster instance.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0
        self.protocol_errors = 0
        self.exhausted = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.failovers = 0
        self.shard_down_events = 0
        self.shard_up_events = 0
        self.read_repairs = 0
        self.rename_orphans = 0
        self.batched_requests = 0
        self.batched_keys = 0
        self.max_batch_keys = 0
        self.coalesced_requests = 0
        self.coalesced_keys = 0
        self.migrated_slots = 0
        self.migrated_keys = 0
        self.dual_writes = 0
        self.route_refreshes = 0
        self.latency = LatencyHistogram()

    def note_request(self, nbytes_sent: int) -> None:
        with self._lock:
            self.requests += 1
            self.bytes_sent += nbytes_sent

    def note_response(self, nbytes_received: int, seconds: float) -> None:
        with self._lock:
            self.bytes_received += nbytes_received
            self.latency.observe(seconds)

    def note_retry(self, *, timed_out: bool, protocol: bool = False) -> None:
        with self._lock:
            self.retries += 1
            if timed_out:
                self.timeouts += 1
            if protocol:
                self.protocol_errors += 1

    def note_reconnect(self) -> None:
        with self._lock:
            self.reconnects += 1

    def note_exhausted(self) -> None:
        with self._lock:
            self.exhausted += 1

    def note_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    def note_shard_down(self) -> None:
        with self._lock:
            self.shard_down_events += 1

    def note_shard_up(self) -> None:
        with self._lock:
            self.shard_up_events += 1

    def note_read_repair(self, nkeys: int = 1) -> None:
        with self._lock:
            self.read_repairs += nkeys

    def note_rename_orphan(self) -> None:
        with self._lock:
            self.rename_orphans += 1

    def note_batch(self, nkeys: int) -> None:
        with self._lock:
            self.batched_requests += 1
            self.batched_keys += nkeys
            if nkeys > self.max_batch_keys:
                self.max_batch_keys = nkeys

    def note_coalesced(self, nkeys: int) -> None:
        with self._lock:
            self.coalesced_requests += 1
            self.coalesced_keys += nkeys
            if nkeys > self.max_batch_keys:
                self.max_batch_keys = nkeys

    def note_migration(self, nslots: int, nkeys: int) -> None:
        with self._lock:
            self.migrated_slots += nslots
            self.migrated_keys += nkeys

    def note_dual_write(self) -> None:
        with self._lock:
            self.dual_writes += 1

    def note_route_refresh(self) -> None:
        with self._lock:
            self.route_refreshes += 1

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "reconnects": self.reconnects,
                "protocol_errors": self.protocol_errors,
                "exhausted": self.exhausted,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "failovers": self.failovers,
                "shard_down_events": self.shard_down_events,
                "shard_up_events": self.shard_up_events,
                "read_repairs": self.read_repairs,
                "rename_orphans": self.rename_orphans,
                "batched_requests": self.batched_requests,
                "batched_keys": self.batched_keys,
                "max_batch_keys": self.max_batch_keys,
                "coalesced_requests": self.coalesced_requests,
                "coalesced_keys": self.coalesced_keys,
                "migrated_slots": self.migrated_slots,
                "migrated_keys": self.migrated_keys,
                "dual_writes": self.dual_writes,
                "route_refreshes": self.route_refreshes,
                "latency": self.latency.as_dict(),
            }

    def reset(self) -> None:
        with self._lock:
            self.requests = self.retries = self.timeouts = 0
            self.reconnects = self.protocol_errors = self.exhausted = 0
            self.bytes_sent = self.bytes_received = 0
            self.failovers = self.shard_down_events = self.shard_up_events = 0
            self.read_repairs = self.rename_orphans = 0
            self.batched_requests = self.batched_keys = self.max_batch_keys = 0
            self.coalesced_requests = self.coalesced_keys = 0
            self.migrated_slots = self.migrated_keys = self.dual_writes = 0
            self.route_refreshes = 0
            self.latency.reset()
