"""Machine-loading experiments (Fig. 6 and the §5.2 scaling story).

A load experiment drives a Workflow-Manager-like submitter against one
scheduler configuration: jobs are submitted in throttled bursts
(~100/min, like the campaign), and the experiment records when each job
actually starts. Comparing configurations reproduces the paper's
observations:

- 1000 nodes, synchronous Q↔R, exhaustive matcher: loads in about an
  hour at a steady ~100 jobs/min (Fig. 6 left);
- 4000 nodes, same configuration: matching is starved by submission
  handling — starts arrive "in large chunks followed by large periods
  of inactivity" and loading stretches to many hours (Fig. 6 right);
- 4000 nodes with the fixes (asynchronous Q↔R + first-match): loading
  returns to submission-rate pace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec
from repro.sched.matcher import MatchPolicy
from repro.sched.queue import QueueCosts, QueueMode
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop
from repro.util import units

__all__ = ["LoadResult", "run_load_experiment", "FIG6_COSTS"]

#: Queue-cost calibration used by the Fig. 6 experiments: intake 0.25 s
#: per submission, 5 µs per visited graph vertex — which puts the
#: exhaustive matcher at ~0.26 s/job on 1000 nodes and ~1.0 s/job on
#: 4000 nodes, the regime where synchronous Q↔R starves.
FIG6_COSTS = QueueCosts(submit_cost=0.25, match_overhead=0.002, vertex_cost=5e-6)


@dataclass
class LoadResult:
    """Outcome of one loading experiment."""

    nnodes: int
    njobs: int
    policy: str
    mode: str
    start_times: List[float] = field(default_factory=list)
    submit_times: List[float] = field(default_factory=list)
    loaded_fraction: float = 0.0
    sim_hours: float = 0.0

    def time_to_load(self, fraction: float = 0.99) -> Optional[float]:
        """Seconds until ``fraction`` of jobs had started, if reached."""
        need = int(self.njobs * fraction)
        if len(self.start_times) < need or need == 0:
            return None
        return sorted(self.start_times)[need - 1]

    def starts_per_bin(self, bin_seconds: float = 60.0) -> np.ndarray:
        """Histogram of job starts per time bin (the Fig. 6 series)."""
        if not self.start_times:
            return np.zeros(1)
        horizon = self.sim_hours * units.HOUR
        nbins = max(1, int(np.ceil(horizon / bin_seconds)))
        counts, _ = np.histogram(
            self.start_times, bins=nbins, range=(0.0, nbins * bin_seconds)
        )
        return counts

    def peak_backlog(self) -> int:
        """Largest submitted-but-not-started job count at any instant.

        The Fig. 6 right-panel signature: "the submitted jobs took much
        longer to run" — pending jobs pile up when Q starves R.
        """
        events = [(t, 1) for t in self.submit_times] + [
            (t, -1) for t in self.start_times
        ]
        events.sort()
        backlog = peak = 0
        for _t, delta in events:
            backlog += delta
            peak = max(peak, backlog)
        return peak

    def start_phase_mean(self, window_seconds: float = 120.0) -> float:
        """Mean position (0..1) of starts inside each submission window.

        Synchronous Q↔R serves the submission burst first, so starts
        concentrate late in the window (phase → 1); asynchronous Q↔R
        matches during intake, so starts land early (phase → 0). This is
        the §5.2 starvation mechanism made measurable.
        """
        if not self.start_times:
            return 0.0
        phases = np.mod(np.asarray(self.start_times), window_seconds) / window_seconds
        return float(phases.mean())


def run_load_experiment(
    nnodes: int,
    njobs: int,
    policy: MatchPolicy = MatchPolicy.LOW_ID_FIRST,
    mode: QueueMode = QueueMode.SYNC,
    costs: Optional[QueueCosts] = None,
    submit_rate_per_min: float = 100.0,
    poll_interval: float = 120.0,
    max_hours: float = 24.0,
    sim_cores: int = 3,
) -> LoadResult:
    """Load ``njobs`` 1-GPU jobs onto ``nnodes`` Summit-like nodes.

    Jobs are long-running (they never finish within the experiment), so
    the start curve isolates pure scheduling throughput exactly like the
    paper's Fig. 6 (which plots the initial loading phase).
    """
    loop = EventLoop()
    flux = FluxInstance(
        summit_like(nnodes),
        loop,
        policy=policy,
        mode=mode,
        costs=costs or FIG6_COSTS,
        cycle_interval=5.0,
    )
    result = LoadResult(
        nnodes=nnodes, njobs=njobs, policy=policy.value, mode=mode.value,
        sim_hours=max_hours,
    )
    submitted = {"n": 0}
    per_poll = int(submit_rate_per_min * poll_interval / 60.0)

    def submit_burst() -> None:
        burst = min(per_poll, njobs - submitted["n"])
        for i in range(burst):
            idx = submitted["n"] + i
            flux.submit(
                JobSpec(name="gpu-sim", ncores=sim_cores, ngpus=1,
                        duration=None, tag=f"sim{idx:05d}")
            )
            result.submit_times.append(loop.now)
        submitted["n"] += burst
        if submitted["n"] < njobs:
            loop.schedule_in(poll_interval, submit_burst, label="wm-submit")

    loop.schedule_in(1.0, submit_burst, label="wm-submit")
    horizon = max_hours * units.HOUR

    # Run until everything started or the horizon passed.
    while loop.now < horizon:
        if len(flux.start_log) >= njobs:
            break
        loop.run_until(min(loop.now + 600.0, horizon))

    result.start_times = [t for t, _jid, _name in flux.start_log]
    result.loaded_fraction = len(result.start_times) / njobs
    return result
