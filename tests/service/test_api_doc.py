"""Keeps OPERATIONS.md and the service API in sync.

Same contract ``test_observability_doc.py`` applies to telemetry: the
route table in :mod:`repro.service.api` is the single source of truth,
and this test fails whenever a route is added, renamed, or dropped
without the operator handbook following — in either direction.
"""

import os
import re

from repro.service.api import ROUTES

DOC = os.path.join(os.path.dirname(__file__), "..", "..", "OPERATIONS.md")

with open(DOC, encoding="utf-8") as fh:
    HANDBOOK = fh.read()

# `VERB /v1/...` in backticks, the way the handbook cites endpoints.
_DOC_ROUTES = set(re.findall(r"`(GET|POST|DELETE|PUT|PATCH) (/v1/[^`\s]*)`",
                             HANDBOOK))


class TestHandbookCoversApi:
    def test_every_route_is_documented(self):
        missing = [f"{r.method} {r.pattern}" for r in ROUTES
                   if (r.method, r.pattern) not in _DOC_ROUTES]
        assert not missing, (
            f"OPERATIONS.md is missing route(s): {missing} — document each "
            "as `METHOD /v1/path` in the API reference")

    def test_no_phantom_routes_in_handbook(self):
        real = {(r.method, r.pattern) for r in ROUTES}
        phantom = [f"{m} {p}" for m, p in _DOC_ROUTES if (m, p) not in real]
        assert not phantom, (
            f"OPERATIONS.md documents route(s) that do not exist: {phantom}")

    def test_every_route_description_is_present(self):
        # The one-line route descriptions double as the reference's
        # summary column; they must not drift from the code either.
        for route in ROUTES:
            assert route.description, f"{route.pattern} has no description"

    def test_error_statuses_are_documented(self):
        for status in ("400", "404", "405", "409", "429", "503"):
            assert status in HANDBOOK, (
                f"OPERATIONS.md no longer explains HTTP {status}")

    def test_operational_knobs_are_documented(self):
        for needle in ("repro serve", "--pool-workers", "--share",
                       "--max-campaigns", "REPRO_SKIP_SERVICE",
                       "tenants/", "drain"):
            assert needle in HANDBOOK, (
                f"OPERATIONS.md no longer documents {needle!r}")
