"""Tests for the DDFT continuum simulation."""

import numpy as np
import pytest

from repro.sims.continuum import ContinuumConfig, ContinuumSim, ProteinState, ProteinTable
from repro.sims.continuum.snapshot import Snapshot

SMALL = ContinuumConfig(grid=16, n_inner=2, n_outer=2, n_proteins=3, dt=0.05, seed=1)


class TestProteinTable:
    def test_random_construction(self):
        rng = np.random.default_rng(0)
        t = ProteinTable.random(10, box=1.0, rng=rng, raf_fraction=0.5)
        assert len(t) == 10
        assert t.count(ProteinState.RAS) + t.count(ProteinState.RAS_RAF) == 10

    def test_positions_wrapped(self):
        t = ProteinTable(np.array([[1.5, -0.2]]), np.array([0]), box=1.0)
        assert np.all(t.positions >= 0) and np.all(t.positions < 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProteinTable(np.zeros((2, 3)), np.zeros(2), box=1.0)
        with pytest.raises(ValueError):
            ProteinTable(np.zeros((2, 2)), np.zeros(3), box=1.0)
        with pytest.raises(ValueError):
            ProteinTable(np.zeros((2, 2)), np.zeros(2), box=0.0)

    def test_state_transitions_conserve_count(self):
        rng = np.random.default_rng(1)
        t = ProteinTable.random(100, 1.0, rng, raf_fraction=0.0, bind_rate=0.5)
        n_trans = t.step_states(dt=1.0, rng=rng)
        assert n_trans > 0  # high rate: some must bind
        assert len(t) == 100

    def test_zero_rate_means_no_transitions(self):
        rng = np.random.default_rng(2)
        t = ProteinTable.random(50, 1.0, rng, bind_rate=0.0, unbind_rate=0.0)
        assert t.step_states(dt=10.0, rng=rng) == 0

    def test_displace_wraps(self):
        t = ProteinTable(np.array([[0.9, 0.9]]), np.array([0]), box=1.0)
        t.displace(np.array([[0.2, 0.2]]))
        np.testing.assert_allclose(t.positions, [[0.1, 0.1]], atol=1e-12)

    def test_copy_is_independent(self):
        rng = np.random.default_rng(3)
        t = ProteinTable.random(5, 1.0, rng)
        c = t.copy()
        c.positions[0] = [0.5, 0.5]
        assert not np.array_equal(t.positions[0], c.positions[0]) or np.array_equal(
            t.positions[0], [0.5, 0.5]
        )


class TestContinuumConfig:
    def test_defaults_are_stable(self):
        ContinuumConfig()  # must not raise

    def test_stability_check(self):
        with pytest.raises(ValueError, match="stability"):
            ContinuumConfig(grid=64, box=1.0, diffusion=1e-3, dt=10.0)

    def test_grid_minimum(self):
        with pytest.raises(ValueError):
            ContinuumConfig(grid=4)


class TestContinuumSim:
    def test_initial_fields_positive(self):
        sim = ContinuumSim(SMALL)
        assert np.all(sim.inner > 0) and np.all(sim.outer > 0)

    def test_mass_conservation(self):
        sim = ContinuumSim(SMALL)
        m0 = sim.total_mass()
        sim.step(50)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-8)

    def test_densities_stay_nonnegative(self):
        sim = ContinuumSim(SMALL)
        sim.step(100)
        assert np.all(sim.inner >= 0) and np.all(sim.outer >= 0)

    def test_time_advances(self):
        sim = ContinuumSim(SMALL)
        sim.step(10)
        assert sim.time_us == pytest.approx(10 * SMALL.dt)

    def test_deterministic_given_seed(self):
        a = ContinuumSim(SMALL)
        b = ContinuumSim(SMALL)
        a.step(20)
        b.step(20)
        np.testing.assert_array_equal(a.inner, b.inner)
        np.testing.assert_array_equal(a.proteins.positions, b.proteins.positions)

    def test_proteins_move(self):
        sim = ContinuumSim(SMALL)
        before = sim.proteins.positions.copy()
        sim.step(20)
        assert not np.allclose(before, sim.proteins.positions)

    def test_coupling_shapes_lipid_response(self):
        # Strongly attracted lipid should enrich near proteins relative
        # to a strongly repelled one.
        cfg = ContinuumConfig(grid=32, n_inner=2, n_outer=1, n_proteins=4, dt=0.05, seed=3)
        sim = ContinuumSim(cfg)
        g = np.zeros((2, 2))
        g[0] = 5.0  # type 0 attracted to both states
        g[1] = -5.0  # type 1 repelled
        sim.update_couplings(g, np.zeros((1, 2)))
        sim.step(200)
        kernel = sim._protein_kernel()
        near = (kernel[0] + kernel[1]) > 0.5
        if near.any() and (~near).any():
            enrich0 = sim.inner[0][near].mean() / sim.inner[0][~near].mean()
            enrich1 = sim.inner[1][near].mean() / sim.inner[1][~near].mean()
            assert enrich0 > enrich1

    def test_update_couplings_versioned(self):
        sim = ContinuumSim(SMALL)
        assert sim.coupling_version == 0
        sim.update_couplings(np.zeros((2, 2)), np.zeros((2, 2)))
        assert sim.coupling_version == 1

    def test_update_couplings_shape_checked(self):
        sim = ContinuumSim(SMALL)
        with pytest.raises(ValueError):
            sim.update_couplings(np.zeros((5, 2)), np.zeros((2, 2)))

    def test_run_with_snapshots(self):
        sim = ContinuumSim(ContinuumConfig(grid=16, n_inner=1, n_outer=1,
                                           n_proteins=2, dt=0.25, io_interval_us=0.5, seed=0))
        snaps = sim.run_with_snapshots(total_us=2.0)
        assert len(snaps) == 5  # initial + 4 intervals
        times = [s.time_us for s in snaps]
        np.testing.assert_allclose(np.diff(times), 0.5)


class TestSnapshot:
    def test_roundtrip_through_bytes(self):
        sim = ContinuumSim(SMALL)
        sim.step(5)
        snap = sim.snapshot()
        back = Snapshot.from_bytes(snap.to_bytes())
        assert back.time_us == snap.time_us
        np.testing.assert_array_equal(back.inner, snap.inner)
        np.testing.assert_array_equal(back.protein_states, snap.protein_states)
        assert back.box == snap.box

    def test_snapshot_is_a_copy(self):
        sim = ContinuumSim(SMALL)
        snap = sim.snapshot()
        sim.step(10)
        assert snap.time_us == 0.0
        assert not np.array_equal(snap.protein_positions, sim.proteins.positions)

    def test_grid_size_and_mass(self):
        sim = ContinuumSim(SMALL)
        snap = sim.snapshot()
        assert snap.grid_size == 16
        assert snap.total_mass() == pytest.approx(sim.total_mass())

    def test_proteins_accessor(self):
        sim = ContinuumSim(SMALL)
        table = sim.snapshot().proteins()
        assert len(table) == 3
