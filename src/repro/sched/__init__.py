"""Flux-like scheduler substrate (paper §4.3, §5.2).

The paper schedules 24,000 simultaneous jobs by instantiating Flux — a
hierarchical resource manager — inside a batch allocation. This package
rebuilds that stack:

- :mod:`~repro.sched.resources` — the hierarchical resource graph
  (cluster → node → socket/core + GPU), Summit- and Lassen-shaped
  presets, and explicit allocations.
- :mod:`~repro.sched.jobspec` — job specifications (cores, GPUs, whole
  nodes, affinity) and job lifecycle records.
- :mod:`~repro.sched.matcher` — the resource matcher (R) with the two
  policies the paper compares: exhaustive ``low-id-first`` and greedy
  ``first-match`` (the 670× fix).
- :mod:`~repro.sched.queue` — the queue manager (Q): FCFS without
  backfilling, with synchronous or asynchronous Q↔R communication (the
  Fig. 6 chunking bottleneck).
- :mod:`~repro.sched.flux` — the scheduler facade tying Q, R and the
  event loop together, with node-failure drain support.
- :mod:`~repro.sched.adapter` — the Maestro-like scheduler-agnostic
  submission API.
- :mod:`~repro.sched.shares` — weighted fair sharing (stride
  scheduling) of one worker pool across the control plane's tenants.
- :mod:`~repro.sched.bundling` — the predecessor's bundled-job strategy,
  kept as the ablation baseline.
- :mod:`~repro.sched.emulator` — the harness reproducing the matcher
  policy comparison at emulated 4000-node scale.
"""

from repro.sched.resources import Allocation, Node, ResourceGraph, summit_like, lassen_like
from repro.sched.jobspec import JobSpec, JobState, JobRecord
from repro.sched.matcher import Matcher, MatchPolicy, MatchStats
from repro.sched.queue import QueueManager, QueueMode
from repro.sched.flux import FluxInstance
from repro.sched.adapter import SchedulerAdapter, FluxAdapter, ThreadAdapter
from repro.sched.shares import FairShareAdapter, StrideScheduler, TenantAdapter
from repro.sched.bundling import bundle_gpu_jobs, BundleExpander

__all__ = [
    "Allocation",
    "Node",
    "ResourceGraph",
    "summit_like",
    "lassen_like",
    "JobSpec",
    "JobState",
    "JobRecord",
    "Matcher",
    "MatchPolicy",
    "MatchStats",
    "QueueManager",
    "QueueMode",
    "FluxInstance",
    "SchedulerAdapter",
    "FluxAdapter",
    "ThreadAdapter",
    "FairShareAdapter",
    "StrideScheduler",
    "TenantAdapter",
    "bundle_gpu_jobs",
    "BundleExpander",
]
