"""Tests for the coroutine round core: settle hooks, the async
barrier, and fair-share offload billing.

The threaded WM ended a round by joining the whole worker pool; the
coroutine WM gathers per-tag *settle* futures instead, so only the
jobs this round launched gate the barrier. These tests pin down the
settle contract on the JobTracker, the WM's dispatch between the
legacy and coroutine paths, and the TenantExecutor that keeps offloads
billed to the tenant's fair share.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.jobs import JobTracker, JobTypeConfig
from repro.sched.adapter import ThreadAdapter
from repro.sched.jobspec import JobState
from repro.sched.shares import FairShareAdapter, TenantExecutor
from tests.core.test_wm import make_wm


def _tracker(max_retries=2, max_workers=1):
    adapter = ThreadAdapter(max_workers=max_workers)
    cfg = JobTypeConfig(name="probe", max_retries=max_retries)
    return JobTracker(cfg, adapter), adapter


class TestSettleHook:
    def test_fires_once_on_completion(self):
        tracker, adapter = _tracker()
        settled = []
        tracker.launch("t1", fn=lambda: 42, on_settled=settled.append)
        adapter.wait_all()
        assert [r.state for r in settled] == [JobState.COMPLETED]
        assert settled[0].result == 42

    def test_retried_failure_settles_only_at_the_end(self):
        tracker, adapter = _tracker(max_retries=2)
        settled = []

        def boom():
            raise ValueError("first attempt dies")

        tracker.launch("t1", fn=boom, on_settled=settled.append)
        adapter.wait_all()  # failure + its resubmission both drain
        # The failed attempt was resubmitted (fn-less, so it completes);
        # the hook must NOT have fired for the retryable failure.
        assert [r.state for r in settled] == [JobState.COMPLETED]
        assert tracker.abandoned == []
        assert len(tracker.completed) == 1

    def test_exhausted_retries_settle_with_the_failure(self):
        tracker, adapter = _tracker(max_retries=0)
        settled = []

        def boom():
            raise ValueError("no retries left")

        tracker.launch("t1", fn=boom, on_settled=settled.append)
        adapter.wait_all()
        assert [r.state for r in settled] == [JobState.FAILED]
        assert tracker.abandoned == ["t1"]

    def test_cancelled_job_settles(self):
        tracker, adapter = _tracker(max_workers=1)
        release = threading.Event()
        blocker_done = threading.Event()
        settled = []
        # Occupy the only worker so the second launch stays queued,
        # then cancel it while still pending. A queued-cancel fires the
        # settle hook synchronously; the barrier must not hang on it.
        tracker.launch("blocker", fn=lambda: release.wait(10),
                       on_settled=lambda r: blocker_done.set())
        record = tracker.launch("t1", fn=lambda: None,
                                on_settled=settled.append)
        tracker.adapter.cancel(record.job_id)
        assert [r.state for r in settled] == [JobState.CANCELLED]
        release.set()
        assert blocker_done.wait(10)


class TestCoroutineRound:
    def test_thread_adapter_opts_into_async_rounds(self):
        wm, _ = make_wm()
        try:
            assert wm._async_rounds  # ThreadAdapter.settles_async
            assert wm._loop_thread is None  # lazy until the first round
        finally:
            wm.close()

    def test_async_round_runs_the_whole_pipeline(self):
        wm, store = make_wm()
        try:
            wm.round(advance_us=1.0)
            assert wm._loop_thread is not None and wm._loop_thread.is_alive()
            c = wm.counters
            assert c["patches_selected"] > 0
            assert c["cg_spawned"] > 0
            assert c["cg_finished"] > 0
            assert len(store.keys("rdf/live/")) > 0
            loop_thread = wm._loop_thread
        finally:
            wm.close()
        assert not loop_thread.is_alive()  # close() joins the round loop

    def test_round_barrier_leaves_nothing_inflight(self):
        wm, _ = make_wm()
        try:
            for _ in range(2):
                wm.round(advance_us=1.0)
                assert wm._round_inflight == []
                for tracker in wm.trackers.values():
                    assert tracker.nactive() == 0
        finally:
            wm.close()

    def test_legacy_path_still_works_when_adapter_opts_out(self):
        wm, _ = make_wm()
        try:
            wm._async_rounds = False  # adapters without settles_async
            wm.round(advance_us=1.0)
            assert wm._loop_thread is None
            assert wm.counters["cg_finished"] > 0
        finally:
            wm.close()

    def test_wait_false_takes_the_legacy_non_blocking_path(self):
        wm, _ = make_wm()
        try:
            wm.round(wait=False)
            assert wm._loop_thread is None  # coroutine core not engaged
            wm.adapter.wait_all()
        finally:
            wm.close()


class TestTenantExecutor:
    def test_offload_result_round_trips(self):
        shared = FairShareAdapter(max_workers=2)
        try:
            ex = TenantExecutor(shared, "acme")
            assert ex.submit(lambda a, b: a + b, 40, 2).result(10) == 42
        finally:
            shared.shutdown()

    def test_offload_exception_propagates(self):
        shared = FairShareAdapter(max_workers=2)
        try:
            ex = TenantExecutor(shared, "acme")

            def boom():
                raise RuntimeError("offload died")

            with pytest.raises(RuntimeError, match="offload died"):
                ex.submit(boom).result(10)
        finally:
            shared.shutdown()

    def test_offloads_are_billed_to_the_tenant(self):
        shared = FairShareAdapter(max_workers=2)
        try:
            ex = TenantExecutor(shared, "acme")
            ex.submit(lambda: None).result(10)
            stats = shared.share_stats()
            assert stats["acme"]["dispatched"] >= 1
        finally:
            shared.shutdown()
