"""Tests for the network-level fault-injection harness."""

import numpy as np
import pytest

from repro.util.faults import FAULT_MODES, NetworkFaultInjector
from repro.util.rng import RngStream


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            NetworkFaultInjector(drop=1.5)
        with pytest.raises(ValueError):
            NetworkFaultInjector(garbage=-0.1)

    def test_delay_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            NetworkFaultInjector(delay=0.1, delay_seconds=-1.0)


class TestFates:
    def test_inactive_injector_never_fires(self):
        inj = NetworkFaultInjector()
        assert all(inj.connection_fate() is None for _ in range(100))
        assert all(inj.request_fate() is None for _ in range(100))
        assert inj.total_injected() == 0

    def test_drop_rate_one_always_drops(self):
        inj = NetworkFaultInjector(drop=1.0)
        assert all(inj.connection_fate() == "drop" for _ in range(20))
        assert inj.injected["drop"] == 20

    def test_request_modes_fire_and_are_counted(self):
        inj = NetworkFaultInjector(delay=1.0, delay_seconds=0.0)
        assert inj.request_fate() == "delay"
        inj2 = NetworkFaultInjector(close=1.0)
        assert inj2.request_fate() == "close"
        inj3 = NetworkFaultInjector(garbage=1.0)
        assert inj3.request_fate() == "garbage"

    def test_most_destructive_mode_wins(self):
        inj = NetworkFaultInjector(delay=1.0, close=1.0, garbage=1.0)
        assert inj.request_fate() == "garbage"
        assert inj.injected["garbage"] == 1
        assert inj.injected["close"] == 0

    def test_approximate_rate(self):
        inj = NetworkFaultInjector(drop=0.3, rng=np.random.default_rng(1))
        fired = sum(inj.connection_fate() == "drop" for _ in range(2000))
        assert 0.25 < fired / 2000 < 0.35


class TestDeterminism:
    def test_same_rng_stream_same_fault_sequence(self):
        def sequence(seed):
            rng = RngStream(seed).child("netkv-faults")
            inj = NetworkFaultInjector(drop=0.2, close=0.1, garbage=0.05, rng=rng)
            conn = [inj.connection_fate() for _ in range(50)]
            reqs = [inj.request_fate() for _ in range(200)]
            return conn, reqs

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_reset_clears_counters(self):
        inj = NetworkFaultInjector(drop=1.0)
        inj.connection_fate()
        inj.reset()
        assert inj.total_injected() == 0
        assert set(inj.injected) == set(FAULT_MODES)
