"""The DDFT continuum solver (our GridSim2D).

Dynamics follow dynamic density functional theory (Marconi & Tarazona
1999): each lipid density field evolves by the conservative gradient
flow

    drho_l/dt = div( D_l * (grad rho_l + rho_l * grad V_l) )

where ``V_l`` is the external potential each protein imprints on lipid
type ``l`` through a Gaussian coupling kernel. The coupling strengths
``g[l, s]`` (per lipid type and protein state) are *live parameters*:
the CG→continuum feedback loop updates them from aggregated RDFs, and
the solver "reads and updates these parameters on the fly" (§4.1 (7)).

Numerics: divergence-form central differences on a periodic grid (mass
is conserved to floating-point error), explicit Euler with a stability-
checked time step. Proteins do overdamped Langevin motion in the
membrane plane with state-dependent diffusion, plus Poisson
binding/unbinding.

The paper's production grid is 2400×2400 over 1 µm × 1 µm with 8 inner
and 6 outer lipid types; all of that is configuration here, with small
defaults so tests run in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sims.continuum.proteins import ProteinState, ProteinTable
from repro.sims.continuum.snapshot import Snapshot

__all__ = ["ContinuumConfig", "ContinuumSim"]


@dataclass(frozen=True)
class ContinuumConfig:
    """Physical and numerical parameters of the macro model."""

    grid: int = 64
    """Grid points per side (paper: 2400)."""

    box: float = 1.0
    """Box side length in µm (paper: 1 µm)."""

    n_inner: int = 8
    """Lipid types in the inner leaflet (paper: 8)."""

    n_outer: int = 6
    """Lipid types in the outer leaflet (paper: 6)."""

    n_proteins: int = 20
    """Protein particles (RAS / RAS-RAF)."""

    diffusion: float = 1e-3
    """Lipid diffusion constant, µm²/µs."""

    protein_diffusion: float = 5e-4
    """Protein in-plane diffusion constant, µm²/µs."""

    coupling_radius: float = 0.03
    """Gaussian kernel radius of the protein-lipid coupling, µm (≈30 nm)."""

    dt: float = 0.05
    """Time step in µs; checked against the diffusion stability limit."""

    io_interval_us: float = 1.0
    """Snapshot interval in simulated µs (paper: 1 µs)."""

    solver: str = "fd"
    """'fd' (explicit finite differences, positivity-clipped) or
    'spectral' (semi-implicit Fourier diffusion — exact for the linear
    term, so stable far beyond the FD time-step limit)."""

    seed: int = 0

    def __post_init__(self) -> None:
        if self.grid < 8:
            raise ValueError("grid must be >= 8")
        if self.box <= 0 or self.diffusion <= 0 or self.dt <= 0:
            raise ValueError("box, diffusion, dt must be positive")
        if self.solver not in ("fd", "spectral"):
            raise ValueError("solver must be 'fd' or 'spectral'")
        if self.solver == "fd":
            dx = self.box / self.grid
            limit = dx * dx / (4.0 * self.diffusion)
            if self.dt > limit:
                raise ValueError(
                    f"dt={self.dt} exceeds diffusion stability limit {limit:.4g} "
                    f"(grid={self.grid}, box={self.box}, D={self.diffusion})"
                )


def _grad(field2d: np.ndarray, dx: float) -> tuple:
    """Central-difference gradient on a periodic grid."""
    gx = (np.roll(field2d, -1, axis=0) - np.roll(field2d, 1, axis=0)) / (2 * dx)
    gy = (np.roll(field2d, -1, axis=1) - np.roll(field2d, 1, axis=1)) / (2 * dx)
    return gx, gy


def _div(fx: np.ndarray, fy: np.ndarray, dx: float) -> np.ndarray:
    """Central-difference divergence on a periodic grid."""
    return (np.roll(fx, -1, axis=0) - np.roll(fx, 1, axis=0)) / (2 * dx) + (
        np.roll(fy, -1, axis=1) - np.roll(fy, 1, axis=1)
    ) / (2 * dx)


class ContinuumSim:
    """The macro-scale simulation.

    Feedback hook: :meth:`update_couplings` swaps in new protein-lipid
    coupling strengths mid-run — the backward-coupling path of MuMMI.
    """

    def __init__(self, config: Optional[ContinuumConfig] = None) -> None:
        self.config = config or ContinuumConfig()
        c = self.config
        self.rng = np.random.default_rng(c.seed)
        self.dx = c.box / c.grid
        self.time_us = 0.0
        # Density fields start near 1 with smooth random structure.
        self.inner = self._init_fields(c.n_inner)
        self.outer = self._init_fields(c.n_outer)
        self.proteins = ProteinTable.random(c.n_proteins, c.box, self.rng)
        # Coupling strengths g[lipid_type, protein_state]; positive pulls
        # lipid toward the protein. Updated in situ by feedback.
        self.g_inner = self.rng.normal(0.0, 0.5, size=(c.n_inner, 2))
        self.g_outer = self.rng.normal(0.0, 0.5, size=(c.n_outer, 2))
        self.coupling_version = 0
        self._mesh = np.stack(
            np.meshgrid(
                np.arange(c.grid) * self.dx, np.arange(c.grid) * self.dx, indexing="ij"
            ),
            axis=-1,
        )
        # Spectral-solver machinery (built lazily only when used).
        self._k = None  # (kx, ky, k2, diffusion_propagator)

    def _spectral_setup(self):
        if self._k is None:
            c = self.config
            k1d = 2.0 * np.pi * np.fft.fftfreq(c.grid, d=self.dx)
            kx = k1d[:, None]
            ky = k1d[None, :]
            k2 = kx**2 + ky**2
            propagator = np.exp(-c.diffusion * k2 * c.dt)
            self._k = (1j * kx, 1j * ky, k2, propagator)
        return self._k

    def _init_fields(self, ntypes: int) -> np.ndarray:
        c = self.config
        fields = 1.0 + 0.1 * self.rng.standard_normal((ntypes, c.grid, c.grid))
        # Smooth the noise so the initial state is physical (long-wavelength).
        for _ in range(4):
            fields = 0.5 * fields + 0.125 * (
                np.roll(fields, 1, axis=1)
                + np.roll(fields, -1, axis=1)
                + np.roll(fields, 1, axis=2)
                + np.roll(fields, -1, axis=2)
            )
        return np.clip(fields, 0.05, None)

    # --- feedback interface -----------------------------------------------

    def update_couplings(self, g_inner: np.ndarray, g_outer: np.ndarray) -> None:
        """In situ parameter update (the CG→continuum feedback target)."""
        g_inner = np.asarray(g_inner, dtype=np.float64)
        g_outer = np.asarray(g_outer, dtype=np.float64)
        if g_inner.shape != self.g_inner.shape or g_outer.shape != self.g_outer.shape:
            raise ValueError("coupling table shape mismatch")
        self.g_inner = g_inner
        self.g_outer = g_outer
        self.coupling_version += 1

    # --- dynamics ----------------------------------------------------------

    def _protein_kernel(self) -> Dict[int, np.ndarray]:
        """Summed Gaussian kernel per protein state, shape (grid, grid).

        Computed with periodic minimum-image displacements so proteins
        near the boundary imprint correctly.
        """
        c = self.config
        out = {int(s): np.zeros((c.grid, c.grid)) for s in (0, 1)}
        for pos, state in zip(self.proteins.positions, self.proteins.states):
            d = self._mesh - pos
            d -= c.box * np.round(d / c.box)  # minimum image
            r2 = np.einsum("ijk,ijk->ij", d, d)
            out[int(state)] += np.exp(-r2 / (2 * c.coupling_radius**2))
        return out

    def step(self, nsteps: int = 1) -> None:
        """Advance the fields and proteins by ``nsteps`` time steps."""
        c = self.config
        for _ in range(nsteps):
            kernels = self._protein_kernel()
            self._step_fields(self.inner, self.g_inner, kernels)
            self._step_fields(self.outer, self.g_outer, kernels)
            self._step_proteins(kernels)
            self.proteins.step_states(c.dt, self.rng)
            self.time_us += c.dt

    def _step_fields(
        self, fields: np.ndarray, g: np.ndarray, kernels: Dict[int, np.ndarray]
    ) -> None:
        if self.config.solver == "spectral":
            self._step_fields_spectral(fields, g, kernels)
        else:
            self._step_fields_fd(fields, g, kernels)

    def _step_fields_spectral(
        self, fields: np.ndarray, g: np.ndarray, kernels: Dict[int, np.ndarray]
    ) -> None:
        """Semi-implicit spectral step.

        Diffusion is integrated exactly in Fourier space (integrating
        factor ``exp(-D k^2 dt)``); the protein-drift term is explicit
        with spectral derivatives. The k=0 mode of a spectral divergence
        is exactly zero, so mass is conserved to round-off without any
        clipping.
        """
        c = self.config
        ikx, iky, _k2, propagator = self._spectral_setup()
        for l in range(fields.shape[0]):
            rho = fields[l]
            V = -(g[l, 0] * kernels[0] + g[l, 1] * kernels[1])
            V_hat = np.fft.fft2(V)
            gVx = np.real(np.fft.ifft2(ikx * V_hat))
            gVy = np.real(np.fft.ifft2(iky * V_hat))
            flux_x_hat = np.fft.fft2(rho * gVx)
            flux_y_hat = np.fft.fft2(rho * gVy)
            drift_hat = c.diffusion * (ikx * flux_x_hat + iky * flux_y_hat)
            rho_hat = np.fft.fft2(rho)
            rho_hat = (rho_hat + c.dt * drift_hat) * propagator
            fields[l] = np.real(np.fft.ifft2(rho_hat))

    def _step_fields_fd(
        self, fields: np.ndarray, g: np.ndarray, kernels: Dict[int, np.ndarray]
    ) -> None:
        c = self.config
        for l in range(fields.shape[0]):
            rho = fields[l]
            # V_l = -sum_s g[l,s] * K_s : positive g attracts lipid l.
            V = -(g[l, 0] * kernels[0] + g[l, 1] * kernels[1])
            gVx, gVy = _grad(V, self.dx)
            gRx, gRy = _grad(rho, self.dx)
            fx = -c.diffusion * (gRx + rho * gVx)
            fy = -c.diffusion * (gRy + rho * gVy)
            rho -= c.dt * _div(fx, fy, self.dx)
            np.clip(rho, 0.0, None, out=rho)

    def _step_proteins(self, kernels: Dict[int, np.ndarray]) -> None:
        """Overdamped Langevin: drift down crowding gradients + noise."""
        c = self.config
        n = len(self.proteins)
        # Repulsive drift away from other proteins' kernels (crowding).
        total = kernels[0] + kernels[1]
        gx, gy = _grad(total, self.dx)
        cells = np.floor(self.proteins.positions / self.dx).astype(int) % c.grid
        drift = -np.stack([gx[cells[:, 0], cells[:, 1]], gy[cells[:, 0], cells[:, 1]]], axis=1)
        noise = self.rng.standard_normal((n, 2)) * np.sqrt(2 * c.protein_diffusion * c.dt)
        self.proteins.displace(drift * c.protein_diffusion * c.dt + noise)

    # --- I/O -----------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return Snapshot(
            time_us=self.time_us,
            inner=self.inner.copy(),
            outer=self.outer.copy(),
            protein_positions=self.proteins.positions.copy(),
            protein_states=self.proteins.states.copy(),
            box=self.config.box,
        )

    def run_with_snapshots(self, total_us: float) -> List[Snapshot]:
        """Run ``total_us`` of simulated time, emitting snapshots at the
        configured I/O interval (including the initial state)."""
        c = self.config
        steps_per_io = max(1, int(round(c.io_interval_us / c.dt)))
        nios = int(round(total_us / c.io_interval_us))
        out = [self.snapshot()]
        for _ in range(nios):
            self.step(steps_per_io)
            out.append(self.snapshot())
        return out

    def total_mass(self) -> float:
        return float(self.inner.sum() + self.outer.sum())
