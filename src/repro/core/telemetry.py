"""Workflow telemetry: one profiling report across every subsystem.

§4.4 lists profiling among the WM's responsibilities, and §5.2's
results are all reductions over profiling streams. This module gathers
the counters every component already maintains — WM task counters, lock
contention, per-type job tracker state, store I/O volume, and feedback
iteration timing — into one structured report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro import trace as trace_mod
from repro.core.wm import WorkflowManager
from repro.util import units

__all__ = ["TelemetryReport", "collect_telemetry", "render_report"]


@dataclass(frozen=True)
class TelemetryReport:
    """A structured snapshot of the whole workflow's health.

    Fields (see OBSERVABILITY.md for the full field-by-field guide):

    - ``rounds``: WM rounds completed so far (count).
    - ``counters``: WM pipeline counters, e.g. ``cg_finished`` (counts).
    - ``lock_stats``: :class:`~repro.util.locks.LockStats` totals across
      the WM's shared state — ``acquisitions``, ``contentions``,
      ``failed_tries`` (all counts).
    - ``trackers``: per job type, ``active`` / ``running`` / ``pending``
      / ``completed`` / ``abandoned`` job counts.
    - ``store_io``: :class:`~repro.datastore.stats.IOStats` dict —
      ``reads`` / ``writes`` / ``deletes`` / ``moves`` / ``scans``
      (counts) and ``bytes_read`` / ``bytes_written`` (bytes).
    - ``feedback``: one row per feedback manager — ``iterations`` and
      ``total_items`` (counts), ``mean_seconds`` (seconds/iteration).
    - ``selectors``: sampler occupancy — candidate/selected counts plus
      ``frame_bin_coverage`` (fraction in [0, 1]), ingest-dedup counts
      (``patch_duplicates`` / ``frame_duplicates``), and the
      patch-selector's incremental-engine counters (``patch_engine``:
      index adds/builds, distance evaluations, cache fold statistics).
    - ``transport``: wire-level counters (retries, timeouts, reconnects,
      latency percentiles in ms, plus cluster counters — failovers,
      shard down/up events, read repairs, rename orphans, and batched
      request/key/pipeline-depth counts) when the store is networked;
      empty for in-process backends.
    - ``replicas``: replica topology and health when the store is a
      replicated networked cluster — ``replication`` (copies per hash
      slot), ``nshards`` / ``up`` (counts), per-shard ``address`` and
      ``up`` flags, and ``pending_repairs`` (count); empty otherwise.
    - ``trace``: span-tracing summary when tracing is enabled — total
      ``spans`` and ``dropped`` (counts) and per-stage ``count`` /
      ``total_ms`` (milliseconds); empty when tracing is off.
    - ``scheduler``: matcher and queue counters when the WM drives a
      Flux-backed adapter — ``policy``, ``partitioned`` flag, match
      ``calls`` / ``matched`` / ``failed``, traversal cost
      (``vertices_visited``, ``partitions_skipped``), gang accounting
      (``gang_calls`` / ``gang_matched`` / ``gang_rollbacks``), and
      queue-level ``backfilled`` / ``preempted`` / ``gangs_placed``
      (all counts); empty for non-Flux adapters.
    """

    rounds: int
    counters: Dict[str, int]
    lock_stats: Dict[str, int]
    trackers: Dict[str, Dict[str, int]]
    store_io: Dict[str, int]
    feedback: List[Dict[str, Any]]
    selectors: Dict[str, Any]
    transport: Dict[str, Any] = field(default_factory=dict)
    replicas: Dict[str, Any] = field(default_factory=dict)
    trace: Dict[str, Any] = field(default_factory=dict)
    scheduler: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """The report as a JSON-serializable dict (the HTTP API payload).

        NumPy scalars inside selector/engine stats are coerced to native
        Python numbers so ``json.dumps`` works on any backend's report.
        """
        def coerce(value: Any) -> Any:
            if isinstance(value, dict):
                return {k: coerce(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [coerce(v) for v in value]
            if hasattr(value, "item") and not isinstance(value, (str, bytes)):
                return value.item()
            return value

        return {f.name: coerce(getattr(self, f.name))
                for f in dataclasses.fields(self)}

    def data_written(self) -> int:
        """Total bytes written to the store (0 if the backend reports none)."""
        return self.store_io.get("bytes_written", 0)

    def jobs_completed(self) -> int:
        """Completed jobs summed over every tracker (missing keys count 0)."""
        return sum(t.get("completed", 0) for t in self.trackers.values())

    def feedback_items(self) -> int:
        """Frames processed across all feedback managers (count)."""
        return sum(row["total_items"] for row in self.feedback)


def collect_telemetry(wm: WorkflowManager) -> TelemetryReport:
    """Snapshot every subsystem of a Workflow Manager."""
    trackers = {
        name: {
            "active": tracker.nactive(),
            "running": tracker.nrunning(),
            "pending": tracker.npending(),
            "completed": len(tracker.completed),
            "abandoned": len(tracker.abandoned),
        }
        for name, tracker in wm.trackers.items()
    }
    feedback = [
        {
            "manager": type(mgr).__name__,
            "iterations": len(mgr.reports),
            "total_items": mgr.total_items,
            "mean_seconds": (
                sum(r.total_seconds for r in mgr.reports) / len(mgr.reports)
                if mgr.reports else 0.0
            ),
        }
        for mgr in wm.feedback_managers
    ]
    selectors = {
        "patch_candidates": wm.patch_selector.ncandidates(),
        "patch_selected": wm.patch_selector.nselected(),
        "patch_queue_sizes": wm.patch_selector.queue_sizes(),
        "patch_dropped": wm.patch_selector.dropped(),
        "patch_duplicates": wm.patch_selector.duplicates(),
        "patch_engine": wm.patch_selector.engine_stats(),
        "frame_candidates": wm.frame_selector.ncandidates(),
        "frame_duplicates": wm.frame_selector.duplicates,
        "frame_bin_coverage": wm.frame_selector.coverage(),
    }
    tstats = getattr(wm.store, "transport_stats", None)
    health_fn = getattr(wm.store, "replica_health", None)
    tracer = trace_mod.get_tracer()
    scheduler: Dict[str, Any] = {}
    flux = getattr(wm.adapter, "flux", None)
    if flux is not None:
        st = flux.matcher.stats
        scheduler = {
            "policy": flux.matcher.policy.value,
            "partitioned": flux.matcher.partitioned,
            "calls": st.calls,
            "matched": st.matched,
            "failed": st.failed,
            "vertices_visited": st.vertices_visited,
            "partitions_skipped": st.partitions_skipped,
            "gang_calls": st.gang_calls,
            "gang_matched": st.gang_matched,
            "gang_rollbacks": st.gang_rollbacks,
            "preempt_calls": st.preempt_calls,
            "preempt_evictions": st.preempt_evictions,
            "backfilled": flux.queue.backfilled,
            "preempted": flux.queue.preempted,
            "gangs_placed": flux.queue.gangs_placed,
        }
    return TelemetryReport(
        rounds=wm.rounds,
        counters=dict(wm.counters),
        lock_stats=wm.lock_stats(),
        trackers=trackers,
        store_io=wm.store.stats.as_dict(),
        feedback=feedback,
        selectors=selectors,
        transport=tstats.as_dict() if tstats is not None else {},
        replicas=health_fn() if callable(health_fn) else {},
        trace=tracer.summary() if tracer is not None else {},
        scheduler=scheduler,
    )


def render_report(report: TelemetryReport) -> str:
    """Human-readable rendering of a telemetry snapshot."""
    lines = [f"workflow telemetry after {report.rounds} round(s)"]
    lines.append("  pipeline counters:")
    for key, value in report.counters.items():
        lines.append(f"    {key:22s} {value}")
    lines.append("  job trackers:")
    for name, t in report.trackers.items():
        lines.append(
            f"    {name:12s} completed={t['completed']:<4d} active={t['active']:<3d} "
            f"abandoned={t['abandoned']}"
        )
    io = report.store_io
    lines.append(
        f"  store I/O: {units.format_bytes(io['bytes_written'])} written / "
        f"{units.format_bytes(io['bytes_read'])} read in "
        f"{io['writes'] + io['reads']} ops"
    )
    if report.transport:
        tr = report.transport
        lat = tr["latency"]
        lines.append(
            f"  transport: {tr['requests']} requests, {tr['retries']} retries "
            f"({tr['timeouts']} timeouts), {tr['reconnects']} reconnects, "
            f"{tr['exhausted']} exhausted; "
            f"latency p50<={lat['p50_ms']:.2f} ms p99<={lat['p99_ms']:.2f} ms"
        )
        if tr.get("batched_requests"):
            lines.append(
                f"  pipelining: {tr['batched_requests']} batch round trips "
                f"carrying {tr['batched_keys']} keys "
                f"(deepest {tr['max_batch_keys']})"
            )
        if tr.get("coalesced_requests"):
            lines.append(
                f"  coalescing: {tr['coalesced_requests']} synthesized batches "
                f"absorbing {tr['coalesced_keys']} single-key ops"
            )
    if report.replicas:
        rh = report.replicas
        tr = report.transport
        lines.append(
            f"  replicas: {rh['up']}/{rh['nshards']} shards up at "
            f"replication {rh['replication']}; "
            f"{tr.get('failovers', 0)} failovers, "
            f"{tr.get('read_repairs', 0)} read repairs, "
            f"{tr.get('shard_down_events', 0)} down / "
            f"{tr.get('shard_up_events', 0)} up events"
        )
    if report.scheduler:
        sc = report.scheduler
        lines.append(
            f"  scheduler: {sc['policy']} "
            f"({'partitioned' if sc['partitioned'] else 'flat'}), "
            f"{sc['matched']}/{sc['calls']} matches, "
            f"{sc['vertices_visited']} vertices visited, "
            f"{sc['partitions_skipped']} partitions skipped; "
            f"{sc['backfilled']} backfilled, {sc['preempted']} preempted, "
            f"{sc['gangs_placed']} gangs placed"
        )
    if report.trace:
        tr = report.trace
        stages = ", ".join(
            f"{stage}={agg['total_ms']:.1f}ms/{agg['count']}"
            for stage, agg in sorted(tr["stages"].items())
        )
        lines.append(
            f"  trace: {tr['spans']} spans ({tr['dropped']} dropped); {stages}"
        )
    for row in report.feedback:
        lines.append(
            f"  feedback {row['manager']}: {row['iterations']} iterations, "
            f"{row['total_items']} items, mean {row['mean_seconds']*1e3:.1f} ms"
        )
    sel = report.selectors
    lines.append(
        f"  selectors: {sel['patch_candidates']} patch candidates "
        f"({sel['patch_selected']} selected), "
        f"{sel['frame_candidates']} frame candidates, "
        f"bin coverage {sel['frame_bin_coverage']:.1%}"
    )
    dedup = sel.get("patch_duplicates", 0) + sel.get("frame_duplicates", 0)
    eng = sel.get("patch_engine", {})
    if dedup or eng:
        lines.append(
            f"  selector engine: {eng.get('adds', 0)} index adds, "
            f"{eng.get('builds', 0)} builds, "
            f"{eng.get('distance_evals', 0)} distance evals, "
            f"{dedup} duplicate ingests deduped"
        )
    lk = report.lock_stats
    lines.append(
        f"  locking: {lk['acquisitions']} acquisitions, "
        f"{lk['contentions']} contentions"
    )
    return "\n".join(lines)
