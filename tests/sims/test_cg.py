"""Tests for the CG force field, engine, and online analysis."""

import numpy as np
import pytest

from repro.sims.cg.analysis import CGAnalysis, FrameCandidate, RDFResult
from repro.sims.cg.engine import CGConfig, CGSim
from repro.sims.cg.forcefield import BeadType, CGForceField, martini_like


class TestForceField:
    def test_martini_like_composition(self):
        ff = martini_like(n_lipid_types=4)
        assert ff.lipid_type_names() == ["L0", "L1", "L2", "L3"]
        assert ff.protein_type_names() == ["RAS", "RAF"]

    def test_eps_must_be_symmetric(self):
        types = [BeadType("A"), BeadType("B")]
        with pytest.raises(ValueError):
            CGForceField(types, eps=np.array([[1.0, 0.5], [0.9, 1.0]]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            CGForceField([BeadType("A"), BeadType("A")])

    def test_pair_potential_vanishes_at_cutoff(self):
        ff = martini_like()
        r = np.array([ff.cutoff, ff.cutoff * 1.5])
        U, F = ff.pair_energy_force(r, np.zeros(2, int), np.zeros(2, int))
        np.testing.assert_allclose(U, 0.0)
        np.testing.assert_allclose(F, 0.0)

    def test_pair_potential_repulsive_at_contact(self):
        ff = martini_like()
        U, F = ff.pair_energy_force(np.array([0.01]), np.zeros(1, int), np.zeros(1, int))
        assert U[0] > 0
        assert F[0] > 0  # pushes apart

    def test_force_is_minus_derivative(self):
        ff = martini_like()
        r = np.linspace(0.1, ff.cutoff - 0.01, 50)
        t = np.zeros_like(r, dtype=int)
        U, F = ff.pair_energy_force(r, t, t)
        dU = np.gradient(U, r)
        np.testing.assert_allclose(F, -dU, atol=0.5)  # FD tolerance

    def test_ss_update_changes_bond_stiffness(self):
        ff = martini_like()
        ff.update_secondary_structure("HHH")
        k_helix = ff.bond_stiffness()
        ff.update_secondary_structure("CCC")
        k_coil = ff.bond_stiffness()
        assert np.all(k_helix > k_coil)
        assert ff.version == 2

    def test_ss_update_rejects_bad_codes(self):
        ff = martini_like()
        with pytest.raises(ValueError):
            ff.update_secondary_structure("HXZ")


class TestCGSim:
    def test_random_system_composition(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=100, seed=0))
        assert sim.positions.shape == (106, 2)  # 100 lipids + 6 protein beads
        assert sim.protein_mask().sum() == 6
        assert sim.bonds.shape[0] == 5

    def test_positions_stay_in_box(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=50, seed=1))
        sim.step(50)
        assert np.all(sim.positions >= 0)
        assert np.all(sim.positions < sim.config.box)

    def test_deterministic(self):
        a = CGSim.random_system(config=CGConfig(n_lipids=50, seed=2))
        b = CGSim.random_system(config=CGConfig(n_lipids=50, seed=2))
        a.step(30)
        b.step(30)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_tree_and_brute_forces_agree(self):
        cfg_t = CGConfig(n_lipids=60, seed=3, neighbor_method="tree")
        cfg_b = CGConfig(n_lipids=60, seed=3, neighbor_method="brute")
        a = CGSim.random_system(config=cfg_t)
        b = CGSim.random_system(config=cfg_b)
        Fa, Ea = a.forces()
        Fb, Eb = b.forces()
        np.testing.assert_allclose(Fa, Fb, atol=1e-9)
        assert Ea == pytest.approx(Eb)

    def test_zero_temperature_descends_energy(self):
        cfg = CGConfig(n_lipids=80, temperature=0.0, seed=4)
        sim = CGSim.random_system(config=cfg)
        _, e0 = sim.forces()
        sim.step(100)
        _, e1 = sim.forces()
        assert e1 < e0

    def test_bonds_hold_protein_chain_together(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=40, seed=5))
        sim.step(300)
        prot = sim.positions[sim.protein_mask()]
        rel = sim._min_image(prot - prot[0])
        chain_span = np.linalg.norm(rel, axis=1).max()
        assert chain_span < 5.0  # chain never dissociates

    def test_feedback_changes_dynamics_parameters(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=20, seed=6))
        k_before = sim._bond_k.copy()
        sim.apply_feedback("CCCCCC")
        assert not np.array_equal(k_before, sim._bond_k)

    def test_checkpoint_restore_resumes_exactly(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=30, seed=7))
        sim.step(20)
        state = sim.state_dict()
        sim.step(20)
        after = sim.positions.copy()
        fresh = CGSim.random_system(config=CGConfig(n_lipids=30, seed=7))
        fresh.load_state_dict(state)
        fresh.step(20)
        np.testing.assert_array_equal(fresh.positions, after)
        assert fresh.time == sim.time

    def test_checkpoint_shape_mismatch(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=30, seed=8))
        other = CGSim.random_system(config=CGConfig(n_lipids=40, seed=8))
        with pytest.raises(ValueError):
            sim.load_state_dict(other.state_dict())

    def test_validation(self):
        with pytest.raises(ValueError):
            CGConfig(box=-1)
        with pytest.raises(ValueError):
            CGConfig(neighbor_method="magic")


class TestCGAnalysis:
    @pytest.fixture
    def sim(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=200, seed=9))
        sim.step(50)
        return sim

    def test_rdf_shape(self, sim):
        an = CGAnalysis(sim, sim_id="cg000", rdf_bins=16)
        rdf = an.compute_rdf()
        assert rdf.g.shape == (4, 16)
        assert rdf.edges.shape == (17,)

    def test_rdf_normalization_far_field(self, sim):
        # Far from the protein, g(r) should hover around 1.
        an = CGAnalysis(sim, sim_id="cg000", rdf_rmax=5.0, rdf_bins=20)
        rdf = an.compute_rdf()
        outer_bins = rdf.g[:, -5:]
        assert 0.3 < outer_bins.mean() < 2.0

    def test_rdf_bytes_roundtrip(self, sim):
        an = CGAnalysis(sim, sim_id="cg042")
        rdf = an.compute_rdf()
        back = RDFResult.from_bytes(rdf.to_bytes())
        assert back.sim_id == "cg042"
        assert back.time == rdf.time
        np.testing.assert_array_equal(back.g, rdf.g)

    def test_frame_encoding_is_3d(self, sim):
        an = CGAnalysis(sim, sim_id="cg000")
        enc = an.encode_frame()
        assert enc.shape == (3,)
        sep, angle, rg = enc
        assert sep >= 0
        assert 0 <= angle < np.pi
        assert rg > 0

    def test_frame_candidate_ids_increment(self, sim):
        an = CGAnalysis(sim, sim_id="cg007")
        c0 = an.frame_candidate()
        c1 = an.frame_candidate()
        assert c0.frame_id == "cg007/f000000"
        assert c1.frame_id == "cg007/f000001"

    def test_candidate_json_roundtrip(self, sim):
        an = CGAnalysis(sim, sim_id="cg007")
        cand = an.frame_candidate()
        back = FrameCandidate.from_json(cand.to_json())
        assert back.frame_id == cand.frame_id
        np.testing.assert_allclose(back.encoding, cand.encoding)

    def test_analyze_bundle(self, sim):
        out = CGAnalysis(sim, sim_id="x").analyze()
        assert isinstance(out["rdf"], RDFResult)
        assert isinstance(out["candidate"], FrameCandidate)

    def test_encoding_needs_protein(self):
        ff = martini_like()
        sim = CGSim(
            np.random.default_rng(0).random((10, 2)) * 5,
            np.zeros(10, dtype=int),
            ff,
            CGConfig(box=5.0, n_lipids=10),
        )
        with pytest.raises(ValueError):
            CGAnalysis(sim, "x").encode_frame()
