"""Particle-system containers passed between the mapping tools and engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.datastore import serial

__all__ = ["CGSystem", "AASystem"]


@dataclass(frozen=True)
class CGSystem:
    """A ready-to-run CG system (output of createsim)."""

    positions: np.ndarray  # (n, 2)
    type_ids: np.ndarray  # (n,)
    bonds: np.ndarray  # (m, 3) of (i, j, rest_length)
    box: float
    source_patch: str = ""  # patch id this system was cut from

    @property
    def nparticles(self) -> int:
        return self.positions.shape[0]

    def to_bytes(self) -> bytes:
        return serial.npz_to_bytes(
            {
                "positions": self.positions,
                "type_ids": self.type_ids,
                "bonds": self.bonds,
                "box": np.array([self.box]),
                "source_patch": np.frombuffer(self.source_patch.encode(), dtype=np.uint8),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CGSystem":
        arrays = serial.bytes_to_npz(data)
        return cls(
            positions=arrays["positions"],
            type_ids=arrays["type_ids"],
            bonds=arrays["bonds"],
            box=float(arrays["box"][0]),
            source_patch=arrays["source_patch"].tobytes().decode(),
        )


@dataclass(frozen=True)
class AASystem:
    """A ready-to-run AA system (output of backmapping)."""

    positions: np.ndarray  # (n, 2)
    bonds: np.ndarray  # (m, 3)
    backbone: np.ndarray  # chain-ordered backbone atom indices
    box: float
    source_frame: str = ""  # CG frame id this system was backmapped from

    @property
    def natoms(self) -> int:
        return self.positions.shape[0]

    def to_bytes(self) -> bytes:
        return serial.npz_to_bytes(
            {
                "positions": self.positions,
                "bonds": self.bonds,
                "backbone": self.backbone,
                "box": np.array([self.box]),
                "source_frame": np.frombuffer(self.source_frame.encode(), dtype=np.uint8),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "AASystem":
        arrays = serial.bytes_to_npz(data)
        return cls(
            positions=arrays["positions"],
            bonds=arrays["bonds"],
            backbone=arrays["backbone"],
            box=float(arrays["box"][0]),
            source_frame=arrays["source_frame"].tobytes().decode(),
        )
