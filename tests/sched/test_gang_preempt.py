"""Queue-level tests for gang co-placement and priority preemption.

The matcher-level all-or-nothing invariants live in
``test_matcher_properties.py``; these tests cover the queue manager's
side of the contract — gang heads wait for their whole ensemble, gang
members never backfill individually, the BACKFILL policy auto-enables
the window, and preempted jobs are requeued directly behind the head
and restart from the beginning (stale completion events are dropped).
"""

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.queue import DEFAULT_BACKFILL_WINDOW, QueueManager
from repro.sched.resources import summit_like


def make_queue(policy=MatchPolicy.GANG, nnodes=2, **kwargs):
    matcher = Matcher(summit_like(nnodes), policy)
    return QueueManager(matcher, **kwargs)


class TestGangPlacement:
    def test_gang_starts_together(self):
        q = make_queue(nnodes=3)
        members = [JobRecord(spec=JobSpec(name=f"m{i}", ncores=4, ngpus=1,
                                          gang_id="ens"))
                   for i in range(3)]
        for rec in members:
            q.submit(rec)
        report = q.cycle(now=0.0, budget=100.0)
        assert len(report.started) == 3
        assert all(r.state is JobState.RUNNING for r in members)
        assert q.gangs_placed == 1
        assert q.matcher.stats.gang_matched == 1

    def test_gang_waits_for_members_still_in_inbox(self):
        q = make_queue()
        first = JobRecord(spec=JobSpec(name="m0", ncores=1, gang_id="ens"))
        second = JobRecord(spec=JobSpec(name="m1", ncores=1, gang_id="ens"))
        q.pending.append(first)   # already ingested
        q.submit(second)          # still in the inbox
        # Budget too small to ingest the second member: the head must
        # defer rather than start a partial ensemble.
        report = q.cycle(now=0.0, budget=0.1)
        assert report.started == []
        assert first.state is JobState.PENDING
        # Once the whole gang is ingested, it places atomically.
        report = q.cycle(now=1.0, budget=100.0)
        assert len(report.started) == 2
        assert q.gangs_placed == 1

    def test_infeasible_gang_never_partially_starts(self):
        q = make_queue(nnodes=2)
        members = [JobRecord(spec=JobSpec(name=f"m{i}", exclusive=True,
                                          gang_id="big"))
                   for i in range(3)]  # needs 3 vacant nodes, machine has 2
        for rec in members:
            q.submit(rec)
        report = q.cycle(now=0.0, budget=100.0)
        assert report.started == []
        assert all(r.state is JobState.PENDING for r in members)
        g = q.matcher.graph
        assert g.free_cores == g.total_cores  # rollback left nothing claimed
        assert q.matcher.stats.gang_rollbacks == 1

    def test_gang_members_do_not_backfill(self):
        q = make_queue(nnodes=2, backfill_window=4)
        blocked = JobRecord(spec=JobSpec(name="huge", nnodes=5, ncores=24))
        gang = [JobRecord(spec=JobSpec(name=f"m{i}", ncores=1, gang_id="ens"))
                for i in range(2)]
        loner = JobRecord(spec=JobSpec(name="solo", ncores=1))
        q.submit(blocked)
        for rec in gang:
            q.submit(rec)
        q.submit(loner)
        report = q.cycle(now=0.0, budget=100.0)
        # Only the non-gang job jumps the blocked head.
        assert report.started == [loner]
        assert all(r.state is JobState.PENDING for r in gang)
        assert q.backfilled == 1

    def test_gang_id_without_gang_policy_places_individually(self):
        # The gang_id tag only binds under the GANG policy; other
        # policies treat members as independent jobs.
        q = make_queue(policy=MatchPolicy.FIRST_MATCH)
        members = [JobRecord(spec=JobSpec(name=f"m{i}", ncores=1, gang_id="ens"))
                   for i in range(2)]
        q.pending.append(members[0])
        q.submit(members[1])  # inbox occupancy would stall a GANG head
        report = q.cycle(now=0.0, budget=100.0)
        assert len(report.started) == 2
        assert q.gangs_placed == 0

    def test_record_serializes_gang_and_priority(self):
        rec = JobRecord(spec=JobSpec(name="m", ncores=1, gang_id="ens", priority=3))
        row = rec.to_dict()
        assert row["gang_id"] == "ens"
        assert row["priority"] == 3


class TestBackfillPolicyKnob:
    def test_backfill_policy_auto_enables_window(self):
        q = make_queue(policy=MatchPolicy.BACKFILL)
        assert q.backfill_window == DEFAULT_BACKFILL_WINDOW

    def test_explicit_window_wins_over_default(self):
        q = make_queue(policy=MatchPolicy.BACKFILL, backfill_window=2)
        assert q.backfill_window == 2

    def test_other_policies_stay_strict_fcfs(self):
        q = make_queue(policy=MatchPolicy.FIRST_MATCH)
        assert q.backfill_window == 0

    def test_backfill_policy_backfills_without_explicit_window(self):
        q = make_queue(policy=MatchPolicy.BACKFILL)
        q.submit(JobRecord(spec=JobSpec(name="huge", nnodes=5, ncores=24)))
        small = JobRecord(spec=JobSpec(name="small", ncores=1))
        q.submit(small)
        report = q.cycle(now=0.0, budget=100.0)
        assert report.started == [small]
        assert q.backfilled == 1


class TestPreemption:
    def test_higher_priority_head_evicts_lowest_priority(self):
        q = make_queue(policy=MatchPolicy.FIRST_MATCH, nnodes=1, preemption=True)
        low = JobRecord(spec=JobSpec(name="low", ncores=44, priority=0))
        q.submit(low)
        q.cycle(now=0.0, budget=100.0)
        assert low.state is JobState.RUNNING

        high = JobRecord(spec=JobSpec(name="high", ncores=1, priority=2))
        q.submit(high)
        report = q.cycle(now=1.0, budget=100.0)
        assert high.state is JobState.RUNNING
        assert low.state is JobState.PENDING
        assert low.allocation is None and low.start_time is None
        assert report.preempted == [low]
        assert q.preempted == 1
        # The victim is requeued at the front: it restarts as soon as
        # capacity allows (here, once the preemptor finishes).
        assert q.pending[0] is low
        q.finish(high, now=2.0)
        report = q.cycle(now=3.0, budget=100.0)
        assert low in report.started

    def test_equal_priority_never_preempts(self):
        q = make_queue(policy=MatchPolicy.FIRST_MATCH, nnodes=1, preemption=True)
        first = JobRecord(spec=JobSpec(name="a", ncores=44, priority=1))
        q.submit(first)
        q.cycle(now=0.0, budget=100.0)
        rival = JobRecord(spec=JobSpec(name="b", ncores=1, priority=1))
        q.submit(rival)
        q.cycle(now=1.0, budget=100.0)
        assert first.state is JobState.RUNNING
        assert rival.state is JobState.PENDING
        assert q.preempted == 0

    def test_preemption_is_off_by_default(self):
        q = make_queue(policy=MatchPolicy.FIRST_MATCH, nnodes=1)
        q.submit(JobRecord(spec=JobSpec(name="low", ncores=44, priority=0)))
        q.cycle(now=0.0, budget=100.0)
        blocked = JobRecord(spec=JobSpec(name="high", ncores=1, priority=5))
        q.submit(blocked)
        q.cycle(now=1.0, budget=100.0)
        assert blocked.state is JobState.PENDING
        assert q.preempted == 0

    def test_preempted_job_restarts_from_the_beginning(self):
        """End-to-end through FluxInstance: the evicted run's scheduled
        completion is stale and must not complete the restarted run
        early — the restart serves its full duration again."""
        flux = FluxInstance(summit_like(1), policy=MatchPolicy.FIRST_MATCH,
                            preemption=True)
        done = []
        low = flux.submit(JobSpec(name="low", ncores=44, priority=0, duration=12.0),
                          on_complete=lambda r: done.append((r.spec.name, r.end_time)))
        flux.loop.run_until(6.0)
        assert low.state is JobState.RUNNING and low.start_time == 5.0

        high = flux.submit(JobSpec(name="high", ncores=1, priority=1, duration=4.0),
                           on_complete=lambda r: done.append((r.spec.name, r.end_time)))
        flux.loop.run_until(30.0)
        assert high.state is JobState.COMPLETED
        assert low.state is JobState.COMPLETED
        # high preempted low at t=10 and finished at 14; low restarted at
        # t=15 and served its full 12s again. The stale completion event
        # from the first run (t=5+12=17) was dropped, not honored.
        assert ("high", 14.0) in done
        assert ("low", 27.0) in done
        assert low.start_time == 15.0
