"""Tests for WM lock instrumentation under concurrent analysis threads."""

from tests.core.test_wm import make_wm


class TestLockStats:
    def test_lock_stats_exposed(self):
        wm, _ = make_wm()
        stats = wm.lock_stats()
        assert set(stats) == {"acquisitions", "contentions", "failed_tries"}
        assert stats["acquisitions"] == 0

    def test_acquisitions_counted_during_rounds(self):
        wm, _ = make_wm()
        wm.round()
        stats = wm.lock_stats()
        # Task 1 encodes + ingests, selections pop, CG analysis pushes
        # frames — every path goes through the guard.
        assert stats["acquisitions"] > 3

    def test_concurrent_adapters_still_consistent(self):
        # With more worker threads, analysis jobs contend on the guard;
        # counters must still be consistent (no lost updates).
        from repro.sched.adapter import ThreadAdapter

        wm, _ = make_wm()
        wm.adapter = ThreadAdapter(max_workers=4)
        for tracker in wm.trackers.values():
            tracker.adapter = wm.adapter
        wm.run(nrounds=2)
        c = wm.counters
        assert c["frames_seen"] == wm.frame_selector.ncandidates() + c["frames_selected"]
