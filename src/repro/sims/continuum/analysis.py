"""Continuum-scale analysis: lipid fingerprints around proteins.

The original MuMMI campaign's scientific output was "new insights into
RAS protein dynamics on the PM and the influence of lipids and lipid
fingerprints" (§3). A *fingerprint* is the local lipid environment of a
protein: per-type composition near the protein, and how enrichment
decays with distance. These are the quantities the CG→continuum
feedback loop is trying to make self-consistent, so the analysis
doubles as a verification probe for the feedback tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sims.continuum.snapshot import Snapshot

__all__ = ["Fingerprint", "fingerprint_at", "snapshot_fingerprints", "enrichment_profile"]


@dataclass(frozen=True)
class Fingerprint:
    """The lipid environment of one protein at one instant."""

    protein_index: int
    protein_state: int
    composition: np.ndarray  # (n_types,) local density fractions
    enrichment: np.ndarray  # (n_types,) local / bulk density ratio

    def dominant_type(self) -> int:
        return int(np.argmax(self.composition))

    def most_enriched_type(self) -> int:
        return int(np.argmax(self.enrichment))


def _local_mask(snapshot: Snapshot, center: np.ndarray, radius_um: float) -> np.ndarray:
    """Boolean grid mask of cells within ``radius_um`` of ``center``."""
    grid = snapshot.grid_size
    dx = snapshot.box / grid
    coords = (np.arange(grid) + 0.5) * dx
    d0 = coords[:, None] - center[0]
    d1 = coords[None, :] - center[1]
    d0 -= snapshot.box * np.round(d0 / snapshot.box)
    d1 -= snapshot.box * np.round(d1 / snapshot.box)
    return d0**2 + d1**2 <= radius_um**2


def fingerprint_at(
    snapshot: Snapshot, protein_index: int, radius_um: float = 0.05
) -> Fingerprint:
    """Fingerprint of one protein from the inner-leaflet densities."""
    if not 0 <= protein_index < snapshot.protein_positions.shape[0]:
        raise IndexError(f"no protein {protein_index}")
    center = snapshot.protein_positions[protein_index]
    mask = _local_mask(snapshot, center, radius_um)
    if not mask.any():
        raise ValueError("radius too small for the grid resolution")
    local = snapshot.inner[:, mask].mean(axis=1)
    bulk = snapshot.inner.reshape(snapshot.inner.shape[0], -1).mean(axis=1)
    total = local.sum()
    composition = local / total if total > 0 else np.zeros_like(local)
    with np.errstate(divide="ignore", invalid="ignore"):
        enrichment = np.where(bulk > 0, local / bulk, 0.0)
    return Fingerprint(
        protein_index=protein_index,
        protein_state=int(snapshot.protein_states[protein_index]),
        composition=composition,
        enrichment=enrichment,
    )


def snapshot_fingerprints(snapshot: Snapshot, radius_um: float = 0.05) -> List[Fingerprint]:
    """Fingerprints of every protein in a snapshot."""
    return [
        fingerprint_at(snapshot, i, radius_um)
        for i in range(snapshot.protein_positions.shape[0])
    ]


def enrichment_profile(
    snapshot: Snapshot,
    protein_index: int,
    radii_um: Optional[np.ndarray] = None,
) -> Dict[str, np.ndarray]:
    """Radial enrichment of each lipid type around one protein.

    Returns ``{"radii": (m,), "enrichment": (n_types, m)}`` where each
    column is the local/bulk ratio inside annulus ``(r[i-1], r[i]]``.
    This is the continuum-side analogue of the CG RDFs the feedback
    aggregates — the probe used to verify that feedback actually moved
    the macro model.
    """
    if radii_um is None:
        radii_um = np.linspace(0.02, 0.2, 8)
    radii_um = np.asarray(radii_um, dtype=float)
    center = snapshot.protein_positions[protein_index]
    bulk = snapshot.inner.reshape(snapshot.inner.shape[0], -1).mean(axis=1)
    prev = np.zeros((snapshot.grid_size, snapshot.grid_size), dtype=bool)
    out = np.zeros((snapshot.inner.shape[0], radii_um.size))
    for i, r in enumerate(radii_um):
        mask = _local_mask(snapshot, center, r)
        ring = mask & ~prev
        prev = mask
        if ring.any():
            local = snapshot.inner[:, ring].mean(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                out[:, i] = np.where(bulk > 0, local / bulk, 0.0)
    return {"radii": radii_um, "enrichment": out}
