"""Tests for the logging helper and miscellaneous util edges."""

import logging

from repro.util.logging import get_logger


class TestGetLogger:
    def test_namespaced_under_repro(self):
        logger = get_logger("sched")
        assert logger.name == "repro.sched"

    def test_existing_repro_prefix_kept(self):
        logger = get_logger("repro.core.wm")
        assert logger.name == "repro.core.wm"

    def test_handler_attached_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

    def test_messages_propagate_to_root_handler(self, caplog):
        logger = get_logger("test-module")
        with caplog.at_level(logging.WARNING, logger="repro"):
            logger.warning("something odd")
        assert "something odd" in caplog.text
