"""Hierarchical resource graph: cluster → node → socket/core + GPU.

The matcher's cost model depends on the graph's shape — "R essentially
traverses the resource graph in its entirety for each job" (§5.2) — so
nodes expose both cheap feasibility checks (free counts) and explicit
per-resource enumeration (which is what makes exhaustive ranking
expensive and is counted in :class:`~repro.sched.matcher.MatchStats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Node", "Allocation", "ResourceGraph", "summit_like", "lassen_like"]


class ResourceError(RuntimeError):
    """Raised on infeasible or inconsistent resource operations."""


@dataclass(frozen=True)
class Allocation:
    """A concrete placement: per-node core and GPU ids.

    ``items`` maps node id -> (core ids, gpu ids). Allocations are
    immutable; releasing goes through :meth:`ResourceGraph.release`.
    """

    items: Tuple[Tuple[int, Tuple[int, ...], Tuple[int, ...]], ...]

    @property
    def nnodes(self) -> int:
        return len(self.items)

    @property
    def ncores(self) -> int:
        return sum(len(cores) for _, cores, _ in self.items)

    @property
    def ngpus(self) -> int:
        return sum(len(gpus) for _, _, gpus in self.items)

    def node_ids(self) -> List[int]:
        return [nid for nid, _, _ in self.items]


class Node:
    """One compute node: ``ncores`` CPU cores and ``ngpus`` GPUs.

    Cores are split evenly across ``nsockets`` sockets; core ids are
    global within the node (0..ncores-1), socket s owning the contiguous
    block ``[s*ncores/nsockets, (s+1)*ncores/nsockets)``. GPUs are
    associated with the socket ``gpu_id * nsockets // ngpus`` — close
    enough to Summit's topology to express the paper's affinity rules
    (simulation cores share cache with their GPU; analysis cores sit
    nearest the PCIe bus, i.e. lowest ids on the GPU's socket).
    """

    __slots__ = ("node_id", "ncores", "ngpus", "nsockets", "_core_free", "_gpu_free",
                 "free_cores", "free_gpus", "drained")

    def __init__(self, node_id: int, ncores: int, ngpus: int, nsockets: int = 2) -> None:
        if ncores < 1 or ngpus < 0 or nsockets < 1 or ncores % nsockets:
            raise ResourceError(
                f"bad node shape: ncores={ncores}, ngpus={ngpus}, nsockets={nsockets}"
            )
        self.node_id = node_id
        self.ncores = ncores
        self.ngpus = ngpus
        self.nsockets = nsockets
        self._core_free = [True] * ncores
        self._gpu_free = [True] * ngpus
        self.free_cores = ncores
        self.free_gpus = ngpus
        self.drained = False

    # --- feasibility (cheap, count-based) -------------------------------

    def can_fit(self, ncores: int, ngpus: int) -> bool:
        return (not self.drained) and self.free_cores >= ncores and self.free_gpus >= ngpus

    @property
    def vacant(self) -> bool:
        return self.free_cores == self.ncores and self.free_gpus == self.ngpus

    # --- enumeration (explicit, counted by the matcher) -------------------

    def subtree_size(self) -> int:
        """Vertices under this node: sockets + cores + GPUs + itself."""
        return 1 + self.nsockets + self.ncores + self.ngpus

    def free_core_ids(self) -> List[int]:
        return [i for i, free in enumerate(self._core_free) if free]

    def free_gpu_ids(self) -> List[int]:
        return [i for i, free in enumerate(self._gpu_free) if free]

    def socket_of_core(self, core_id: int) -> int:
        return core_id // (self.ncores // self.nsockets)

    def socket_of_gpu(self, gpu_id: int) -> int:
        return gpu_id * self.nsockets // max(self.ngpus, 1)

    # --- claim/release ------------------------------------------------------

    def pick(self, ncores: int, ngpus: int) -> Tuple[List[int], List[int]]:
        """Choose lowest-id free cores/GPUs with GPU-socket affinity.

        When GPUs are requested, cores are taken from the first GPU's
        socket when possible (the "share cache with the simulation" rule);
        remaining demand falls back to any free core.
        """
        if not self.can_fit(ncores, ngpus):
            raise ResourceError(f"node {self.node_id} cannot fit {ncores}c/{ngpus}g")
        gpu_ids = self.free_gpu_ids()[:ngpus]
        core_ids: List[int] = []
        if gpu_ids:
            want_socket = self.socket_of_gpu(gpu_ids[0])
            same = [c for c in self.free_core_ids() if self.socket_of_core(c) == want_socket]
            core_ids = same[:ncores]
        if len(core_ids) < ncores:
            chosen = set(core_ids)
            for c in self.free_core_ids():
                if len(core_ids) >= ncores:
                    break
                if c not in chosen:
                    core_ids.append(c)
                    chosen.add(c)
        return core_ids, gpu_ids

    def claim(self, core_ids: Sequence[int], gpu_ids: Sequence[int]) -> None:
        for c in core_ids:
            if not self._core_free[c]:
                raise ResourceError(f"core {c} on node {self.node_id} already claimed")
        for g in gpu_ids:
            if not self._gpu_free[g]:
                raise ResourceError(f"gpu {g} on node {self.node_id} already claimed")
        for c in core_ids:
            self._core_free[c] = False
        for g in gpu_ids:
            self._gpu_free[g] = False
        self.free_cores -= len(core_ids)
        self.free_gpus -= len(gpu_ids)

    def release(self, core_ids: Sequence[int], gpu_ids: Sequence[int]) -> None:
        for c in core_ids:
            if self._core_free[c]:
                raise ResourceError(f"core {c} on node {self.node_id} double-released")
        for g in gpu_ids:
            if self._gpu_free[g]:
                raise ResourceError(f"gpu {g} on node {self.node_id} double-released")
        for c in core_ids:
            self._core_free[c] = True
        for g in gpu_ids:
            self._gpu_free[g] = True
        self.free_cores += len(core_ids)
        self.free_gpus += len(gpu_ids)


class ResourceGraph:
    """The cluster: an ordered list of nodes plus aggregate accounting.

    Per-node free counts are mirrored in NumPy arrays so the matcher can
    run feasibility scans vectorized at 4000-node scale. The arrays are
    maintained only by the graph-level operations (:meth:`claim`,
    :meth:`release`, :meth:`drain`); mutating a :class:`Node` directly
    bypasses them and is unsupported.

    On top of the flat arrays the graph keeps a *partition index*:
    nodes are grouped into fixed-size partitions (``partition_size``)
    and each partition carries a max-free-core/max-free-GPU watermark
    plus a count of vacant (exclusive-feasible) nodes. A request that
    exceeds a partition's watermark cannot place anywhere inside it, so
    the partitioned scan paths (:meth:`first_feasible_partitioned`,
    :meth:`feasible_ids_partitioned`) skip the whole partition at the
    cost of one summary check — what keeps first-match sublinear at
    40k-node scale. Summaries are refreshed incrementally: claim/release
    touch only the partitions of the nodes involved (O(partition_size)
    per touched partition, vectorized).
    """

    def __init__(self, nnodes: int, cores_per_node: int, gpus_per_node: int,
                 nsockets: int = 2, partition_size: int = 256) -> None:
        if nnodes < 1:
            raise ResourceError("graph needs at least one node")
        if partition_size < 1:
            raise ResourceError("partition_size must be >= 1")
        self.nodes = [Node(i, cores_per_node, gpus_per_node, nsockets) for i in range(nnodes)]
        self.cores_per_node = cores_per_node
        self.gpus_per_node = gpus_per_node
        self._fc = np.full(nnodes, cores_per_node, dtype=np.int32)
        self._fg = np.full(nnodes, gpus_per_node, dtype=np.int32)
        self._drained_mask = np.zeros(nnodes, dtype=bool)
        self.node_subtree_size = self.nodes[0].subtree_size()
        # --- partition index -------------------------------------------
        self.partition_size = partition_size
        self.npartitions = (nnodes + partition_size - 1) // partition_size
        self._part_max_fc = np.full(self.npartitions, cores_per_node, dtype=np.int32)
        self._part_max_fg = np.full(self.npartitions, gpus_per_node, dtype=np.int32)
        # Vacant (fully free, undrained) nodes per partition: exclusive
        # requests can only land on these.
        self._part_nvacant = np.array(
            [self._partition_bounds(p)[1] - self._partition_bounds(p)[0]
             for p in range(self.npartitions)], dtype=np.int32)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    # --- aggregate accounting (used by the occupancy profiler) -----------------

    @property
    def total_cores(self) -> int:
        return len(self.nodes) * self.cores_per_node

    @property
    def total_gpus(self) -> int:
        return len(self.nodes) * self.gpus_per_node

    @property
    def free_cores(self) -> int:
        return sum(n.free_cores for n in self.nodes if not n.drained)

    @property
    def free_gpus(self) -> int:
        return sum(n.free_gpus for n in self.nodes if not n.drained)

    @property
    def used_cores(self) -> int:
        return self.total_cores - sum(n.free_cores for n in self.nodes)

    @property
    def used_gpus(self) -> int:
        return self.total_gpus - sum(n.free_gpus for n in self.nodes)

    def total_vertices(self) -> int:
        """All vertices in the graph (the matcher's worst-case traversal)."""
        return 1 + sum(n.subtree_size() for n in self.nodes)

    # --- partition index maintenance ------------------------------------

    def partition_of(self, node_id: int) -> int:
        return node_id // self.partition_size

    def _partition_bounds(self, p: int) -> Tuple[int, int]:
        lo = p * self.partition_size
        return lo, min(lo + self.partition_size, len(self.nodes))

    def _refresh_partition(self, p: int) -> None:
        """Recompute one partition's summaries from the flat arrays.

        Drained nodes count as having -1 free of everything so they can
        never satisfy a watermark (or look vacant).
        """
        lo, hi = self._partition_bounds(p)
        drained = self._drained_mask[lo:hi]
        fc = np.where(drained, -1, self._fc[lo:hi])
        fg = np.where(drained, -1, self._fg[lo:hi])
        self._part_max_fc[p] = fc.max()
        self._part_max_fg[p] = fg.max()
        self._part_nvacant[p] = np.count_nonzero(
            (fc == self.cores_per_node) & (fg == self.gpus_per_node)
        )

    def _refresh_partitions_of(self, node_ids) -> None:
        for p in {nid // self.partition_size for nid in node_ids}:
            self._refresh_partition(p)

    def partition_feasible(self, p: int, ncores: int, ngpus: int,
                           exclusive: bool = False) -> bool:
        """Watermark check: could *any* node in partition ``p`` host one
        unit of the request? False means the whole partition is safely
        skippable."""
        if exclusive:
            return bool(self._part_nvacant[p] > 0
                        and self.cores_per_node >= ncores
                        and self.gpus_per_node >= ngpus)
        return bool(self._part_max_fc[p] >= ncores and self._part_max_fg[p] >= ngpus)

    # --- allocation lifecycle ------------------------------------------------

    def claim(self, placement: Sequence[Tuple[int, Sequence[int], Sequence[int]]]) -> Allocation:
        """Claim an explicit placement; all-or-nothing."""
        claimed: List[Tuple[int, Sequence[int], Sequence[int]]] = []
        try:
            for node_id, cores, gpus in placement:
                self.nodes[node_id].claim(cores, gpus)
                claimed.append((node_id, cores, gpus))
        except ResourceError:
            for node_id, cores, gpus in claimed:
                self.nodes[node_id].release(cores, gpus)
            raise
        for node_id, cores, gpus in placement:
            self._fc[node_id] -= len(cores)
            self._fg[node_id] -= len(gpus)
        self._refresh_partitions_of(nid for nid, _, _ in placement)
        return Allocation(
            items=tuple((nid, tuple(c), tuple(g)) for nid, c, g in placement)
        )

    def release(self, alloc: Allocation) -> None:
        for node_id, cores, gpus in alloc.items:
            self.nodes[node_id].release(cores, gpus)
            self._fc[node_id] += len(cores)
            self._fg[node_id] += len(gpus)
        self._refresh_partitions_of(nid for nid, _, _ in alloc.items)

    # --- vectorized feasibility (the matcher's fast path) ------------------

    def feasible_mask(self, ncores: int, ngpus: int, exclusive: bool = False) -> np.ndarray:
        """Boolean mask of nodes that can host one unit of the request.

        Exclusive mode means "the whole node", but the node must still
        be *big enough*: a vacant node with fewer cores/GPUs than the
        per-node request would silently under-provision the job, so it
        is not feasible.
        """
        if exclusive:
            if ncores > self.cores_per_node or ngpus > self.gpus_per_node:
                return np.zeros(len(self.nodes), dtype=bool)
            mask = (self._fc == self.cores_per_node) & (self._fg == self.gpus_per_node)
        else:
            mask = (self._fc >= ncores) & (self._fg >= ngpus)
        return mask & ~self._drained_mask

    def feasible_ids(self, ncores: int, ngpus: int, exclusive: bool = False) -> np.ndarray:
        """Feasible node ids in ascending (low-id-first) order."""
        return np.nonzero(self.feasible_mask(ncores, ngpus, exclusive))[0]

    def first_feasible(
        self,
        start: int,
        need: int,
        ncores: int,
        ngpus: int,
        exclusive: bool = False,
        chunk: int = 64,
    ) -> Tuple[List[int], int]:
        """First ``need`` feasible nodes scanning circularly from ``start``.

        Returns (node ids, nodes scanned). The scan proceeds in chunks
        and stops as soon as enough nodes are found, which is exactly
        what makes the first-match policy cheap on a lightly loaded
        machine.
        """
        n = len(self.nodes)
        if exclusive and (ncores > self.cores_per_node or ngpus > self.gpus_per_node):
            return [], 0
        found: List[int] = []
        scanned = 0
        pos = start % n
        while scanned < n and len(found) < need:
            width = min(chunk, n - scanned)
            idx = (pos + np.arange(width)) % n
            if exclusive:
                ok = (self._fc[idx] == self.cores_per_node) & (
                    self._fg[idx] == self.gpus_per_node
                )
            else:
                ok = (self._fc[idx] >= ncores) & (self._fg[idx] >= ngpus)
            ok &= ~self._drained_mask[idx]
            hits = idx[ok]
            for h in hits:
                found.append(int(h))
                if len(found) >= need:
                    # Count only the positions actually inspected up to the hit.
                    offset = int(np.nonzero(idx == h)[0][0]) + 1
                    return found, scanned + offset
            scanned += width
            pos = (pos + width) % n
        return found, scanned

    # --- partitioned feasibility (the 40k-node fast path) ------------------

    def first_feasible_partitioned(
        self,
        start: int,
        need: int,
        ncores: int,
        ngpus: int,
        exclusive: bool = False,
    ) -> Tuple[List[int], int, int]:
        """Like :meth:`first_feasible`, but watermark-skipping.

        Walks the same circular node order from ``start`` but in
        partition-aligned segments: a segment whose partition watermark
        cannot satisfy the request is skipped wholesale (its nodes are
        never inspected). Returns ``(node ids, nodes scanned,
        partitions skipped)`` — the ids are identical to what the flat
        scan would return, because the skip rule only drops partitions
        with no feasible node at all.
        """
        n = len(self.nodes)
        if exclusive and (ncores > self.cores_per_node or ngpus > self.gpus_per_node):
            return [], 0, 0
        psize = self.partition_size
        start %= n
        found: List[int] = []
        scanned = 0
        skipped = 0
        # Circular walk [start, n) ++ [0, start), cut at partition edges.
        pos, end = start, start + n
        while pos < end and len(found) < need:
            lo = pos % n
            p = lo // psize
            seg_hi = min(min((p + 1) * psize, n) - lo, end - pos)
            pos += seg_hi
            hi = lo + seg_hi
            if not self.partition_feasible(p, ncores, ngpus, exclusive):
                skipped += 1
                continue
            if exclusive:
                ok = (self._fc[lo:hi] == self.cores_per_node) & (
                    self._fg[lo:hi] == self.gpus_per_node
                )
            else:
                ok = (self._fc[lo:hi] >= ncores) & (self._fg[lo:hi] >= ngpus)
            ok &= ~self._drained_mask[lo:hi]
            for h in np.nonzero(ok)[0]:
                found.append(lo + int(h))
                if len(found) >= need:
                    return found, scanned + int(h) + 1, skipped
            scanned += hi - lo
        return found, scanned, skipped

    def feasible_ids_partitioned(
        self, ncores: int, ngpus: int, exclusive: bool = False
    ) -> Tuple[np.ndarray, int, int]:
        """Ascending feasible node ids, examining only partitions whose
        watermark can satisfy the request.

        Returns ``(ids, nodes examined, partitions skipped)``; the ids
        equal :meth:`feasible_ids` output exactly.
        """
        if exclusive and (ncores > self.cores_per_node or ngpus > self.gpus_per_node):
            return np.empty(0, dtype=np.int64), 0, 0
        chunks: List[np.ndarray] = []
        examined = 0
        skipped = 0
        for p in range(self.npartitions):
            if not self.partition_feasible(p, ncores, ngpus, exclusive):
                skipped += 1
                continue
            lo, hi = self._partition_bounds(p)
            if exclusive:
                ok = (self._fc[lo:hi] == self.cores_per_node) & (
                    self._fg[lo:hi] == self.gpus_per_node
                )
            else:
                ok = (self._fc[lo:hi] >= ncores) & (self._fg[lo:hi] >= ngpus)
            ok &= ~self._drained_mask[lo:hi]
            chunks.append(np.nonzero(ok)[0] + lo)
            examined += hi - lo
        ids = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        return ids, examined, skipped

    # --- resilience -------------------------------------------------------------

    def drain(self, node_id: int) -> None:
        """Mark a node failed/draining: no new work lands on it (§4.4)."""
        self.nodes[node_id].drained = True
        self._drained_mask[node_id] = True
        self._refresh_partition(self.partition_of(node_id))

    def undrain(self, node_id: int) -> None:
        self.nodes[node_id].drained = False
        self._drained_mask[node_id] = False
        self._refresh_partition(self.partition_of(node_id))

    def drained_nodes(self) -> List[int]:
        return [n.node_id for n in self.nodes if n.drained]


def summit_like(nnodes: int, partition_size: int = 256) -> ResourceGraph:
    """A Summit-shaped partition: 2×22-core POWER9 + 6 V100 per node."""
    return ResourceGraph(nnodes, cores_per_node=44, gpus_per_node=6, nsockets=2,
                         partition_size=partition_size)


def lassen_like(nnodes: int, partition_size: int = 256) -> ResourceGraph:
    """A Lassen/Sierra-shaped partition: 2×22-core + 4 V100 per node."""
    return ResourceGraph(nnodes, cores_per_node=44, gpus_per_node=4, nsockets=2,
                         partition_size=partition_size)
