"""Configuration files for the workflow and campaign (paper §4.3-4.5).

The paper customizes trackers, feedback, and campaign shape "using a
combination of inherited classes and configuration files". This module
is the configuration-file half: TOML or JSON documents are validated
against the frozen config dataclasses and assembled into a ready
application or campaign.

Example (TOML)::

    [application]
    store_url = "kv://4"
    n_lipid_types = 2
    seed = 7

    [workflow]
    max_cg_sims = 3
    cg_ready_target = 3

    [campaign]
    cg_gpu_fraction = 0.78
    [[campaign.ledger]]
    nnodes = 100
    walltime_hours = 6
    count = 5
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
from typing import Any, Dict, Mapping, Type, TypeVar

import numpy as np

from repro.core.campaign import CampaignConfig, RunSpec
from repro.core.jobs import JobTypeConfig
from repro.core.wm import WorkflowConfig
from repro.datastore.netkv import TransportConfig
from repro.datastore.wal import DurabilityConfig

__all__ = [
    "ConfigError",
    "load_config_file",
    "dataclass_from_mapping",
    "workflow_config",
    "campaign_config",
    "transport_config",
    "durability_config",
    "application_kwargs",
    "job_types",
]

T = TypeVar("T")


class ConfigError(ValueError):
    """Raised for unreadable, unknown, or ill-typed configuration."""


def load_config_file(path: str) -> Dict[str, Any]:
    """Parse a TOML (``.toml``) or JSON (anything else) config file."""
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ConfigError(f"cannot read config file {path!r}: {exc}") from exc
    if path.endswith(".toml"):
        try:
            return tomllib.loads(raw.decode("utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML in {path!r}: {exc}") from exc
    try:
        return json.loads(raw.decode("utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON in {path!r}: {exc}") from exc


def dataclass_from_mapping(cls: Type[T], data: Mapping[str, Any], where: str = "") -> T:
    """Build a (frozen) dataclass from a mapping, rejecting unknown keys.

    Values pass through the dataclass's own ``__post_init__`` validation;
    numeric fields accept ints where floats are declared.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ConfigError(
            f"unknown key(s) {sorted(unknown)} in {where or cls.__name__}; "
            f"valid keys: {sorted(field_map)}"
        )
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        declared = field_map[name].type
        # Tolerate int -> float, and lists -> tuples for tuple fields.
        if isinstance(value, int) and not isinstance(value, bool) and "float" in str(declared):
            value = float(value)
        if isinstance(value, list) and ("Tuple" in str(declared) or "tuple" in str(declared)):
            value = tuple(value)
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"invalid {where or cls.__name__}: {exc}") from exc


def workflow_config(doc: Mapping[str, Any]) -> WorkflowConfig:
    """The ``[workflow]`` section (or {}) as a WorkflowConfig."""
    return dataclass_from_mapping(WorkflowConfig, doc.get("workflow", {}), "[workflow]")


def transport_config(doc: Mapping[str, Any]) -> TransportConfig:
    """The ``[transport]`` section (or {}) as a TransportConfig.

    The retry/timeout budget of every networked store client::

        [transport]
        op_timeout = 2.0
        retries = 6
        backoff_max = 0.5
    """
    return dataclass_from_mapping(TransportConfig, doc.get("transport", {}),
                                  "[transport]")


def durability_config(doc: Mapping[str, Any]) -> DurabilityConfig:
    """The ``[durability]`` section (or {}) as a DurabilityConfig.

    Governs the persistent shards' write-ahead log and the FSStore
    fsync armoring::

        [durability]
        fsync = true
        compact_bytes = 8388608
    """
    return dataclass_from_mapping(DurabilityConfig, doc.get("durability", {}),
                                  "[durability]")


def campaign_config(doc: Mapping[str, Any]) -> CampaignConfig:
    """The ``[campaign]`` section as a CampaignConfig (ledger included)."""
    section = dict(doc.get("campaign", {}))
    ledger = section.pop("ledger", None)
    if ledger is not None:
        specs = tuple(
            dataclass_from_mapping(RunSpec, row, f"[campaign.ledger][{i}]")
            for i, row in enumerate(ledger)
        )
        section["ledger"] = specs
    return dataclass_from_mapping(CampaignConfig, section, "[campaign]")


def _duration_sampler(spec: Mapping[str, Any], where: str):
    """Build a duration sampler from config keys.

    ``duration_hours`` gives a fixed runtime; ``duration_hours_mean``
    (with optional ``duration_hours_std``) a truncated-normal one.
    """
    fixed = spec.get("duration_hours")
    mean = spec.get("duration_hours_mean")
    if fixed is not None and mean is not None:
        raise ConfigError(f"{where}: give duration_hours OR duration_hours_mean")
    if fixed is not None:
        seconds = float(fixed) * 3600.0
        return lambda rng: seconds
    if mean is not None:
        mu = float(mean) * 3600.0
        sigma = float(spec.get("duration_hours_std", 0.0)) * 3600.0
        return lambda rng: max(60.0, float(rng.normal(mu, sigma)))
    return None


def job_types(doc: Mapping[str, Any]) -> Dict[str, JobTypeConfig]:
    """The ``[jobs.<name>]`` sections as JobTypeConfig objects.

    This is the paper's "individual job specifications (e.g., commands
    and resources)" config-file path: each section names a job type and
    declares its resources, retries, and runtime distribution.
    """
    out: Dict[str, JobTypeConfig] = {}
    for name, spec in doc.get("jobs", {}).items():
        spec = dict(spec)
        where = f"[jobs.{name}]"
        sampler = _duration_sampler(spec, where)
        for key in ("duration_hours", "duration_hours_mean", "duration_hours_std"):
            spec.pop(key, None)
        spec["name"] = name
        spec["duration_sampler"] = sampler
        allowed = {"name", "ncores", "ngpus", "nnodes", "max_retries",
                   "duration_sampler"}
        unknown = set(spec) - allowed
        if unknown:
            raise ConfigError(f"unknown key(s) {sorted(unknown)} in {where}")
        try:
            out[name] = JobTypeConfig(**spec)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"invalid {where}: {exc}") from exc
    return out


_APPLICATION_KEYS = {
    "store_url", "grid", "n_lipid_types", "n_proteins", "patch_grid",
    "pretrain_encoder", "seed",
}


def application_kwargs(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """The ``[application]`` section as build_application keyword args,
    with the ``[workflow]`` section attached when present."""
    section = dict(doc.get("application", {}))
    unknown = set(section) - _APPLICATION_KEYS
    if unknown:
        raise ConfigError(
            f"unknown key(s) {sorted(unknown)} in [application]; "
            f"valid keys: {sorted(_APPLICATION_KEYS)}"
        )
    if "workflow" in doc:
        section["workflow"] = workflow_config(doc)
    return section
