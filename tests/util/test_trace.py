"""Tests for repro.trace: spans, context propagation, export, analysis."""

import json
import threading

import pytest

from repro import trace


@pytest.fixture(autouse=True)
def reset_global_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


class FakeClock:
    """Deterministic .now-style clock advancing 1.0 per read."""

    def __init__(self) -> None:
        self._t = 0.0

    def __call__(self) -> float:
        self._t += 1.0
        return self._t


class TestDisabledPath:
    def test_enabled_false_by_default(self):
        assert not trace.enabled()
        assert trace.get_tracer() is None

    def test_span_returns_shared_falsy_noop(self):
        sp = trace.span("wm.select", patch="p0")
        assert sp is trace.NOOP_SPAN
        assert not sp
        with sp as inner:
            inner.set(anything=1)
            inner.event("whatever")

    def test_module_event_and_current_span_are_noops(self):
        trace.event("retry", kind="timeout")  # must not raise
        assert trace.current_span() is None

    def test_wrap_is_identity(self):
        def fn():
            return 42

        assert trace.wrap(fn) is fn

    def test_exceptions_propagate_through_noop_span(self):
        with pytest.raises(ValueError):
            with trace.span("x"):
                raise ValueError("boom")


class TestSpans:
    def test_enable_installs_and_disable_removes(self):
        tracer = trace.enable()
        assert trace.enabled()
        assert trace.get_tracer() is tracer
        trace.disable()
        assert not trace.enabled()

    def test_parentage_nesting(self):
        trace.enable()
        with trace.span("wm.round") as outer:
            assert trace.current_span() is outer
            with trace.span("store.write") as inner:
                assert inner.parent_id == outer.span_id
            assert trace.current_span() is outer
        assert outer.parent_id is None

    def test_attrs_and_to_row(self):
        tracer = trace.enable()
        with trace.span("store.write", key="k") as sp:
            sp.set(bytes=10)
        (row,) = tracer.rows()
        assert row["name"] == "store.write"
        assert row["stage"] == "store"
        assert row["attrs"] == {"key": "k", "bytes": 10}
        assert row["parent"] is None
        assert row["dur"] == row["t1"] - row["t0"] >= 0

    def test_exception_sets_error_attr_and_finishes_span(self):
        tracer = trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("feedback.iteration"):
                raise RuntimeError("down")
        (row,) = tracer.rows()
        assert row["attrs"]["error"] == "RuntimeError"

    def test_events_attach_to_active_span(self):
        tracer = trace.enable()
        with trace.span("store.read"):
            trace.event("retry", kind="timeout", attempt=0)
            trace.event("retry", kind="connection", attempt=1)
        trace.event("orphan")  # no active span: silently ignored
        (row,) = tracer.rows()
        assert [e["name"] for e in row["events"]] == ["retry", "retry"]
        assert row["events"][0]["attrs"] == {"kind": "timeout", "attempt": 0}


class TestDeterminism:
    def test_seq_is_dense_and_orders_rows(self):
        tracer = trace.enable()
        for i in range(5):
            with trace.span(f"wm.s{i}"):
                pass
        rows = tracer.rows()
        assert [r["seq"] for r in rows] == list(range(5))
        assert [r["name"] for r in rows] == [f"wm.s{i}" for i in range(5)]

    def test_injectable_callable_clock(self):
        clock = FakeClock()
        tracer = trace.Tracer(clock=clock)
        trace.configure(tracer)
        with trace.span("wm.a"):
            pass
        (row,) = tracer.rows()
        assert (row["t0"], row["t1"]) == (1.0, 2.0)

    def test_now_attribute_clock(self):
        class Virtual:
            now = 7.5

        tracer = trace.Tracer(clock=Virtual())
        trace.configure(tracer)
        with trace.span("wm.a"):
            pass
        (row,) = tracer.rows()
        assert row["t0"] == row["t1"] == 7.5
        assert row["dur"] == 0.0

    def test_identical_runs_produce_identical_rows(self):
        def run():
            tracer = trace.Tracer(clock=FakeClock())
            trace.configure(tracer)
            with trace.span("wm.round", round=0):
                with trace.span("store.write", key="k"):
                    trace.event("retry", kind="timeout")
            trace.disable()
            return tracer.rows()

        assert run() == run()

    def test_bad_clock_rejected(self):
        with pytest.raises(TypeError):
            trace.Tracer(clock=object())


class TestRingBuffer:
    def test_drop_oldest_beyond_capacity(self):
        tracer = trace.Tracer(capacity=3)
        trace.configure(tracer)
        for i in range(5):
            with trace.span(f"wm.s{i}"):
                pass
        rows = tracer.rows()
        assert len(rows) == 3
        assert tracer.dropped == 2
        assert [r["name"] for r in rows] == ["wm.s2", "wm.s3", "wm.s4"]

    def test_reset_clears_finished_and_drop_count(self):
        tracer = trace.Tracer(capacity=2)
        trace.configure(tracer)
        for i in range(4):
            with trace.span("wm.s"):
                pass
        tracer.reset()
        assert tracer.rows() == []
        assert tracer.dropped == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            trace.Tracer(capacity=0)


class TestCrossThread:
    def test_wrap_propagates_parent_into_worker_thread(self):
        tracer = trace.enable()
        with trace.span("wm.createsim") as parent:

            def job():
                with trace.span("store.write"):
                    pass

            t = threading.Thread(target=trace.wrap(job))
            t.start()
            t.join()
        rows = {r["name"]: r for r in tracer.rows()}
        assert rows["store.write"]["parent"] == parent.span_id
        assert rows["store.write"]["thread"] != rows["wm.createsim"]["thread"]

    def test_unwrapped_thread_spans_are_roots(self):
        tracer = trace.enable()
        with trace.span("wm.createsim"):

            def job():
                with trace.span("store.write"):
                    pass

            t = threading.Thread(target=job)
            t.start()
            t.join()
        rows = {r["name"]: r for r in tracer.rows()}
        assert rows["store.write"]["parent"] is None

    def test_wrap_installs_and_restores_inherited_parent(self):
        tracer = trace.enable()
        with trace.span("wm.a") as a:
            wrapped = tracer.wrap(lambda: tracer.current_id())
        # Outside any span the wrapped call sees a as the ambient parent,
        # and the ambient state is restored afterwards.
        assert tracer.current_id() is None
        assert wrapped() == a.span_id
        assert tracer.current_id() is None

    def test_open_span_wins_over_inherited_parent(self):
        tracer = trace.enable()
        with trace.span("wm.a") as a:
            wrapped = tracer.wrap(lambda: tracer.current_id())
        with trace.span("wm.b") as b:
            assert wrapped() == b.span_id  # the thread's own stack wins

    def test_thread_indices_are_dense_in_first_span_order(self):
        tracer = trace.enable()
        with trace.span("wm.main"):
            pass

        barrier = threading.Barrier(3)

        def job(i):
            barrier.wait()  # all three alive at once: distinct idents
            with trace.span(f"wm.w{i}"):
                pass

        threads = [threading.Thread(target=job, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        indices = {r["thread"] for r in tracer.rows()}
        assert indices == {0, 1, 2, 3}


class TestExportRoundtrip:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = trace.enable()
        with trace.span("wm.round", round=1):
            with trace.span("store.write", key="k"):
                trace.event("retry", kind="timeout")
        path = str(tmp_path / "t.jsonl")
        n = tracer.export_jsonl(path)
        assert n == 2
        rows = trace.load_trace(path)
        assert rows == tracer.rows()
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                json.loads(line)  # every line is standalone JSON

    def test_load_trace_reorders_by_seq(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rows = [
            {"seq": 1, "span": 1, "parent": None, "name": "b", "stage": "b",
             "thread": 0, "t0": 0.0, "t1": 1.0, "dur": 1.0, "attrs": {}, "events": []},
            {"seq": 0, "span": 0, "parent": None, "name": "a", "stage": "a",
             "thread": 0, "t0": 0.0, "t1": 1.0, "dur": 1.0, "attrs": {}, "events": []},
        ]
        path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        loaded = trace.load_trace(str(path))
        assert [r["name"] for r in loaded] == ["a", "b"]


def _row(span, name, t0, t1, parent=None, thread=0, events=()):
    return {
        "seq": span, "span": span, "parent": parent, "name": name,
        "stage": name.split(".", 1)[0], "thread": thread,
        "t0": t0, "t1": t1, "dur": t1 - t0, "attrs": {},
        "events": [{"name": e, "t": t0, "attrs": {}} for e in events],
    }


class TestAnalysis:
    def test_stage_breakdown_self_time_subtracts_same_thread_children(self):
        rows = [
            _row(0, "wm.round", 0.0, 10.0),
            _row(1, "store.write", 1.0, 4.0, parent=0, thread=0),
            _row(2, "wm.cg_sim", 5.0, 9.0, parent=0, thread=1),  # other thread
        ]
        stages = trace.stage_breakdown(rows)
        assert stages["wm"]["count"] == 2
        # wm.round self = 10 - 3 (same-thread store child); cg_sim overlaps
        # concurrently on another thread so it is not subtracted.
        assert stages["wm"]["self_ms"] == pytest.approx(7000.0 + 4000.0)
        assert stages["store"]["total_ms"] == pytest.approx(3000.0)

    def test_self_time_clamped_at_zero(self):
        rows = [
            _row(0, "wm.round", 0.0, 1.0),
            _row(1, "store.write", 0.0, 2.0, parent=0, thread=0),
        ]
        stages = trace.stage_breakdown(rows)
        assert stages["wm"]["self_ms"] == 0.0

    def test_name_breakdown_and_event_counts(self):
        rows = [
            _row(0, "store.read", 0.0, 1.0, events=("retry", "retry")),
            _row(1, "store.read", 1.0, 3.0, events=("exhausted",)),
        ]
        names = trace.name_breakdown(rows)
        assert names["store.read"]["count"] == 2
        assert names["store.read"]["mean_ms"] == pytest.approx(1500.0)
        assert names["store.read"]["max_ms"] == pytest.approx(2000.0)
        assert trace.event_counts(rows) == {"retry": 2, "exhausted": 1}

    def test_critical_path_follows_heaviest_children(self):
        rows = [
            _row(0, "wm.round", 0.0, 10.0),
            _row(1, "schedule.manage", 0.0, 2.0, parent=0),
            _row(2, "wm.cg_sim", 2.0, 9.0, parent=0),
            _row(3, "store.write", 3.0, 4.0, parent=2),
        ]
        path = [r["name"] for r in trace.critical_path(rows)]
        assert path == ["wm.round", "wm.cg_sim", "store.write"]

    def test_critical_path_treats_orphans_as_roots(self):
        rows = [_row(5, "store.write", 0.0, 1.0, parent=999)]
        path = trace.critical_path(rows)
        assert [r["name"] for r in path] == ["store.write"]
        assert trace.critical_path([]) == []

    def test_concurrency_series_counts_overlap(self):
        rows = [
            _row(0, "wm.cg_sim", 0.0, 10.0),
            _row(1, "wm.cg_sim", 0.0, 5.0),
            _row(2, "wm.backmap", 0.0, 10.0),  # filtered out by prefix
        ]
        series = trace.concurrency_series(rows, prefix="wm.cg_sim", nbins=10)
        assert len(series) == 10
        assert series[0]["active"] == 2.0
        assert series[-1]["active"] == 1.0
        assert trace.concurrency_series(rows, prefix="nope") == []
        with pytest.raises(ValueError):
            trace.concurrency_series(rows, nbins=0)

    def test_render_breakdown_sections(self):
        rows = [
            _row(0, "wm.round", 0.0, 10.0),
            _row(1, "store.write", 1.0, 4.0, parent=0, events=("retry",)),
        ]
        text = trace.render_breakdown(rows)
        for token in ("per-stage latency", "per-span-name latency",
                      "span events", "critical path", "wm.round", "retry"):
            assert token in text
        assert trace.render_breakdown([]) == "trace is empty: no finished spans"

    def test_tracer_summary_feeds_telemetry(self):
        tracer = trace.enable()
        with trace.span("wm.round"):
            with trace.span("store.write"):
                pass
        summary = tracer.summary()
        assert summary["spans"] == 2
        assert summary["dropped"] == 0
        assert set(summary["stages"]) == {"wm", "store"}
        assert summary["stages"]["wm"]["count"] == 1
