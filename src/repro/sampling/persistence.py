"""Checkpoint/restore of sampler state through any DataStore.

The WM's resilience story (§4.4) needs the selectors to survive a
crash: the selected set (which defines every candidate's novelty), the
queued candidates, the histogram counts, and the random-generator state
all checkpoint here. Histories are replayable audit trails and are
saved separately (:mod:`repro.core.replay`); this module captures the
*operational* state needed to continue selecting.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.datastore.base import DataStore
from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point

__all__ = ["fps_state", "restore_fps", "binned_state", "restore_binned",
           "save_sampler", "load_sampler"]


def fps_state(sampler: FarthestPointSampler) -> Dict[str, Any]:
    """Operational state of a farthest-point sampler."""
    queues = {}
    for name, q in sampler.queues.items():
        pts = q.points()
        queues[name] = {
            "ids": [p.id for p in pts],
            "coords": np.vstack([p.coords for p in pts]).tolist() if pts else [],
            "dropped": q.dropped,
            "duplicates": q.duplicates,
        }
    return {
        "kind": "fps",
        "dim": sampler.dim,
        "selected_ids": list(sampler._selected_ids),
        "selected_coords": sampler.selected_coords().tolist(),
        "queues": queues,
    }


def restore_fps(sampler: FarthestPointSampler, state: Dict[str, Any]) -> None:
    """Load state into a sampler built with the same configuration."""
    if state.get("kind") != "fps":
        raise ValueError("not an fps checkpoint")
    if state["dim"] != sampler.dim:
        raise ValueError(f"dim mismatch: checkpoint {state['dim']}, sampler {sampler.dim}")
    if set(state["queues"]) != set(sampler.queues):
        raise ValueError("queue names differ from checkpoint")
    sampler._selected_ids = list(state["selected_ids"])
    sel = np.asarray(state["selected_coords"], dtype=np.float64).reshape(-1, sampler.dim)
    sampler._sel_coords = sel.copy() if sel.shape[0] else np.empty((256, sampler.dim))
    sampler._sel_n = sel.shape[0]
    for name, qstate in state["queues"].items():
        queue = sampler.queues[name]
        queue._points.clear()
        coords = qstate["coords"]
        for pid, c in zip(qstate["ids"], coords):
            queue._points[pid] = Point(id=pid, coords=np.asarray(c, dtype=np.float64))
        queue.dropped = int(qstate["dropped"])
        queue.duplicates = int(qstate.get("duplicates", 0))
    # Every restored candidate is re-priced at the next selection; the
    # index rebuilds over the restored selected set.
    sampler._rebuild_caches()


def binned_state(sampler: BinnedSampler) -> Dict[str, Any]:
    """Operational state of a binned sampler (including RNG state)."""
    bins = {}
    for bin_id, items in sampler._bins.items():
        bins[str(bin_id)] = {
            "ids": [pid for pid, _ in items],
            "coords": [np.asarray(c).tolist() for _, c in items],
        }
    return {
        "kind": "binned",
        "specs": [(s.lo, s.hi, s.nbins) for s in sampler.specs],
        "randomness": sampler.randomness,
        "rng_state": sampler.rng.bit_generator.state,
        "selected_counts": sampler.selected_counts.tolist(),
        "duplicates": sampler.duplicates,
        "bins": bins,
    }


def restore_binned(sampler: BinnedSampler, state: Dict[str, Any]) -> None:
    if state.get("kind") != "binned":
        raise ValueError("not a binned checkpoint")
    specs = [BinSpec(*row) for row in state["specs"]]
    if tuple(specs) != sampler.specs:
        raise ValueError("bin specs differ from checkpoint")
    sampler.randomness = float(state["randomness"])
    sampler.rng.bit_generator.state = state["rng_state"]
    sampler.selected_counts = np.asarray(state["selected_counts"], dtype=np.int64)
    sampler.duplicates = int(state.get("duplicates", 0))
    sampler._bins = {}
    sampler._ids = set()
    sampler._total = 0
    sampler._occ_n = 0
    sampler._occ_slot = {}
    for bin_id, content in state["bins"].items():
        items = [
            (pid, np.asarray(c, dtype=np.float64))
            for pid, c in zip(content["ids"], content["coords"])
        ]
        sampler._bins[int(bin_id)] = items
        sampler._occ_add(int(bin_id))
        sampler._ids.update(pid for pid, _ in items)
        sampler._total += len(items)


def save_sampler(store: DataStore, key: str, sampler) -> None:
    """Persist either sampler kind under one store key."""
    if isinstance(sampler, FarthestPointSampler):
        state = fps_state(sampler)
    elif isinstance(sampler, BinnedSampler):
        state = binned_state(sampler)
    else:
        raise TypeError(f"unsupported sampler {type(sampler).__name__}")
    store.write(key, json.dumps(state).encode("utf-8"))


def load_sampler(store: DataStore, key: str, sampler) -> None:
    """Restore a sampler previously saved with :func:`save_sampler`."""
    state = json.loads(store.read(key).decode("utf-8"))
    if isinstance(sampler, FarthestPointSampler):
        restore_fps(sampler, state)
    elif isinstance(sampler, BinnedSampler):
        restore_binned(sampler, state)
    else:
        raise TypeError(f"unsupported sampler {type(sampler).__name__}")
