"""Filesystem backend with I/O armoring, backups, and fault injection.

Mirrors MuMMI's direct-to-GPFS path: best for small files (checkpoints,
logs, setup inputs) and anything that must interoperate with external
tools. Reads and writes are wrapped in retries; checkpoint-style writes
keep a ``.bak`` of the previous version (paper §4.2).

Fault injection exists so tests and benchmarks can exercise the
armoring: a :class:`FaultInjector` raises :class:`OSError` on a
configurable fraction of operations, standing in for a flaky parallel
filesystem.
"""

from __future__ import annotations

import os
import shutil
from typing import Callable, List, Optional

import numpy as np

from repro.datastore.base import DataStore, KeyNotFound, StoreError, validate_key
from repro.datastore.wal import fsync_dir
from repro.util.armor import RetryPolicy, armored_call

__all__ = ["FSStore", "FaultInjector"]


class FaultInjector:
    """Raises OSError on a seeded fraction of store operations.

    ``ops`` limits which operations fail (e.g. only writes). The
    injector is deterministic for a given seed and call sequence.
    """

    def __init__(
        self,
        rate: float,
        rng: Optional[np.random.Generator] = None,
        ops: tuple = ("read", "write", "delete", "move"),
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.ops = frozenset(ops)
        self.injected = 0

    def __call__(self, op: str, key: str) -> None:
        if op in self.ops and self.rng.random() < self.rate:
            self.injected += 1
            raise OSError(f"injected {op} fault for {key!r}")


class FSStore(DataStore):
    """DataStore over a directory tree; one key = one file.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).
    policy:
        Retry policy for armored operations.
    fault_injector:
        Optional callable ``(op, key)`` that may raise OSError before the
        real operation runs; used to test/benchmark the armoring.
    backup_writes:
        Keep a ``.bak`` copy of the previous value on overwrite
        (checkpoint armoring). Off by default: bulk data doesn't need it.
    fsync:
        Fsync the temp file before the rename and the parent directory
        after it, so an acked write survives a machine crash — without
        this, ``os.replace`` is only atomic against process crashes:
        the data can still sit in the page cache when power fails, and
        the rename itself can be lost if the directory entry was never
        flushed. Off by default (matches the historical behavior and
        the bulk-data path); the ``[durability]`` config section turns
        it on for checkpoint-grade stores.
    """

    def __init__(
        self,
        root: str,
        policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[Callable[[str, str], None]] = None,
        backup_writes: bool = False,
        fsync: bool = False,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.policy = policy or RetryPolicy(retries=3)
        self.fault_injector = fault_injector
        self.backup_writes = backup_writes
        self.fsync = fsync
        self.retries = 0  # armoring retry counter, for profiling

    # --- internals --------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, validate_key(key))

    def _armored(self, op: str, key: str, fn: Callable, *args):
        def attempt():
            if self.fault_injector is not None:
                self.fault_injector(op, key)
            return fn(*args)

        def count_retry(attempt_no: int, exc: BaseException) -> None:
            self.retries += 1

        return armored_call(attempt, policy=self.policy, on_retry=count_retry)

    # --- primitives ---------------------------------------------------------

    def write(self, key: str, data: bytes) -> None:
        path = self._path(key)

        def do_write():
            os.makedirs(os.path.dirname(path), exist_ok=True)
            if self.backup_writes and os.path.exists(path):
                shutil.copy2(path, path + ".bak")
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(data)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            if self.fsync:
                # The rename is only durable once the directory entry
                # is on disk; fsync the parent like the WAL does.
                fsync_dir(os.path.dirname(path))

        self._armored("write", key, do_write)

    def read(self, key: str) -> bytes:
        path = self._path(key)
        if not os.path.isfile(path):
            if self.backup_writes and os.path.isfile(path + ".bak"):
                path = path + ".bak"  # filesystem ate the primary; use backup
            else:
                raise KeyNotFound(key)

        def do_read():
            with open(path, "rb") as fh:
                return fh.read()

        return self._armored("read", key, do_read)

    def delete(self, key: str) -> None:
        path = self._path(key)
        if not os.path.isfile(path):
            raise KeyNotFound(key)
        self._armored("delete", key, os.remove, path)
        bak = path + ".bak"
        if os.path.isfile(bak):
            os.remove(bak)

    def keys(self, prefix: str = "") -> List[str]:
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            rel = os.path.relpath(dirpath, self.root)
            for name in filenames:
                if name.endswith((".bak", ".tmp")):
                    continue
                key = name if rel == "." else f"{rel}/{name}".replace(os.sep, "/")
                if key.startswith(prefix):
                    found.append(key)
        return sorted(found)

    def move(self, src: str, dst: str) -> None:
        src_path = self._path(src)
        dst_path = self._path(dst)
        if not os.path.isfile(src_path):
            raise KeyNotFound(src)

        def do_move():
            os.makedirs(os.path.dirname(dst_path), exist_ok=True)
            os.replace(src_path, dst_path)

        self._armored("move", src, do_move)

    def nfiles(self) -> int:
        """Number of inodes (files) this store currently occupies."""
        return sum(len(files) for _, _, files in os.walk(self.root))
