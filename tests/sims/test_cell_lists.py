"""Cross-validation of the three CG neighbor-search backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sims.cg.engine import CGConfig, CGSim
from repro.sims.cg.forcefield import martini_like


def pair_set(sim):
    ii, jj = sim._pairs()
    return {(min(a, b), max(a, b)) for a, b in zip(ii.tolist(), jj.tolist())}


def make_sim(method, n=120, box=12.0, seed=0):
    cfg = CGConfig(box=box, n_lipids=n, seed=seed, neighbor_method=method)
    return CGSim.random_system(config=cfg)


class TestCellListCorrectness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pairs_match_brute_force(self, seed):
        cells = make_sim("cells", seed=seed)
        brute = make_sim("brute", seed=seed)
        assert pair_set(cells) == pair_set(brute)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_pairs_match_tree(self, seed):
        cells = make_sim("cells", seed=seed)
        tree = make_sim("tree", seed=seed)
        assert pair_set(cells) == pair_set(tree)

    def test_no_duplicate_pairs(self):
        sim = make_sim("cells", seed=4)
        ii, jj = sim._pairs()
        pairs = list(zip(ii.tolist(), jj.tolist()))
        normalized = [(min(a, b), max(a, b)) for a, b in pairs]
        assert len(normalized) == len(set(normalized))

    def test_forces_identical_across_methods(self):
        ref_F, ref_E = make_sim("brute", seed=5).forces()
        for method in ("cells", "tree"):
            F, E = make_sim(method, seed=5).forces()
            np.testing.assert_allclose(F, ref_F, atol=1e-9)
            assert E == pytest.approx(ref_E)

    def test_small_box_falls_back_to_brute(self):
        # Box barely larger than 2 cutoffs: < 3 cells per side.
        ff = martini_like()
        cfg = CGConfig(box=2.5 * ff.cutoff, n_lipids=20, seed=6,
                       neighbor_method="cells")
        sim = CGSim.random_system(config=cfg)
        brute = CGSim.random_system(
            config=CGConfig(box=2.5 * ff.cutoff, n_lipids=20, seed=6,
                            neighbor_method="brute"))
        assert pair_set(sim) == pair_set(brute)

    def test_dynamics_identical(self):
        a = make_sim("cells", seed=7, n=60)
        b = make_sim("tree", seed=7, n=60)
        a.step(20)
        b.step(20)
        np.testing.assert_allclose(a.positions, b.positions, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CGConfig(neighbor_method="quadtree")


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(10, 80))
def test_property_cells_equals_brute(seed, n):
    cfg_c = CGConfig(box=10.0, n_lipids=n, seed=seed, neighbor_method="cells")
    cfg_b = CGConfig(box=10.0, n_lipids=n, seed=seed, neighbor_method="brute")
    assert pair_set(CGSim.random_system(config=cfg_c)) == pair_set(
        CGSim.random_system(config=cfg_b)
    )
