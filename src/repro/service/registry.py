"""Campaign handles and the multi-tenant registry.

This module is the WM refactor the service forces: *all* state of a
hosted campaign — identity, tenancy, lifecycle, the workflow objects,
progress counters, error detail — is owned by one addressable
:class:`CampaignHandle`, never by module or process globals. A handle
moves through a strict lifecycle FSM::

    PENDING ──► RUNNING ──► DONE
       │          │  ▲        (terminal)
       │          ▼  │
       │        PAUSED ───► CANCELLED (terminal)
       │          │
       └──────────┴───────► CANCELLED / FAILED (terminal)

Transitions are validated (``IllegalTransition`` carries the offending
edge), take effect at round boundaries, and every terminal state drains
the campaign's in-flight jobs before the handle reports it.

:class:`CampaignRegistry` owns the shared substrate — one store
backend, one :class:`~repro.sched.shares.FairShareAdapter` pool — and
enforces tenancy: per-tenant campaign quotas, per-tenant fair-share
weights, and per-campaign key namespaces
(``tenants/<tenant>/<campaign>/`` on the shared store).
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import trace
from repro.core.config import workflow_config
from repro.core.telemetry import collect_telemetry
from repro.core.wm import WorkflowConfig
from repro.datastore.base import DataStore, StoreError, StoreUnavailable
from repro.datastore.namespaced import NamespacedStore, validate_namespace_segment
from repro.sched.shares import FairShareAdapter

__all__ = [
    "CampaignState", "CampaignHandle", "CampaignRegistry", "ServiceConfig",
    "CampaignSpec", "RegistryError", "UnknownCampaign", "IllegalTransition",
    "QuotaExceeded", "Draining", "StoreDegraded",
]


class RegistryError(RuntimeError):
    """Base class for control-plane errors; carries an HTTP status."""

    http_status = 400


class UnknownCampaign(RegistryError):
    """No campaign with that id (or it was already deleted)."""

    http_status = 404


class IllegalTransition(RegistryError):
    """The lifecycle FSM forbids the requested edge."""

    http_status = 409


class QuotaExceeded(RegistryError):
    """The tenant is at its campaign quota."""

    http_status = 429


class Draining(RegistryError):
    """The daemon is draining and refuses new campaigns."""

    http_status = 503


class StoreDegraded(RegistryError):
    """The shared store cannot complete the request right now (for
    example a replica window is fully down, so a purge scan would be
    blind to part of the keyspace). Retryable: the campaign stays
    registered so a later DELETE can finish the job."""

    http_status = 503


class CampaignState(enum.Enum):
    """Lifecycle of a hosted campaign."""

    PENDING = "pending"
    RUNNING = "running"
    PAUSED = "paused"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (CampaignState.DONE, CampaignState.FAILED,
                        CampaignState.CANCELLED)


#: The FSM edge set. Anything not listed raises IllegalTransition.
_TRANSITIONS = {
    CampaignState.PENDING: {CampaignState.RUNNING, CampaignState.CANCELLED,
                            CampaignState.FAILED},
    CampaignState.RUNNING: {CampaignState.PAUSED, CampaignState.DONE,
                            CampaignState.FAILED, CampaignState.CANCELLED},
    CampaignState.PAUSED: {CampaignState.RUNNING, CampaignState.CANCELLED,
                           CampaignState.FAILED},
    CampaignState.DONE: set(),
    CampaignState.FAILED: set(),
    CampaignState.CANCELLED: set(),
}


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon-level knobs (see OPERATIONS.md, "Configuration")."""

    max_campaigns_per_tenant: int = 4
    """Non-terminal campaigns one tenant may hold at once."""

    max_campaigns_total: int = 16
    """Non-terminal campaigns across all tenants."""

    default_rounds: int = 4
    """Rounds a submission runs when the request omits ``rounds``."""

    max_rounds: int = 10_000
    """Upper bound on a single submission's ``rounds`` request."""

    pool_workers: int = 4
    """Worker slots in the shared fair-share job pool."""

    shares: Dict[str, float] = field(default_factory=dict)
    """Initial per-tenant fair-share weights (default 1.0 each)."""

    grid: int = 12
    """Continuum grid for hosted workflows (small: many tenants share
    one process; raise it for fidelity, lower it for density)."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated submission, normalized from the POST body."""

    tenant: str
    name: str
    rounds: int
    seed: int
    advance_us: float
    workflow: WorkflowConfig

    @classmethod
    def from_request(cls, body: Dict[str, Any],
                     config: ServiceConfig) -> "CampaignSpec":
        if not isinstance(body, dict):
            raise RegistryError("request body must be a JSON object")
        unknown = set(body) - {"tenant", "name", "rounds", "seed",
                               "advance_us", "workflow"}
        if unknown:
            raise RegistryError(f"unknown field(s): {sorted(unknown)}")
        tenant = body.get("tenant")
        if not tenant:
            raise RegistryError("'tenant' is required")
        try:
            tenant = validate_namespace_segment(tenant, "tenant")
        except StoreError as exc:
            raise RegistryError(str(exc)) from None
        rounds = body.get("rounds", config.default_rounds)
        if not isinstance(rounds, int) or not 1 <= rounds <= config.max_rounds:
            raise RegistryError(
                f"'rounds' must be an integer in [1, {config.max_rounds}]")
        seed = body.get("seed", 0)
        if not isinstance(seed, int):
            raise RegistryError("'seed' must be an integer")
        advance_us = body.get("advance_us", 1.0)
        if not isinstance(advance_us, (int, float)) or advance_us <= 0:
            raise RegistryError("'advance_us' must be a positive number")
        overrides = body.get("workflow", {})
        if not isinstance(overrides, dict):
            raise RegistryError("'workflow' must be an object")
        doc = {
            # Laptop-scale defaults: rounds stay tens of milliseconds so
            # one daemon can host many concurrent campaigns.
            "beads_per_type": 6, "cg_chunks_per_job": 1,
            "cg_steps_per_chunk": 8, "aa_chunks_per_job": 1,
            "aa_steps_per_chunk": 8, "seed": seed,
        }
        doc.update(overrides)
        try:
            wf = workflow_config({"workflow": doc})
        except Exception as exc:
            raise RegistryError(f"bad workflow config: {exc}") from None
        name = body.get("name") or ""
        if not isinstance(name, str) or len(name) > 128:
            raise RegistryError("'name' must be a string of at most 128 chars")
        return cls(tenant=tenant, name=name, rounds=rounds, seed=seed,
                   advance_us=float(advance_us), workflow=wf)


class CampaignHandle:
    """The addressable owner of one campaign's state and lifecycle.

    The handle runs its campaign's coordination rounds on a dedicated
    control thread; simulation job bodies go through the registry's
    shared fair-share pool under the handle's tenant. Every public
    method is thread-safe; FSM edges are validated under the handle's
    condition variable and take effect at round boundaries (an in-flight
    round always completes — rounds are the service's unit of atomicity,
    exactly as allocation runs were the paper's).
    """

    def __init__(self, campaign_id: str, spec: CampaignSpec, app,
                 store_view: NamespacedStore) -> None:
        self.campaign_id = campaign_id
        self.spec = spec
        self.app = app
        self.store_view = store_view
        self.state = CampaignState.PENDING
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None
        self._cond = threading.Condition()
        self._thread = threading.Thread(
            target=self._drive, name=f"campaign-{campaign_id}", daemon=True)

    # --- FSM --------------------------------------------------------------

    def _transition(self, to: CampaignState) -> None:
        """Move the FSM (caller holds the condition)."""
        if to not in _TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"campaign {self.campaign_id}: illegal transition "
                f"{self.state.value} -> {to.value}")
        self.state = to
        if to.is_terminal:
            self.finished_at = time.time()
        self._cond.notify_all()

    def request(self, action: str) -> None:
        """Apply a lifecycle verb: ``pause`` | ``resume`` | ``cancel``."""
        target = {"pause": CampaignState.PAUSED,
                  "resume": CampaignState.RUNNING,
                  "cancel": CampaignState.CANCELLED}.get(action)
        if target is None:
            raise RegistryError(f"unknown lifecycle action {action!r}")
        with self._cond:
            if action == "pause" and self.state is not CampaignState.RUNNING:
                raise IllegalTransition(
                    f"campaign {self.campaign_id}: cannot pause from "
                    f"{self.state.value}")
            if action == "resume" and self.state is not CampaignState.PAUSED:
                raise IllegalTransition(
                    f"campaign {self.campaign_id}: cannot resume from "
                    f"{self.state.value}")
            self._transition(target)

    # --- the control thread ----------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def _drive(self) -> None:
        wm = self.app.wm
        try:
            with self._cond:
                if self.state is CampaignState.PENDING:
                    self._transition(CampaignState.RUNNING)
            while True:
                with self._cond:
                    while self.state is CampaignState.PAUSED:
                        self._cond.wait()
                    if self.state is not CampaignState.RUNNING:
                        break  # cancelled (or failed externally)
                    if wm.rounds >= self.spec.rounds:
                        self._transition(CampaignState.DONE)
                        break
                with trace.span("campaign.round", campaign=self.campaign_id,
                                tenant=self.spec.tenant):
                    wm.round(advance_us=self.spec.advance_us)
        except Exception as exc:  # campaign failure is contained, not fatal
            with self._cond:
                if not self.state.is_terminal:
                    self.error = f"{type(exc).__name__}: {exc}"
                    self._transition(CampaignState.FAILED)
        finally:
            try:
                wm.close()  # drains this tenant's in-flight jobs
            except Exception:
                pass

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the control thread to exit (terminal states only)."""
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    def wait(self, timeout: float = 30.0) -> CampaignState:
        """Block until the campaign reaches a terminal state."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while not self.state.is_terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            return self.state

    # --- introspection ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The campaign resource the HTTP API serves."""
        with self._cond:
            state, error = self.state, self.error
        wm = self.app.wm
        return {
            "id": self.campaign_id,
            "tenant": self.spec.tenant,
            "name": self.spec.name,
            "state": state.value,
            "error": error,
            "rounds_target": self.spec.rounds,
            "rounds_done": wm.rounds,
            "counters": wm.counters_snapshot(),
            "store_prefix": self.store_view.prefix,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }

    def telemetry(self) -> Dict[str, Any]:
        return collect_telemetry(self.app.wm).to_json()

    def trace_tail(self, limit: int = 100) -> List[Dict[str, Any]]:
        """Recent spans belonging to *this* campaign.

        Every round runs under a ``campaign.round`` root span carrying
        the campaign id; child spans (including job bodies executing on
        shared pool threads, which inherit their parent across threads)
        are collected by walking parent links from those roots.
        """
        tracer = trace.get_tracer()
        if tracer is None:
            return []
        rows = tracer.rows()
        roots = {r["span"] for r in rows
                 if r["name"] == "campaign.round"
                 and r["attrs"].get("campaign") == self.campaign_id}
        if not roots:
            return []
        mine: set = set(roots)
        # Rows are finish-ordered, so children may finish before parents;
        # iterate until the reachable set stops growing.
        grew = True
        while grew:
            grew = False
            for row in rows:
                if row["span"] not in mine and row["parent"] in mine:
                    mine.add(row["span"])
                    grew = True
        tail = [r for r in rows if r["span"] in mine]
        return tail[-limit:]


class CampaignRegistry:
    """Owns the shared substrate and every campaign handle.

    Parameters
    ----------
    store:
        The shared backend (any :class:`DataStore`, typically a NetKV
        cluster). The registry namespaces it per campaign; it closes the
        backend on :meth:`shutdown` only if ``owns_store``.
    config:
        Daemon knobs (quotas, pool size, default shares).
    """

    def __init__(self, store: DataStore, config: Optional[ServiceConfig] = None,
                 owns_store: bool = True) -> None:
        self.store = store
        self.config = config or ServiceConfig()
        self.owns_store = owns_store
        self.adapter = FairShareAdapter(max_workers=self.config.pool_workers,
                                        shares=dict(self.config.shares))
        self.started_at = time.time()
        self.draining = False
        self._lock = threading.Lock()
        self._handles: Dict[str, CampaignHandle] = {}
        self._next_id = 0

    # --- submission -------------------------------------------------------

    def _active_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for handle in self._handles.values():
            if not handle.state.is_terminal:
                counts[handle.spec.tenant] = counts.get(handle.spec.tenant, 0) + 1
        return counts

    def submit(self, body: Dict[str, Any]) -> CampaignHandle:
        """Validate, admit (quota), build, and start one campaign."""
        spec = CampaignSpec.from_request(body, self.config)
        with self._lock:
            if self.draining:
                raise Draining("daemon is draining; not accepting campaigns")
            active = self._active_counts()
            if sum(active.values()) >= self.config.max_campaigns_total:
                raise QuotaExceeded(
                    f"daemon at capacity ({self.config.max_campaigns_total} "
                    "active campaigns)")
            if active.get(spec.tenant, 0) >= self.config.max_campaigns_per_tenant:
                raise QuotaExceeded(
                    f"tenant {spec.tenant!r} at quota "
                    f"({self.config.max_campaigns_per_tenant} active campaigns)")
            self._next_id += 1
            campaign_id = f"c{self._next_id:06d}"
            handle = self._build(campaign_id, spec)
            self._handles[campaign_id] = handle
        handle.start()
        return handle

    def _build(self, campaign_id: str, spec: CampaignSpec) -> CampaignHandle:
        from repro.app.builder import build_application

        view = NamespacedStore(self.store, spec.tenant, campaign_id)
        app = build_application(
            store=view,
            grid=self.config.grid,
            adapter=self.adapter.view(spec.tenant),
            workflow=spec.workflow,
            seed=spec.seed,
        )
        return CampaignHandle(campaign_id, spec, app, view)

    # --- lookup and steering ---------------------------------------------

    def get(self, campaign_id: str) -> CampaignHandle:
        with self._lock:
            handle = self._handles.get(campaign_id)
        if handle is None:
            raise UnknownCampaign(f"no campaign {campaign_id!r}")
        return handle

    def list(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            handles = list(self._handles.values())
        rows = [h.snapshot() for h in handles
                if tenant is None or h.spec.tenant == tenant]
        return sorted(rows, key=lambda r: r["id"])

    def delete(self, campaign_id: str) -> Dict[str, Any]:
        """Forget a *terminal* campaign and purge its keyspace."""
        with self._lock:
            handle = self._handles.get(campaign_id)
            if handle is None:
                raise UnknownCampaign(f"no campaign {campaign_id!r}")
            if not handle.state.is_terminal:
                raise IllegalTransition(
                    f"campaign {campaign_id} is {handle.state.value}; only "
                    "terminal campaigns can be deleted (cancel it first)")
            del self._handles[campaign_id]
        handle.join(timeout=30.0)
        try:
            purged = handle.store_view.purge()
        except StoreUnavailable as exc:
            # A fully-down replica window makes the purge scan blind to
            # part of the keyspace. Reinstate the handle (unless a
            # concurrent create reused the id) so the client can retry
            # the DELETE once the store heals, and answer 503 rather
            # than an opaque 500.
            with self._lock:
                self._handles.setdefault(campaign_id, handle)
            raise StoreDegraded(
                f"campaign {campaign_id} not purged: {exc}; "
                "retry the DELETE when the store is healthy") from exc
        return {"id": campaign_id, "purged_keys": purged}

    # --- tenancy ----------------------------------------------------------

    def tenants(self) -> List[Dict[str, Any]]:
        """Per-tenant usage: campaigns by state, quota, fair-share stats."""
        with self._lock:
            handles = list(self._handles.values())
        shares = self.adapter.share_stats()
        by_tenant: Dict[str, Dict[str, Any]] = {}
        for handle in handles:
            tenant = handle.spec.tenant
            row = by_tenant.setdefault(tenant, {
                "tenant": tenant,
                "campaigns": {},
                "active": 0,
                "quota": self.config.max_campaigns_per_tenant,
            })
            state = handle.state.value
            row["campaigns"][state] = row["campaigns"].get(state, 0) + 1
            if not handle.state.is_terminal:
                row["active"] += 1
        for tenant, stats in shares.items():
            by_tenant.setdefault(tenant, {
                "tenant": tenant, "campaigns": {}, "active": 0,
                "quota": self.config.max_campaigns_per_tenant,
            })["share"] = stats
        return sorted(by_tenant.values(), key=lambda r: r["tenant"])

    # --- daemon lifecycle -------------------------------------------------

    def drain(self) -> Dict[str, Any]:
        """Refuse new submissions; running campaigns finish naturally."""
        with self._lock:
            self.draining = True
            active = sum(self._active_counts().values())
        return {"draining": True, "active_campaigns": active}

    def health(self) -> Dict[str, Any]:
        with self._lock:
            states: Dict[str, int] = {}
            for handle in self._handles.values():
                states[handle.state.value] = states.get(handle.state.value, 0) + 1
            draining = self.draining
        health_fn = getattr(self.store, "replica_health", None)
        replicas = health_fn() if callable(health_fn) else {}
        store_ok = (replicas.get("up", 1) == replicas.get("nshards", 1)) \
            if replicas else True
        return {
            "status": "ok" if store_ok else "degraded",
            "uptime_seconds": time.time() - self.started_at,
            "draining": draining,
            "campaigns": states,
            "store": {"ok": store_ok, "replicas": replicas},
            "pool": self.adapter.share_stats(),
        }

    def ready(self) -> bool:
        """Readiness = accepting submissions (healthy and not draining)."""
        with self._lock:
            return not self.draining

    def shutdown(self, timeout: float = 30.0) -> None:
        """Cancel whatever still runs, drain workers, release the store."""
        with self._lock:
            self.draining = True
            handles = list(self._handles.values())
        for handle in handles:
            with handle._cond:
                if not handle.state.is_terminal:
                    try:
                        handle._transition(CampaignState.CANCELLED)
                    except IllegalTransition:  # pragma: no cover - racing DONE
                        pass
        for handle in handles:
            handle.join(timeout=timeout)
        self.adapter.shutdown()
        if self.owns_store:
            self.store.close()
