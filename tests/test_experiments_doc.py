"""Executes every Python code block in EXPERIMENTS.md.

Same promise as ``test_extending_doc.py`` makes for the extension
guide: any walkthrough EXPERIMENTS.md presents as runnable is run
verbatim here, so the experiment record cannot drift from the code.
"""

import os
import re

import pytest

DOC = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")


def code_blocks():
    with open(DOC, encoding="utf-8") as fh:
        text = fh.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


BLOCKS = code_blocks()


def test_doc_has_expected_number_of_examples():
    assert len(BLOCKS) == 1  # the service-submission walkthrough


@pytest.mark.service
@pytest.mark.parametrize("index", range(len(BLOCKS)))
def test_code_block_runs(index):
    namespace = {"__name__": f"experiments_block_{index}"}
    exec(compile(BLOCKS[index], f"EXPERIMENTS.md[block {index}]", "exec"),
         namespace)
