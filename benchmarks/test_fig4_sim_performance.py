"""Fig. 4: per-scale simulation performance distributions.

Paper: continuum performance is multi-modal (one mode per allocation
size, ~0.96 ms/day at the full 3600 cores); CG clusters tightly around
~1.04 µs/day at ~140k particles (with a slow MPI-bug epoch); AA around
~13.98 ns/day at ~1.575M atoms — all with slow-run tails.
"""

import numpy as np
from conftest import report

from repro.util.stats import summarize


def _by_scale(campaign_result, scale):
    return [s for s in campaign_result.perf_samples if s.scale == scale]


def test_fig4_continuum_performance(campaign_result, benchmark):
    samples = _by_scale(campaign_result, "continuum")
    rates = np.array([s.rate for s in samples])

    stats = benchmark(lambda: summarize(rates))
    # One sample per run; modes follow the allocation sizes in Table 1.
    by_cores = {}
    for s in samples:
        by_cores.setdefault(int(s.system_size), []).append(s.rate)
    lines = [f"continuum runs: {len(samples)}"]
    for cores in sorted(by_cores):
        vals = np.array(by_cores[cores])
        lines.append(f"  {cores:>5} cores: {vals.mean():.3f} ms/day "
                     f"(n={vals.size})")
    lines.append(f"overall: mean {stats.mean:.3f}, max {stats.maximum:.3f} ms/day "
                 "(paper: ~0.96 ms/day at 3600 cores)")
    report("fig4_continuum", lines)

    assert len(by_cores) >= 3  # multi-modal: one mode per allocation size
    biggest = max(by_cores)
    assert np.mean(by_cores[biggest]) == max(
        np.mean(v) for v in by_cores.values()
    )  # the full allocation is the fastest mode
    assert 0.85 <= np.mean(by_cores[biggest]) <= 1.05


def test_fig4_cg_performance(campaign_result, benchmark):
    samples = _by_scale(campaign_result, "cg")
    rates = np.array([s.rate for s in samples])
    sizes = np.array([s.system_size for s in samples])

    stats = benchmark(lambda: summarize(rates))
    lines = [
        f"CG sims: {rates.size:,}",
        f"system size: {sizes.mean():,.0f} ± {sizes.std():,.0f} particles "
        "(paper: ~140k)",
        f"rate: mean {stats.mean:.3f}, median {stats.median:.3f}, "
        f"min {stats.minimum:.3f}, max {stats.maximum:.3f} us/day "
        "(paper: ~1.04 us/day, with a ~20% slow epoch)",
    ]
    report("fig4_cg", lines)

    assert abs(sizes.mean() - 140_000) < 2_000
    assert 0.9 <= stats.median <= 1.1
    # The distribution is tight around the mean but has a slow tail
    # (the MPI-bug epoch plus slow runs).
    assert stats.std / stats.mean < 0.15
    assert stats.minimum < 0.85 * stats.median


def test_fig4_aa_performance(campaign_result, benchmark):
    samples = _by_scale(campaign_result, "aa")
    rates = np.array([s.rate for s in samples])
    sizes = np.array([s.system_size for s in samples])

    stats = benchmark(lambda: summarize(rates))
    lines = [
        f"AA sims: {rates.size:,}",
        f"system size: {sizes.mean()/1e6:.3f}M ± {sizes.std()/1e3:.0f}k atoms "
        "(paper: ~1.575M)",
        f"rate: mean {stats.mean:.2f}, median {stats.median:.2f}, "
        f"min {stats.minimum:.2f}, max {stats.maximum:.2f} ns/day "
        "(paper: ~13.98 ns/day)",
    ]
    report("fig4_aa", lines)

    assert abs(sizes.mean() - 1_575_000) < 20_000
    assert 13.0 <= stats.median <= 15.0
    assert stats.std / stats.mean < 0.10
    assert stats.minimum < 0.9 * stats.median  # slow tail


def test_fig4_mpi_bug_epoch_visible(campaign_result, benchmark):
    """§5.1: 'about one third into the simulation, we identified an
    issue ... causing it to deliver almost 20% less'. Early CG samples
    are measurably slower."""
    samples = _by_scale(campaign_result, "cg")
    rates = np.array([s.rate for s in samples])
    n = rates.size

    def epoch_means():
        return rates[: n // 4].mean(), rates[-n // 4:].mean()

    early, late = benchmark(epoch_means)
    report(
        "fig4_mpi_bug",
        [f"early-epoch CG rate {early:.3f} us/day vs late {late:.3f} us/day "
         f"({(1 - early / late):.0%} slower; paper: ~20%)"],
    )
    assert early < late
    assert 0.08 <= 1 - early / late <= 0.30
