"""Tests for the queue manager and the Flux-like instance."""

import pytest

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.queue import QueueCosts, QueueManager, QueueMode
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop

GPU_JOB = JobSpec(name="cg-sim", ncores=3, ngpus=1, duration=100.0)


def make_queue(nnodes=2, mode=QueueMode.SYNC, costs=None):
    matcher = Matcher(summit_like(nnodes), MatchPolicy.FIRST_MATCH)
    return QueueManager(matcher, mode=mode, costs=costs or QueueCosts())


class TestQueueManager:
    def test_submit_lands_in_inbox(self):
        q = make_queue()
        q.submit(JobRecord(spec=GPU_JOB))
        assert q.backlog == 1

    def test_cycle_intakes_then_matches(self):
        q = make_queue()
        rec = JobRecord(spec=GPU_JOB)
        q.submit(rec)
        report = q.cycle(now=5.0, budget=10.0)
        assert report.intaken == 1
        assert report.started == [rec]
        assert rec.state is JobState.RUNNING
        assert rec.start_time == 5.0

    def test_fcfs_no_backfill(self):
        # Head job needs 3 whole nodes on a 2-node machine; the 1-GPU job
        # behind it must NOT jump the queue.
        q = make_queue(nnodes=2)
        big = JobRecord(spec=JobSpec(name="big", nnodes=3, ncores=1))
        small = JobRecord(spec=GPU_JOB)
        q.submit(big)
        q.submit(small)
        report = q.cycle(now=0.0, budget=100.0)
        assert report.started == []
        assert small.state is JobState.PENDING

    def test_unblocked_head_lets_rest_flow(self):
        q = make_queue(nnodes=3)
        jobs = [JobRecord(spec=GPU_JOB) for _ in range(5)]
        for j in jobs:
            q.submit(j)
        report = q.cycle(now=0.0, budget=100.0)
        assert len(report.started) == 5

    def test_intake_budget_limits_throughput(self):
        costs = QueueCosts(submit_cost=1.0)
        q = make_queue(costs=costs)
        for _ in range(10):
            q.submit(JobRecord(spec=GPU_JOB))
        report = q.cycle(now=0.0, budget=3.0)
        assert report.intaken == 3  # only what the budget allows

    def test_sync_mode_starves_matching(self):
        # Sync: intake uses the whole budget, nothing gets matched.
        costs = QueueCosts(submit_cost=1.0)
        q = make_queue(mode=QueueMode.SYNC, costs=costs)
        for _ in range(20):
            q.submit(JobRecord(spec=GPU_JOB))
        report = q.cycle(now=0.0, budget=5.0)
        assert report.intaken == 5
        assert report.started == []

    def test_async_mode_matches_despite_intake_pressure(self):
        costs = QueueCosts(submit_cost=1.0)
        q = make_queue(mode=QueueMode.ASYNC, costs=costs)
        for _ in range(20):
            q.submit(JobRecord(spec=GPU_JOB))
        report = q.cycle(now=0.0, budget=5.0)
        assert report.intaken == 5
        assert len(report.started) > 0  # matcher got its own budget

    def test_finish_releases_resources(self):
        q = make_queue(nnodes=1)
        rec = JobRecord(spec=GPU_JOB)
        q.submit(rec)
        q.cycle(now=0.0, budget=10.0)
        q.finish(rec, now=100.0)
        assert rec.state is JobState.COMPLETED
        assert rec.end_time == 100.0
        assert q.matcher.graph.used_gpus == 0

    def test_finish_unknown_job_raises(self):
        q = make_queue()
        with pytest.raises(KeyError):
            q.finish(JobRecord(spec=GPU_JOB), now=0.0)

    def test_cancel_pending(self):
        q = make_queue()
        rec = JobRecord(spec=GPU_JOB)
        q.submit(rec)
        assert q.cancel_pending(rec, now=1.0)
        assert rec.state is JobState.CANCELLED
        assert q.backlog == 0

    def test_cancel_not_queued_returns_false(self):
        q = make_queue()
        assert not q.cancel_pending(JobRecord(spec=GPU_JOB), now=1.0)


class TestFluxInstance:
    def test_job_lifecycle(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop, policy=MatchPolicy.FIRST_MATCH)
        rec = flux.submit(GPU_JOB)
        assert flux.poll(rec.job_id) is JobState.PENDING
        loop.run_until(10.0)
        assert flux.poll(rec.job_id) is JobState.RUNNING
        loop.run_until(200.0)
        assert flux.poll(rec.job_id) is JobState.COMPLETED
        assert rec.run_time == pytest.approx(100.0)

    def test_completion_callback_fires(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        done = []
        flux.submit(GPU_JOB, on_complete=done.append)
        loop.run_until(500.0)
        assert len(done) == 1
        assert done[0].state is JobState.COMPLETED

    def test_many_jobs_fill_and_turn_over(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(2), loop)  # 12 GPUs
        recs = [flux.submit(GPU_JOB) for _ in range(20)]
        loop.run_until(2000.0)
        assert all(r.state is JobState.COMPLETED for r in recs)
        # With 12 GPUs, the last 8 jobs had to wait for turnover.
        waits = [r.wait_time for r in recs]
        assert max(waits) > min(waits)

    def test_cancel_pending_job(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        recs = [flux.submit(GPU_JOB) for _ in range(10)]
        flux.cancel(recs[-1].job_id)
        loop.run_until(1000.0)
        assert recs[-1].state is JobState.CANCELLED

    def test_cancel_running_job_releases_gpu(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        rec = flux.submit(JobSpec(name="forever", ncores=1, ngpus=1, duration=None))
        loop.run_until(10.0)
        assert rec.state is JobState.RUNNING
        flux.cancel(rec.job_id)
        assert rec.state is JobState.CANCELLED
        assert flux.graph.used_gpus == 0

    def test_cancel_terminal_is_noop(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        rec = flux.submit(GPU_JOB)
        loop.run_until(500.0)
        flux.cancel(rec.job_id)
        assert rec.state is JobState.COMPLETED

    def test_drain_keeps_running_jobs(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(2), loop, policy=MatchPolicy.LOW_ID_FIRST)
        rec = flux.submit(GPU_JOB)
        loop.run_until(10.0)
        node = rec.allocation.node_ids()[0]
        flux.drain_node(node)
        assert rec.state is JobState.RUNNING  # existing job keeps running
        rec2 = flux.submit(GPU_JOB)
        loop.run_until(20.0)
        assert rec2.allocation.node_ids()[0] != node  # new work avoids it

    def test_fail_node_kills_jobs_and_notifies(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        failures = []
        rec = flux.submit(GPU_JOB, on_complete=failures.append)
        loop.run_until(10.0)
        victims = flux.fail_node(0)
        assert victims == [rec]
        assert rec.state is JobState.FAILED
        assert failures and failures[0].state is JobState.FAILED

    def test_counts_snapshot(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        for _ in range(8):
            flux.submit(GPU_JOB)
        loop.run_until(10.0)
        counts = flux.counts()
        assert counts["running"] == 6  # machine has 6 GPUs
        assert counts["pending"] == 2

    def test_running_by_name(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        flux.submit(GPU_JOB)
        flux.submit(JobSpec(name="aa-sim", ncores=3, ngpus=1, duration=50.0))
        loop.run_until(10.0)
        assert flux.running_by_name() == {"cg-sim": 1, "aa-sim": 1}

    def test_start_log_accumulates(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        for _ in range(3):
            flux.submit(GPU_JOB)
        loop.run_until(20.0)
        assert len(flux.start_log) == 3

    def test_history_rows_replayable(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(1), loop)
        flux.submit(GPU_JOB)
        loop.run_until(500.0)
        rows = flux.history_rows()
        assert len(rows) == 1
        assert rows[0]["state"] == "completed"
        assert rows[0]["start"] is not None

    def test_invalid_cycle_interval(self):
        with pytest.raises(ValueError):
            FluxInstance(summit_like(1), cycle_interval=0)
