"""The scheduler facade: a single-user Flux-like instance.

§4.3: Flux's "single-user mode ... allows the user to instantiate an
'isolated HPC system' within a standard batch allocation, facilitating
complete control over jobs within the workflow." :class:`FluxInstance`
is that isolated system: it owns a resource graph, a matcher, a queue
manager and a discrete-event loop, and exposes submit/poll/cancel plus
node-failure drain.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import trace
from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.queue import QueueCosts, QueueManager, QueueMode
from repro.sched.resources import ResourceGraph
from repro.util.clock import EventLoop

__all__ = ["FluxInstance"]


class FluxInstance:
    """A self-contained scheduler over a resource graph and event loop.

    Parameters
    ----------
    graph:
        The resources this instance manages (the batch allocation).
    loop:
        Discrete-event loop providing virtual time. Jobs with a
        ``duration`` complete automatically after that much time.
    policy:
        Matcher policy (exhaustive low-id-first vs greedy first-match).
    mode:
        Q↔R communication mode (sync reproduces the Fig. 6 chunking).
    cycle_interval:
        Seconds of virtual time between scheduling cycles.
    """

    def __init__(
        self,
        graph: ResourceGraph,
        loop: Optional[EventLoop] = None,
        policy: MatchPolicy = MatchPolicy.LOW_ID_FIRST,
        mode: QueueMode = QueueMode.SYNC,
        costs: Optional[QueueCosts] = None,
        cycle_interval: float = 5.0,
        partitioned: bool = True,
        backfill_window: int = 0,
        preemption: bool = False,
    ) -> None:
        if cycle_interval <= 0:
            raise ValueError("cycle_interval must be positive")
        self.graph = graph
        self.loop = loop if loop is not None else EventLoop()
        self.matcher = Matcher(graph, policy, partitioned=partitioned)
        self.queue = QueueManager(self.matcher, mode=mode, costs=costs,
                                  backfill_window=backfill_window,
                                  preemption=preemption)
        self.cycle_interval = cycle_interval
        self.jobs: Dict[int, JobRecord] = {}
        self.start_log: List[tuple] = []  # (time, job_id, name) — Fig. 6 series
        self._on_complete: Dict[int, Callable[[JobRecord], None]] = {}
        self._cycling = False

    # --- submission API ----------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        on_complete: Optional[Callable[[JobRecord], None]] = None,
    ) -> JobRecord:
        """Submit a job; returns its record immediately (state PENDING)."""
        record = JobRecord(spec=spec, submit_time=self.loop.now)
        self.jobs[record.job_id] = record
        self.queue.submit(record)
        if on_complete is not None:
            self._on_complete[record.job_id] = on_complete
        self._ensure_cycling()
        return record

    def poll(self, job_id: int) -> JobState:
        """Current state of a job."""
        return self.jobs[job_id].state

    def cancel(self, job_id: int) -> None:
        """Cancel a pending or running job; the completion callback (if
        any) fires with the CANCELLED record so trackers stay in sync."""
        record = self.jobs[job_id]
        if record.state.is_terminal:
            return
        if record.state is JobState.RUNNING:
            self.queue.finish(record, self.loop.now, JobState.CANCELLED)
        elif not self.queue.cancel_pending(record, self.loop.now):
            # The queue no longer holds the record (e.g. a cycle in
            # flight popped it between our state check and now). Force
            # the terminal state here — the callback must never observe
            # a live-looking cancelled job, and a forced-terminal record
            # is skipped by _complete if the cycle does start it.
            record.state = JobState.CANCELLED
            record.end_time = self.loop.now
        callback = self._on_complete.pop(record.job_id, None)
        if callback is not None:
            callback(record)

    # --- resilience -------------------------------------------------------------

    def drain_node(self, node_id: int) -> None:
        """Stop placing new work on a failed node; running jobs continue.

        This is Flux's failure response as the paper describes it:
        "detect node failures and ... drain the failed nodes so that no
        new jobs can be scheduled while keeping the existing jobs
        running."
        """
        self.graph.drain(node_id)

    def fail_node(self, node_id: int) -> List[JobRecord]:
        """Hard node failure: drain it and fail every job running there."""
        self.graph.drain(node_id)
        victims = [
            rec
            for rec in list(self.queue.running.values())
            if rec.allocation is not None and node_id in rec.allocation.node_ids()
        ]
        for rec in victims:
            self.queue.finish(rec, self.loop.now, JobState.FAILED)
            callback = self._on_complete.pop(rec.job_id, None)
            if callback is not None:
                callback(rec)
        return victims

    # --- scheduling cycles --------------------------------------------------------

    def _ensure_cycling(self) -> None:
        if not self._cycling:
            self._cycling = True
            self.loop.schedule_in(self.cycle_interval, self._cycle, label="flux-cycle")

    def _cycle(self) -> None:
        with trace.span("schedule.cycle") as sp:
            report = self.queue.cycle(self.loop.now, budget=self.cycle_interval)
            if sp:
                sp.set(started=len(report.started), backlog=self.queue.backlog)
        for record in report.started:
            self.start_log.append((record.start_time, record.job_id, record.spec.name))
            if record.spec.duration is not None:
                self.loop.schedule_in(
                    record.spec.duration, self._complete, record, record.start_time,
                    label="job-done"
                )
        if self.queue.backlog or self.queue.running:
            self.loop.schedule_in(self.cycle_interval, self._cycle, label="flux-cycle")
        else:
            self._cycling = False

    def _complete(self, record: JobRecord, expected_start: Optional[float] = None) -> None:
        if record.state is not JobState.RUNNING:
            return  # already cancelled, failed, or preempted back to PENDING
        if expected_start is not None and record.start_time != expected_start:
            # The job was preempted and has since been requeued and
            # restarted: this completion belongs to the evicted run.
            # The restart scheduled its own completion for the full
            # duration, so dropping the stale event is the requeue
            # contract — preempted work runs again from the beginning.
            return
        self.queue.finish(record, self.loop.now, JobState.COMPLETED)
        callback = self._on_complete.pop(record.job_id, None)
        if callback is not None:
            callback(record)

    # --- introspection ------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Snapshot of job-state counts (the WM's profiling poll)."""
        out = {state.value: 0 for state in JobState}
        for record in self.jobs.values():
            out[record.state.value] += 1
        return out

    def running_by_name(self) -> Dict[str, int]:
        """Running-job counts per job type (for Fig. 6-style series)."""
        out: Dict[str, int] = {}
        for record in self.queue.running.values():
            out[record.spec.name] = out.get(record.spec.name, 0) + 1
        return out

    def history_rows(self) -> List[dict]:
        """Replayable scheduler history (§4.4 'elaborate history files')."""
        return [self.jobs[jid].to_dict() for jid in sorted(self.jobs)]
