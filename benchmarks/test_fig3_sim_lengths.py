"""Fig. 3: distributions of CG and AA simulation lengths.

Paper: 34,523 CG sims up to 5 µs (y-peak ~15k in the lowest bins, mass
at the 5 µs cap) and 9,632 AA sims in the 50-65 ns cap band — "fewer
but longer simulations" than the previous campaign.
"""

import numpy as np
from conftest import report

from repro.util.stats import Histogram


def test_fig3_cg_length_distribution(campaign_result, benchmark):
    lengths = np.array(campaign_result.cg_lengths_us)

    def build_hist():
        h = Histogram.linear(0.0, 5.0, 10)
        h.add(lengths)
        return h

    hist = benchmark(build_hist)
    lines = [f"CG simulations: {lengths.size:,} (paper: 34,523)",
             f"mean length {lengths.mean():.2f} us (paper: ~2.8 us)"]
    peak = max(int(hist.counts.max()), 1)
    for lo, hi, n in hist.as_series():
        lines.append(f"  {lo:4.1f}-{hi:4.1f} us | {'#' * int(40 * n / peak)} {n}")
    report("fig3_cg_lengths", lines)

    # Shape: a broad distribution over (0, 5] with visible mass both at
    # short lengths (late starters) and at the cap (finished sims).
    assert lengths.min() > 0 and lengths.max() <= 5.0
    assert 1.5 <= lengths.mean() <= 4.0
    assert hist.counts[0] > 0  # short partials exist
    assert hist.counts[-1] > 0.1 * lengths.size  # a cap spike exists
    assert np.count_nonzero(hist.counts) >= 8  # spread across bins


def test_fig3_aa_length_distribution(campaign_result, benchmark):
    lengths = np.array(campaign_result.aa_lengths_ns)

    def build_hist():
        h = Histogram.linear(0.0, 70.0, 14)
        h.add(lengths)
        return h

    hist = benchmark(build_hist)
    lines = [f"AA simulations: {lengths.size:,} (paper: 9,632)",
             f"mean length {lengths.mean():.1f} ns (paper: ~33.8 ns)"]
    peak = max(int(hist.counts.max()), 1)
    for lo, hi, n in hist.as_series():
        lines.append(f"  {lo:4.0f}-{hi:4.0f} ns | {'#' * int(40 * n / peak)} {n}")
    report("fig3_aa_lengths", lines)

    assert lengths.min() > 0 and lengths.max() <= 65.0
    assert 20.0 <= lengths.mean() <= 50.0
    # Completed sims land in the 50-65 ns cap band, like the paper.
    in_cap_band = np.mean((lengths >= 50) & (lengths <= 65))
    assert in_cap_band > 0.2
    # And the campaign ran fewer-but-longer AA than CG in count terms.
    assert lengths.size < len(campaign_result.cg_lengths_us)
