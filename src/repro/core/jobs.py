"""Task 3: the generic, configurable Job Tracker.

§4.3/§4.4: "to support handling arbitrary types of jobs, we provide a
generic and abstract Job Tracker that can be customized using a
combination of inherited classes and configuration files. ... the WM
regularly scans all running jobs to determine completion (either
success or failure) and submits new jobs (or resubmits failed ones) to
re-engage resources as soon as they become available."

One :class:`JobTracker` manages one job *type* (the campaign has four:
CG setup, CG sim/analysis, AA setup, AA sim/analysis). The tracker
owns the explicit simulation-to-job mapping (§4.3): every submission
carries a simulation tag, and retries keep the tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.sched.adapter import SchedulerAdapter
from repro.sched.jobspec import JobRecord, JobSpec, JobState

__all__ = ["JobTypeConfig", "JobTracker"]


@dataclass(frozen=True)
class JobTypeConfig:
    """Resource/runtime template for one job type (the config-file part).

    The paper's placements on Summit (§4.3): both simulation types use
    1 GPU + 2 cache-sharing cores with analysis on cores near the PCIe
    bus; setup jobs are CPU-only with 24 cores on one node.
    """

    name: str
    ncores: int = 1
    ngpus: int = 0
    nnodes: int = 1
    max_retries: int = 2
    duration_sampler: Optional[Callable[[np.random.Generator], float]] = None
    """Samples the job's virtual-time duration; None = runs until cancelled."""

    def make_spec(self, tag: str, rng: np.random.Generator,
                  duration: Optional[float] = None) -> JobSpec:
        if duration is None and self.duration_sampler is not None:
            duration = float(self.duration_sampler(rng))
        return JobSpec(
            name=self.name,
            ncores=self.ncores,
            ngpus=self.ngpus,
            nnodes=self.nnodes,
            duration=duration,
            tag=tag,
        )


class JobTracker:
    """Tracks all jobs of one type through an adapter.

    Completion callbacks fire with the record; failures are retried up
    to ``max_retries`` with the same tag (the "resubmits failed ones"
    path), then surrendered to :attr:`abandoned`.
    """

    def __init__(
        self,
        config: JobTypeConfig,
        adapter: SchedulerAdapter,
        rng: Optional[np.random.Generator] = None,
        on_success: Optional[Callable[[JobRecord], None]] = None,
        on_abandon: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config
        self.adapter = adapter
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.on_success = on_success
        self.on_abandon = on_abandon
        self.active: Dict[int, JobRecord] = {}
        self.completed: List[JobRecord] = []
        self.abandoned: List[str] = []  # tags that exhausted retries
        self._retries: Dict[str, int] = {}
        self._tag_hooks: Dict[str, List[Callable[[JobRecord], None]]] = {}
        self._settle_hooks: Dict[str, Callable[[JobRecord], None]] = {}

    # --- submission ------------------------------------------------------

    def launch(
        self,
        tag: str,
        fn: Optional[Callable[[], Any]] = None,
        duration: Optional[float] = None,
        on_settled: Optional[Callable[[JobRecord], None]] = None,
    ) -> JobRecord:
        """Submit one job for simulation ``tag``.

        ``on_settled`` fires exactly once when the tag reaches a
        *terminal* outcome — completed, abandoned after exhausting
        retries, or cancelled — never on a failure that will be
        resubmitted. It is keyed by tag so retries carry it: the
        coroutine WM's round barrier awaits these settle events where
        the threaded WM joined the pool.
        """
        if on_settled is not None:
            self._settle_hooks[tag] = on_settled
        spec = self.config.make_spec(tag, self.rng, duration=duration)
        record = self.adapter.submit(spec, fn=fn, on_complete=self._job_done)
        self.active[record.job_id] = record
        return record

    def when_done(self, tag: str, callback: Callable[[JobRecord], None]) -> None:
        """Fire ``callback(record)`` when job ``tag`` completes successfully.

        This is how job interdependence is expressed (§4.4 Task 3: "the
        interdependence of jobs" is a Job Tracker configuration): chain
        a dependent launch onto its prerequisite, across trackers::

            setup.when_done("patch-7", lambda rec: cg.launch("sim-7"))

        Hooks fire once, after the tracker's own bookkeeping.
        """
        self._tag_hooks.setdefault(tag, []).append(callback)

    def _job_done(self, record: JobRecord) -> None:
        self.active.pop(record.job_id, None)
        tag = record.spec.tag or ""
        if record.state is JobState.COMPLETED:
            self.completed.append(record)
            self._retries.pop(tag, None)
            if self.on_success is not None:
                self.on_success(record)
            for hook in self._tag_hooks.pop(tag, []):
                hook(record)
            self._settle(tag, record)
            return
        # FAILED (or CANCELLED by a node failure): retry with same tag.
        tries = self._retries.get(tag, 0)
        if record.state is JobState.FAILED and tries < self.config.max_retries:
            self._retries[tag] = tries + 1
            self.launch(tag, duration=record.spec.duration)
            return  # not settled: the resubmission carries the tag on
        if record.state is JobState.FAILED:
            self.abandoned.append(tag)
            if self.on_abandon is not None:
                self.on_abandon(tag)
        self._settle(tag, record)

    def _settle(self, tag: str, record: JobRecord) -> None:
        hook = self._settle_hooks.pop(tag, None)
        if hook is not None:
            hook(record)

    # --- scanning -------------------------------------------------------------

    def nactive(self) -> int:
        return len(self.active)

    def nrunning(self) -> int:
        return sum(1 for r in self.active.values() if r.state is JobState.RUNNING)

    def npending(self) -> int:
        return sum(1 for r in self.active.values() if r.state is JobState.PENDING)

    def tags_active(self) -> List[str]:
        return [r.spec.tag or "" for r in self.active.values()]

    def retries_used(self, tag: str) -> int:
        return self._retries.get(tag, 0)

    def cancel_all(self) -> int:
        """Cancel every active job (controlled shutdown); returns count."""
        n = 0
        for record in list(self.active.values()):
            self.adapter.cancel(record.job_id)
            n += 1
        return n
