"""Extension bench: the asyncio NetKV transport at scale.

Two claims from the event-loop rewrite are measured here and recorded
to ``BENCH_netkv_cluster.json`` under ``async_transport``:

1. **Connection scale** — one async shard holds 100 / 1k / 10k
   concurrent connections and still serves requests on a sample of
   them. A connection costs one protocol object, not one thread; the
   thread-per-connection server could not survive the top rung. The
   10k rung opens its client sockets from a *subprocess* so the two
   sides' file descriptors (10k server-side + 10k client-side) don't
   share one process's fd budget.
2. **Small-GET throughput** — the wire frames are identical on both
   sides (single-key GETs), but the transports' client models differ
   by design: the threaded transport's pool is blocking
   request-per-response, while an event-loop client keeps a window of
   requests in flight per connection and the async server answers each
   burst with one vectored write. That window is what multiplies
   GETs/s over the threaded baseline.
3. **Coalescing telemetry** — many concurrent blocking callers through
   one shared channel fold into MGET wire batches while a round trip
   is in flight; the fold counters prove the facade pipelines even
   when its callers can't.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import textwrap
import threading
import time

import pytest
from conftest import record_json, report

from repro.datastore.aio import AsyncClientChannel
from repro.datastore.netkv import (
    NetKVClient,
    NetKVServer,
    ThreadedNetKVServer,
    TransportConfig,
)

pytestmark = [pytest.mark.multi_server, pytest.mark.async_transport]

NKEYS = 512
PAYLOAD = b"v" * 24

_SWEEP_CHILD = textwrap.dedent("""
    import json, socket, sys, time
    host, port, n = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    socks = []
    t0 = time.perf_counter()
    for _ in range(n):
        socks.append(socket.create_connection((host, port), timeout=30))
    connect_s = time.perf_counter() - t0
    # Every connection stays open while a spread sample proves the
    # server is actually serving, not just accepting.
    step = max(1, n // 100)
    pinged = 0
    t0 = time.perf_counter()
    for s in socks[::step]:
        s.sendall(b"PING\\n")
        fh = s.makefile("rb")
        header = fh.readline()
        assert header.startswith(b"OK "), header
        assert fh.read(int(header[3:])) == b"PONG"
        pinged += 1
    ping_s = time.perf_counter() - t0
    print(json.dumps({"connected": len(socks), "pinged": pinged,
                      "connect_s": connect_s, "ping_s": ping_s}))
""")


def _preload(set_one):
    for i in range(NKEYS):
        set_one(f"small/{i:04d}", PAYLOAD)


def _pipelined_gets(address, nconn, depth, per_conn):
    """GETs/s of an event-loop client holding ``depth`` small GETs in
    flight on each of ``nconn`` connections (the async transport's
    natural client shape)."""
    host, port = address
    frame = len(b"OK %d\n" % len(PAYLOAD)) + len(PAYLOAD)

    class _Load(asyncio.Protocol):
        def __init__(self, idx, done):
            self.idx, self.done = idx, done
            self.sent = self.recvd = 0
            self.buf = bytearray()
            self.transport = None

        def connection_made(self, transport):
            self.transport = transport
            self._fill()

        def _fill(self):
            n = min(depth - (self.sent - self.recvd), per_conn - self.sent)
            if n > 0:
                base = self.idx + self.sent
                self.transport.write(b"".join(
                    b"GET small/%04d\n" % ((base + j) % NKEYS)
                    for j in range(n)))
                self.sent += n

        def data_received(self, data):
            self.buf += data
            nframes = len(self.buf) // frame
            if nframes:
                del self.buf[:nframes * frame]
                self.recvd += nframes
                if self.recvd >= per_conn:
                    self.done.set_result(None)
                    self.transport.close()
                    return
                self._fill()

        def connection_lost(self, exc):
            if not self.done.done():
                self.done.set_exception(
                    exc or ConnectionError("server closed mid-run"))

    async def _run():
        loop = asyncio.get_running_loop()
        dones = []
        for i in range(nconn):
            done = loop.create_future()
            dones.append(done)
            await loop.create_connection(
                lambda i=i, d=done: _Load(i, d), host, port)
        t0 = time.perf_counter()
        await asyncio.gather(*dones)
        return nconn * per_conn / (time.perf_counter() - t0)

    return asyncio.run(_run())


def _hammer(get_one, nthreads, ops_per_thread):
    """ops/s of nthreads callers doing round-robin small GETs."""
    errors = []

    def worker(tid):
        try:
            for i in range(ops_per_thread):
                key = f"small/{(tid + i) % NKEYS:04d}"
                assert get_one(tid, key) == PAYLOAD
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(nthreads)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors[:1]
    return nthreads * ops_per_thread / elapsed


class TestConnectionSweep:
    def test_async_shard_holds_100_1k_10k_connections(self):
        server = NetKVServer().start()
        host, port = server.address
        rungs = {}
        try:
            for n in (100, 1_000, 10_000):
                proc = subprocess.run(
                    [sys.executable, "-c", _SWEEP_CHILD,
                     host, str(port), str(n)],
                    capture_output=True, text=True, timeout=300)
                assert proc.returncode == 0, proc.stderr[-2000:]
                row = json.loads(proc.stdout)
                assert row["connected"] == n
                assert row["pinged"] == min(100, n)
                rungs[str(n)] = {
                    "connect_s": round(row["connect_s"], 3),
                    "conns_per_s": round(n / row["connect_s"], 1),
                    "sampled_pings": row["pinged"],
                    "ping_s": round(row["ping_s"], 3),
                }
        finally:
            server.stop()
        report("ext_netkv_async_connections", [
            f"{n:>6s} conns: opened in {r['connect_s']:.2f} s "
            f"({r['conns_per_s']:,.0f}/s), "
            f"{r['sampled_pings']} sampled pings in {r['ping_s']:.2f} s"
            for n, r in rungs.items()
        ])
        record_json("BENCH_netkv_cluster.json", "async_transport_connections",
                    rungs)


class TestSmallGetThroughput:
    def test_async_transport_multiplies_threaded_gets_per_s(self):
        nthreads_threaded = 8
        total_ops = 16_000

        threaded_srv = ThreadedNetKVServer().start()
        clients = []
        try:
            clients = [NetKVClient(threaded_srv.address)
                       for _ in range(nthreads_threaded)]
            _preload(clients[0].set)
            threaded_rate = _hammer(
                lambda tid, key: clients[tid].get(key),
                nthreads_threaded, total_ops // nthreads_threaded)
        finally:
            for c in clients:
                c.close()
            threaded_srv.stop()

        async_srv = NetKVServer().start()
        try:
            seed = NetKVClient(async_srv.address)
            _preload(seed.set)
            seed.close()
            rungs = {}
            for nconn, depth in ((16, 64), (8, 128)):
                rate = _pipelined_gets(async_srv.address, nconn, depth,
                                       per_conn=total_ops // nconn * 4)
                rungs[f"{nconn}conns_x{depth}deep"] = round(rate, 1)
        finally:
            async_srv.stop()

        async_rate = max(rungs.values())
        speedup = async_rate / threaded_rate
        report("ext_netkv_async_throughput", [
            f"threaded ({nthreads_threaded} blocking clients)  "
            f"{threaded_rate:,.0f} GETs/s",
            *(f"async    ({shape.replace('_', ' ')})  {rate:,.0f} GETs/s"
              for shape, rate in rungs.items()),
            f"speedup              {speedup:.1f}x",
        ])
        record_json("BENCH_netkv_cluster.json", "async_transport_throughput", {
            "threaded_gets_per_s": round(threaded_rate, 1),
            "threaded_clients": nthreads_threaded,
            "async_gets_per_s": round(async_rate, 1),
            "async_rungs": rungs,
            "speedup": round(speedup, 2),
        })
        # The acceptance bar for the rewrite: in-flight request windows
        # must convert into a multiple of the blocking pool's rate.
        assert speedup >= 2.0

    def test_concurrent_callers_coalesce_into_wire_batches(self):
        nthreads, total_ops = 32, 8_000
        async_srv = NetKVServer().start()
        chan = AsyncClientChannel(async_srv.address, TransportConfig())
        try:
            _preload(chan.set)
            rate = _hammer(lambda tid, key: chan.get(key),
                           nthreads, total_ops // nthreads)
            folds = chan.stats.coalesced_requests
            folded_keys = chan.stats.coalesced_keys
        finally:
            chan.close()
            async_srv.stop()

        report("ext_netkv_async_coalescing", [
            f"facade rate          {rate:,.0f} GETs/s "
            f"({nthreads} blocking callers)",
            f"coalescing           {folds} folds absorbing "
            f"{folded_keys} single-key GETs",
        ])
        record_json("BENCH_netkv_cluster.json", "async_transport_coalescing", {
            "facade_gets_per_s": round(rate, 1),
            "callers": nthreads,
            "coalesced_requests": folds,
            "coalesced_keys": folded_keys,
            "ops": total_ops,
        })
        assert folds > 0
        assert folded_keys >= 2 * folds
