"""Equivalence of the incremental selection engine and the exact oracle.

The incremental farthest-point engine (per-queue min-dist caches folded
with the FPS recurrence, argmax picks, incremental index inserts) must
select the *identical id sequence* as the recompute-from-scratch
semantics the seed implementation used: rebuild-or-query the index over
the full selected set, rank every candidate, take the best. ``rank()``
is kept as exactly that recompute path, so the oracle here drives a
twin sampler through rank() + remove() + seed_selected() — same
public machinery, no cached novelty involved — and the two id
sequences are compared byte-for-byte.

Covered across all three index backends (including a partial-probe
approximate projection index, whose visibility rule both paths share):
single-queue workloads, multi-queue round-robin, eviction interleaved
with selection, and late-arriving candidates. A deterministic
ops-count regression test pins the amortized cost in exact operation
counts, so a perf regression fails tier-1 without wall-clock flakiness.
"""

import numpy as np
import pytest

from repro.sampling.ann import ExactIndex, KDTreeIndex, ProjectionIndex
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point

BACKENDS = {
    "exact": lambda: ExactIndex(),
    "kdtree": lambda: KDTreeIndex(),
    "kdtree-tiny-buffer": lambda: KDTreeIndex(pending_cap=4),  # forces flushes
    "projection-full-probe": lambda: ProjectionIndex(ncells=6, nprobe=6, seed=7),
    "projection-partial-probe": lambda: ProjectionIndex(ncells=6, nprobe=2, seed=7),
}


@pytest.fixture(params=list(BACKENDS), ids=list(BACKENDS))
def backend(request):
    return BACKENDS[request.param]


def oracle_select(s: FarthestPointSampler, k: int, queue=None):
    """Seed semantics: full re-rank before every pick (via rank())."""
    chosen = []
    names = [queue] if queue is not None else list(s.queues)
    cursor = 0
    while len(chosen) < k:
        for _ in range(len(names)):
            name = names[cursor % len(names)]
            cursor += 1
            if len(s.queues[name]):
                break
        else:
            break
        best, _novelty = s.rank(name)[0]
        s.remove(best.id, queue=name)
        s.seed_selected([best])
        chosen.append(best)
    return chosen


def make_pair(backend, dim=5, queues=None, queue_cap=35_000):
    """Two identically-configured samplers (indexes seeded identically)."""
    return (
        FarthestPointSampler(dim=dim, queues=queues, queue_cap=queue_cap,
                             index=backend()),
        FarthestPointSampler(dim=dim, queues=queues, queue_cap=queue_cap,
                             index=backend()),
    )


def feed_both(a, b, points, queue=None):
    for p in points:
        if queue is None:
            a.add(p)
            b.add(p)
        else:
            a.add(p, queue=queue)
            b.add(p, queue=queue)


def pts(rng, n, dim, prefix="p"):
    return [Point(id=f"{prefix}{i}", coords=rng.random(dim)) for i in range(n)]


class TestSingleQueue:
    def test_random_workload_identical_sequence(self, backend):
        rng = np.random.default_rng(11)
        inc, twin = make_pair(backend)
        feed_both(inc, twin, pts(rng, 300, 5))
        got = [p.id for p in inc.select(40)]
        want = [p.id for p in oracle_select(twin, 40)]
        assert got == want

    def test_repeated_small_selects_match_one_oracle_run(self, backend):
        rng = np.random.default_rng(12)
        inc, twin = make_pair(backend)
        feed_both(inc, twin, pts(rng, 200, 5))
        got = []
        for _ in range(10):
            got += [p.id for p in inc.select(3)]
        want = [p.id for p in oracle_select(twin, 30)]
        assert got == want

    def test_late_arrivals_between_selections(self, backend):
        rng = np.random.default_rng(13)
        inc, twin = make_pair(backend)
        feed_both(inc, twin, pts(rng, 120, 5, prefix="a"))
        got = [p.id for p in inc.select(15)]
        want = [p.id for p in oracle_select(twin, 15)]
        # New candidates arrive after selection started: they are pending
        # rows in the incremental cache, priced at the next pick.
        feed_both(inc, twin, pts(rng, 80, 5, prefix="b"))
        got += [p.id for p in inc.select(25)]
        want += [p.id for p in oracle_select(twin, 25)]
        assert got == want

    def test_preseeded_selected_set(self, backend):
        rng = np.random.default_rng(14)
        inc, twin = make_pair(backend)
        seed_pts = pts(rng, 30, 5, prefix="s")
        inc.seed_selected(seed_pts)
        twin.seed_selected(seed_pts)
        feed_both(inc, twin, pts(rng, 150, 5))
        got = [p.id for p in inc.select(25)]
        want = [p.id for p in oracle_select(twin, 25)]
        assert got == want


class TestMultiQueueRoundRobin:
    QUEUES = ["ras", "ras-raf", "other"]

    def test_round_robin_identical_sequence(self, backend):
        rng = np.random.default_rng(21)
        inc, twin = make_pair(backend, queues=self.QUEUES)
        for qi, name in enumerate(self.QUEUES):
            # uneven queue sizes, so round-robin skips emptied queues
            feed_both(inc, twin, pts(rng, 30 + 25 * qi, 5, prefix=f"q{qi}-"),
                      queue=name)
        got = [p.id for p in inc.select(60)]
        want = [p.id for p in oracle_select(twin, 60)]
        assert got == want

    def test_explicit_queue_identical_sequence(self, backend):
        rng = np.random.default_rng(22)
        inc, twin = make_pair(backend, queues=self.QUEUES)
        for qi, name in enumerate(self.QUEUES):
            feed_both(inc, twin, pts(rng, 40, 5, prefix=f"q{qi}-"), queue=name)
        got = [p.id for p in inc.select(12, queue="ras-raf")]
        want = [p.id for p in oracle_select(twin, 12, queue="ras-raf")]
        assert got == want


class TestEvictionInterleaved:
    def test_cap_evictions_between_selections(self, backend):
        rng = np.random.default_rng(31)
        inc, twin = make_pair(backend, queue_cap=50)
        feed_both(inc, twin, pts(rng, 120, 5, prefix="a"))  # 70 evicted
        got = [p.id for p in inc.select(10)]
        want = [p.id for p in oracle_select(twin, 10)]
        feed_both(inc, twin, pts(rng, 60, 5, prefix="b"))  # evicts survivors
        got += [p.id for p in inc.select(20)]
        want += [p.id for p in oracle_select(twin, 20)]
        assert got == want
        assert inc.dropped() == twin.dropped() > 0

    def test_multi_queue_eviction_and_round_robin(self, backend):
        rng = np.random.default_rng(32)
        inc, twin = make_pair(backend, queues=["q1", "q2"], queue_cap=40)
        feed_both(inc, twin, pts(rng, 90, 5, prefix="a"), queue="q1")
        feed_both(inc, twin, pts(rng, 25, 5, prefix="b"), queue="q2")
        got = [p.id for p in inc.select(30)]
        want = [p.id for p in oracle_select(twin, 30)]
        feed_both(inc, twin, pts(rng, 50, 5, prefix="c"), queue="q2")
        got += [p.id for p in inc.select(20)]
        want += [p.id for p in oracle_select(twin, 20)]
        assert got == want


class TestOpsCountRegression:
    """Deterministic operation-count guards: a perf regression (per-pick
    rebuilds or full re-ranks sneaking back in) fails these without any
    reliance on wall-clock."""

    def test_exact_backend_distance_evals_are_amortized(self):
        rng = np.random.default_rng(41)
        s = FarthestPointSampler(dim=5, index=ExactIndex())
        s.seed_selected(pts(rng, 10, 5, prefix="s"))
        for p in pts(rng, 1000, 5):
            s.add(p)
        s.select(50)
        stats = s.engine_stats()
        # Exact expected counts for the incremental engine:
        # - pick 1 prices all 1000 pending rows against 10 selected,
        # - picks 2..50 fold one delta over the shrinking queue:
        #   sum_{i=2..50} (1001 - i) = 47_775.
        assert stats["distance_evals"] == 1000 * 10 + sum(
            1001 - i for i in range(2, 51)
        )
        # Never a rebuild inside the pick loop; one incremental insert
        # per seeded/selected point.
        assert stats["builds"] == 0
        assert stats["adds"] == 60
        assert stats["full_recomputes"] == 0
        assert stats["delta_updates"] == 49
        # The seed semantics would have paid ~50 full re-ranks:
        # sum_{j=0..49} 1000 * (10 + j) ≈ 1.56M evals. Stay far below.
        assert stats["distance_evals"] < 160_000

    def test_kdtree_never_rebuilds_per_pick(self):
        rng = np.random.default_rng(42)
        s = FarthestPointSampler(dim=5, index=KDTreeIndex(pending_cap=64))
        s.seed_selected(pts(rng, 10, 5, prefix="s"))
        for p in pts(rng, 500, 5):
            s.add(p)
        s.select(60)
        stats = s.engine_stats()
        assert stats["builds"] == 0
        # 70 inserts with a 64-point buffer: exactly one amortizing flush.
        assert stats["flushes"] == 1

    def test_ingest_costs_no_distance_evals(self):
        rng = np.random.default_rng(43)
        s = FarthestPointSampler(dim=5, index=ExactIndex())
        for p in pts(rng, 2000, 5):
            s.add(p)
        stats = s.engine_stats()
        assert stats["distance_evals"] == 0
        assert stats["queries"] == 0


class TestRankStaysExact:
    def test_rank_matches_bruteforce_novelty(self, backend):
        rng = np.random.default_rng(51)
        s = FarthestPointSampler(dim=4, index=backend())
        s.seed_selected(pts(rng, 20, 4, prefix="s"))
        for p in pts(rng, 100, 4):
            s.add(p)
        s.select(10)  # exercise the incremental path first
        ranked = s.rank("default")
        assert len(ranked) == 90
        # Novelty is non-increasing down the ranking.
        novelties = [nov for _, nov in ranked]
        assert novelties == sorted(novelties, reverse=True)
        # For exact backends the reported novelty equals brute force.
        if isinstance(s.index, (ExactIndex, KDTreeIndex)):
            sel = s.selected_coords()
            for point, nov in ranked[:10]:
                d = np.sqrt(((sel - point.coords) ** 2).sum(axis=1)).min()
                assert nov == pytest.approx(d, rel=1e-9)
