"""Tests for automatic I/O accounting on every backend."""

import pytest

from repro.datastore import FSStore, KVStore, TaridxStore
from repro.datastore.stats import IOStats, LatencyHistogram, TransportStats


@pytest.fixture(params=["fs", "taridx", "kv"])
def store(request, tmp_path):
    if request.param == "fs":
        s = FSStore(str(tmp_path / "fs"))
    elif request.param == "taridx":
        s = TaridxStore(str(tmp_path / "tar"))
    else:
        s = KVStore(nservers=2)
    yield s
    s.close()


class TestAutomaticInstrumentation:
    def test_writes_counted_with_bytes(self, store):
        store.write("a", b"12345")
        store.write("b", b"1234567890")
        assert store.stats.writes == 2
        assert store.stats.bytes_written == 15

    def test_reads_counted_with_bytes(self, store):
        store.write("a", b"12345")
        store.read("a")
        store.read("a")
        assert store.stats.reads == 2
        assert store.stats.bytes_read == 10

    def test_deletes_moves_scans(self, store):
        store.write("a", b"x")
        store.write("b", b"y")
        store.keys()
        store.move("a", "c")
        store.delete("b")
        assert store.stats.scans == 1
        assert store.stats.moves == 1
        assert store.stats.deletes == 1

    def test_typed_helpers_flow_through(self, store):
        import numpy as np

        store.write_npz("arr", {"x": np.arange(10)})
        store.read_npz("arr")
        assert store.stats.writes == 1
        assert store.stats.reads == 1
        assert store.stats.bytes_written > 0
        assert store.stats.bytes_written == store.stats.bytes_read

    def test_stats_are_per_instance(self, tmp_path):
        a = KVStore()
        b = KVStore()
        a.write("k", b"xxx")
        assert a.stats.writes == 1
        assert b.stats.writes == 0

    def test_ops_total_and_reset(self, store):
        store.write("a", b"x")
        store.keys()
        assert store.stats.ops() == 2
        store.stats.reset()
        assert store.stats.ops() == 0
        assert store.stats.as_dict()["bytes_written"] == 0


class TestIOStatsUnit:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            IOStats().note("frobnicate")

    def test_as_dict_fields(self):
        s = IOStats()
        s.note("write", 100)
        d = s.as_dict()
        assert d["writes"] == 1 and d["bytes_written"] == 100


class TestLatencyHistogram:
    def test_buckets_and_moments(self):
        h = LatencyHistogram()
        h.observe(0.001)   # 1 ms
        h.observe(0.001)
        h.observe(0.2)     # 200 ms
        assert h.count == 3
        assert 0.9 * 67 < h.mean_ms() < 1.1 * 67
        assert h.max_ms == pytest.approx(200.0)
        d = h.as_dict()
        assert sum(d["buckets"].values()) == 3
        assert d["p50_ms"] <= d["p99_ms"]

    def test_overflow_bucket(self):
        h = LatencyHistogram()
        h.observe(30.0)  # 30 s — beyond the last edge
        assert h.as_dict()["buckets"][">5000ms"] == 1

    def test_empty_histogram(self):
        d = LatencyHistogram().as_dict()
        assert d["count"] == 0 and d["p99_ms"] == 0.0

    def test_reset(self):
        h = LatencyHistogram()
        h.observe(0.5)
        h.reset()
        assert h.count == 0 and h.max_ms == 0.0


class TestTransportStatsUnit:
    def test_counters_accumulate(self):
        t = TransportStats()
        t.note_request(100)
        t.note_response(50, 0.002)
        t.note_retry(timed_out=True)
        t.note_retry(timed_out=False, protocol=True)
        t.note_reconnect()
        t.note_exhausted()
        d = t.as_dict()
        assert d["requests"] == 1 and d["bytes_sent"] == 100
        assert d["bytes_received"] == 50
        assert d["retries"] == 2 and d["timeouts"] == 1
        assert d["protocol_errors"] == 1
        assert d["reconnects"] == 1 and d["exhausted"] == 1
        assert d["latency"]["count"] == 1

    def test_reset(self):
        t = TransportStats()
        t.note_request(10)
        t.note_retry(timed_out=True)
        t.reset()
        d = t.as_dict()
        assert d["requests"] == 0 and d["retries"] == 0
        assert d["latency"]["count"] == 0

    def test_thread_safety_smoke(self):
        import threading

        t = TransportStats()

        def hammer():
            for _ in range(1000):
                t.note_request(1)
                t.note_response(1, 0.0001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        d = t.as_dict()
        assert d["requests"] == 8000
        assert d["latency"]["count"] == 8000


class TestWorkflowDataVolume:
    def test_wm_round_accumulates_io(self):
        """The WM's data production is visible through store stats —
        the per-day TB accounting the campaign reports."""
        from tests.core.test_wm import make_wm

        wm, store = make_wm()
        wm.round()
        assert store.stats.bytes_written > 1000  # patches + RDFs + SS
        assert store.stats.writes > 5
