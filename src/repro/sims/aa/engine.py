"""The all-atom Langevin engine (our AMBER).

Runs the atomistic systems produced by backmapping: many more, lighter
particles, stiffer bonds, a smaller time step. Interactions are a
purely repulsive soft core (excluded volume) plus harmonic bonds — the
refinement signal the workflow consumes is geometric (the backbone
secondary structure), not energetic, so the force field stays minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["AAConfig", "AASim"]


@dataclass(frozen=True)
class AAConfig:
    """Numerics for one AA simulation."""

    box: float = 12.0
    dt: float = 2e-5
    """Time step; ~5x smaller than CG, as atomistic bonds are stiff."""

    temperature: float = 1.0
    mobility: float = 0.5
    repulsion: float = 50.0
    cutoff: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.box <= 0 or self.dt <= 0 or self.cutoff <= 0:
            raise ValueError("box, dt, cutoff must be positive")


class AASim:
    """One atomistic simulation over a backmapped system.

    Parameters
    ----------
    positions:
        (n, 2) atom positions.
    bonds:
        (m, 3) rows of (i, j, rest_length); stiffness is uniform
        (``bond_k``) — atomistic bonds don't carry the SS dependence,
        they *produce* it.
    backbone:
        Indices of backbone atoms in chain order (used by the
        secondary-structure analysis).
    restrained:
        Optional (n,) bool mask of position-restrained atoms (the
        backmapping protocol runs "position-restrained MD").
    """

    def __init__(
        self,
        positions: np.ndarray,
        bonds: np.ndarray,
        backbone: np.ndarray,
        config: Optional[AAConfig] = None,
        bond_k: float = 200.0,
        restrained: Optional[np.ndarray] = None,
        restraint_k: float = 100.0,
    ) -> None:
        self.config = config or AAConfig()
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        if positions.shape[1] != 2:
            raise ValueError("positions must be (n, 2)")
        self.positions = positions % self.config.box
        self.bonds = np.asarray(bonds, dtype=np.float64).reshape(-1, 3)
        self.backbone = np.asarray(backbone, dtype=np.int64)
        self.bond_k = float(bond_k)
        self.restrained = (
            np.zeros(positions.shape[0], dtype=bool) if restrained is None else restrained
        )
        self.restraint_k = float(restraint_k)
        self._restraint_anchor = self.positions.copy()
        self.rng = np.random.default_rng(self.config.seed)
        self.time = 0.0
        self.step_count = 0

    @property
    def natoms(self) -> int:
        return self.positions.shape[0]

    def _min_image(self, d: np.ndarray) -> np.ndarray:
        box = self.config.box
        return d - box * np.round(d / box)

    def forces(self) -> Tuple[np.ndarray, float]:
        c = self.config
        F = np.zeros_like(self.positions)
        energy = 0.0
        # Excluded volume: soft quadratic repulsion below cutoff.
        tree = cKDTree(self.positions, boxsize=c.box)
        pairs = tree.query_pairs(c.cutoff, output_type="ndarray")
        if pairs.size:
            ii, jj = pairs[:, 0], pairs[:, 1]
            d = self._min_image(self.positions[ii] - self.positions[jj])
            r = np.maximum(np.sqrt(np.einsum("ij,ij->i", d, d)), 1e-9)
            x = 1.0 - r / c.cutoff
            energy += float(np.sum(c.repulsion * x**2))
            fmag = 2.0 * c.repulsion * x / c.cutoff
            fvec = (fmag / r)[:, None] * d
            np.add.at(F, ii, fvec)
            np.add.at(F, jj, -fvec)
        # Bonds.
        if self.bonds.shape[0]:
            bi = self.bonds[:, 0].astype(int)
            bj = self.bonds[:, 1].astype(int)
            r0 = self.bonds[:, 2]
            d = self._min_image(self.positions[bi] - self.positions[bj])
            r = np.maximum(np.sqrt(np.einsum("ij,ij->i", d, d)), 1e-9)
            energy += float(np.sum(0.5 * self.bond_k * (r - r0) ** 2))
            fmag = -self.bond_k * (r - r0)
            fvec = (fmag / r)[:, None] * d
            np.add.at(F, bi, fvec)
            np.add.at(F, bj, -fvec)
        # Position restraints.
        if self.restrained.any():
            d = self._min_image(self.positions - self._restraint_anchor)
            mask = self.restrained[:, None]
            F -= self.restraint_k * d * mask
            energy += float(
                np.sum(0.5 * self.restraint_k * np.einsum("ij,ij->i", d, d)[self.restrained])
            )
        return F, energy

    def minimize(self, nsteps: int = 50, step_size: float = 1e-4) -> float:
        """Steepest-descent energy minimization; returns final energy."""
        energy = np.inf
        for _ in range(nsteps):
            F, energy = self.forces()
            self.positions = (self.positions + step_size * F) % self.config.box
        return energy

    def step(self, nsteps: int = 1) -> None:
        c = self.config
        sigma = np.sqrt(2.0 * c.mobility * c.temperature * c.dt)
        for _ in range(nsteps):
            F, _ = self.forces()
            noise = self.rng.standard_normal(self.positions.shape) * sigma
            self.positions = (self.positions + c.mobility * F * c.dt + noise) % c.box
            self.time += c.dt
            self.step_count += 1

    def release_restraints(self) -> None:
        """End of the restrained-MD phase: free production dynamics."""
        self.restrained = np.zeros(self.natoms, dtype=bool)

    def state_dict(self) -> Dict:
        return {
            "positions": self.positions.copy(),
            "time": self.time,
            "step_count": self.step_count,
            "rng_state": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: Dict) -> None:
        if state["positions"].shape != self.positions.shape:
            raise ValueError("checkpoint shape mismatch")
        self.positions = state["positions"].copy()
        self.time = float(state["time"])
        self.step_count = int(state["step_count"])
        self.rng.bit_generator.state = state["rng_state"]
