"""Continuum snapshots: the unit of macro-scale output.

GridSim2D "delivers a new snapshot every 90 seconds" of walltime at a
1 µs I/O interval (§4.1). A :class:`Snapshot` bundles the density
fields and the protein table at one simulated time and round-trips
through any :class:`~repro.datastore.base.DataStore` as one npz payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.datastore import serial
from repro.sims.continuum.proteins import ProteinTable

__all__ = ["Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One continuum frame: time (µs), densities, proteins."""

    time_us: float
    inner: np.ndarray  # (n_inner_types, N, N) lipid densities, inner leaflet
    outer: np.ndarray  # (n_outer_types, N, N) lipid densities, outer leaflet
    protein_positions: np.ndarray  # (n, 2) in µm
    protein_states: np.ndarray  # (n,)
    box: float  # µm

    @property
    def grid_size(self) -> int:
        return int(self.inner.shape[-1])

    def total_mass(self) -> float:
        """Total lipid mass (conserved by the DDFT dynamics)."""
        return float(self.inner.sum() + self.outer.sum())

    def to_bytes(self) -> bytes:
        return serial.npz_to_bytes(
            {
                "time_us": np.array([self.time_us]),
                "inner": self.inner,
                "outer": self.outer,
                "protein_positions": self.protein_positions,
                "protein_states": self.protein_states,
                "box": np.array([self.box]),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Snapshot":
        arrays = serial.bytes_to_npz(data)
        return cls(
            time_us=float(arrays["time_us"][0]),
            inner=arrays["inner"],
            outer=arrays["outer"],
            protein_positions=arrays["protein_positions"],
            protein_states=arrays["protein_states"],
            box=float(arrays["box"][0]),
        )

    def proteins(self) -> ProteinTable:
        return ProteinTable(self.protein_positions, self.protein_states, self.box)
