"""Per-tenant namespaced views over one shared store.

The control plane (``repro.service``) multiplexes many campaigns onto a
single shared backend — one NetKV cluster, one filesystem tree — the
way REANA multiplexes thousands of user workflows onto shared
infrastructure. Isolation is by *key prefix*: every campaign sees the
store through a :class:`NamespacedStore` view that transparently maps
``rdf/live/cg00001-000`` to
``tenants/<tenant>/<campaign>/rdf/live/cg00001-000`` on the shared
backend, so two tenants can run the identical workflow against the same
cluster with provably disjoint keyspaces.

The view is a real :class:`~repro.datastore.base.DataStore` (it passes
the backend contract suite), so every component that takes a store —
the WM, feedback managers, samplers, checkpoints — works unchanged
inside a namespace. Batched operations delegate to the backend's
batched paths, keeping NetKV pipelining intact.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.datastore.base import DataStore, StoreError, validate_key

__all__ = ["NamespacedStore", "validate_namespace_segment", "TENANT_ROOT"]

#: Root prefix under which every tenant's keys live on the shared store.
TENANT_ROOT = "tenants"

_SEGMENT = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")


def validate_namespace_segment(segment: str, what: str = "segment") -> str:
    """Reject tenant/campaign identifiers that could escape their prefix.

    Namespace segments become literal key components on the shared
    backend, so they must be safe as a single path segment: lowercase
    alphanumerics plus ``.``, ``_``, ``-``, at most 64 characters, and
    no leading punctuation (``..`` and hidden-file-style names are
    rejected by construction).
    """
    if not isinstance(segment, str) or not _SEGMENT.match(segment):
        raise StoreError(
            f"invalid {what} {segment!r}: must match [a-z0-9][a-z0-9._-]*, "
            "max 64 chars"
        )
    return segment


class NamespacedStore(DataStore):
    """A :class:`DataStore` view confined to one key prefix.

    Parameters
    ----------
    base:
        The shared backend every namespace maps onto.
    tenant, campaign:
        Namespace coordinates; both are validated as safe key segments.
        The resulting prefix is ``tenants/<tenant>/<campaign>/``.

    The view never closes the shared backend — lifetime of the backend
    belongs to whoever opened it (the control plane daemon).
    """

    def __init__(self, base: DataStore, tenant: str, campaign: str) -> None:
        self.base = base
        self.tenant = validate_namespace_segment(tenant, "tenant")
        self.campaign = validate_namespace_segment(campaign, "campaign id")
        self.prefix = f"{TENANT_ROOT}/{self.tenant}/{self.campaign}/"

    # --- key mapping -----------------------------------------------------

    def _abs(self, key: str) -> str:
        return self.prefix + validate_key(key)

    def _rel(self, key: str) -> str:
        return key[len(self.prefix):]

    # --- primitives ------------------------------------------------------

    def write(self, key: str, data: bytes) -> None:
        self.base.write(self._abs(key), data)

    def read(self, key: str) -> bytes:
        return self.base.read(self._abs(key))

    def delete(self, key: str) -> None:
        self.base.delete(self._abs(key))

    def keys(self, prefix: str = "") -> List[str]:
        # Prefixes are plain string matches in the flat key space, so a
        # caller-supplied prefix cannot escape self.prefix by construction.
        return [self._rel(k) for k in self.base.keys(self.prefix + prefix)]

    def move(self, src: str, dst: str) -> None:
        self.base.move(self._abs(src), self._abs(dst))

    # --- batched paths (keep NetKV pipelining) ---------------------------

    def read_many(self, keys: Iterable[str]) -> Dict[str, bytes]:
        rows = self.base.read_many([self._abs(k) for k in keys])
        return {self._rel(k): v for k, v in rows.items()}

    def read_present(self, keys: Iterable[str]) -> Dict[str, bytes]:
        rows = self.base.read_present([self._abs(k) for k in keys])
        return {self._rel(k): v for k, v in rows.items()}

    def write_many(self, items: Union[Mapping[str, bytes],
                                      Iterable[Tuple[str, bytes]]]) -> None:
        pairs = items.items() if hasattr(items, "items") else items
        self.base.write_many([(self._abs(k), v) for k, v in pairs])

    def delete_many(self, keys: Iterable[str]) -> int:
        return self.base.delete_many([self._abs(k) for k in keys])

    def exists(self, key: str) -> bool:
        return self.base.exists(self._abs(key))

    # --- namespace accounting -------------------------------------------

    def nkeys(self) -> int:
        """Live keys inside this namespace (one shared-store scan)."""
        return len(self.base.keys(self.prefix))

    def purge(self) -> int:
        """Delete every key in this namespace; returns the count removed."""
        return self.base.delete_many(self.base.keys(self.prefix))

    def close(self) -> None:
        """Views do not own the shared backend; closing is a no-op."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NamespacedStore({self.prefix!r} over {type(self.base).__name__})"
