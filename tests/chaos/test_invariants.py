"""InvariantSuite: each checker fires on seeded corruption, not on health."""

import types

from repro.chaos import ChaosCampaign, ChaosConfig, FaultSchedule, InvariantSuite
from repro.chaos.invariants import selector_equivalence
from repro.sched.jobspec import JobSpec


def tiny_campaign(rounds=2, schedule=None):
    campaign = ChaosCampaign(schedule or FaultSchedule().heal(0.0),
                             ChaosConfig(seed=1, rounds=rounds))
    campaign.run()
    return campaign


def test_healthy_campaign_has_no_violations():
    campaign = tiny_campaign()
    suite = InvariantSuite()
    assert suite.check_final(campaign, 99) == []


def test_counter_conservation_catches_tampering():
    campaign = tiny_campaign()
    suite = InvariantSuite()
    campaign.wm.counters["patches"] += 1
    out = suite.check_round(campaign, 0)
    assert any(v.invariant == "counter_conservation" for v in out)
    campaign.wm.counters["patches"] -= 1
    campaign.wm.counters["frames_seen"] += 2
    out = suite.check_round(campaign, 0)
    assert any("frames" in v.detail for v in out
               if v.invariant == "counter_conservation")


def test_acked_write_loss_maps_to_invariant_names():
    campaign = tiny_campaign()
    suite = InvariantSuite()
    store = campaign.store
    key = sorted(k for k, v in store.acked.items() if v is not None)[0]
    for shard in store._shards:
        shard.pop(key, None)
    out = suite.check_round(campaign, 3)
    assert any(v.invariant == "acked_write_lost" and v.round == 3 for v in out)


def test_stale_read_maps_to_invariant_name():
    campaign = tiny_campaign()
    suite = InvariantSuite()
    store = campaign.store
    key = sorted(k for k, v in store.acked.items() if v is not None)[0]
    for i in store._replicas(key):
        store._shards[i][key] = (0, b"stale-bytes")
    out = suite.check_round(campaign, 0)
    assert any(v.invariant == "stale_read" for v in out)


def test_jobs_terminal_catches_stuck_jobs():
    campaign = tiny_campaign()
    suite = InvariantSuite()
    campaign.adapter.submit(JobSpec(name="wedged", tag="wedged#0"))
    out = suite.check_final(campaign, 5)
    assert any(v.invariant == "jobs_terminal" and "wedged" in v.detail
               for v in out)
    campaign.adapter.flush()
    assert not any(v.invariant == "jobs_terminal"
                   for v in suite.check_final(campaign, 5))


def test_trace_tree_catches_orphans_and_time_travel():
    suite = InvariantSuite()

    def fake_tracer(rows, dropped=0):
        return types.SimpleNamespace(
            rows=lambda: rows, dropped=dropped,
            _local=types.SimpleNamespace(stack=[]))

    ok_rows = [
        {"seq": 0, "span": 1, "parent": None, "name": "root", "t0": 0.0, "t1": 2.0},
        {"seq": 1, "span": 2, "parent": 1, "name": "child", "t0": 0.5, "t1": 1.0},
    ]
    assert suite._trace_tree(fake_tracer(ok_rows), 0) == []

    orphan = [{"seq": 0, "span": 2, "parent": 99, "name": "lost",
               "t0": 0.0, "t1": 1.0}]
    out = suite._trace_tree(fake_tracer(orphan), 0)
    assert any("orphan parent" in v.detail for v in out)

    backwards = [{"seq": 0, "span": 1, "parent": None, "name": "x",
                  "t0": 5.0, "t1": 1.0}]
    out = suite._trace_tree(fake_tracer(backwards), 0)
    assert any("ends before it starts" in v.detail for v in out)

    out = suite._trace_tree(fake_tracer(ok_rows, dropped=3), 0)
    assert any("dropped" in v.detail for v in out)


def test_selector_equivalence_detects_divergence():
    campaign = tiny_campaign(rounds=1)
    other = ChaosCampaign(FaultSchedule().heal(0.0), ChaosConfig(seed=1, rounds=1))
    # Same seed, never run: selectors differ from the 1-round campaign's.
    out = selector_equivalence(campaign.wm, other.wm, 0)
    assert any(v.invariant == "selector_equivalence" for v in out)
