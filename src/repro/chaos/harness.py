"""The chaos campaign: a real WM run broken on a virtual-time schedule.

A :class:`ChaosCampaign` builds the full three-scale pipeline (real
continuum, encoder, selectors, CG/AA sims, both feedback loops) against
a :class:`~repro.chaos.store.ChaosStore` and a synchronous
:class:`ChaosAdapter`, registers every :class:`FaultEvent` on a
:class:`~repro.util.clock.EventLoop`, and then alternates

    run faults due by the round's virtual start  →  wm.round()  →
    check the invariant catalog

for the configured number of rounds. At campaign end all faults are
healed, the adapter is drained, and the suite runs one strict final
pass (nothing is excusably unverifiable once the cluster is whole).

Determinism is the whole point: one seed fixes the WM's rng tree, the
wire-fault draws, and the schedule, and the tracer is driven by the
campaign's VirtualClock — so two runs of the same campaign produce
byte-identical invariant reports *and* byte-identical trace exports.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro import trace
from repro.app.feedback import AAToCGFeedback, CGToContinuumFeedback
from repro.chaos.invariants import InvariantSuite, Violation, selector_equivalence
from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.chaos.store import ChaosStore
from repro.core.patches import PatchCreator
from repro.core.wm import WorkflowConfig, WorkflowManager
from repro.datastore.base import StoreError, StoreUnavailable
from repro.ml.encoder import PatchEncoder
from repro.sched.adapter import SchedulerAdapter
from repro.sched.jobspec import JobRecord, JobState
from repro.sims.cg.forcefield import martini_like
from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim
from repro.util.clock import EventLoop, VirtualClock
from repro.util.faults import NetworkFaultInjector
from repro.util.rng import RngStream

__all__ = ["ChaosAdapter", "ChaosConfig", "ChaosCampaign", "CampaignReport"]


class ChaosAdapter(SchedulerAdapter):
    """Synchronous scheduler adapter: a FIFO drained on ``wait_all``.

    Job bodies run inline, in submission order, on the caller's thread —
    the determinism backbone of a chaos campaign (no thread scheduling
    in the replay path). Completion callbacks may submit follow-up jobs
    (tracker retries); those drain in the same pass.

    A *stall* fault (``stalled = True``) wedges the pool: ``wait_all``
    returns without draining and jobs stay in flight across rounds,
    exactly like a hung node. :meth:`flush` drains regardless — it is
    the checkpoint quiesce barrier.
    """

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._records: Dict[int, JobRecord] = {}
        self._callbacks: Dict[int, Callable[[JobRecord], None]] = {}
        self.stalled = False

    def submit(self, spec, fn=None, on_complete=None) -> JobRecord:
        record = JobRecord(spec=spec)
        self._records[record.job_id] = record
        if on_complete is not None:
            self._callbacks[record.job_id] = on_complete
        self._queue.append((record, fn))
        return record

    def poll(self, job_id: int) -> JobState:
        return self._records[job_id].state

    def cancel(self, job_id: int) -> None:
        record = self._records[job_id]
        if record.state is not JobState.PENDING:
            return
        for i, (queued, _) in enumerate(self._queue):
            if queued.job_id == job_id:
                del self._queue[i]
                break
        record.state = JobState.CANCELLED
        callback = self._callbacks.pop(job_id, None)
        if callback is not None:
            callback(record)

    def wait_all(self, timeout: Optional[float] = None) -> None:
        if self.stalled:
            return
        self.flush()

    def flush(self) -> None:
        """Drain every queued job inline, stall or no stall."""
        while self._queue:
            record, fn = self._queue.popleft()
            record.state = JobState.RUNNING
            try:
                record.result = fn() if fn is not None else None
                record.state = JobState.COMPLETED
            except Exception as exc:  # job failure is data, not a crash
                record.result = exc
                record.state = JobState.FAILED
            callback = self._callbacks.pop(record.job_id, None)
            if callback is not None:
                callback(record)

    def pending(self) -> int:
        return len(self._queue)

    def records(self) -> List[JobRecord]:
        return list(self._records.values())


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos campaign (small enough to run in tests)."""

    seed: int = 0
    rounds: int = 10
    round_seconds: float = 60.0
    nshards: int = 4
    replication: int = 2
    durable: bool = True
    """Shards keep a durable log; ``crash_restart`` replays it."""

    advance_us: float = 1.0
    grid: int = 16
    trace_capacity: int = 0
    """Tracer ring size; 0 sizes it so no span is ever dropped."""

    def resolved_trace_capacity(self) -> int:
        return self.trace_capacity or max(65536, self.rounds * 4096)


@dataclass
class CampaignReport:
    """Deterministic summary of one campaign (JSON-stable)."""

    seed: int
    rounds: int
    schedule: List[Dict[str, Any]]
    violations: List[Violation]
    counters: Dict[str, int]
    chaos: Dict[str, int]
    store: Dict[str, Any]
    nspans: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "schedule": self.schedule,
            "violations": [v.to_json() for v in self.violations],
            "counters": dict(sorted(self.counters.items())),
            "chaos": dict(sorted(self.chaos.items())),
            "store": self.store,
            "nspans": self.nspans,
            "ok": self.ok,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, indent=2)


class ChaosCampaign:
    """One seeded WM campaign with faults injected at exact virtual times."""

    def __init__(self, schedule: FaultSchedule,
                 config: Optional[ChaosConfig] = None) -> None:
        self.config = config or ChaosConfig()
        self.schedule = schedule
        self.clock = VirtualClock()
        self.loop = EventLoop(self.clock)
        self.rngs = RngStream(self.config.seed)
        self.injector = NetworkFaultInjector(
            delay_seconds=0.05, rng=self.rngs.child("chaos-wire")
        )
        self.store = ChaosStore(
            nshards=self.config.nshards,
            replication=self.config.replication,
            injector=self.injector,
            durable=self.config.durable,
        )
        self.suite = InvariantSuite()
        self.tracer: Optional[trace.Tracer] = None
        self.adapter = ChaosAdapter()
        self.wm = self._build_wm(self.adapter)
        self.violations: List[Violation] = []
        self.chaos_counters: Dict[str, int] = {
            "faults_applied": 0,
            "rounds_aborted": 0,
            "checkpoints": 0,
            "checkpoint_skipped": 0,
            "restores": 0,
            "stall_rounds": 0,
            "clock_skips": 0,
            "crash_restarts": 0,
            "reshards": 0,
            "slots_moved": 0,
        }
        self._stall_rounds = 0
        self._pending_skip = 0.0
        self._round_no = 0

    # --- construction -----------------------------------------------------

    def _build_wm(self, adapter: ChaosAdapter,
                  macro: Optional[ContinuumSim] = None,
                  encoder: Optional[PatchEncoder] = None,
                  forcefield=None) -> WorkflowManager:
        seed = self.config.seed
        macro = macro or ContinuumSim(ContinuumConfig(
            grid=self.config.grid, n_inner=2, n_outer=2, n_proteins=3,
            dt=0.25, seed=seed))
        encoder = encoder or PatchEncoder(
            input_dim=2 * 81, latent_dim=9, hidden=(16,),
            rng=np.random.default_rng(seed + 1))
        forcefield = forcefield or martini_like(n_lipid_types=2, seed=seed)
        wm_config = WorkflowConfig(
            beads_per_type=8, cg_chunks_per_job=2, cg_steps_per_chunk=8,
            aa_chunks_per_job=1, aa_steps_per_chunk=8, seed=seed)
        return WorkflowManager(
            macro=macro,
            encoder=encoder,
            forcefield=forcefield,
            store=self.store,
            adapter=adapter,
            config=wm_config,
            patch_creator=PatchCreator(patch_grid=9, store=self.store),
            feedback_managers=[
                CGToContinuumFeedback(self.store, macro),
                AAToCGFeedback(self.store, forcefield),
            ],
        )

    # --- fault application ------------------------------------------------

    def _apply(self, event: FaultEvent) -> None:
        self.chaos_counters["faults_applied"] += 1
        with trace.span("chaos.fault", kind=event.kind, at=event.at,
                        arg=event.arg):
            if event.kind == "shard_down":
                self.store.shard_down(int(event.arg))
            elif event.kind == "shard_up":
                self.store.shard_up(int(event.arg))
            elif event.kind == "delay":
                self.injector.rates["delay"] = min(max(event.arg, 0.0), 1.0)
            elif event.kind == "garble":
                self.injector.rates["garbage"] = min(max(event.arg, 0.0), 1.0)
            elif event.kind == "heal":
                for mode in self.injector.rates:
                    self.injector.rates[mode] = 0.0
            elif event.kind == "stall":
                self._stall_rounds = max(self._stall_rounds, int(event.arg))
            elif event.kind == "clock_skip":
                self._pending_skip += max(event.arg, 0.0)
                self.chaos_counters["clock_skips"] += 1
            elif event.kind == "checkpoint_restore":
                self._checkpoint_restore()
            elif event.kind == "crash_restart":
                self.store.crash_restart(int(event.arg))
                self.chaos_counters["crash_restarts"] += 1
            elif event.kind == "reshard":
                moved = self.store.reshard(int(event.arg))
                self.chaos_counters["reshards"] += 1
                self.chaos_counters["slots_moved"] += moved

    def _checkpoint_restore(self) -> None:
        """Checkpoint, rebuild the WM from persistent state, swap it in.

        Shares the *live* macro/encoder/forcefield objects (they live
        outside the WM, as in the real application) but gets fresh
        selectors, trackers, and adapter — everything the checkpoint
        claims to capture. If the store cannot take or serve the
        checkpoint right now, the restart is skipped, as a real
        operator would wait out the outage.
        """
        old_wm = self.wm
        try:
            old_wm.checkpoint()
            self.chaos_counters["checkpoints"] += 1
            adapter = ChaosAdapter()
            adapter.stalled = self.adapter.stalled
            new_wm = self._build_wm(adapter, macro=old_wm.macro,
                                    encoder=old_wm.encoder,
                                    forcefield=old_wm.forcefield)
            new_wm.restore()
        except (StoreUnavailable, StoreError):
            self.chaos_counters["checkpoint_skipped"] += 1
            return
        self.violations += selector_equivalence(old_wm, new_wm, self._round_no)
        self.wm = new_wm
        self.adapter = adapter
        self.chaos_counters["restores"] += 1

    # --- the campaign loop --------------------------------------------------

    def run(self) -> CampaignReport:
        previous_tracer = trace.get_tracer()
        self.tracer = trace.Tracer(
            capacity=self.config.resolved_trace_capacity(), clock=self.clock)
        trace.configure(self.tracer)
        try:
            return self._run_rounds()
        finally:
            trace.configure(previous_tracer)

    def _run_rounds(self) -> CampaignReport:
        for event in self.schedule:
            self.loop.schedule_at(event.at, (lambda e: lambda: self._apply(e))(event),
                                  label=event.kind)
        t = 0.0
        for r in range(self.config.rounds):
            self._round_no = r
            self.loop.run_until(t)
            self.adapter.stalled = self._stall_rounds > 0
            try:
                self.wm.round(self.config.advance_us)
            except StoreUnavailable:
                self.chaos_counters["rounds_aborted"] += 1
            if self._stall_rounds > 0:
                self._stall_rounds -= 1
                self.chaos_counters["stall_rounds"] += 1
            self.violations += self.suite.check_round(self, r)
            t += self.config.round_seconds + self._pending_skip
            t += self.store.drain_virtual_delay()
            self._pending_skip = 0.0
        # Fire any faults scheduled past the last round, then heal
        # everything and drain: the final pass is strict.
        self.loop.run()
        for mode in self.injector.rates:
            self.injector.rates[mode] = 0.0
        self._stall_rounds = 0
        self.adapter.stalled = False
        self.store.heal_all()
        self.adapter.flush()
        self.violations += self.suite.check_final(self, self.config.rounds)
        return self._report()

    # --- outputs ------------------------------------------------------------

    def _report(self) -> CampaignReport:
        health = self.store.replica_health()
        tstats = self.store.transport_stats.as_dict()
        return CampaignReport(
            seed=self.config.seed,
            rounds=self.config.rounds,
            schedule=self.schedule.to_json(),
            violations=list(self.violations),
            counters=self.wm.counters_snapshot(),
            chaos=dict(self.chaos_counters),
            store={
                "nshards": self.store.nshards,
                "replication": self.store.replication,
                "up": health["up"],
                "pending_repairs": health["pending_repairs"],
                "acked_keys": len(self.store.acked),
                "faults": dict(sorted(self.store.fault_counts.items())),
                "injector": dict(sorted(self.injector.injected.items())),
                "transport": tstats,
            },
            nspans=len(self.tracer.rows()) if self.tracer else 0,
        )

    def export_trace(self, path: str) -> int:
        """Write the campaign's (virtual-time, seq-ordered) trace."""
        if self.tracer is None:
            raise RuntimeError("campaign has not run yet")
        return self.tracer.export_jsonl(path)

    def telemetry(self):
        """The standard telemetry report over the chaos-wired WM."""
        from repro.core.telemetry import collect_telemetry

        return collect_telemetry(self.wm)
