#!/usr/bin/env python
"""The paper's "Next Leap": a persistent workflow over elastic allocations.

The outlook section envisions "a persistent workflow that can
coordinate variable sized allocations as resources become available on
different clusters." This example runs that: an allocation broker
offers variable-sized grants on a Summit-shaped (6 GPUs/node) and a
Lassen-shaped (4 GPUs/node) cluster, and one campaign's simulations
persist across every grant until the node-hour budget is met.

Run:  python examples/persistent_workflow.py
"""

import numpy as np

from repro.core.campaign import CampaignConfig
from repro.core.persistent import AllocationBroker, ClusterSpec, PersistentCampaign
from repro.sched.resources import lassen_like, summit_like

CLUSTERS = (
    ClusterSpec("summit", summit_like, max_nodes=120, min_nodes=30,
                typical_queue_hours=3.0, max_walltime_hours=12.0),
    ClusterSpec("lassen", lassen_like, max_nodes=60, min_nodes=15,
                typical_queue_hours=1.0, max_walltime_hours=8.0),
)


def main() -> None:
    broker = AllocationBroker(CLUSTERS, rng=np.random.default_rng(42))
    campaign = PersistentCampaign(
        broker,
        node_hour_budget=5_000.0,
        config=CampaignConfig(ledger=(), seed=42),
    )
    print("Running a persistent campaign until 5,000 node hours are consumed...")
    result = campaign.run()

    print(f"\n--- allocations granted ({len(result.table1)}) ---")
    print(f"  {'cluster':>8} {'#nodes':>7} {'walltime':>9} {'node-hours':>11}")
    for row in result.table1:
        print(f"  {row['cluster']:>8} {row['nnodes']:>7} "
              f"{row['walltime_hours']:>8.1f}h {row['node_hours']:>11,.0f}")

    c = result.counters
    print("\n--- the persistent campaign ---")
    print(f"  node hours consumed : {c['node_hours']:,.0f} "
          f"(summit {c['node_hours_summit']:,.0f}, lassen {c['node_hours_lassen']:,.0f})")
    print(f"  CG simulations      : {c['cg_sims']:,} "
          f"({c['cg_total_ms']*1000:.0f} us of trajectories)")
    print(f"  AA simulations      : {c['aa_sims']:,}")
    longest = max(result.cg_lengths_us)
    longest_alloc = max(r["walltime_hours"] for r in result.table1)
    print(f"  longest CG sim      : {longest:.2f} us — more than any single "
          f"allocation ({longest_alloc:.1f}h ~ {longest_alloc/24*1.04:.2f} us) "
          "could deliver, so state really persisted")
    gpu = np.array([e.gpu_occupancy for e in result.profile_events])
    print(f"  GPU occupancy       : median {np.median(gpu):.1%} across all grants")


if __name__ == "__main__":
    main()
