"""Taridx-specific behaviour: tar compatibility, recovery, rotation."""

import os
import tarfile

import pytest

from repro.datastore.base import KeyNotFound, StoreError
from repro.datastore.taridx import IndexedTar, TaridxStore, recover_index


class TestIndexedTar:
    def test_append_read_roundtrip(self, tmp_path):
        with IndexedTar(str(tmp_path / "a.tar")) as arc:
            arc.append("k1", b"hello")
            assert arc.read("k1") == b"hello"

    def test_last_write_wins(self, tmp_path):
        with IndexedTar(str(tmp_path / "a.tar")) as arc:
            arc.append("k", b"v1")
            arc.append("k", b"v2")
            assert arc.read("k") == b"v2"
            assert len(arc) == 1

    def test_archive_is_standard_tar(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("dir/file.npy", b"payload-bytes")
        with tarfile.open(path) as tar:
            member = tar.getmember("dir/file.npy")
            assert tar.extractfile(member).read() == b"payload-bytes"

    def test_reopen_loads_index(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("k1", b"v1")
            arc.append("k2", b"v2")
        with IndexedTar(path) as arc:
            assert arc.keys() == ["k1", "k2"]
            assert arc.read("k2") == b"v2"

    def test_tombstone_hides_key(self, tmp_path):
        with IndexedTar(str(tmp_path / "a.tar")) as arc:
            arc.append("k", b"v")
            arc.tombstone("k")
            assert "k" not in arc
            with pytest.raises(KeyNotFound):
                arc.read("k")

    def test_tombstone_survives_reopen(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("k", b"v")
            arc.tombstone("k")
        with IndexedTar(path) as arc:
            assert "k" not in arc

    def test_alias_moves_without_copying_data(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("old", b"payload")
            size_before = arc.nbytes()
            arc.alias("old", "new")
            assert arc.nbytes() == size_before  # index-only operation
            assert arc.read("new") == b"payload"
            assert "old" not in arc

    def test_missing_key_errors(self, tmp_path):
        with IndexedTar(str(tmp_path / "a.tar")) as arc:
            with pytest.raises(KeyNotFound):
                arc.read("nope")
            with pytest.raises(KeyNotFound):
                arc.tombstone("nope")
            with pytest.raises(KeyNotFound):
                arc.alias("nope", "x")

    def test_rejects_non_tar_path(self, tmp_path):
        with pytest.raises(StoreError):
            IndexedTar(str(tmp_path / "a.bin"))


class TestConcurrentAccess:
    def test_parallel_appends_and_reads_stay_intact(self, tmp_path):
        """The WM's ThreadAdapter appends while feedback reads; the
        shared seek+read handle must never hand back another key's
        bytes (this raced before the archive grew its lock)."""
        import threading

        arc = IndexedTar(str(tmp_path / "conc.tar"))
        for i in range(50):
            arc.append(f"seed/{i}", (f"seed-{i}" * 20).encode())
        errors = []

        def writer(wid):
            try:
                for i in range(100):
                    arc.append(f"w{wid}/{i}", (f"{wid}:{i}" * 20).encode())
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def reader():
            try:
                for i in range(300):
                    expected = (f"seed-{i % 50}" * 20).encode()
                    assert arc.read(f"seed/{i % 50}") == expected
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = ([threading.Thread(target=writer, args=(w,)) for w in range(2)]
                   + [threading.Thread(target=reader) for _ in range(2)])
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for wid in range(2):
            for i in range(100):
                assert arc.read(f"w{wid}/{i}") == (f"{wid}:{i}" * 20).encode()
        arc.close()

    def test_alias_to_invalid_dst_keeps_src(self, tmp_path):
        # Popping src before validating dst used to lose the entry.
        with IndexedTar(str(tmp_path / "a.tar")) as arc:
            arc.append("k", b"v")
            with pytest.raises(StoreError):
                arc.alias("k", "bad//dst")
            assert arc.read("k") == b"v"


class TestCrashRecovery:
    def test_recover_index_rebuilds_from_tar(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("k1", b"v1")
            arc.append("k2", b"v2")
            arc.append("k1", b"v1-final")  # reinsert: last wins
        entries = recover_index(path)
        assert set(entries) == {"k1", "k2"}

    def test_lost_sidecar_is_rebuilt_on_open(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("k1", b"v1")
            arc.append("k1", b"v2")
        os.remove(path + ".idx")
        with IndexedTar(path) as arc:
            assert arc.read("k1") == b"v2"

    def test_truncated_index_tail_is_ignored(self, tmp_path):
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("k1", b"v1")
            arc.append("k2", b"v2")
        # Simulate a crash mid-index-write: garbage partial line at the end.
        with open(path + ".idx", "a", encoding="utf-8") as fh:
            fh.write('{"k": "k3", "o": 12')
        with IndexedTar(path) as arc:
            assert arc.keys() == ["k1", "k2"]

    def test_reinsert_after_crash_is_correct_value(self, tmp_path):
        # §4.4: "in the event of a failure during a write, the same key
        # gets reinserted and is taken to be the correct value."
        path = str(tmp_path / "a.tar")
        with IndexedTar(path) as arc:
            arc.append("k", b"possibly-corrupt")
            arc.append("k", b"reinserted-good")
            assert arc.read("k") == b"reinserted-good"


class TestRotation:
    def test_rotates_after_max_entries(self, tmp_path):
        store = TaridxStore(str(tmp_path), max_entries=10)
        for i in range(35):
            store.write(f"k{i:03d}", b"x")
        assert store.narchives() == 4
        assert store.nentries() == 35
        store.close()

    def test_reads_span_archives(self, tmp_path):
        store = TaridxStore(str(tmp_path), max_entries=5)
        for i in range(12):
            store.write(f"k{i:02d}", str(i).encode())
        for i in range(12):
            assert store.read(f"k{i:02d}") == str(i).encode()
        store.close()

    def test_overwrite_across_archives_tombstones_old(self, tmp_path):
        store = TaridxStore(str(tmp_path), max_entries=2)
        store.write("a", b"v1")
        store.write("b", b"x")
        store.write("c", b"y")  # rotates
        store.write("a", b"v2")  # lands in archive 2, tombstones archive 1's copy
        assert store.read("a") == b"v2"
        assert store.keys() == ["a", "b", "c"]
        store.close()

    def test_store_reopen_restores_ownership(self, tmp_path):
        store = TaridxStore(str(tmp_path), max_entries=3)
        for i in range(7):
            store.write(f"k{i}", str(i).encode())
        store.delete("k3")
        store.close()
        store2 = TaridxStore(str(tmp_path), max_entries=3)
        assert store2.nentries() == 6
        assert store2.read("k5") == b"5"
        assert not store2.exists("k3")
        store2.close()

    def test_inode_reduction_grows_with_entries(self, tmp_path):
        store = TaridxStore(str(tmp_path), max_entries=1000)
        for i in range(200):
            store.write(f"k{i:04d}", b"data")
        # 200 logical files in 1 tar + 1 idx = 100x reduction.
        assert store.inode_reduction() == pytest.approx(100.0)
        store.close()

    def test_invalid_max_entries(self, tmp_path):
        with pytest.raises(ValueError):
            TaridxStore(str(tmp_path), max_entries=0)
