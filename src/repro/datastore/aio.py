"""Event-loop transport core for NetKV: framing, server, client channel.

This module holds the asyncio implementation behind the *sync facades*
in :mod:`repro.datastore.netkv` (see DESIGN.md, "Event-loop transport"):

- :class:`ReadBuffer` — zero-copy buffered framing. Incoming chunks are
  appended to one grow-only ``bytearray``; frames are sliced out through
  a ``memoryview`` (one copy per frame, no per-read reallocation) with a
  consumed-offset cursor and lazy compaction.
- :class:`LoopThread` — a dedicated event loop on a daemon thread; the
  sync API submits coroutines via ``run_coroutine_threadsafe``.
- :class:`AsyncNetKVServer` — the per-shard event-loop server. One
  ``asyncio.Protocol`` connection per client, a per-connection serve
  task, vectored writes (``transport.writelines``), and backpressure in
  both directions: write-buffer high-water marks gate the serve loop
  (bounded per-connection write queue), and the read buffer pauses the
  transport when a pipelining peer runs ahead of dispatch.
- :class:`AsyncClientChannel` — one coalescing connection per shard.
  Concurrent single-key GET/SET/DEL ops from many caller threads are
  queued on the loop and opportunistically folded into the existing
  MGET/MSET/MDEL wire batches: while one round trip is in flight, every
  same-kind op that piles up behind it ships as a single batch frame
  (the coalescing window is the in-flight round trip — no added
  latency). The sync method surface matches ``NetKVClient`` so the
  cluster's failover/repair machinery works against either.

Wire-protocol primitives (:class:`WireProtocolError`, key validation,
batch payload packing) live here and are re-exported by ``netkv`` so
the import graph stays acyclic: ``netkv`` imports ``aio``, never the
reverse.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import random
import socket
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import trace
from repro.datastore.base import KeyNotFound, StoreError, StoreUnavailable
from repro.datastore.kvstore import KVServer
from repro.datastore.stats import TransportStats
from repro.datastore.wal import DurabilityConfig, ShardWAL

__all__ = [
    "WireProtocolError",
    "ReadBuffer",
    "LoopThread",
    "AsyncNetKVServer",
    "AsyncClientChannel",
]

_MAX_HEADER = 4096

# Unconsumed-byte budget beyond the frame currently being read; above
# it the transport pauses reading (inbound backpressure for pipelining
# peers). Small enough to bound memory, large enough to keep a batch of
# small frames in flight.
_READ_SLACK = 1 << 18

# Per-connection outbound high-water mark: the serve loop (and the
# client channel) won't start another request while more than this many
# response bytes sit unsent (bounded write queue).
_WRITE_HIGH_WATER = 1 << 20

# The serve loop batches responses to a pipelined burst and writes them
# out together once the buffered backlog drains — or at this many
# accumulated bytes, so one huge burst can't sit unsent indefinitely.
_FLUSH_BYTES = 1 << 16


class WireProtocolError(StoreError):
    """A frame violated the wire protocol (bad length, oversized header,
    forbidden key bytes). The connection that produced it is untrusted:
    the peer closes it instead of guessing where the next frame starts."""


def _check_wire_key(key: str) -> str:
    """Reject keys the text protocol cannot carry unambiguously.

    The header is whitespace-split, so keys with spaces would silently
    truncate; NUL would corrupt the KEYS separator; newlines would
    desync framing. Checked on both ends — at the client before bytes
    leave, and at the server against hand-rolled peers.
    """
    if not key:
        raise WireProtocolError("empty key")
    if any(c in key for c in (" ", "\t", "\n", "\r", "\x00")):
        raise WireProtocolError(f"key contains bytes the wire protocol reserves: {key!r}")
    return key


def _wire_key_ok(key: str) -> bool:
    """True when ``key`` could pass :func:`_check_wire_key` — used to
    decide whether a GET/DEL may fold into a batch frame (a reserved
    byte would corrupt the NUL-joined batch payload, so such ops ship
    as their original single-key frames)."""
    return bool(key) and not any(c in key for c in (" ", "\t", "\n", "\r", "\x00"))


# --- batch (MGET/MSET/MDEL) payload framing ------------------------------
#
# Batch payloads reuse the protocol's length-prefixed style inside one
# frame so a single malformed entry invalidates only its own frame, and
# the outer framing (header + total payload length) stays intact.


def _split_key_payload(payload: bytes) -> List[str]:
    """Keys of an MGET/MDEL payload (NUL-joined; empty payload = no keys)."""
    if not payload:
        return []
    try:
        keys = payload.decode("utf-8").split("\x00")
    except UnicodeDecodeError:
        raise WireProtocolError("batch key payload is not UTF-8") from None
    return [_check_wire_key(k) for k in keys]


def _pack_values(values: List[Optional[bytes]]) -> bytes:
    """MGET response payload: "<n>\\n<bytes>" per value, -1 for missing."""
    parts: List[bytes] = []
    for value in values:
        if value is None:
            parts.append(b"-1\n")
        else:
            parts.append(b"%d\n" % len(value))
            parts.append(value)
    return b"".join(parts)


def _unpack_values(data: bytes, nkeys: int) -> List[Optional[bytes]]:
    """Inverse of :func:`_pack_values`; strict about trailing garbage."""
    out: List[Optional[bytes]] = []
    pos = 0
    for _ in range(nkeys):
        nl = data.find(b"\n", pos)
        if nl == -1:
            raise WireProtocolError("truncated batch value header")
        try:
            n = int(data[pos:nl])
        except ValueError:
            raise WireProtocolError(
                f"batch value length is not an integer: {data[pos:nl]!r}") from None
        pos = nl + 1
        if n < 0:
            out.append(None)
            continue
        if pos + n > len(data):
            raise WireProtocolError("truncated batch value bytes")
        out.append(data[pos:pos + n])
        pos += n
    if pos != len(data):
        raise WireProtocolError("trailing bytes after batch values")
    return out


def _pack_items(items: List[Tuple[str, bytes]]) -> bytes:
    """MSET request payload: repeated "<key> <n>\\n<value bytes>" blocks."""
    parts: List[bytes] = []
    for key, value in items:
        parts.append(f"{_check_wire_key(key)} {len(value)}\n".encode("utf-8"))
        parts.append(value)
    return b"".join(parts)


def _unpack_items(data: bytes, max_payload: int) -> List[Tuple[str, bytes]]:
    """Inverse of :func:`_pack_items`, bounds-checking every block."""
    items: List[Tuple[str, bytes]] = []
    pos = 0
    while pos < len(data):
        nl = data.find(b"\n", pos)
        if nl == -1:
            raise WireProtocolError("truncated batch item header")
        try:
            head = data[pos:nl].decode("utf-8")
        except UnicodeDecodeError:
            raise WireProtocolError("batch item header is not UTF-8") from None
        key, sep, length_text = head.rpartition(" ")
        try:
            n = int(length_text)
        except ValueError:
            raise WireProtocolError(
                f"batch item length is not an integer: {length_text!r}") from None
        if not sep or n < 0 or n > max_payload:
            raise WireProtocolError(f"malformed batch item header: {head!r}")
        pos = nl + 1
        if pos + n > len(data):
            raise WireProtocolError("truncated batch item bytes")
        items.append((_check_wire_key(key), data[pos:pos + n]))
        pos += n
    return items


class ReadBuffer:
    """Grow-only read buffer with memoryview frame extraction.

    ``feed()`` appends network chunks; ``take_line``/``take_exact``
    slice complete frames out through a ``memoryview`` (one copy, no
    intermediate ``del buf[:n]`` per frame) and advance a consumed
    cursor. The consumed prefix is compacted lazily — only once it
    exceeds both 64 KiB and half the buffer — so a burst of small
    pipelined frames costs one reallocation, not one per frame.

    Views never outlive the call: slices are materialized to ``bytes``
    immediately, because a ``bytearray`` with live memoryview exports
    cannot be resized (``BufferError``) by the next ``feed``.
    """

    __slots__ = ("_buf", "_pos")

    _COMPACT_AT = 1 << 16

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pending(self) -> int:
        """Bytes received but not yet consumed."""
        return len(self._buf) - self._pos

    def _compact(self) -> None:
        pos = self._pos
        if pos >= len(self._buf):
            del self._buf[:]
            self._pos = 0
        elif pos > self._COMPACT_AT and pos * 2 > len(self._buf):
            del self._buf[:pos]
            self._pos = 0

    def take_line(self, limit: int = _MAX_HEADER) -> Optional[bytes]:
        """A complete line without its newline, or None if not yet fed.

        Raises :class:`WireProtocolError` once the pending line exceeds
        ``limit`` bytes, newline or not — the stream can no longer be
        framed.
        """
        idx = self._buf.find(b"\n", self._pos)
        if idx < 0:
            if self.pending() > limit:
                raise WireProtocolError(f"header exceeds {limit} bytes")
            return None
        if idx - self._pos > limit:
            raise WireProtocolError(f"header exceeds {limit} bytes")
        with memoryview(self._buf) as view:
            line = bytes(view[self._pos:idx])
        self._pos = idx + 1
        self._compact()
        return line

    def take_exact(self, n: int) -> Optional[bytes]:
        """Exactly ``n`` consumed bytes, or None until enough are fed."""
        if self.pending() < n:
            return None
        with memoryview(self._buf) as view:
            data = bytes(view[self._pos:self._pos + n])
        self._pos += n
        self._compact()
        return data


class LoopThread:
    """One asyncio event loop running on a dedicated daemon thread.

    The sync facades hand coroutines over with
    ``run_coroutine_threadsafe`` and block on the returned future; the
    loop itself never blocks on application code.
    """

    def __init__(self, name: str = "repro-aio") -> None:
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._main, name=name, daemon=True)
        self._thread.start()
        self._ready.wait()

    def _main(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._ready.set)
        try:
            self.loop.run_forever()
        finally:
            try:
                pending = asyncio.all_tasks(self.loop)
                for task in pending:
                    task.cancel()
                if pending:
                    self.loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True))
            except Exception:
                pass
            self.loop.close()

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def submit(self, coro) -> concurrent.futures.Future:
        """Schedule ``coro`` on the loop; returns a concurrent Future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro, timeout: Optional[float] = None):
        """Run ``coro`` on the loop and block for its result."""
        return self.submit(coro).result(timeout)

    def call_soon(self, fn: Callable, *args) -> None:
        self.loop.call_soon_threadsafe(fn, *args)

    def stop(self, join_timeout: float = 5.0) -> None:
        if self._thread.is_alive():
            try:
                self.loop.call_soon_threadsafe(self.loop.stop)
            except RuntimeError:
                pass
            self._thread.join(join_timeout)


class _BufferedProtocol(asyncio.Protocol):
    """Shared connection machinery: buffered reads + flow-control gates.

    Read side: chunks land in a :class:`ReadBuffer`; ``read_line`` /
    ``read_exact`` await a wake event until a full frame is buffered.
    When a peer pipelines far ahead of consumption the transport pauses
    reading (``_READ_SLACK`` beyond the frame currently awaited).

    Write side: the transport's write-buffer high-water mark drives
    ``pause_writing``/``resume_writing`` into a ``_writable`` event the
    owner awaits before starting more work — the bounded per-connection
    write queue.
    """

    def __init__(self) -> None:
        self.buf = ReadBuffer()
        self.transport: Any = None
        self._eof = False
        self._paused_reading = False
        self._need = 0
        self._wake = asyncio.Event()
        self._writable = asyncio.Event()
        self._writable.set()

    def connection_made(self, transport) -> None:
        self.transport = transport
        try:
            transport.set_write_buffer_limits(high=_WRITE_HIGH_WATER)
        except (AttributeError, RuntimeError):
            pass

    def data_received(self, data: bytes) -> None:
        self.buf.feed(data)
        if not self._paused_reading and self.buf.pending() > self._need + _READ_SLACK:
            try:
                self.transport.pause_reading()
                self._paused_reading = True
            except RuntimeError:
                pass
        self._wake.set()

    def eof_received(self) -> Optional[bool]:
        self._eof = True
        self._wake.set()
        return False  # close our side too

    def connection_lost(self, exc: Optional[Exception]) -> None:
        self._eof = True
        self._wake.set()
        self._writable.set()  # unblock a serve loop parked on backpressure

    def pause_writing(self) -> None:
        self._writable.clear()

    def resume_writing(self) -> None:
        self._writable.set()

    def _resume_if_starved(self) -> None:
        if self._paused_reading and self.buf.pending() <= self._need + _READ_SLACK:
            self._paused_reading = False
            try:
                self.transport.resume_reading()
            except RuntimeError:
                pass

    async def read_line(self, limit: int = _MAX_HEADER) -> bytes:
        while True:
            line = self.buf.take_line(limit)
            if line is not None:
                self._resume_if_starved()
                return line
            if self._eof:
                raise ConnectionError("connection closed mid-frame")
            self._resume_if_starved()
            self._wake.clear()
            await self._wake.wait()

    async def read_exact(self, n: int) -> bytes:
        self._need = n
        try:
            while True:
                data = self.buf.take_exact(n)
                if data is not None:
                    return data
                if self._eof:
                    raise ConnectionError("connection closed mid-frame")
                self._resume_if_starved()
                self._wake.clear()
                await self._wake.wait()
        finally:
            self._need = 0
            self._resume_if_starved()


# --- server side ----------------------------------------------------------


def _payload_length(cmd: str, args: List[str], max_payload: int) -> Tuple[int, List[str]]:
    """Parse a payload-carrying command's byte length (the last header
    arg) or raise :class:`WireProtocolError`."""
    min_args = 2 if cmd == "SET" else 1  # SET also carries its key
    if len(args) < min_args:
        raise WireProtocolError(f"{cmd} header is missing arguments")
    try:
        length = int(args[-1])
    except ValueError:
        raise WireProtocolError(
            f"{cmd} length is not an integer: {args[-1]!r}") from None
    if length < 0 or length > max_payload:
        raise WireProtocolError(f"{cmd} length out of range: {length}")
    return length, args[:-1]


# Commands whose responses must wait on the WAL group commit before
# they reach the wire (ack-after-fsync). GET-family commands are absent:
# a read-only burst never waits on another connection's fsync.
_MUTATING = frozenset({"SET", "DEL", "RENAME", "MSET", "MSETNX", "MDEL",
                       "FLUSH"})


def _dispatch(server: "AsyncNetKVServer", cmd: str, args: List[str],
              payload: bytes) -> Optional[bytes]:
    store = server.backend
    wal = server.wal
    with server.lock:
        if cmd == "PING":
            return b"PONG"
        if cmd == "SET":
            key = _check_wire_key(args[0])
            store.set(key, payload)
            if wal is not None:
                wal.append_set(key, payload)
            return b""
        if cmd == "GET":
            return store.get(args[0])
        if cmd == "DEL":
            store.delete(args[0])
            if wal is not None:
                # Deletes are logged too: a replayed shard must not
                # resurrect a key whose removal was acked.
                wal.append_delete(args[0])
            return b""
        if cmd == "KEYS":
            prefix = args[0] if args else ""
            return "\x00".join(sorted(store.scan(prefix))).encode("utf-8")
        if cmd == "RENAME":
            dst = _check_wire_key(args[1])
            store.rename(args[0], dst)
            if wal is not None:
                wal.append_rename(args[0], dst)
            return b""
        if cmd == "MGET":
            return _pack_values(store.mget(_split_key_payload(payload)))
        if cmd == "MSET":
            items = _unpack_items(payload, server.max_payload)
            n = store.mset(items)
            if wal is not None:
                for key, value in items:
                    wal.append_set(key, value)
            return str(n).encode("utf-8")
        if cmd == "MSETNX":
            items = _unpack_items(payload, server.max_payload)
            flags = store.msetnx(items)
            if wal is not None:
                for (key, value), stored in zip(items, flags):
                    if stored:
                        wal.append_set(key, value)
            return b"".join(b"1" if f else b"0" for f in flags)
        if cmd == "MDEL":
            keys = _split_key_payload(payload)
            flags = store.mdelete(keys)
            if wal is not None:
                for key, existed in zip(keys, flags):
                    if existed:
                        wal.append_delete(key)
            return b"".join(b"1" if f else b"0" for f in flags)
        if cmd == "LEN":
            return str(len(store)).encode("utf-8")
        if cmd == "FLUSH":
            store.flush()
            if wal is not None:
                wal.append_flush()
            return b""
        if cmd == "SHUTDOWN":
            threading.Thread(target=server.stop, daemon=True).start()
            return None
        raise StoreError(f"unknown command {cmd!r}")


class _ServerConnection(_BufferedProtocol):
    """One accepted connection: a serve task looping request→response.

    Error discipline matches the threaded handler exactly: framing
    violations get one ERR frame and a close (after a malformed SET
    header the payload boundary is unknowable — continuing would parse
    payload bytes as the next header); application errors get an ERR
    frame and the connection continues; KeyNotFound is ``NF``.
    """

    def __init__(self, owner: "AsyncNetKVServer") -> None:
        super().__init__()
        self.owner = owner
        self.task: Optional[asyncio.Task] = None

    def connection_made(self, transport) -> None:
        super().connection_made(transport)
        injector = self.owner.fault_injector
        if injector is not None and injector.connection_fate() == "drop":
            transport.close()  # close before reading anything
            return
        if not self.owner._register(self):
            transport.close()  # stopping, or at max_connections
            return
        self.task = asyncio.get_running_loop().create_task(self._serve())

    def connection_lost(self, exc: Optional[Exception]) -> None:
        super().connection_lost(exc)
        self.owner._unregister(self)

    def _err_close(self, msg: str) -> None:
        try:
            self.transport.write(f"ERR {msg}\n".encode("utf-8", "replace"))
            self.transport.close()
        except Exception:
            pass

    async def _serve(self) -> None:  # noqa: C901 - a protocol switch is a switch
        owner = self.owner
        injector = owner.fault_injector
        transport = self.transport
        # Responses for a pipelined burst accumulate here and reach the
        # socket in one vectored write when the buffered request backlog
        # drains (or every _FLUSH_BYTES): one syscall per burst instead
        # of one per response.
        out: List[bytes] = []
        out_bytes = 0
        wal = owner.wal
        # Highest WAL sequence this connection's unsent responses depend
        # on. Flushing awaits the group commit up to exactly that point,
        # so read-only bursts (and connections that didn't mutate) never
        # wait on someone else's fsync.
        wal_need = 0

        async def flush() -> None:
            nonlocal out_bytes, wal_need
            if wal is not None and wal_need > wal.synced_seq:
                await wal.commit(wal_need)
            wal_need = 0
            if out:
                transport.writelines(out)
                out.clear()
                out_bytes = 0

        try:
            while True:
                # Bounded write queue: don't take another request while
                # the previous responses haven't drained past the
                # transport's high-water mark.
                if not self._writable.is_set():
                    await self._writable.wait()
                if transport.is_closing():
                    return
                try:
                    header = self.buf.take_line()
                    if header is None:
                        await flush()  # the burst is fully answered; park
                        header = await self.read_line()
                except ConnectionError:
                    return  # client went away
                except WireProtocolError as exc:
                    await flush()
                    self._err_close(str(exc))
                    return
                if not header:
                    # A blank line cannot start a request.
                    await flush()
                    self._err_close("empty header")
                    return
                fate = injector.request_fate() if injector is not None else None
                seconds = 0.0
                if fate == "delay":
                    # The sleep awaits outside any span: spans are
                    # thread-local and every connection shares this loop
                    # thread — an await inside one would interleave other
                    # connections' spans into its subtree.
                    seconds = injector.delay_duration()
                    await flush()
                    await asyncio.sleep(seconds)
                elif fate == "close":
                    with trace.span("netkv.handle") as sp:
                        if sp:
                            sp.event("fault", fate="close")
                    await flush()
                    transport.close()
                    return
                elif fate == "garbage":
                    with trace.span("netkv.handle") as sp:
                        if sp:
                            sp.event("fault", fate="garbage")
                    await flush()
                    try:
                        transport.write(injector.garbage_payload())
                    except Exception:
                        pass
                    transport.close()
                    return
                try:
                    parts = header.decode("utf-8").split()
                except UnicodeDecodeError:
                    self._err_close("header is not UTF-8")
                    return
                cmd, args = parts[0].upper(), parts[1:]
                payload = b""
                try:
                    if cmd in ("SET", "MGET", "MSET", "MSETNX", "MDEL"):
                        length, args = _payload_length(cmd, args, owner.max_payload)
                        body = self.buf.take_exact(length)
                        if body is None:
                            await flush()
                            body = await self.read_exact(length)
                        payload = body
                except WireProtocolError as exc:
                    # Framing is broken (bad length field, oversized
                    # payload): the bytes that follow cannot be trusted
                    # as a header.
                    await flush()
                    self._err_close(str(exc))
                    return
                except ConnectionError:
                    return
                if cmd == "SNAPSHOT":
                    # Needs awaits (items copy + freeze under the
                    # dispatch lock, file write on an executor), so it
                    # cannot run inside _dispatch or the span below.
                    try:
                        snap = await owner.compact(force=True)
                        body = owner.wal.info()
                        body["keys"] = snap["keys"]
                        response = json.dumps(
                            body, sort_keys=True).encode("utf-8")
                        hdr = b"OK %d\n" % len(response)
                        out.append(hdr)
                        out.append(response)
                        out_bytes += len(hdr) + len(response)
                    except Exception as exc:
                        msg = str(exc).replace("\n", " ")[:500]
                        out.append(f"ERR {msg}\n".encode("utf-8"))
                        out_bytes += len(out[-1])
                    if out_bytes >= _FLUSH_BYTES:
                        await flush()
                    continue
                # Dispatch and respond synchronously inside the span —
                # no awaits, so the thread-local span stack stays
                # well-nested across the connections multiplexed here.
                with trace.span("netkv.handle") as sp:
                    if sp:
                        sp.set(cmd=cmd)
                        if fate == "delay":
                            sp.event("fault", fate="delay", seconds=seconds)
                    try:
                        response = _dispatch(owner, cmd, args, payload)
                    except KeyNotFound:
                        out.append(b"NF\n")
                        out_bytes += 3
                        continue
                    except WireProtocolError as exc:
                        await flush()
                        self._err_close(str(exc))
                        return
                    except Exception as exc:  # application errors → ERR frames
                        msg = str(exc).replace("\n", " ")[:500]
                        out.append(f"ERR {msg}\n".encode("utf-8"))
                        out_bytes += len(out[-1])
                        continue
                    if response is None:
                        await flush()
                        transport.close()
                        return  # SHUTDOWN
                    hdr = b"OK %d\n" % len(response)
                    out.append(hdr)
                    out.append(response)
                    out_bytes += len(hdr) + len(response)
                    compact_due = False
                    if wal is not None and cmd in _MUTATING:
                        # The burst's responses now depend on the log
                        # up to here; flush() will group-commit first.
                        wal_need = wal.seq
                        compact_due = wal.needs_compaction()
                if compact_due:
                    # Awaited outside the span (spans are thread-local;
                    # see above).  The heavy snapshot write runs on an
                    # executor, so the loop keeps serving other
                    # connections while this one waits.
                    try:
                        await owner.compact()
                    except StoreError:
                        pass  # a racing SNAPSHOT/compaction got there
                if out_bytes >= _FLUSH_BYTES:
                    await flush()
        except asyncio.CancelledError:
            raise
        except Exception:
            try:
                transport.close()
            except Exception:
                pass


class AsyncNetKVServer:
    """One networked shard on a dedicated event loop (sync facade).

    The listening socket is bound in the constructor so ``address`` is
    available before ``start()`` (and a restart can rebind the same
    port); ``start()`` spins the shard's :class:`LoopThread` and begins
    accepting. ``fault_injector`` plugs a
    :class:`~repro.util.faults.NetworkFaultInjector` into the accept
    and request paths for degraded-network testing.

    ``max_connections`` caps concurrently served connections: excess
    accepts are closed immediately (documented in OPERATIONS.md for
    ``repro netkv --serve``). With the default ``None`` the shard takes
    what the event loop can hold — 10k+ connections cost one protocol
    object each, not one thread each.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 fault_injector=None,
                 max_payload: int = 256 * 1024 * 1024,
                 max_connections: Optional[int] = None,
                 backlog: int = 4096,
                 persist_dir: Optional[str] = None,
                 durability: Optional[DurabilityConfig] = None) -> None:
        self.backend = KVServer()
        self.wal: Optional[ShardWAL] = None
        if persist_dir is not None:
            # Recovery happens here, before the port accepts anything:
            # snapshot load + WAL replay (torn tail truncated), so the
            # first request already sees every previously acked write.
            self.wal = ShardWAL(persist_dir, durability)
            self.backend._data.update(self.wal.recovered)
        self.lock = threading.Lock()
        self.fault_injector = fault_injector
        self.max_payload = max_payload
        self.max_connections = max_connections
        self._backlog = backlog
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        self._listen_sock = sock
        self._address: Tuple[str, int] = sock.getsockname()
        self._loop_thread: Optional[LoopThread] = None
        self._snap_lock: Optional[asyncio.Lock] = None
        self._aserver: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()
        self._conn_lock = threading.Lock()
        self._stop_lock = threading.Lock()
        self._stopping = False

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    def _register(self, conn: _ServerConnection) -> bool:
        with self._conn_lock:
            if self._stopping:
                return False
            if (self.max_connections is not None
                    and len(self._conns) >= self.max_connections):
                return False
            self._conns.add(conn)
            return True

    def _unregister(self, conn: _ServerConnection) -> None:
        with self._conn_lock:
            self._conns.discard(conn)

    def connection_count(self) -> int:
        with self._conn_lock:
            return len(self._conns)

    def start(self) -> "AsyncNetKVServer":
        with self._stop_lock:
            if self._stopping:
                raise StoreError("server was stopped; create a new one")
            if self._loop_thread is not None:
                return self  # already started
            self._loop_thread = LoopThread(
                name=f"netkv-shard:{self._address[1]}")
        self._aserver = self._loop_thread.run(self._open())
        return self

    async def _open(self) -> asyncio.AbstractServer:
        loop = asyncio.get_running_loop()
        self._snap_lock = asyncio.Lock()
        return await loop.create_server(
            lambda: _ServerConnection(self), sock=self._listen_sock,
            backlog=self._backlog, start_serving=True)

    async def compact(self, force: bool = False) -> Dict[str, object]:
        """Snapshot + compact the WAL without stalling the loop.

        The key-space copy and the log freeze happen together under the
        dispatch lock (cheap: the freeze is two renames), then the
        snapshot write + fsync runs on an executor while the loop keeps
        serving — the WAL's own file lock holds group commits off until
        the snapshot lands, and commit waiters poll rather than pile
        writes into an ambiguous file.  With ``force=False`` the call
        is a no-op unless the log has outgrown ``compact_bytes``, so
        concurrent triggers collapse into one snapshot.
        """
        if self.wal is None:
            raise StoreError("shard has no persistence configured")
        if self._snap_lock is None:
            raise StoreError("server is not running")
        async with self._snap_lock:
            with self.lock:
                if not force and not self.wal.needs_compaction():
                    return {"keys": len(self.backend),
                            "snapshots": self.wal.snapshots,
                            "wal_bytes": self.wal.wal_bytes}
                items = list(self.backend.items())
                self.wal.begin_snapshot()
            return await asyncio.get_running_loop().run_in_executor(
                None, self.wal.write_snapshot, items)

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop accepting, sever live connections, and join the loop.

        Severing matters for restart semantics: connections on a
        "stopped" shard must not keep serving (the resilience tests
        revive shards at the same address). In-flight serve tasks are
        awaited (bounded by ``join_timeout``) so an acked write is
        fully applied before the loop thread dies.
        """
        with self._stop_lock:
            if self._stopping:
                return
            self._stopping = True
            lt = self._loop_thread
        if lt is None:  # never started: just release the port
            try:
                self._listen_sock.close()
            except OSError:
                pass
            if self.wal is not None:
                self.wal.close()
            return
        try:
            lt.run(self._shutdown(join_timeout), timeout=join_timeout + 5.0)
        except Exception:
            pass
        lt.stop(join_timeout)
        if self.wal is not None:
            # The loop is down; one last synchronous flush catches
            # records whose group commit hadn't fired yet (their
            # responses were never sent, but replaying them is free).
            self.wal.close()

    async def _shutdown(self, join_timeout: float) -> None:
        if self._aserver is not None:
            self._aserver.close()
            try:
                await self._aserver.wait_closed()
            except Exception:
                pass
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        tasks = [c.task for c in conns if c.task is not None]
        for conn in conns:
            try:
                conn.transport.abort()
            except Exception:
                pass
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=join_timeout)
            for task in pending:
                task.cancel()

    def __enter__(self) -> "AsyncNetKVServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


# --- client side ----------------------------------------------------------


class _Op:
    """One queued client operation awaiting its round trip.

    ``span`` is the submitting thread's open trace span (or None): the
    retry ladder runs on the loop thread where that span is not on the
    thread-local stack, so retry/exhausted events are attached to the
    captured span object directly — the store op that pays for a retry
    records it, exactly as with the threaded client.
    """

    __slots__ = ("kind", "arg", "fut", "span")

    def __init__(self, kind: str, arg, fut: concurrent.futures.Future,
                 span=None) -> None:
        self.kind = kind
        self.arg = arg
        self.fut = fut
        self.span = span


def _note_event(spans, name: str, **attrs) -> None:
    """Record a transport event on every waiting caller's span."""
    for sp in spans:
        if sp is not None:
            sp.event(name, **attrs)


class AsyncClientChannel:
    """Coalescing sync-facade connection to one shard.

    Caller threads enqueue ops onto the channel's event loop and block
    on a future; a drainer task executes the queue over one connection.
    When several same-kind single-key GET/SET/DEL ops are queued (they
    piled up while the previous round trip was in flight), the drainer
    folds the longest same-kind prefix run into one MGET/MSET/MDEL
    frame — concurrency converts into pipeline depth instead of
    per-key round trips. FIFO order across kinds is preserved, and a
    caller's program order is preserved because it blocks per op.

    The retry ladder mirrors ``NetKVClient``: timeouts, connection
    failures, and protocol violations drop the connection, wait out a
    jittered capped-exponential backoff, and re-attempt on a fresh
    connection until the budget is spent (→ StoreUnavailable).
    Application outcomes (NF → KeyNotFound, ERR → StoreError) are never
    retried. Method surface and exception contract match
    ``NetKVClient`` so the cluster's failover machinery is agnostic.
    """

    def __init__(self, address: Tuple[str, int], config,
                 stats: Optional[TransportStats] = None,
                 loop_thread: Union[LoopThread, Callable[[], LoopThread], None] = None,
                 rng=None) -> None:
        self.address = (str(address[0]), int(address[1]))
        self.config = config
        self.stats = stats if stats is not None else TransportStats()
        self._loop_source = loop_thread
        self._lt: Optional[LoopThread] = None
        self._owns_loop = False
        self._loop_lock = threading.Lock()
        self._rng = rng if rng is not None else random.Random(0x5EED)
        # Cross-thread handoff: submitters append under a plain lock and
        # only the append that finds no wakeup in flight pays the
        # ``call_soon_threadsafe`` (one self-pipe write + handle); under
        # concurrency one pump drains many submissions, which is most
        # of the facade's per-op cost on a busy channel.
        self._pending: deque = deque()
        self._pending_lock = threading.Lock()
        self._wake_scheduled = False
        # Loop-thread-only state:
        self._queue: deque = deque()
        self._drainer: Optional[asyncio.Task] = None
        self._conn: Optional[_BufferedProtocol] = None
        self._ever_connected = False
        self._closed = False
        self._spans: tuple = ()  # caller spans of the ops now on the wire
        # An op can wait behind a full retry ladder; anything past this
        # means the loop lost it — surface StoreUnavailable, not a hang.
        cfg = self.config
        self._deadline = (cfg.retries + 1) * (
            cfg.op_timeout + cfg.connect_timeout + cfg.backoff_max) + 60.0

    # --- loop + queue plumbing -------------------------------------------

    def _ensure_loop(self) -> LoopThread:
        with self._loop_lock:
            if self._lt is not None and self._lt.is_alive():
                return self._lt
            source = self._loop_source
            if callable(source):
                self._lt = source()
            elif source is not None:
                self._lt = source
            else:
                self._lt = LoopThread(name=f"netkv-chan:{self.address[1]}")
                self._owns_loop = True
            return self._lt

    def _submit(self, kind: str, arg=None):
        if self._closed:
            raise StoreUnavailable(f"channel to {self.address} is closed")
        lt = self._ensure_loop()
        op = _Op(kind, arg, concurrent.futures.Future(),
                 span=trace.current_span())
        with self._pending_lock:
            self._pending.append(op)
            wake = not self._wake_scheduled
            if wake:
                self._wake_scheduled = True
        if wake:
            try:
                lt.loop.call_soon_threadsafe(self._pump)
            except RuntimeError as exc:  # loop already closed
                self._fail_pending(StoreUnavailable(
                    f"transport loop for {self.address} is gone"))
                raise StoreUnavailable(
                    f"transport loop for {self.address} is gone") from exc
        try:
            return op.fut.result(timeout=self._deadline)
        except concurrent.futures.TimeoutError:
            raise StoreUnavailable(
                f"{kind} against {self.address[0]}:{self.address[1]} "
                f"stalled past {self._deadline:.1f}s") from None

    def _pump(self) -> None:
        """Move pending submissions onto the loop-side queue (loop thread)."""
        with self._pending_lock:
            ops, self._pending = self._pending, deque()
            self._wake_scheduled = False
        for op in ops:
            self._enqueue(op)

    def _fail_pending(self, exc: BaseException) -> None:
        with self._pending_lock:
            stranded, self._pending = self._pending, deque()
            self._wake_scheduled = False
        for op in stranded:
            if not op.fut.done():
                op.fut.set_exception(exc)

    def _enqueue(self, op: _Op) -> None:
        if self._closed:
            op.fut.set_exception(
                StoreUnavailable(f"channel to {self.address} is closed"))
            return
        self._queue.append(op)
        if self._drainer is None:
            self._drainer = asyncio.get_running_loop().create_task(self._drain())

    def _foldable(self, op: _Op) -> bool:
        if op.kind == "SET":
            return True  # keys were validated before enqueue
        if op.kind in ("GET", "DEL"):
            return _wire_key_ok(op.arg)
        return False

    async def _drain(self) -> None:
        try:
            while self._queue and not self._closed:
                op = self._queue.popleft()
                run = [op]
                if self._foldable(op):
                    limit = self.config.batch_keys
                    queue = self._queue
                    while (queue and len(run) < limit
                           and queue[0].kind == op.kind
                           and self._foldable(queue[0])):
                        run.append(queue.popleft())
                await self._execute(run)
        finally:
            self._drainer = None
            if self._queue and not self._closed:
                # An unexpected unwind must not strand queued ops.
                self._drainer = asyncio.get_running_loop().create_task(self._drain())

    async def _execute(self, run: List[_Op]) -> None:
        if len(run) > 1:
            try:
                await self._run_fold(run[0].kind, run)
            except Exception as exc:
                for op in run:
                    if not op.fut.done():
                        op.fut.set_exception(exc)
        else:
            op = run[0]
            try:
                result = await self._run_single(op)
            except Exception as exc:
                op.fut.set_exception(exc)
            else:
                op.fut.set_result(result)

    # --- execution on the loop -------------------------------------------

    async def _run_single(self, op: _Op):
        kind, arg = op.kind, op.arg
        self._spans = (op.span,)
        if kind == "GET":
            return await self._roundtrip(f"GET {arg}")
        if kind == "SET":
            key, value = arg
            await self._roundtrip(f"SET {key} {len(value)}", value)
            return None
        if kind == "DEL":
            await self._roundtrip(f"DEL {arg}")
            return None
        if kind == "PING":
            return await self._roundtrip("PING") == b"PONG"
        if kind == "KEYS":
            raw = await self._roundtrip(f"KEYS {arg}" if arg else "KEYS")
            return raw.decode("utf-8").split("\x00") if raw else []
        if kind == "RENAME":
            src, dst = arg
            await self._roundtrip(f"RENAME {src} {dst}")
            return None
        if kind == "LEN":
            return int(await self._roundtrip("LEN"))
        if kind == "MGET":
            payload, nkeys = arg
            raw = await self._roundtrip(f"MGET {len(payload)}", payload)
            values = _unpack_values(raw, nkeys)
            self.stats.note_batch(nkeys)
            return values
        if kind == "MSET":
            payload, nitems = arg
            raw = await self._roundtrip(f"MSET {len(payload)}", payload)
            try:
                n = int(raw)
            except ValueError:
                raise WireProtocolError(f"malformed MSET response: {raw!r}") from None
            self.stats.note_batch(nitems)
            return n
        if kind == "MDEL":
            payload, nkeys = arg
            raw = await self._roundtrip(f"MDEL {len(payload)}", payload)
            if len(raw) != nkeys or raw.strip(b"01"):
                raise WireProtocolError(f"malformed MDEL response: {raw[:64]!r}")
            self.stats.note_batch(nkeys)
            return [b == 0x31 for b in raw]
        if kind == "MSETNX":
            payload, nitems = arg
            raw = await self._roundtrip(f"MSETNX {len(payload)}", payload)
            if len(raw) != nitems or raw.strip(b"01"):
                raise WireProtocolError(
                    f"malformed MSETNX response: {raw[:64]!r}")
            self.stats.note_batch(nitems)
            return [b == 0x31 for b in raw]
        if kind == "SNAPSHOT":
            raw = await self._roundtrip("SNAPSHOT")
            return json.loads(raw.decode("utf-8"))
        raise StoreError(f"unknown channel op {kind!r}")

    async def _run_fold(self, kind: str, run: List[_Op]) -> None:
        n = len(run)
        self._spans = tuple(op.span for op in run)
        if kind == "GET":
            keys = [op.arg for op in run]
            payload = "\x00".join(keys).encode("utf-8")
            raw = await self._roundtrip(f"MGET {len(payload)}", payload)
            values = _unpack_values(raw, n)
            self.stats.note_coalesced(n)
            for op, value in zip(run, values):
                if value is None:
                    op.fut.set_exception(KeyNotFound(op.arg))
                else:
                    op.fut.set_result(value)
        elif kind == "SET":
            payload = _pack_items([op.arg for op in run])
            await self._roundtrip(f"MSET {len(payload)}", payload)
            self.stats.note_coalesced(n)
            for op in run:
                op.fut.set_result(None)
        else:  # DEL
            keys = [op.arg for op in run]
            payload = "\x00".join(keys).encode("utf-8")
            raw = await self._roundtrip(f"MDEL {len(payload)}", payload)
            if len(raw) != n or raw.strip(b"01"):
                raise WireProtocolError(f"malformed MDEL response: {raw[:64]!r}")
            self.stats.note_coalesced(n)
            for op, flag in zip(run, raw):
                if flag == 0x31:
                    op.fut.set_result(None)
                else:
                    op.fut.set_exception(KeyNotFound(op.arg))

    # --- connection + retry ladder ---------------------------------------

    async def _ensure_connected(self) -> _BufferedProtocol:
        conn = self._conn
        if (conn is not None and not conn._eof
                and not conn.transport.is_closing()):
            return conn
        self._conn = None
        loop = asyncio.get_running_loop()
        _, proto = await asyncio.wait_for(
            loop.create_connection(_BufferedProtocol, *self.address),
            self.config.connect_timeout)
        self._conn = proto
        if self._ever_connected:
            self.stats.note_reconnect()
        self._ever_connected = True
        return proto

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.transport.abort()
            except Exception:
                pass
        self._conn = None

    async def _backoff(self, attempt: int) -> None:
        cfg = self.config
        base = min(cfg.backoff_max, cfg.backoff_base * (2.0 ** attempt))
        if base <= 0:
            return
        spread = cfg.jitter
        factor = (1.0 if spread == 0
                  else (1.0 - spread) + 2.0 * spread * float(self._rng.random()))
        await asyncio.sleep(base * factor)

    async def _roundtrip(self, header: str, payload: bytes = b"") -> bytes:
        wire_header = header.encode("utf-8") + b"\n"
        op = header.split(" ", 1)[0]
        attempts = self.config.retries + 1
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            if self._closed:
                raise StoreUnavailable(f"channel to {self.address} is closed")
            t0 = time.perf_counter()
            try:
                conn = await self._ensure_connected()
                self.stats.note_request(len(wire_header) + len(payload))
                if payload:
                    conn.transport.writelines((wire_header, payload))
                else:
                    conn.transport.write(wire_header)
                return await asyncio.wait_for(
                    self._read_response(conn, header, t0),
                    self.config.op_timeout)
            except (asyncio.TimeoutError, TimeoutError) as exc:
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=True)
                _note_event(self._spans, "retry", kind="timeout", op=op,
                            attempt=attempt)
            except WireProtocolError as exc:
                # The peer sent something unframeable — desynced or
                # garbage-injected. The connection is dead to us.
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=False, protocol=True)
                _note_event(self._spans, "retry", kind="protocol", op=op,
                            attempt=attempt)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=False)
                _note_event(self._spans, "retry", kind="connection", op=op,
                            attempt=attempt)
            if attempt < attempts - 1:
                await self._backoff(attempt)
        self.stats.note_exhausted()
        _note_event(self._spans, "exhausted", op=op, attempts=attempts)
        raise StoreUnavailable(
            f"{op} against {self.address[0]}:{self.address[1]} "
            f"failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    async def _read_response(self, conn: _BufferedProtocol, header: str,
                             t0: float) -> bytes:
        status = (await conn.read_line()).decode("utf-8", "replace")
        if status.startswith("OK "):
            try:
                n = int(status[3:])
            except ValueError:
                raise WireProtocolError(f"malformed OK length: {status!r}") from None
            if n < 0 or n > self.config.max_payload:
                raise WireProtocolError(f"OK length out of range: {n}")
            body = await conn.read_exact(n)
            self.stats.note_response(n, time.perf_counter() - t0)
            return body
        if status == "NF":
            self.stats.note_response(0, time.perf_counter() - t0)
            raise KeyNotFound(header.split()[1] if " " in header else "?")
        if status.startswith("ERR "):
            self.stats.note_response(0, time.perf_counter() - t0)
            raise StoreError(status[4:])
        raise WireProtocolError(f"unparseable response {status!r}")

    # --- public sync surface (mirrors NetKVClient) ------------------------

    def ping(self) -> bool:
        return self._submit("PING")

    def set(self, key: str, value: bytes) -> None:
        self._submit("SET", (_check_wire_key(key), value))

    def get(self, key: str) -> bytes:
        return self._submit("GET", key)

    def delete(self, key: str) -> None:
        self._submit("DEL", key)

    def keys(self, prefix: str = "") -> List[str]:
        return self._submit("KEYS", prefix)

    def rename(self, src: str, dst: str) -> None:
        self._submit("RENAME", (src, _check_wire_key(dst)))

    def mget(self, keys: List[str]) -> List[Optional[bytes]]:
        """Values for ``keys`` in order; None where the key is missing."""
        if not keys:
            return []
        payload = "\x00".join(_check_wire_key(k) for k in keys).encode("utf-8")
        return self._submit("MGET", (payload, len(keys)))

    def mset(self, items: List[Tuple[str, bytes]]) -> int:
        if not items:
            return 0
        return self._submit("MSET", (_pack_items(items), len(items)))

    def mdelete(self, keys: List[str]) -> List[bool]:
        """Delete ``keys``; per-key flags say which existed."""
        if not keys:
            return []
        payload = "\x00".join(_check_wire_key(k) for k in keys).encode("utf-8")
        return self._submit("MDEL", (payload, len(keys)))

    def msetnx(self, items: List[Tuple[str, bytes]]) -> List[bool]:
        """Set each pair only where the key is absent; per-key flags say
        which were stored (the migration copier's no-overwrite write)."""
        if not items:
            return []
        return self._submit("MSETNX", (_pack_items(items), len(items)))

    def snapshot(self) -> dict:
        """Ask the shard to write a snapshot and compact its WAL."""
        return self._submit("SNAPSHOT")

    def __len__(self) -> int:
        return self._submit("LEN")

    def close(self) -> None:
        lt = self._lt
        self._closed = True
        if lt is not None and lt.is_alive():
            try:
                lt.loop.call_soon_threadsafe(self._close_on_loop)
            except RuntimeError:
                pass
            if self._owns_loop:
                lt.stop()
        self._lt = None

    def _close_on_loop(self) -> None:
        self._closed = True
        self._fail_pending(
            StoreUnavailable(f"channel to {self.address} is closed"))
        while self._queue:
            op = self._queue.popleft()
            if not op.fut.done():
                op.fut.set_exception(
                    StoreUnavailable(f"channel to {self.address} is closed"))
        if self._conn is not None:
            try:
                self._conn.transport.abort()
            except Exception:
                pass
            self._conn = None
