"""Thread-safety helpers for objects shared across Workflow Manager tasks.

Section 4.4 ("Parallelism and Locking"): the four WM tasks share objects
such as the Patch Selector, protected by "thread-safe objects ... with a
mix of blocking and nonblocking locks". :class:`SharedState` provides the
blocking path; :func:`try_acquire` provides the nonblocking one.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, TypeVar

T = TypeVar("T")

__all__ = ["SharedState", "try_acquire", "LockStats"]


class LockStats:
    """Counters for lock contention, used by workflow profiling.

    All fields are cumulative counts: ``acquisitions`` — successful
    lock acquisitions (blocking or not); ``contentions`` — blocking
    acquisitions that had to wait because another thread held the lock;
    ``failed_tries`` — nonblocking attempts that found the lock busy
    and gave up.
    """

    __slots__ = ("acquisitions", "contentions", "failed_tries")

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contentions = 0
        self.failed_tries = 0

    def as_dict(self) -> dict:
        return {
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
            "failed_tries": self.failed_tries,
        }


class SharedState:
    """An object wrapper serializing access through an RLock.

    >>> counter = SharedState({"n": 0})
    >>> with counter.locked() as d:
    ...     d["n"] += 1

    ``apply`` runs a function under the lock and returns its result,
    which is the preferred idiom for short critical sections.
    """

    def __init__(self, obj: Any) -> None:
        self._obj = obj
        self._lock = threading.RLock()
        self.stats = LockStats()

    @contextmanager
    def locked(self) -> Iterator[Any]:
        """Blocking acquisition; yields the wrapped object."""
        acquired_immediately = self._lock.acquire(blocking=False)
        if not acquired_immediately:
            self.stats.contentions += 1
            self._lock.acquire()
        try:
            self.stats.acquisitions += 1
            yield self._obj
        finally:
            self._lock.release()

    @contextmanager
    def try_locked(self) -> Iterator[Optional[Any]]:
        """Nonblocking acquisition; yields the object or None if busy."""
        got = self._lock.acquire(blocking=False)
        try:
            if got:
                self.stats.acquisitions += 1
                yield self._obj
            else:
                self.stats.failed_tries += 1
                yield None
        finally:
            if got:
                self._lock.release()

    def apply(self, fn: Callable[[Any], T]) -> T:
        """Run ``fn(obj)`` under the lock and return its result."""
        with self.locked() as obj:
            return fn(obj)


@contextmanager
def try_acquire(lock: threading.Lock, timeout: float = 0.0) -> Iterator[bool]:
    """Context manager over ``lock.acquire(timeout=...)`` yielding success."""
    got = lock.acquire(timeout=timeout) if timeout > 0 else lock.acquire(blocking=False)
    try:
        yield got
    finally:
        if got:
            lock.release()
