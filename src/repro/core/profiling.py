"""The resource-occupancy profiler (Fig. 5).

§5.2: "MuMMI's profiling mechanism gathers the number of running and
pending jobs every few minutes (for most of this campaign, profiling
frequency was 10 min). Given the resource requirement for each job
type, it is then straightforward to gather the number of occupied and
unoccupied resources." Occupancy is "normalized with respect to the
total size of the resource set (to account for the different sizes of
allocations)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.sched.flux import FluxInstance
from repro.util.stats import fraction_at_least

__all__ = ["ProfileEvent", "OccupancyProfiler"]


@dataclass(frozen=True)
class ProfileEvent:
    """One profiling poll: normalized occupancy and job counts."""

    time: float
    gpu_occupancy: float  # fraction of all GPUs allocated, 0..1
    cpu_occupancy: float
    running: Dict[str, int]
    pending: int


class OccupancyProfiler:
    """Polls a FluxInstance on a fixed interval and accumulates events."""

    def __init__(self, flux: FluxInstance, interval: float = 600.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.flux = flux
        self.interval = interval
        self.events: List[ProfileEvent] = []
        self._armed = False

    # --- manual and scheduled polling ------------------------------------

    def poll(self) -> ProfileEvent:
        graph = self.flux.graph
        ev = ProfileEvent(
            time=self.flux.loop.now,
            gpu_occupancy=graph.used_gpus / max(graph.total_gpus, 1),
            cpu_occupancy=graph.used_cores / max(graph.total_cores, 1),
            running=self.flux.running_by_name(),
            pending=self.flux.queue.backlog,
        )
        self.events.append(ev)
        return ev

    def start(self, until: float) -> None:
        """Schedule polls on the flux event loop every ``interval`` until
        ``until`` (virtual seconds)."""
        loop = self.flux.loop

        def tick():
            self.poll()
            if loop.now + self.interval <= until:
                loop.schedule_in(self.interval, tick, label="profile")

        loop.schedule_in(self.interval, tick, label="profile")

    # --- Fig. 5 reductions --------------------------------------------------

    def gpu_series(self) -> np.ndarray:
        return np.array([e.gpu_occupancy for e in self.events])

    def cpu_series(self) -> np.ndarray:
        return np.array([e.cpu_occupancy for e in self.events])

    def headline(self, threshold: float = 0.98) -> Dict[str, float]:
        """The paper's headline numbers: fraction of profile events at
        >= ``threshold`` GPU occupancy, plus means and medians."""
        gpu = self.gpu_series()
        cpu = self.cpu_series()
        if gpu.size == 0:
            raise ValueError("no profile events collected")
        return {
            "gpu_fraction_at_98": fraction_at_least(gpu, threshold),
            "gpu_mean": float(gpu.mean()),
            "gpu_median": float(np.median(gpu)),
            "cpu_mean": float(cpu.mean()),
            "cpu_median": float(np.median(cpu)),
        }
