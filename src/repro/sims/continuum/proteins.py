"""Protein particles living on the continuum membrane.

§4.1 (1): "Proteins (positions and configurational states) are
represented as particles that interact with each other and with the
lipids." States model the RAS activation pathway: free RAS can bind a
RAF to become a RAS-RAF complex (and unbind), which is the event the
whole campaign is hunting.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

__all__ = ["ProteinState", "ProteinTable"]


class ProteinState(enum.IntEnum):
    """Configurational state of one membrane protein particle."""

    RAS = 0
    RAS_RAF = 1


class ProteinTable:
    """Columnar table of protein particles (positions in µm, states).

    Positions live in the periodic box [0, L)²; state transitions are
    Poisson processes with the given rates (per µs).
    """

    def __init__(
        self,
        positions: np.ndarray,
        states: np.ndarray,
        box: float,
        bind_rate: float = 0.02,
        unbind_rate: float = 0.005,
    ) -> None:
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        states = np.asarray(states, dtype=np.int64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError("positions must be (n, 2)")
        if states.shape != (positions.shape[0],):
            raise ValueError("states must be (n,)")
        if box <= 0:
            raise ValueError("box must be positive")
        self.positions = positions % box
        self.states = states
        self.box = float(box)
        self.bind_rate = bind_rate
        self.unbind_rate = unbind_rate

    @classmethod
    def random(
        cls,
        n: int,
        box: float,
        rng: np.random.Generator,
        raf_fraction: float = 0.3,
        **kwargs,
    ) -> "ProteinTable":
        """Uniformly placed proteins, a fraction already RAS-RAF."""
        positions = rng.random((n, 2)) * box
        states = np.where(
            rng.random(n) < raf_fraction, ProteinState.RAS_RAF, ProteinState.RAS
        ).astype(np.int64)
        return cls(positions, states, box, **kwargs)

    def __len__(self) -> int:
        return self.positions.shape[0]

    def count(self, state: ProteinState) -> int:
        return int(np.sum(self.states == state))

    def step_states(self, dt: float, rng: np.random.Generator) -> int:
        """Advance binding/unbinding by ``dt`` µs; returns #transitions."""
        u = rng.random(len(self))
        is_ras = self.states == ProteinState.RAS
        bind = is_ras & (u < 1.0 - np.exp(-self.bind_rate * dt))
        unbind = ~is_ras & (u < 1.0 - np.exp(-self.unbind_rate * dt))
        self.states[bind] = ProteinState.RAS_RAF
        self.states[unbind] = ProteinState.RAS
        return int(bind.sum() + unbind.sum())

    def displace(self, delta: np.ndarray) -> None:
        """Move all proteins by ``delta`` (n,2), wrapping periodically."""
        self.positions = (self.positions + delta) % self.box

    def copy(self) -> "ProteinTable":
        return ProteinTable(
            self.positions.copy(),
            self.states.copy(),
            self.box,
            self.bind_rate,
            self.unbind_rate,
        )
