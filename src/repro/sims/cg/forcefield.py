"""A Martini-flavoured coarse-grained force field.

Bead types carry pairwise interaction strengths (a symmetric epsilon
matrix over a soft-core pair potential) and protein beads carry bonded
parameters whose stiffness depends on the protein's secondary
structure — the knob that AA→CG feedback turns: "The force field
parameters of the CG protein model depend on the secondary structure,
and, therefore, the parameters are progressively refined" (§4.1 (7)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BeadType", "CGForceField"]

# Per-secondary-structure backbone bond stiffness (helix rigid, coil soft),
# in reduced units. These are the parameters feedback refines.
SS_BOND_STIFFNESS: Dict[str, float] = {"H": 50.0, "E": 30.0, "C": 10.0}


@dataclass(frozen=True)
class BeadType:
    """One CG bead species."""

    name: str
    charge: float = 0.0
    is_protein: bool = False


class CGForceField:
    """Pair + bond parameters over a set of bead types.

    The pair potential is a soft repulsive core with a type-dependent
    attractive well::

        U(r) = eps_rep * (1 - r/rc)^2  - eps[i, j] * (1 - r/rc)^4   (r < rc)

    — cheap, cutoff-smooth at ``rc`` (both terms and their derivatives
    vanish there), and expressive enough to give distinct protein-lipid
    RDFs per lipid type, which is all the feedback loop consumes.
    """

    def __init__(
        self,
        types: Sequence[BeadType],
        eps: Optional[np.ndarray] = None,
        cutoff: float = 1.2,
        eps_rep: float = 25.0,
        ss_pattern: str = "",
    ) -> None:
        if not types:
            raise ValueError("need at least one bead type")
        self.types = list(types)
        self.type_index = {t.name: i for i, t in enumerate(self.types)}
        if len(self.type_index) != len(self.types):
            raise ValueError("duplicate bead type names")
        n = len(self.types)
        if eps is None:
            eps = np.ones((n, n))
        eps = np.asarray(eps, dtype=np.float64)
        if eps.shape != (n, n):
            raise ValueError(f"eps must be ({n},{n})")
        if not np.allclose(eps, eps.T):
            raise ValueError("eps must be symmetric")
        self.eps = eps
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.cutoff = float(cutoff)
        self.eps_rep = float(eps_rep)
        # Secondary-structure assignment of the protein backbone; bond k
        # per backbone segment derives from it.
        self.ss_pattern = ss_pattern
        self.version = 0

    # --- feedback interface -----------------------------------------------

    def update_secondary_structure(self, ss_pattern: str) -> None:
        """Refine protein bonded parameters from an AA-derived SS string."""
        bad = set(ss_pattern) - set(SS_BOND_STIFFNESS)
        if bad:
            raise ValueError(f"unknown secondary-structure codes: {sorted(bad)}")
        self.ss_pattern = ss_pattern
        self.version += 1

    def bond_stiffness(self) -> np.ndarray:
        """Backbone bond constants, one per SS segment (len(ss_pattern),)."""
        return np.array([SS_BOND_STIFFNESS[c] for c in self.ss_pattern])

    # --- pair forces (vectorized over pair lists) ---------------------------

    def pair_energy_force(
        self, r: np.ndarray, type_i: np.ndarray, type_j: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """U(r) and -dU/dr for arrays of pair distances and type ids.

        Pairs beyond the cutoff contribute exactly zero.
        """
        r = np.asarray(r, dtype=np.float64)
        rc = self.cutoff
        x = 1.0 - r / rc
        inside = r < rc
        x = np.where(inside, x, 0.0)
        e_att = self.eps[type_i, type_j]
        U = self.eps_rep * x**2 - e_att * x**4
        # -dU/dr = (2*eps_rep*x - 4*e_att*x^3) / rc
        F = (2.0 * self.eps_rep * x - 4.0 * e_att * x**3) / rc
        return np.where(inside, U, 0.0), np.where(inside, F, 0.0)

    def index_of(self, name: str) -> int:
        return self.type_index[name]

    def lipid_type_names(self) -> List[str]:
        return [t.name for t in self.types if not t.is_protein]

    def protein_type_names(self) -> List[str]:
        return [t.name for t in self.types if t.is_protein]


def martini_like(n_lipid_types: int = 4, seed: int = 0) -> CGForceField:
    """A ready-made force field: n lipid species + RAS and RAF beads."""
    rng = np.random.default_rng(seed)
    types = [BeadType(f"L{i}") for i in range(n_lipid_types)]
    types += [BeadType("RAS", is_protein=True), BeadType("RAF", is_protein=True)]
    n = len(types)
    base = rng.uniform(0.5, 2.0, size=(n, n))
    eps = (base + base.T) / 2
    return CGForceField(types, eps=eps, ss_pattern="HHHHCC")
