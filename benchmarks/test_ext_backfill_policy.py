"""Extension bench: the backfill policy knob vs the campaign's strict FCFS.

§4.3: the campaign selected "first come, first served with no
backfilling" for throughput. This bench shows the trade the knob makes:
with a mixed job stream containing occasional whole-machine jobs,
backfilling keeps GPUs busy while strict FCFS stalls behind the big
job — at the cost of delaying it.
"""

import numpy as np
from conftest import report

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec
from repro.sched.matcher import MatchPolicy
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop


def _run(backfill_window):
    loop = EventLoop()
    flux = FluxInstance(summit_like(4), loop, policy=MatchPolicy.FIRST_MATCH)
    flux.queue.backfill_window = backfill_window
    rng = np.random.default_rng(0)
    # Dirty every node first so the exclusive job must wait at the head.
    pre = [
        flux.submit(JobSpec(name="pre", ncores=3, ngpus=1, duration=900.0))
        for _ in range(4)
    ]
    loop.run_until(30.0)
    assert all(r.start_time is not None for r in pre)
    big = flux.submit(JobSpec(name="big", nnodes=4, exclusive=True, duration=600.0))
    small = [
        flux.submit(JobSpec(name="cg-sim", ncores=3, ngpus=1,
                            duration=float(rng.uniform(300, 900))))
        for _ in range(48)
    ]
    loop.run_until(40_000.0)
    waits = np.array([r.wait_time for r in small if r.wait_time is not None])
    return {
        "small_started": sum(1 for r in small if r.start_time is not None),
        "small_wait_mean": float(waits.mean()) if waits.size else float("inf"),
        "big_wait": big.wait_time,
        "backfilled": flux.queue.backfilled,
    }


def test_backfill_tradeoff(benchmark):
    def run_both():
        return _run(0), _run(16)

    strict, backfill = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        "mixed stream: 1 whole-machine job at the head + 48 GPU jobs behind it",
        f"  strict FCFS : small jobs wait {strict['small_wait_mean']:.0f}s mean, "
        f"big job waits {strict['big_wait']:.0f}s",
        f"  backfill(16): small jobs wait {backfill['small_wait_mean']:.0f}s mean, "
        f"big job waits {backfill['big_wait']:.0f}s, "
        f"{backfill['backfilled']} jobs backfilled",
    ]
    report("ext_backfill_policy", lines)
    # The trade: backfilling slashes small-job waits but delays the big job.
    assert backfill["small_wait_mean"] < strict["small_wait_mean"]
    assert backfill["backfilled"] > 0
    assert backfill["big_wait"] > strict["big_wait"]
    # ...and everything still completes under both policies.
    assert strict["small_started"] == backfill["small_started"] == 48
