"""The coarse-grained (micro) scale: Martini-like Langevin MD (our ddcMD)."""

from repro.sims.cg.forcefield import CGForceField, BeadType
from repro.sims.cg.engine import CGSim, CGConfig
from repro.sims.cg.analysis import CGAnalysis, RDFResult, FrameCandidate

__all__ = [
    "CGForceField",
    "BeadType",
    "CGSim",
    "CGConfig",
    "CGAnalysis",
    "RDFResult",
    "FrameCandidate",
]
