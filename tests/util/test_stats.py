"""Tests for summary statistics and the streaming histogram."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Histogram,
    Summary,
    fraction_at_least,
    percentile_of,
    summarize,
)


class TestSummarize:
    def test_basic_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0

    def test_accepts_numpy_array(self):
        s = summarize(np.arange(10, dtype=float))
        assert s.n == 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_roundtrip(self):
        row = summarize([1.0, 2.0]).as_row()
        assert row["n"] == 2 and row["mean"] == 1.5

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_invariants(self, xs):
        s = summarize(xs)
        tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - tol <= s.p25 <= s.median <= s.p75 <= s.maximum + tol
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.std >= 0


class TestPercentiles:
    def test_percentile_of(self):
        assert percentile_of([1, 2, 3, 4], 2) == 50.0

    def test_fraction_at_least(self):
        assert fraction_at_least([0.1, 0.99, 1.0, 0.98], 0.98) == 0.75

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_of([], 1.0)
        with pytest.raises(ValueError):
            fraction_at_least([], 1.0)


class TestHistogram:
    def test_linear_constructor(self):
        h = Histogram.linear(0, 10, 5)
        assert h.counts.size == 5
        np.testing.assert_allclose(h.edges, [0, 2, 4, 6, 8, 10])

    def test_add_counts_bins(self):
        h = Histogram.linear(0, 10, 2)
        h.add([1, 2, 6, 7, 8])
        assert list(h.counts) == [2, 3]

    def test_under_and_overflow(self):
        h = Histogram.linear(0, 10, 2)
        h.add([-1, 11, 5])
        assert h.underflow == 1
        assert h.overflow == 1
        assert h.total == 3

    def test_streaming_equals_batch(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5, 2, size=1000)
        h1 = Histogram.linear(0, 10, 20)
        h2 = Histogram.linear(0, 10, 20)
        h1.add(data)
        for chunk in np.array_split(data, 7):
            h2.add(chunk)
        np.testing.assert_array_equal(h1.counts, h2.counts)
        assert h1.underflow == h2.underflow and h1.overflow == h2.overflow

    def test_scalar_add(self):
        h = Histogram.linear(0, 1, 1)
        h.add(0.5)
        assert h.total == 1

    def test_empty_add_is_noop(self):
        h = Histogram.linear(0, 1, 1)
        h.add([])
        assert h.total == 0

    def test_normalized_sums_to_one(self):
        h = Histogram.linear(0, 10, 4)
        h.add([1, 3, 5, 7, 9])
        assert h.normalized().sum() == pytest.approx(1.0)

    def test_mode_bin(self):
        h = Histogram.linear(0, 3, 3)
        h.add([0.5, 1.5, 1.6, 2.5])
        center, count = h.mode_bin()
        assert center == pytest.approx(1.5)
        assert count == 2

    def test_invalid_edges_raise(self):
        with pytest.raises(ValueError):
            Histogram([1.0])
        with pytest.raises(ValueError):
            Histogram([0.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            Histogram.linear(0, 1, 0)

    def test_as_series_rows(self):
        h = Histogram.linear(0, 2, 2)
        h.add([0.5, 1.5, 1.7])
        assert h.as_series() == [(0.0, 1.0, 1), (1.0, 2.0, 2)]

    @given(st.lists(st.floats(0, 100), max_size=500))
    def test_total_matches_input_size(self, xs):
        h = Histogram.linear(0, 100, 10)
        h.add(xs)
        assert h.total == len(xs)
