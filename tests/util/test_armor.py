"""Tests for I/O armoring: retries and backup writes."""

import os

import pytest

from repro.util.armor import (
    ArmorError,
    RetryPolicy,
    armored_call,
    backup_write,
    restore_from_backup,
)


class Flaky:
    """Callable that fails ``n`` times before succeeding."""

    def __init__(self, fails: int, exc=OSError):
        self.fails = fails
        self.calls = 0
        self.exc = exc

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fails:
            raise self.exc(f"failure {self.calls}")
        return "ok"


class TestArmoredCall:
    def test_succeeds_first_try(self):
        assert armored_call(lambda: 5) == 5

    def test_retries_until_success(self):
        flaky = Flaky(fails=2)
        assert armored_call(flaky, policy=RetryPolicy(retries=3)) == "ok"
        assert flaky.calls == 3

    def test_raises_armor_error_when_exhausted(self):
        flaky = Flaky(fails=10)
        with pytest.raises(ArmorError):
            armored_call(flaky, policy=RetryPolicy(retries=2))
        assert flaky.calls == 3  # initial + 2 retries

    def test_cause_is_last_exception(self):
        with pytest.raises(ArmorError) as ei:
            armored_call(Flaky(fails=10), policy=RetryPolicy(retries=0))
        assert isinstance(ei.value.__cause__, OSError)

    def test_unlisted_exceptions_propagate_immediately(self):
        flaky = Flaky(fails=5, exc=ValueError)
        with pytest.raises(ValueError):
            armored_call(flaky, policy=RetryPolicy(retries=3))
        assert flaky.calls == 1

    def test_on_retry_callback_sees_each_failure(self):
        seen = []
        flaky = Flaky(fails=2)
        armored_call(
            flaky,
            policy=RetryPolicy(retries=3),
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [0, 1]

    def test_backoff_delays_grow(self):
        slept = []
        flaky = Flaky(fails=3)
        armored_call(
            flaky,
            policy=RetryPolicy(retries=3, delay=1.0, backoff=2.0),
            sleep=slept.append,
        )
        assert slept == [1.0, 2.0, 4.0]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(delay=-0.5)

    def test_passes_args_and_kwargs(self):
        assert armored_call(lambda a, b=0: a + b, 2, b=3) == 5


class TestBackupWrite:
    def test_write_and_read(self, tmp_path):
        p = str(tmp_path / "state.bin")
        backup_write(p, b"v1")
        assert restore_from_backup(p) == b"v1"

    def test_previous_version_kept_as_backup(self, tmp_path):
        p = str(tmp_path / "state.bin")
        backup_write(p, b"v1")
        backup_write(p, b"v2")
        assert restore_from_backup(p) == b"v2"
        with open(p + ".bak", "rb") as fh:
            assert fh.read() == b"v1"

    def test_restore_falls_back_to_backup(self, tmp_path):
        p = str(tmp_path / "state.bin")
        backup_write(p, b"v1")
        backup_write(p, b"v2")
        os.remove(p)  # simulate filesystem failure eating the primary
        assert restore_from_backup(p) == b"v1"

    def test_restore_raises_when_nothing_exists(self, tmp_path):
        with pytest.raises(ArmorError):
            restore_from_backup(str(tmp_path / "missing.bin"))
