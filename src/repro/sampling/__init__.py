"""DynIm-style dynamic-importance sampling (paper §4.1 (6), §4.4 Task 2).

The workflow couples scales by *selecting* which coarse configurations
to promote. Two samplers implement that selection over encoded point
objects, both agnostic to where the encoding came from (a neural
encoder, PCA, or a raw configurational coding):

- :class:`~repro.sampling.fps.FarthestPointSampler` — novelty ranking
  by distance-to-selected-set in the 9-D patch encoding, with capped
  in-memory candidate queues and lazy (cached) rank updates, backed by
  an exact or approximate nearest-neighbour index.
- :class:`~repro.sampling.binned.BinnedSampler` — the new
  histogram-based sampler for the 3-D CG-frame encoding, where L2
  distance is not meaningful; supports an importance/randomness balance
  and scales to millions of candidates (the paper's 165× claim).

Both samplers record a replayable selection history (§4.4 resilience).
"""

from repro.sampling.points import Point, PointStore
from repro.sampling.queues import CandidateQueue, QueueFullPolicy
from repro.sampling.ann import (
    IndexStats,
    NeighborIndex,
    ExactIndex,
    KDTreeIndex,
    ProjectionIndex,
)
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.base import Sampler, SelectionEvent

__all__ = [
    "Point",
    "PointStore",
    "CandidateQueue",
    "QueueFullPolicy",
    "IndexStats",
    "NeighborIndex",
    "ExactIndex",
    "KDTreeIndex",
    "ProjectionIndex",
    "FarthestPointSampler",
    "BinnedSampler",
    "BinSpec",
    "Sampler",
    "SelectionEvent",
]
