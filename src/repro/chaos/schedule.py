"""The seeded fault-schedule DSL.

A chaos campaign is a normal Workflow Manager run plus a
:class:`FaultSchedule`: a sorted list of :class:`FaultEvent`\\ s, each
pinned to an exact *virtual* time on the campaign's
:class:`~repro.util.clock.VirtualClock`. The harness registers every
event on the campaign's :class:`~repro.util.clock.EventLoop`, so faults
fire between WM rounds in a fully deterministic order — the same
schedule always produces the same campaign, byte for byte.

Fault kinds (``arg`` meaning in parentheses):

- ``shard_down`` / ``shard_up`` — kill / revive one ChaosStore shard
  (shard index; taken modulo the shard count).
- ``delay`` / ``garble`` — set the transport injector's delay /
  garbage rate (probability in [0, 1]); modeled as retried wire-level
  faults that cost virtual time, as the hardened NetKV transport
  absorbs them in production.
- ``heal`` — zero all transport fault rates.
- ``stall`` — the adapter's worker pool stops draining for the next
  ``arg`` rounds (a wedged node; jobs stay in flight across rounds).
- ``checkpoint_restore`` — checkpoint the WM mid-campaign, build a
  fresh WM against the same store, restore, and swap it in (the
  restart-heavy operations of the Mini-MuMMI report).
- ``clock_skip`` — insert ``arg`` seconds of dead virtual time before
  the next round (an allocation gap).
- ``crash_restart`` — kill one shard *process* (shard index) and
  restart it immediately: the restarted shard holds exactly what its
  durable log replays (everything acked, for a durable store; nothing,
  for an in-memory one), which is the crash-consistency invariant the
  persistent NetKV shards make.
- ``reshard`` — live slot migration: move half of one shard's owned
  hash slots (shard index) to its successor mid-campaign, with the
  handoff copy and hinted leftovers the online ``migrate_slots`` path
  produces.

Schedules serialize to plain JSON so a failing campaign can be saved
and replayed with ``repro chaos --replay FILE``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["FaultEvent", "FaultSchedule", "FAULT_KINDS"]

FAULT_KINDS = (
    "shard_down",
    "shard_up",
    "delay",
    "garble",
    "heal",
    "stall",
    "checkpoint_restore",
    "clock_skip",
    "crash_restart",
    "reshard",
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One fault at one virtual time. Ordered by (at, kind, arg)."""

    at: float
    kind: str
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")

    def to_json(self) -> Dict[str, object]:
        return {"at": self.at, "kind": self.kind, "arg": self.arg}

    @classmethod
    def from_json(cls, row: Dict[str, object]) -> "FaultEvent":
        return cls(at=float(row["at"]), kind=str(row["kind"]),
                   arg=float(row.get("arg", 0.0)))


class FaultSchedule:
    """An immutable-ish, sorted sequence of fault events.

    Builder methods return ``self`` so schedules read as a DSL::

        sched = (FaultSchedule()
                 .shard_down(at=90.0, shard=1)
                 .delay(at=150.0, rate=0.3)
                 .shard_up(at=400.0, shard=1)
                 .heal(at=450.0))
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(events)

    # --- DSL builders -----------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        self._events.sort()
        return self

    def shard_down(self, at: float, shard: int) -> "FaultSchedule":
        return self.add(FaultEvent(at, "shard_down", float(shard)))

    def shard_up(self, at: float, shard: int) -> "FaultSchedule":
        return self.add(FaultEvent(at, "shard_up", float(shard)))

    def delay(self, at: float, rate: float) -> "FaultSchedule":
        return self.add(FaultEvent(at, "delay", float(rate)))

    def garble(self, at: float, rate: float) -> "FaultSchedule":
        return self.add(FaultEvent(at, "garble", float(rate)))

    def heal(self, at: float) -> "FaultSchedule":
        return self.add(FaultEvent(at, "heal"))

    def stall(self, at: float, rounds: int = 1) -> "FaultSchedule":
        return self.add(FaultEvent(at, "stall", float(rounds)))

    def checkpoint_restore(self, at: float) -> "FaultSchedule":
        return self.add(FaultEvent(at, "checkpoint_restore"))

    def clock_skip(self, at: float, seconds: float) -> "FaultSchedule":
        return self.add(FaultEvent(at, "clock_skip", float(seconds)))

    def crash_restart(self, at: float, shard: int) -> "FaultSchedule":
        return self.add(FaultEvent(at, "crash_restart", float(shard)))

    def reshard(self, at: float, shard: int) -> "FaultSchedule":
        return self.add(FaultEvent(at, "reshard", float(shard)))

    # --- views ------------------------------------------------------------

    @property
    def events(self) -> List[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSchedule) and self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{e.kind}@{e.at:g}" for e in self._events)
        return f"FaultSchedule([{inner}])"

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the event at ``index`` removed (shrinking step)."""
        return FaultSchedule(e for i, e in enumerate(self._events) if i != index)

    def replaced(self, index: int, event: FaultEvent) -> "FaultSchedule":
        """A copy with the event at ``index`` replaced (relaxing step)."""
        events = list(self._events)
        events[index] = event
        return FaultSchedule(events)

    # --- (de)serialization ------------------------------------------------

    def to_json(self) -> List[Dict[str, object]]:
        return [e.to_json() for e in self._events]

    @classmethod
    def from_json(cls, rows: Sequence[Dict[str, object]]) -> "FaultSchedule":
        return cls(FaultEvent.from_json(row) for row in rows)

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    # --- seeded sampling ----------------------------------------------------

    @classmethod
    def sample(
        cls,
        rng: np.random.Generator,
        rounds: int,
        round_seconds: float = 60.0,
        nshards: int = 4,
        max_events: int = 8,
    ) -> "FaultSchedule":
        """Draw a random schedule for a ``rounds``-round campaign.

        Shard kills are paired with a later revival most of the time so
        sampled campaigns usually recover mid-run; the harness heals
        everything before the final invariant pass either way. All
        randomness comes from ``rng``, so the same seed always samples
        the same schedule.
        """
        horizon = rounds * round_seconds
        sched = cls()
        nevents = int(rng.integers(1, max_events + 1))
        kinds = ("shard_down", "delay", "garble", "stall",
                 "checkpoint_restore", "clock_skip", "heal")
        # Frozen mix — newer kinds (crash_restart, reshard) are left out
        # on purpose: adding them here would re-deal every schedule that
        # saved seeds and replay files already pin down. Campaigns opt
        # into them through the DSL builders instead.
        # Kill-heavy mix: shard faults are the paper's headline failure mode.
        weights = np.array([0.3, 0.15, 0.1, 0.12, 0.13, 0.1, 0.1])
        for _ in range(nevents):
            if len(sched) >= max_events:
                break
            at = float(rng.uniform(0.0, horizon))
            kind = str(rng.choice(kinds, p=weights / weights.sum()))
            if kind == "shard_down":
                shard = int(rng.integers(nshards))
                sched.shard_down(at, shard)
                if rng.random() < 0.8 and len(sched) < max_events:
                    up_at = float(rng.uniform(at, horizon))
                    sched.shard_up(up_at, shard)
            elif kind == "delay":
                sched.delay(at, rate=float(rng.uniform(0.05, 0.5)))
            elif kind == "garble":
                sched.garble(at, rate=float(rng.uniform(0.05, 0.4)))
            elif kind == "stall":
                sched.stall(at, rounds=int(rng.integers(1, 4)))
            elif kind == "checkpoint_restore":
                sched.checkpoint_restore(at)
            elif kind == "clock_skip":
                sched.clock_skip(at, seconds=float(rng.uniform(10.0, 600.0)))
            else:
                sched.heal(at)
        return sched
