"""The discrete-event campaign simulator (our Summit).

Replays the paper's three-month campaign (§5.1, Table 1) in virtual
time: a ledger of batch allocations at 100-4000 nodes, each run loading
the machine with unbundled GPU simulation jobs through the Flux-like
scheduler, maintaining setup-job buffers, profiling occupancy every 10
minutes, and carrying simulations across runs via checkpoint/restore —
exactly the mechanics the paper describes, with per-simulation rates
drawn from the published performance models.

What regenerates from one :meth:`CampaignSimulator.run` call:

- **Table 1** — the run ledger with node-hours;
- **Fig. 3** — CG and AA simulation-length distributions (they *emerge*
  from cap-or-retire lifetimes crossing allocation boundaries);
- **Fig. 4** — per-simulation performance samples;
- **Fig. 5** — GPU/CPU occupancy over all profile events;
- the §5.1 aggregate counters (snapshots, patches, frames, selections,
  trajectory totals, data volume, file counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.perfmodel import PerformanceModel, PerfSample
from repro.core.profiling import OccupancyProfiler, ProfileEvent
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec, JobState
from repro.sched.matcher import MatchPolicy
from repro.sched.queue import QueueMode
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop
from repro.util.rng import RngStream
from repro.util import units

__all__ = ["RunSpec", "PAPER_LEDGER", "CampaignConfig", "CampaignResult", "CampaignSimulator"]


@dataclass(frozen=True)
class RunSpec:
    """One row of Table 1: identical runs at one allocation size."""

    nnodes: int
    walltime_hours: float
    count: int

    @property
    def node_hours(self) -> float:
        return self.nnodes * self.walltime_hours * self.count


#: Table 1 verbatim: 5×(100, 6h), 3×(100, 12h), 3×(500, 12h),
#: 20×(1000, 24h), 1×(4000, 24h) — 600,600 node hours total.
PAPER_LEDGER: Tuple[RunSpec, ...] = (
    RunSpec(100, 6, 5),
    RunSpec(100, 12, 3),
    RunSpec(500, 12, 3),
    RunSpec(1000, 24, 20),
    RunSpec(4000, 24, 1),
)


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of the campaign simulation; defaults follow the paper."""

    ledger: Tuple[RunSpec, ...] = PAPER_LEDGER
    cg_gpu_fraction: float = 0.78
    """Fraction of GPUs for CG vs AA ("a typical run used 60%-80% of the
    total GPUs for CG whereas the remaining were assigned to AA")."""

    cg_cap_us: float = 5.0
    aa_cap_ns_range: Tuple[float, float] = (50.0, 65.0)
    cg_retire_mean_days: float = 30.0
    """Mean of the exponential early-retirement clock. Long relative to
    the ~4.8-day time-to-cap: most sims run to their cap or to the end
    of the campaign, as the paper's totals imply."""

    aa_retire_mean_days: float = 30.0
    continuum_nodes: int = 150
    continuum_cores_per_node: int = 24
    sim_cores: int = 3
    """Cores bound to each GPU simulation job (sim + analysis share)."""

    setup_cores: int = 24
    createsim_hours: float = 1.5
    backmap_hours: float = 2.0
    poll_interval: float = 120.0
    """WM job-scan period, seconds ("every few minutes")."""

    profile_interval: float = 600.0
    submit_rate_per_min: float = 100.0
    """Throttled job submission rate (§5.2: ~100 jobs/min)."""

    mpi_bug_fraction: float = 1.0 / 3.0
    """Fraction of campaign node-hours run with the slow ddcMD build."""

    node_failures_per_1000node_day: float = 0.0
    """Hard node failures per 1000 node-days (0 disables injection).
    A failure drains the node (Flux's §4.4 response) and kills its
    jobs; failed simulations lose at most the 15-minute checkpoint
    window and resume on other nodes."""

    checkpoint_interval: float = 900.0
    """Simulation self-checkpoint period, seconds (§4.4: ~15 min)."""

    patches_per_snapshot: int = 333
    """6,828,831 patches / 20,507 snapshots ≈ 333."""

    frames_per_cg_day: float = 105.0
    """CG frame candidates per simulation-day (≈9.8M over the campaign)."""

    buffer_provision_factor: float = 1.8
    """Setup-job provisioning relative to expected turnover demand —
    the §4.4 Task 3 trade-off between readiness (GPUs never wait for a
    prepared system) and staleness/CPU use (a full buffer means stale
    configurations and busier CPUs)."""

    seed: int = 2021


@dataclass
class _SimEntry:
    """Registry record of one simulation across allocation runs."""

    sim_id: str
    scale: str  # "cg" | "aa"
    rate_per_day: float  # µs/day or ns/day
    cap: float  # µs or ns
    length: float = 0.0  # accumulated µs or ns
    done: bool = False
    retired: bool = False


@dataclass
class CampaignResult:
    """Everything the Table-1/Fig-3/4/5 benches print."""

    table1: List[Dict] = field(default_factory=list)
    cg_lengths_us: List[float] = field(default_factory=list)
    aa_lengths_ns: List[float] = field(default_factory=list)
    perf_samples: List[PerfSample] = field(default_factory=list)
    profile_events: List[ProfileEvent] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    load_curves: Dict[int, List[Tuple[float, str]]] = field(default_factory=dict)
    """nnodes -> [(start_time_s, job_name)] for the largest run at that size."""

    def total_node_hours(self) -> float:
        return sum(row["node_hours"] for row in self.table1)


class CampaignSimulator:
    """Drives the full multi-run campaign in virtual time."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()
        self.rngs = RngStream(self.config.seed)
        self.perf = PerformanceModel(rng=self.rngs.child("perf"))
        self.registry: Dict[str, _SimEntry] = {}
        # Checkpointed, unfinished sims awaiting resume (restore-across-
        # allocations, Table 1's "seamlessly (re)start" property).
        self._inflight: Dict[str, List[str]] = {"cg": [], "aa": []}
        self._sim_counter = {"cg": 0, "aa": 0}
        self.result = CampaignResult()
        self.runs_completed = 0
        self._continuum_ms_total = 0.0
        self._finalized = False
        self.total_sim_failures = 0
        self.total_node_failures = 0
        self._node_hours_done = 0.0
        self._total_node_hours = sum(r.node_hours for r in self.config.ledger)

    # ------------------------------------------------------------------
    # simulation registry
    # ------------------------------------------------------------------

    def _new_sim(self, scale: str, mpi_bug: bool) -> _SimEntry:
        rng = self.rngs.child("caps")
        self._sim_counter[scale] += 1
        sim_id = f"{scale}-{self._sim_counter[scale]:06d}"
        if scale == "cg":
            sample = self.perf.sample_cg(mpi_bug=mpi_bug)
            cap = self.config.cg_cap_us
        else:
            sample = self.perf.sample_aa()
            lo, hi = self.config.aa_cap_ns_range
            cap = float(rng.uniform(lo, hi))
        self.result.perf_samples.append(sample)
        entry = _SimEntry(sim_id=sim_id, scale=scale, rate_per_day=sample.rate, cap=cap)
        self.registry[entry.sim_id] = entry
        return entry


    # ------------------------------------------------------------------
    # one allocation run
    # ------------------------------------------------------------------

    def _execute_run(self, nnodes: int, walltime_hours: float, mpi_bug: bool,
                     graph_builder=summit_like) -> Dict:
        c = self.config
        walltime = walltime_hours * units.HOUR
        loop = EventLoop()
        flux = FluxInstance(
            graph_builder(nnodes),
            loop,
            policy=MatchPolicy.FIRST_MATCH,
            mode=QueueMode.ASYNC,
            cycle_interval=30.0,
        )
        profiler = OccupancyProfiler(flux, interval=c.profile_interval)
        profiler.start(until=walltime)
        rng = self.rngs.child(f"run-{self.runs_completed}-{nnodes}")

        total_gpus = flux.graph.total_gpus
        cg_target = int(total_gpus * c.cg_gpu_fraction)
        aa_target = total_gpus - cg_target
        # Buffer targets sized to the expected turnover: (sims / mean
        # lifetime) * setup duration, the §4.4 readiness-vs-staleness
        # trade-off.
        cg_lifetime_days = min(c.cg_retire_mean_days, c.cg_cap_us / 1.04)
        aa_lifetime_days = min(
            c.aa_retire_mean_days, float(np.mean(c.aa_cap_ns_range)) / 13.98
        )
        cg_buffer_target = max(
            2, int(cg_target / cg_lifetime_days * c.createsim_hours / 24.0
                   * c.buffer_provision_factor)
        )
        aa_buffer_target = max(
            2, int(aa_target / aa_lifetime_days * c.backmap_hours / 24.0
                   * c.buffer_provision_factor)
        )

        # Continuum job: pinned CPU partition, runs the whole walltime.
        # The reference configuration is 150 nodes x 24 cores at >= 1000
        # nodes; smaller allocations run the continuum on a proportional
        # share ("scaled-down performance was obtained using fewer CPU
        # cores (100 and 500 node runs)"), giving Fig. 4's one mode per
        # allocation size.
        cont_nodes = max(1, int(c.continuum_nodes * min(1.0, nnodes / 1000.0)))
        cont_cores = cont_nodes * c.continuum_cores_per_node
        flux.submit(
            JobSpec(name="continuum", nnodes=cont_nodes,
                    ncores=c.continuum_cores_per_node, duration=None)
        )

        # Mutable run-local state, closed over by the poll callback.
        state = {
            "cg_running": 0, "aa_running": 0, "cg_pending": 0, "aa_pending": 0,
            "ready_cg": 0, "ready_aa": 0, "sim_failures": 0, "nodes_failed": 0,
            "setup_active_createsim": 0, "setup_active_backmap": 0,
            "job_sim": {},  # job_id -> sim_id
        }

        def spawn_sim(scale: str) -> None:
            if self._inflight[scale]:
                entry = self.registry[self._inflight[scale].pop()]
            else:
                ready_key = "ready_cg" if scale == "cg" else "ready_aa"
                if state[ready_key] <= 0:
                    return
                state[ready_key] -= 1
                entry = self._new_sim(scale, mpi_bug)
            remaining = entry.cap - entry.length
            to_cap = remaining / entry.rate_per_day * units.DAY
            retire_mean = (
                c.cg_retire_mean_days if scale == "cg" else c.aa_retire_mean_days
            ) * units.DAY
            retire_at = float(rng.exponential(retire_mean))
            duration = min(to_cap, retire_at)
            spec = JobSpec(
                name=f"{scale}-sim", ncores=c.sim_cores, ngpus=1,
                duration=duration, tag=entry.sim_id,
            )
            record = flux.submit(spec, on_complete=sim_done)
            state["job_sim"][record.job_id] = (entry.sim_id, duration >= to_cap)
            state[f"{scale}_pending"] += 1

        def sim_done(record) -> None:
            sim_id, reached_cap = state["job_sim"].pop(record.job_id)
            entry = self.registry[sim_id]
            scale = entry.scale
            if record.state is JobState.COMPLETED:
                elapsed = record.run_time or 0.0
                entry.length += elapsed / units.DAY * entry.rate_per_day
                entry.done = True
                entry.retired = not reached_cap
            elif record.state is JobState.FAILED:
                # Node failure: the sim loses at most one checkpoint
                # window and goes back in flight to resume elsewhere.
                elapsed = max(0.0, (record.run_time or 0.0) - c.checkpoint_interval)
                entry.length += elapsed / units.DAY * entry.rate_per_day
                state["sim_failures"] += 1
                if entry.length < entry.cap:
                    self._inflight[scale].append(sim_id)
                else:
                    entry.done = True
            key = f"{scale}_running"
            state[key] = max(0, state[key] - 1)

        def setup_done(record) -> None:
            state[f"setup_active_{record.spec.name}"] -= 1
            if record.spec.name == "createsim":
                state["ready_cg"] += 1
            else:
                state["ready_aa"] += 1

        def poll() -> None:
            # Refresh running/pending from the scheduler (the WM's scan).
            running = flux.running_by_name()
            state["cg_running"] = running.get("cg-sim", 0)
            state["aa_running"] = running.get("aa-sim", 0)
            pending = {"cg-sim": 0, "aa-sim": 0}
            for rec in list(flux.queue.inbox) + list(flux.queue.pending):
                if rec.spec.name in pending:
                    pending[rec.spec.name] += 1
            state["cg_pending"] = pending["cg-sim"]
            state["aa_pending"] = pending["aa-sim"]

            budget = int(c.submit_rate_per_min * c.poll_interval / 60.0)
            for scale, target in (("cg", cg_target), ("aa", aa_target)):
                missing = target - state[f"{scale}_running"] - state[f"{scale}_pending"]
                while missing > 0 and budget > 0:
                    before = len(state["job_sim"])
                    spawn_sim(scale)
                    if len(state["job_sim"]) == before:
                        break  # nothing ready to spawn
                    missing -= 1
                    budget -= 1
            # Setup jobs keep the ready buffers near target, CPU permitting.
            for name, ready_key, hours, target_buf in (
                ("createsim", "ready_cg", c.createsim_hours, cg_buffer_target),
                ("backmap", "ready_aa", c.backmap_hours, aa_buffer_target),
            ):
                # Submit setups only against a settled queue: FCFS has
                # no backfilling, so a 24-core job that cannot place
                # would block every GPU job behind it.
                while (
                    state[ready_key] + state[f"setup_active_{name}"] < target_buf
                    and flux.queue.backlog == 0
                    and flux.graph.feasible_ids(c.setup_cores, 0).size > 0
                ):
                    duration = float(rng.normal(hours, hours * 0.15)) * units.HOUR
                    flux.submit(
                        JobSpec(name=name, ncores=c.setup_cores,
                                duration=max(duration, 600.0)),
                        on_complete=setup_done,
                    )
                    state[f"setup_active_{name}"] += 1
            if loop.now + c.poll_interval < walltime:
                loop.schedule_in(c.poll_interval, poll, label="wm-poll")

        # Seed ready buffers: restored campaigns arrive with prepared sets.
        state["ready_cg"] = cg_target
        state["ready_aa"] = aa_target

        # Node-failure injection (§4.4 resilience): Poisson arrivals
        # drain a random live node and fail its jobs.
        if c.node_failures_per_1000node_day > 0:
            expected = (
                c.node_failures_per_1000node_day * nnodes / 1000.0
                * walltime / units.DAY
            )
            n_failures = int(rng.poisson(expected))
            fail_rng = self.rngs.child(f"failures-{self.runs_completed}")

            def fail_random_node():
                alive = [n.node_id for n in flux.graph.nodes if not n.drained]
                if not alive:
                    return
                victim = int(fail_rng.choice(alive))
                flux.fail_node(victim)
                state["nodes_failed"] += 1

            for t in np.sort(rng.uniform(0, walltime, size=n_failures)):
                loop.schedule_at(float(t), fail_random_node, label="node-fail")

        loop.schedule_in(1.0, poll, label="wm-poll")
        loop.run_until(walltime)

        # End of allocation: checkpoint in-flight sims with partial credit;
        # they resume in the next run ("seamlessly (re)start", Table 1).
        for record in list(flux.queue.running.values()):
            info = state["job_sim"].pop(record.job_id, None)
            if info is None:
                continue  # the continuum job / setup jobs
            sim_id, _ = info
            entry = self.registry[sim_id]
            elapsed = walltime - (record.start_time or walltime)
            entry.length += elapsed / units.DAY * entry.rate_per_day
            if entry.length >= entry.cap:
                entry.done = True
            else:
                self._inflight[entry.scale].append(sim_id)

        # Jobs still queued (never started): resumed sims go back to the
        # in-flight list; brand-new ones are dropped entirely.
        for job_id, (sim_id, _) in list(state["job_sim"].items()):
            entry = self.registry[sim_id]
            if entry.length > 0 and not entry.done:
                self._inflight[entry.scale].append(sim_id)
            elif entry.length == 0:
                del self.registry[sim_id]

        # Continuum bookkeeping for this run.
        cont_sample = self.perf.sample_continuum(cont_cores)
        self.result.perf_samples.append(cont_sample)
        continuum_ms = cont_sample.rate * walltime / units.DAY

        self.result.profile_events.extend(profiler.events)
        self.total_sim_failures += state["sim_failures"]
        self.total_node_failures += state["nodes_failed"]
        return {
            "nnodes": nnodes,
            "walltime_hours": walltime_hours,
            "continuum_ms": continuum_ms,
            "sim_failures": state["sim_failures"],
            "nodes_failed": state["nodes_failed"],
            "jobs_started": len(flux.start_log),
            "start_log": [(t, name) for t, _jid, name in flux.start_log],
            "gpu_occupancy_mean": float(np.mean(profiler.gpu_series()))
            if profiler.events else 0.0,
        }

    # ------------------------------------------------------------------
    # the full campaign
    # ------------------------------------------------------------------

    def _flat_runs(self):
        """The ledger flattened to one (nnodes, walltime) entry per run."""
        return [
            (spec.nnodes, spec.walltime_hours)
            for spec in self.config.ledger
            for _ in range(spec.count)
        ]

    def progress(self) -> Dict[str, float]:
        """Where the campaign stands in its ledger (control-plane status).

        ``max_runs``-sliced execution pauses between allocation runs, so
        this is exact at every pause point — the service's ``simulate``
        campaigns report it after each slice.
        """
        total = len(self._flat_runs())
        return {
            "runs_completed": self.runs_completed,
            "runs_total": total,
            "node_hours_done": self._node_hours_done,
            "node_hours_total": self._total_node_hours,
            "fraction": self.runs_completed / total if total else 1.0,
        }

    def run(self, max_runs: Optional[int] = None) -> CampaignResult:
        """Execute (the rest of) the campaign.

        ``max_runs`` bounds how many allocation runs execute this call —
        the hook the checkpoint/restore tests use to interrupt and
        resume a campaign mid-flight.
        """
        c = self.config
        flat = self._flat_runs()
        executed = 0
        while self.runs_completed < len(flat):
            if max_runs is not None and executed >= max_runs:
                return self.result  # paused; resumable via state_dict
            nnodes, walltime_hours = flat[self.runs_completed]
            mpi_bug = self._node_hours_done < c.mpi_bug_fraction * self._total_node_hours
            run_info = self._execute_run(nnodes, walltime_hours, mpi_bug)
            self._continuum_ms_total += run_info["continuum_ms"]
            self._node_hours_done += nnodes * walltime_hours
            # Keep one load curve per allocation size (the largest runs
            # are the Fig. 6 panels).
            self.result.load_curves[nnodes] = run_info["start_log"]
            self.runs_completed += 1
            executed += 1

        if not self._finalized:
            self.result.table1 = [
                {
                    "nnodes": spec.nnodes,
                    "walltime_hours": spec.walltime_hours,
                    "runs": spec.count,
                    "node_hours": spec.node_hours,
                }
                for spec in c.ledger
            ]
            # Final lengths: everything that ever accumulated time counts.
            for entry in self.registry.values():
                if entry.length <= 0:
                    continue
                if entry.scale == "cg":
                    self.result.cg_lengths_us.append(min(entry.length, entry.cap))
                else:
                    self.result.aa_lengths_ns.append(min(entry.length, entry.cap))
            self._finalize_counters(self._continuum_ms_total)
            self._finalized = True
        return self.result

    # ------------------------------------------------------------------
    # checkpoint / restore (§4.4: "can be restored completely after any
    # such crash without much loss of data")
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict:
        """Everything needed to resume the campaign after a crash.

        JSON-serializable: registry entries, in-flight lists, RNG stream
        states, accumulated results. Pair with :meth:`load_state_dict`
        on a simulator built with the same config.
        """
        return {
            "runs_completed": self.runs_completed,
            "node_hours_done": self._node_hours_done,
            "continuum_ms_total": self._continuum_ms_total,
            "sim_counter": dict(self._sim_counter),
            "total_sim_failures": self.total_sim_failures,
            "total_node_failures": self.total_node_failures,
            "inflight": {k: list(v) for k, v in self._inflight.items()},
            "registry": [
                {
                    "sim_id": e.sim_id, "scale": e.scale,
                    "rate_per_day": e.rate_per_day, "cap": e.cap,
                    "length": e.length, "done": e.done, "retired": e.retired,
                }
                for e in self.registry.values()
            ],
            "rng_states": {
                name: gen.bit_generator.state
                for name, gen in self.rngs._cache.items()
            },
            "rng_seed": self.rngs.seed,
            "perf_samples": [
                {"scale": p.scale, "system_size": p.system_size, "rate": p.rate}
                for p in self.result.perf_samples
            ],
            "profile_events": [
                {
                    "time": e.time, "gpu": e.gpu_occupancy, "cpu": e.cpu_occupancy,
                    "running": e.running, "pending": e.pending,
                }
                for e in self.result.profile_events
            ],
            "load_curves": {
                str(k): v for k, v in self.result.load_curves.items()
            },
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a checkpoint into this (same-config) simulator."""
        if int(state.get("rng_seed", self.rngs.seed)) != self.rngs.seed:
            raise ValueError("checkpoint was produced with a different seed")
        self.runs_completed = int(state["runs_completed"])
        self._node_hours_done = float(state["node_hours_done"])
        self._continuum_ms_total = float(state["continuum_ms_total"])
        self._sim_counter = {k: int(v) for k, v in state["sim_counter"].items()}
        self.total_sim_failures = int(state["total_sim_failures"])
        self.total_node_failures = int(state["total_node_failures"])
        self._inflight = {k: list(v) for k, v in state["inflight"].items()}
        self.registry = {
            row["sim_id"]: _SimEntry(
                sim_id=row["sim_id"], scale=row["scale"],
                rate_per_day=float(row["rate_per_day"]), cap=float(row["cap"]),
                length=float(row["length"]), done=bool(row["done"]),
                retired=bool(row["retired"]),
            )
            for row in state["registry"]
        }
        for name, rng_state in state["rng_states"].items():
            self.rngs.child(name).bit_generator.state = rng_state
        self.result.perf_samples = [
            PerfSample(scale=row["scale"], system_size=float(row["system_size"]),
                       rate=float(row["rate"]))
            for row in state["perf_samples"]
        ]
        self.result.profile_events = [
            ProfileEvent(time=float(row["time"]), gpu_occupancy=float(row["gpu"]),
                         cpu_occupancy=float(row["cpu"]),
                         running={k: int(v) for k, v in row["running"].items()},
                         pending=int(row["pending"]))
            for row in state["profile_events"]
        ]
        self.result.load_curves = {
            int(k): [tuple(item) for item in v]
            for k, v in state["load_curves"].items()
        }

    def _finalize_counters(self, continuum_ms: float) -> None:
        c = self.config
        cg_total_us = float(np.sum(self.result.cg_lengths_us))
        aa_total_ns = float(np.sum(self.result.aa_lengths_ns))
        snapshots = int(continuum_ms * 1000)  # 1 snapshot per µs
        patches = snapshots * c.patches_per_snapshot
        n_cg = len(self.result.cg_lengths_us)
        n_aa = len(self.result.aa_lengths_ns)
        cg_days = cg_total_us / 1.04  # at the reference rate
        frames = int(cg_days * c.frames_per_cg_day)
        # Data-volume model from §4.1 rates: continuum 374 MB/µs snapshot,
        # CG 4.6 MB per 41.5 s wall at 1.04 µs/day, AA 18 MB per 10.3 min.
        cg_bytes = cg_days * units.DAY / 41.5 * 4.6e6
        aa_days = aa_total_ns / 13.98
        aa_bytes = aa_days * units.DAY / (10.3 * 60) * 18e6
        cont_bytes = snapshots * 374e6
        total_bytes = cg_bytes + aa_bytes + cont_bytes
        campaign_days = self._total_node_hours / 24.0 / 1000.0  # @1000-node scale
        self.result.counters = {
            "node_hours": self._total_node_hours,
            "continuum_ms": continuum_ms,
            "snapshots": snapshots,
            "patches_created": patches,
            "cg_sims": n_cg,
            "cg_selection_percent": 100.0 * n_cg / max(patches, 1),
            "cg_total_ms": cg_total_us / 1000.0,
            "frame_candidates": frames,
            "aa_sims": n_aa,
            "aa_selection_percent": 100.0 * n_aa / max(frames, 1),
            "aa_total_us": aa_total_ns / 1000.0,
            "total_data_tb": total_bytes / units.TB,
            "data_tb_per_day": total_bytes / units.TB / max(campaign_days, 1e-9),
            "profile_events": len(self.result.profile_events),
            "node_failures": self.total_node_failures,
            "sim_failures": self.total_sim_failures,
        }
