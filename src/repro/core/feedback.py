"""Task 4: the abstract Feedback Manager with namespace-move tagging.

§4.4: "Generically, a feedback iteration collects data from all running
simulations, processes it, and reports the analysis. A new abstract
API, the Feedback Manager was developed to allow controlling the
specific details. ... we use an alternate strategy of moving each
processed frame out of the relevant namespace (i.e., moving files to
tar archives or renaming keys in the database). ... this cost scales
only with the number of ongoing simulations, and not with the total
simulation frames ever generated."

Concrete managers (CG→continuum RDF aggregation, AA→CG secondary-
structure voting) live in :mod:`repro.app.feedback`; this module owns
the iteration protocol, the tagging strategy, and the timing records
that feed Figs. 7 and 8.
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import trace
from repro.datastore.base import DataStore, StoreUnavailable

__all__ = ["FeedbackReport", "FeedbackManager", "StoreFeedbackMixin"]


@dataclass(frozen=True)
class FeedbackReport:
    """Timing and volume of one feedback iteration (a Fig. 8 point)."""

    time: float  # when the iteration ran (virtual or wall)
    n_items: int  # frames processed
    collect_seconds: float
    process_seconds: float
    tag_seconds: float
    # Non-empty when the store was unreachable and the iteration was
    # skipped; untagged items are simply re-collected next time.
    error: str = ""

    @property
    def total_seconds(self) -> float:
        return self.collect_seconds + self.process_seconds + self.tag_seconds


class FeedbackManager(abc.ABC):
    """The abstract feedback protocol: collect → process → report → tag."""

    def __init__(self) -> None:
        self.reports: List[FeedbackReport] = []
        self.total_items = 0

    # --- the four customization points (§4.4 Task 4) -----------------------

    @abc.abstractmethod
    def collect(self) -> List[Tuple[str, Any]]:
        """Gather unprocessed items as (key, payload) pairs."""

    @abc.abstractmethod
    def process(self, items: Sequence[Tuple[str, Any]]) -> Any:
        """Application-specific analysis of the collected items."""

    @abc.abstractmethod
    def report(self, result: Any) -> None:
        """Deliver the aggregate to its consumer (the coarser model)."""

    @abc.abstractmethod
    def tag(self, keys: Sequence[str]) -> None:
        """Mark items processed by moving them out of the live namespace."""

    # --- the iteration driver --------------------------------------------------

    def run_iteration(self, now: float = 0.0) -> FeedbackReport:
        """One full feedback iteration, with per-phase timing.

        A store outage (:class:`StoreUnavailable`) does not kill the
        workflow loop: the iteration is recorded as skipped (``error``
        set, zero items) and the untagged frames are picked up again
        once the store recovers. Tagging is the last phase precisely so
        that an interrupted iteration re-processes rather than loses
        frames (at-least-once feedback).
        """
        t0 = time.perf_counter()
        with trace.span("feedback.iteration") as sp:
            if sp:
                sp.set(manager=type(self).__name__)
            try:
                with trace.span("feedback.collect"):
                    items = self.collect()
                t1 = time.perf_counter()
                with trace.span("feedback.process"):
                    result = self.process(items) if items else None
                    if result is not None:
                        self.report(result)
                t2 = time.perf_counter()
                with trace.span("feedback.tag"):
                    self.tag([k for k, _ in items])
                t3 = time.perf_counter()
                rep = FeedbackReport(
                    time=now,
                    n_items=len(items),
                    collect_seconds=t1 - t0,
                    process_seconds=t2 - t1,
                    tag_seconds=t3 - t2,
                )
                if sp:
                    sp.set(items=len(items))
            except StoreUnavailable as exc:
                # The outage is an annotated point on the iteration span,
                # so a trace of a fault-injection run shows exactly which
                # iterations the store cost the workflow.
                sp.event("store_unavailable", error=str(exc))
                rep = FeedbackReport(
                    time=now,
                    n_items=0,
                    collect_seconds=time.perf_counter() - t0,
                    process_seconds=0.0,
                    tag_seconds=0.0,
                    error=str(exc),
                )
        self.reports.append(rep)
        self.total_items += rep.n_items
        return rep


class StoreFeedbackMixin:
    """Store-backed collect/tag over a live and a done namespace.

    Works against *any* DataStore backend — the S3 ablation (file-based
    vs Redis-based feedback) is literally this mixin pointed at two
    different stores.
    """

    def __init__(
        self,
        store: DataStore,
        live_prefix: str,
        done_prefix: str,
        fetch_workers: int = 1,
    ) -> None:
        if not live_prefix.endswith("/") or not done_prefix.endswith("/"):
            raise ValueError("prefixes must end with '/'")
        if fetch_workers < 1:
            raise ValueError("fetch_workers must be >= 1")
        self.store = store
        self.live_prefix = live_prefix
        self.done_prefix = done_prefix
        self.fetch_workers = fetch_workers

    def collect(self) -> List[Tuple[str, bytes]]:
        """Scan the live namespace, then read each new item.

        §4.4 Task 4: "New frames can be fetched in parallel (when
        reading from files) or serial (when using a high-throughput
        database)" — ``fetch_workers > 1`` is the parallel path, suited
        to filesystem backends where each read pays real latency. The
        serial path batches through :meth:`DataStore.read_present`,
        which pipelined backends turn into one multi-key round trip per
        shard; either way a key tagged by a concurrent iteration
        between the scan and the read is skipped, not a crash.
        """
        keys = self.store.keys(self.live_prefix)
        if self.fetch_workers == 1 or len(keys) < 2:
            present = self.store.read_present(keys)
            return [(k, present[k]) for k in keys if k in present]
        with ThreadPoolExecutor(max_workers=self.fetch_workers) as pool:
            # trace.wrap carries the collect span into the pool threads,
            # so parallel reads still parent to this iteration's trace.
            payloads = list(pool.map(trace.wrap(self.store.read), keys))
        return list(zip(keys, payloads))

    def tag(self, keys: Sequence[str]) -> None:
        """Move each processed key from the live to the done namespace.

        Cost is proportional to this iteration's item count only — the
        scalability property §4.4 calls out.
        """
        for key in keys:
            suffix = key[len(self.live_prefix):]
            self.store.move(key, self.done_prefix + suffix)
