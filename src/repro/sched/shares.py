"""Weighted fair sharing of one execution substrate across tenants.

The control plane multiplexes many campaigns onto *one* worker pool the
way the production WM multiplexed many simulations onto one Flux
allocation. Without an arbiter, whichever tenant submits fastest owns
the pool (FCFS is trivially starvable). :class:`FairShareAdapter` puts
a stride scheduler in front of the pool: each tenant holds a *share*
(weight), queued jobs wait in per-tenant queues, and every free worker
slot goes to the backlogged tenant with the smallest virtual *pass*
value. A tenant's pass advances by ``stride = K / weight`` per dispatch,
so over any busy interval tenants receive worker slots proportionally
to their weights — weight 2 gets twice the throughput of weight 1 —
while an idle tenant's unused share flows to the others (work
conservation).

Campaigns talk to the arbiter through :meth:`FairShareAdapter.view`,
which returns a per-tenant :class:`TenantAdapter` implementing the
standard :class:`~repro.sched.adapter.SchedulerAdapter` API plus the
``wait_all``/``flush`` hooks the WM's deterministic rounds use — scoped
to that tenant's jobs only, so one campaign's round barrier never waits
on another tenant's work.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.sched.adapter import SchedulerAdapter
from repro.sched.jobspec import JobRecord, JobSpec, JobState

__all__ = ["StrideScheduler", "FairShareAdapter", "TenantAdapter",
           "TenantExecutor"]

#: Stride numerator; any constant works, this keeps passes readable.
_STRIDE_K = 1 << 16


class StrideScheduler:
    """Pure stride-scheduling arbiter: who gets the next slot?

    Tracks a virtual ``pass`` per tenant. :meth:`pick` returns the
    backlogged tenant with the smallest pass and advances it by the
    tenant's stride (``K / weight``). Newly seen tenants join at the
    current minimum pass so they cannot monopolize the pool by arriving
    late with a zero pass ("pass catch-up", the classic stride fix).
    """

    def __init__(self) -> None:
        self._weights: Dict[str, float] = {}
        self._pass: Dict[str, float] = {}

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"share weight must be > 0, got {weight}")
        self._weights[tenant] = float(weight)

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def _ensure(self, tenant: str) -> None:
        if tenant not in self._pass:
            floor = min(self._pass.values()) if self._pass else 0.0
            self._pass[tenant] = floor

    def pick(self, backlogged: Dict[str, int]) -> Optional[str]:
        """Choose among tenants with queued work; None if all idle."""
        candidates = [t for t, n in backlogged.items() if n > 0]
        if not candidates:
            return None
        for tenant in candidates:
            self._ensure(tenant)
        winner = min(candidates, key=lambda t: (self._pass[t], t))
        self._pass[winner] += _STRIDE_K / self.weight(winner)
        return winner

    def passes(self) -> Dict[str, float]:
        """Current virtual pass per tenant (telemetry)."""
        return dict(self._pass)


class TenantExecutor:
    """``concurrent.futures``-style view over a tenant's fair share.

    The coroutine WM offloads its CPU-bound tasks through
    ``loop.run_in_executor``; handing it this object (instead of a
    private thread pool) routes those offloads through the arbiter as
    ordinary ``wm-offload`` jobs, so a tenant's coordination work is
    charged against the same share as its simulation jobs and cannot
    starve other tenants.
    """

    def __init__(self, shared: "FairShareAdapter", tenant: str) -> None:
        self.shared = shared
        self.tenant = tenant

    def submit(self, fn: Callable[..., Any], *args: Any,
               **kwargs: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()

        def body() -> Any:
            return fn(*args, **kwargs)

        def done(record: JobRecord) -> None:
            if record.state is JobState.COMPLETED:
                future.set_result(record.result)
            elif isinstance(record.result, BaseException):
                future.set_exception(record.result)
            else:
                future.set_exception(
                    RuntimeError(f"offload job ended {record.state.name}")
                )

        spec = JobSpec(name="wm-offload", ncores=1, tag=f"{self.tenant}-offload")
        self.shared.submit_for(self.tenant, spec, fn=body, on_complete=done)
        return future


class TenantAdapter(SchedulerAdapter):
    """One tenant's scoped handle on a :class:`FairShareAdapter`."""

    #: Same settle contract as ThreadAdapter: the pool always fires
    #: ``on_complete`` (run, failure, or queued-cancel), so the WM's
    #: coroutine round barrier can gather on settle futures.
    settles_async = True

    def __init__(self, shared: "FairShareAdapter", tenant: str) -> None:
        self.shared = shared
        self.tenant = tenant

    @property
    def executor(self) -> TenantExecutor:
        """Offload executor scoped — and fair-share billed — to this tenant."""
        return TenantExecutor(self.shared, self.tenant)

    def submit(self, spec: JobSpec,
               fn: Optional[Callable[[], Any]] = None,
               on_complete: Optional[Callable[[JobRecord], None]] = None,
               ) -> JobRecord:
        return self.shared.submit_for(self.tenant, spec, fn, on_complete)

    def poll(self, job_id: int) -> JobState:
        return self.shared.poll(job_id)

    def cancel(self, job_id: int) -> None:
        self.shared.cancel(job_id)

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every job *this tenant* submitted has finished."""
        self.shared.wait_tenant(self.tenant, timeout=timeout)

    def flush(self) -> None:
        """Quiesce hook (WM checkpoints): drain this tenant's jobs."""
        self.shared.wait_tenant(self.tenant)


class FairShareAdapter:
    """A shared thread pool arbitrated by stride scheduling.

    Parameters
    ----------
    max_workers:
        Concurrent job slots shared by every tenant.
    shares:
        Initial ``{tenant: weight}`` map; unknown tenants default to
        weight 1.0 and may be (re)weighted live via :meth:`set_share`.
    """

    def __init__(self, max_workers: int = 4,
                 shares: Optional[Dict[str, float]] = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self.max_workers = max_workers
        self._lock = threading.Lock()
        self._stride = StrideScheduler()
        for tenant, weight in (shares or {}).items():
            self._stride.set_weight(tenant, weight)
        self._queues: Dict[str, Deque[Tuple[JobRecord, Optional[Callable],
                                            Optional[Callable]]]] = {}
        self._active = 0
        self._records: Dict[int, JobRecord] = {}
        self._done_events: Dict[int, threading.Event] = {}
        self._tenant_of: Dict[int, str] = {}
        self._cancelled: set = set()
        self._dispatched: Dict[str, int] = {}
        self._completed: Dict[str, int] = {}
        self._closed = False

    # --- tenant plumbing --------------------------------------------------

    def view(self, tenant: str) -> TenantAdapter:
        """The per-tenant adapter a campaign's WM plugs into."""
        return TenantAdapter(self, tenant)

    def set_share(self, tenant: str, weight: float) -> None:
        with self._lock:
            self._stride.set_weight(tenant, weight)

    # --- submission and dispatch -----------------------------------------

    def submit_for(self, tenant: str, spec: JobSpec,
                   fn: Optional[Callable[[], Any]] = None,
                   on_complete: Optional[Callable[[JobRecord], None]] = None,
                   ) -> JobRecord:
        record = JobRecord(spec=spec)
        with self._lock:
            if self._closed:
                raise RuntimeError("FairShareAdapter is shut down")
            self._records[record.job_id] = record
            self._done_events[record.job_id] = threading.Event()
            self._tenant_of[record.job_id] = tenant
            self._queues.setdefault(tenant, deque()).append(
                (record, fn, on_complete)
            )
        self._dispatch()
        return record

    def _dispatch(self) -> None:
        """Fill free slots with queued jobs in stride order."""
        while True:
            with self._lock:
                if self._active >= self.max_workers:
                    return
                backlog = {t: len(q) for t, q in self._queues.items()}
                tenant = self._stride.pick(backlog)
                if tenant is None:
                    return
                record, fn, on_complete = self._queues[tenant].popleft()
                if record.job_id in self._cancelled:
                    continue  # cancelled while queued; slot stays free
                self._active += 1
                self._dispatched[tenant] = self._dispatched.get(tenant, 0) + 1
            self._pool.submit(self._run, tenant, record, fn, on_complete)

    def _run(self, tenant: str, record: JobRecord,
             fn: Optional[Callable[[], Any]],
             on_complete: Optional[Callable[[JobRecord], None]]) -> None:
        record.state = JobState.RUNNING
        try:
            record.result = fn() if fn is not None else None
            record.state = JobState.COMPLETED
        except Exception as exc:  # job failure is data, not a crash
            record.result = exc
            record.state = JobState.FAILED
        with self._lock:
            self._active -= 1
            self._completed[tenant] = self._completed.get(tenant, 0) + 1
        try:
            if on_complete is not None:
                on_complete(record)
        finally:
            self._done_events[record.job_id].set()
            self._dispatch()

    # --- SchedulerAdapter surface ----------------------------------------

    def poll(self, job_id: int) -> JobState:
        return self._records[job_id].state

    def cancel(self, job_id: int) -> None:
        """Best-effort: only jobs still queued can be cancelled."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state is not JobState.PENDING:
                return
            self._cancelled.add(job_id)
            record.state = JobState.CANCELLED
        self._done_events[job_id].set()

    def wait_tenant(self, tenant: str, timeout: Optional[float] = None) -> None:
        """Block until every job this tenant ever submitted finished."""
        with self._lock:
            events = [self._done_events[jid]
                      for jid, t in self._tenant_of.items() if t == tenant]
        for event in events:
            if not event.wait(timeout=timeout):
                raise TimeoutError(f"tenant {tenant!r} jobs did not drain")

    def wait_all(self, timeout: Optional[float] = None) -> None:
        with self._lock:
            events = list(self._done_events.values())
        for event in events:
            if not event.wait(timeout=timeout):
                raise TimeoutError("shared pool did not drain")

    def shutdown(self) -> None:
        with self._lock:
            self._closed = True
            for queue in self._queues.values():
                while queue:
                    record, _fn, _cb = queue.popleft()
                    self._cancelled.add(record.job_id)
                    record.state = JobState.CANCELLED
                    self._done_events[record.job_id].set()
        self._pool.shutdown(wait=True)

    # --- telemetry --------------------------------------------------------

    def share_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant dispatch accounting for the service telemetry."""
        with self._lock:
            backlog = {t: len(q) for t, q in self._queues.items()}
            tenants = (set(self._queues) | set(self._dispatched)
                       | set(self._completed))
            return {
                tenant: {
                    "weight": self._stride.weight(tenant),
                    "queued": backlog.get(tenant, 0),
                    "dispatched": self._dispatched.get(tenant, 0),
                    "completed": self._completed.get(tenant, 0),
                    "pass": self._stride.passes().get(tenant, 0.0),
                }
                for tenant in sorted(tenants)
            }
