"""Tests for the optional backfill policy knob."""

import pytest

from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.queue import QueueManager
from repro.sched.resources import summit_like

GPU_JOB = JobSpec(name="cg-sim", ncores=3, ngpus=1, duration=100.0)
HUGE_JOB = JobSpec(name="huge", nnodes=5, ncores=24)  # blocks on 2 nodes


def make_queue(backfill_window=0, nnodes=2):
    matcher = Matcher(summit_like(nnodes), MatchPolicy.FIRST_MATCH)
    return QueueManager(matcher, backfill_window=backfill_window)


class TestBackfill:
    def test_default_is_strict_fcfs(self):
        q = make_queue(backfill_window=0)
        q.submit(JobRecord(spec=HUGE_JOB))
        q.submit(JobRecord(spec=GPU_JOB))
        report = q.cycle(now=0.0, budget=100.0)
        assert report.started == []
        assert q.backfilled == 0

    def test_window_lets_small_jobs_jump(self):
        q = make_queue(backfill_window=4)
        blocked = JobRecord(spec=HUGE_JOB)
        small = [JobRecord(spec=GPU_JOB) for _ in range(3)]
        q.submit(blocked)
        for rec in small:
            q.submit(rec)
        report = q.cycle(now=0.0, budget=100.0)
        assert len(report.started) == 3
        assert all(r.state is JobState.RUNNING for r in small)
        assert blocked.state is JobState.PENDING
        assert q.backfilled == 3

    def test_head_keeps_queue_position(self):
        q = make_queue(backfill_window=2)
        blocked = JobRecord(spec=HUGE_JOB)
        q.submit(blocked)
        q.submit(JobRecord(spec=GPU_JOB))
        q.cycle(now=0.0, budget=100.0)
        assert q.pending[0] is blocked  # still first in line

    def test_window_bounds_lookahead(self):
        q = make_queue(backfill_window=1)
        q.submit(JobRecord(spec=HUGE_JOB))
        runnable = [JobRecord(spec=GPU_JOB) for _ in range(5)]
        for rec in runnable:
            q.submit(rec)
        report = q.cycle(now=0.0, budget=100.0)
        assert len(report.started) == 1  # only the first window slot

    def test_blocked_head_eventually_runs(self):
        # Once resources free, the head goes first again.
        q = make_queue(backfill_window=4, nnodes=5)
        # Exclusive: needs all five nodes vacant, so the small job blocks it.
        blocked = JobRecord(spec=JobSpec(name="huge", nnodes=5, exclusive=True,
                                         duration=50.0))
        small = JobRecord(spec=GPU_JOB)
        q.submit(small)
        q.cycle(now=0.0, budget=100.0)  # small runs, machine partly busy
        q.submit(blocked)
        q.cycle(now=1.0, budget=100.0)  # blocked: node 0 has cores used
        assert blocked.state is JobState.PENDING
        q.finish(small, now=2.0)
        report = q.cycle(now=3.0, budget=100.0)
        assert blocked in report.started

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            make_queue(backfill_window=-1)

    def test_backfill_does_not_start_infeasible_jobs(self):
        q = make_queue(backfill_window=3)
        q.submit(JobRecord(spec=HUGE_JOB))
        q.submit(JobRecord(spec=HUGE_JOB))
        report = q.cycle(now=0.0, budget=100.0)
        assert report.started == []
