"""pytaridx re-implementation: append-only indexed tar archives.

The paper (§4.2, §5.2) manages over a billion logical files inside
~115k tar archives — a ~9000× inode reduction — while retaining random
access through a sidecar index. This module provides the same design:

- Archives are **standard tar files**, readable by any tar tool.
- Writes are **append-only**: a crash mid-write can only truncate the
  tail; on restart "the same key gets reinserted and is taken to be the
  correct value" — read resolution is last-write-wins.
- A **sidecar index** (JSON lines) maps keys to (data offset, size), so
  reads seek directly into the archive without parsing tar headers.
- The index is **reconstructible** from the tar alone
  (:func:`recover_index`), so losing the sidecar loses nothing.
- Deletes and moves are pure **index operations** (tombstones and
  aliases); member data is immutable, exactly as the paper describes.

:class:`TaridxStore` layers the :class:`~repro.datastore.base.DataStore`
API over a directory of rotating archives.
"""

from __future__ import annotations

import io
import json
import os
import tarfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.datastore.base import DataStore, KeyNotFound, StoreError, validate_key

__all__ = ["IndexedTar", "TaridxStore", "recover_index"]

_BLOCK = 512  # tar block size


class IndexedTar:
    """One append-only tar archive plus its sidecar JSON-lines index.

    Index records are one of::

        {"k": key, "o": data_offset, "s": size}    # live entry (append)
        {"k": key, "del": 1}                       # tombstone
        {"k": new, "alias": 1, "o": ..., "s": ...} # move target

    The in-memory view is the fold of the records in order; later
    records win.
    """

    def __init__(self, path: str, mode: str = "a") -> None:
        if not path.endswith(".tar"):
            raise StoreError(f"archive path must end with .tar: {path!r}")
        self.path = path
        self.index_path = path + ".idx"
        # The WM's ThreadAdapter runs job bodies concurrently, so the
        # shared reader/writer handles need seek+read / offset+append
        # atomicity — an unguarded seek is a corrupted payload.
        self._lock = threading.RLock()
        self._entries: Dict[str, Tuple[int, int]] = {}  # key -> (offset, size)
        self._writer: Optional[tarfile.TarFile] = None
        self._reader: Optional[io.BufferedReader] = None
        self._index_fh = None
        self._readonly = mode == "r"
        if os.path.exists(self.index_path):
            self._load_index()
        elif os.path.exists(self.path):
            # Sidecar lost: rebuild from the tar itself.
            self._entries = recover_index(self.path)
            self._persist_full_index()
        if not self._readonly:
            self._open_writer()

    # --- index management ---------------------------------------------------

    def _load_index(self) -> None:
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    break  # truncated tail from a crash; ignore the rest
                key = rec["k"]
                if rec.get("del"):
                    self._entries.pop(key, None)
                else:
                    self._entries[key] = (int(rec["o"]), int(rec["s"]))

    def _persist_full_index(self) -> None:
        with open(self.index_path, "w", encoding="utf-8") as fh:
            for key, (off, size) in self._entries.items():
                fh.write(json.dumps({"k": key, "o": off, "s": size}) + "\n")

    def _append_index(self, rec: dict) -> None:
        if self._index_fh is None:
            self._index_fh = open(self.index_path, "a", encoding="utf-8")
        self._index_fh.write(json.dumps(rec) + "\n")
        self._index_fh.flush()

    # --- tar management -------------------------------------------------------

    def _open_writer(self) -> None:
        if self._writer is None:
            self._writer = tarfile.open(self.path, "a", format=tarfile.GNU_FORMAT)

    def _open_reader(self) -> io.BufferedReader:
        # The writer buffers; flush its stream so the reader sees appends.
        if self._writer is not None:
            self._writer.fileobj.flush()
        if self._reader is None:
            self._reader = open(self.path, "rb")
        return self._reader

    # --- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def append(self, key: str, data: bytes) -> None:
        """Append ``data`` under ``key``. Re-appending a key supersedes it."""
        if self._readonly:
            raise StoreError(f"archive {self.path!r} opened read-only")
        validate_key(key)
        with self._lock:
            self._open_writer()
            info = tarfile.TarInfo(name=key)
            info.size = len(data)
            info.mtime = int(time.time())
            header_offset = self._writer.offset
            self._writer.addfile(info, io.BytesIO(data))
            data_offset = header_offset + _BLOCK
            self._entries[key] = (data_offset, len(data))
            self._append_index({"k": key, "o": data_offset, "s": len(data)})

    def read(self, key: str) -> bytes:
        """Random-access read of the latest version of ``key``."""
        with self._lock:
            if key not in self._entries:
                raise KeyNotFound(key)
            offset, size = self._entries[key]
            fh = self._open_reader()
            fh.seek(offset)
            data = fh.read(size)
        if len(data) != size:
            raise StoreError(f"short read for {key!r}: archive truncated?")
        return data

    def tombstone(self, key: str) -> None:
        """Logically remove ``key`` (data remains in the tar)."""
        with self._lock:
            if key not in self._entries:
                raise KeyNotFound(key)
            del self._entries[key]
            self._append_index({"k": key, "del": 1})

    def alias(self, src: str, dst: str) -> None:
        """Index-only move: ``dst`` points at ``src``'s data; ``src`` dies."""
        validate_key(dst)
        with self._lock:
            if src not in self._entries:
                raise KeyNotFound(src)
            offset, size = self._entries.pop(src)
            self._entries[dst] = (offset, size)
            self._append_index({"k": src, "del": 1})
            self._append_index({"k": dst, "alias": 1, "o": offset, "s": size})

    def nbytes(self) -> int:
        """Current size of the tar file on disk."""
        if self._writer is not None:
            self._writer.fileobj.flush()
        return os.path.getsize(self.path) if os.path.exists(self.path) else 0

    def live_bytes(self) -> int:
        """Payload bytes still reachable through the index."""
        return sum(size for _off, size in self._entries.values())

    def dead_payload(self) -> int:
        """Payload bytes held by superseded or tombstoned members.

        Computed by scanning the tar's member headers (cheap relative
        to compaction itself, which is when this matters).
        """
        if not os.path.exists(self.path):
            return 0
        if self._writer is not None:
            self._writer.fileobj.flush()
        if os.path.getsize(self.path) == 0:
            return 0
        with tarfile.open(self.path, "r") as tar:
            total = sum(member.size for member in tar)
        return total - self.live_bytes()

    def compact(self) -> int:
        """Rewrite the archive with only live entries; returns bytes freed.

        Superseded versions, tombstoned keys, and alias leftovers are
        dropped. The rewrite is crash-safe: the new tar is built beside
        the old one and swapped in with atomic renames; a crash leaves
        either the old consistent pair or the new one.
        """
        size_before = self.nbytes()
        live = sorted(self._entries.items(), key=lambda kv: kv[1][0])
        reader = self._open_reader()
        tmp_path = self.path + ".compact"
        # bufsize=512 keeps the end-of-archive record at two blocks
        # instead of tarfile's default 10 KiB record padding.
        with tarfile.open(tmp_path, "w", format=tarfile.GNU_FORMAT,
                          bufsize=512) as out:
            new_entries: Dict[str, Tuple[int, int]] = {}
            for key, (offset, size) in live:
                reader.seek(offset)
                data = reader.read(size)
                info = tarfile.TarInfo(name=key)
                info.size = size
                info.mtime = int(time.time())
                header_offset = out.offset
                out.addfile(info, io.BytesIO(data))
                new_entries[key] = (header_offset + _BLOCK, size)
        self.close()
        os.replace(tmp_path, self.path)
        self._entries = new_entries
        self._persist_full_index()
        if not self._readonly:
            self._open_writer()
        return size_before - self.nbytes()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None

    def __enter__(self) -> "IndexedTar":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def recover_index(tar_path: str) -> Dict[str, Tuple[int, int]]:
    """Rebuild a key -> (data offset, size) map by scanning a tar file.

    Later members win, matching the crash-recovery semantics of
    :meth:`IndexedTar.append`. Note this cannot recover tombstones or
    aliases (they live only in the sidecar); after recovery every
    appended member is live again, which is the conservative choice.
    """
    entries: Dict[str, Tuple[int, int]] = {}
    with tarfile.open(tar_path, "r") as tar:
        for member in tar:
            entries[member.name] = (member.offset_data, member.size)
    return entries


class TaridxStore(DataStore):
    """DataStore over a directory of rotating indexed tar archives.

    A new archive starts once the current one reaches ``max_entries``
    members or ``max_bytes`` of payload, mirroring how the campaign's
    114,552 archives were rolled. Reads consult a global key map and go
    straight to the owning archive.
    """

    _ARCHIVE_FMT = "archive-{:05d}.tar"

    def __init__(
        self,
        root: str,
        max_entries: int = 100_000,
        max_bytes: int = 1 << 31,  # 2 GiB
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._archives: List[IndexedTar] = []
        self._owner: Dict[str, int] = {}  # key -> archive index
        self._load_existing()
        if not self._archives:
            self._rotate()

    # --- internals ----------------------------------------------------------

    def _load_existing(self) -> None:
        names = sorted(
            n for n in os.listdir(self.root) if n.startswith("archive-") and n.endswith(".tar")
        )
        for name in names:
            arc = IndexedTar(os.path.join(self.root, name))
            idx = len(self._archives)
            self._archives.append(arc)
            for key in arc.keys():
                self._owner[key] = idx

    def _rotate(self) -> None:
        path = os.path.join(self.root, self._ARCHIVE_FMT.format(len(self._archives)))
        self._archives.append(IndexedTar(path))

    def _current(self) -> IndexedTar:
        arc = self._archives[-1]
        if len(arc) >= self.max_entries or arc.nbytes() >= self.max_bytes:
            self._rotate()
            arc = self._archives[-1]
        return arc

    # --- DataStore API ---------------------------------------------------------

    def write(self, key: str, data: bytes) -> None:
        validate_key(key)
        old = self._owner.get(key)
        arc = self._current()  # always the last archive
        arc_idx = len(self._archives) - 1
        arc.append(key, data)
        # Supersede any older copy living in a previous archive.
        if old is not None and old != arc_idx and key in self._archives[old]:
            self._archives[old].tombstone(key)
        self._owner[key] = arc_idx

    def read(self, key: str) -> bytes:
        idx = self._owner.get(key)
        if idx is None:
            raise KeyNotFound(key)
        return self._archives[idx].read(key)

    def delete(self, key: str) -> None:
        idx = self._owner.pop(key, None)
        if idx is None:
            raise KeyNotFound(key)
        self._archives[idx].tombstone(key)

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._owner if k.startswith(prefix))

    def move(self, src: str, dst: str) -> None:
        idx = self._owner.get(src)
        if idx is None:
            raise KeyNotFound(src)
        arc = self._archives[idx]
        # dst may shadow a live key elsewhere; drop that one first.
        old_dst = self._owner.get(dst)
        if old_dst is not None and old_dst != idx:
            self._archives[old_dst].tombstone(dst)
        arc.alias(src, dst)
        del self._owner[src]
        self._owner[dst] = idx

    def close(self) -> None:
        for arc in self._archives:
            arc.close()

    # --- introspection ----------------------------------------------------

    def narchives(self) -> int:
        return len(self._archives)

    def nfiles(self) -> int:
        """Physical files on disk (tars + sidecars) — the inode count."""
        return len(os.listdir(self.root))

    def nentries(self) -> int:
        """Logical files stored (live keys)."""
        return len(self._owner)

    def inode_reduction(self) -> float:
        """Logical-to-physical file ratio (the paper reports ~9000×)."""
        physical = self.nfiles()
        return self.nentries() / physical if physical else 0.0

    def wasted_bytes(self) -> int:
        """Dead payload (superseded/tombstoned) across all archives."""
        return sum(arc.dead_payload() for arc in self._archives)

    def compact(self) -> int:
        """Compact every archive in place; returns total bytes freed.

        Key ownership is unaffected: compaction changes offsets within
        each archive but never moves keys between archives.
        """
        return sum(arc.compact() for arc in self._archives)
