"""Tests for job interdependence (tag hooks) and outer-leaflet patches."""

import numpy as np
import pytest

from repro.core.jobs import JobTracker, JobTypeConfig
from repro.core.patches import Patch, PatchCreator
from repro.sched.adapter import FluxAdapter
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobState
from repro.sched.resources import summit_like
from repro.sims.continuum import ContinuumConfig, ContinuumSim
from repro.util.clock import EventLoop


def make_trackers():
    loop = EventLoop()
    flux = FluxInstance(summit_like(2), loop)
    adapter = FluxAdapter(flux)
    setup = JobTracker(
        JobTypeConfig(name="createsim", ncores=24,
                      duration_sampler=lambda rng: 100.0),
        adapter,
    )
    sim = JobTracker(
        JobTypeConfig(name="cg-sim", ncores=3, ngpus=1,
                      duration_sampler=lambda rng: 200.0),
        adapter,
    )
    return loop, flux, setup, sim


class TestJobChaining:
    def test_dependent_launches_after_prerequisite(self):
        loop, flux, setup, sim = make_trackers()
        setup.launch("patch-7")
        setup.when_done("patch-7", lambda rec: sim.launch("sim-7"))
        loop.run_until(50.0)
        assert sim.nactive() == 0  # prerequisite still running
        loop.run_until(500.0)
        assert len(sim.completed) == 1
        assert sim.completed[0].spec.tag == "sim-7"

    def test_chain_of_three_stages(self):
        # createsim -> cg-sim -> (analysis epilogue hook)
        loop, flux, setup, sim = make_trackers()
        order = []
        setup.launch("p")
        setup.when_done("p", lambda rec: (order.append("setup"), sim.launch("s")))
        sim.when_done("s", lambda rec: order.append("sim"))
        loop.run_until(1_000.0)
        assert order == ["setup", "sim"]

    def test_hooks_fire_once(self):
        loop, flux, setup, _ = make_trackers()
        hits = []
        setup.launch("x")
        setup.when_done("x", hits.append)
        loop.run_until(1_000.0)
        setup.launch("x")  # a second job with the same tag
        loop.run_until(2_000.0)
        assert len(hits) == 1

    def test_hook_not_fired_on_failure(self):
        loop, flux, setup, sim = make_trackers()
        launched = []
        setup_cfg = JobTypeConfig(name="createsim", ncores=24, max_retries=0,
                                  duration_sampler=lambda rng: 1e9)
        tracker = JobTracker(setup_cfg, FluxAdapter(flux))
        tracker.launch("doomed")
        tracker.when_done("doomed", lambda rec: launched.append(rec))
        loop.run_until(10.0)
        node = next(iter(flux.queue.running.values())).allocation.node_ids()[0]
        flux.fail_node(node)
        loop.run_until(100.0)
        assert launched == []
        assert tracker.abandoned == ["doomed"]

    def test_multiple_hooks_same_tag(self):
        loop, flux, setup, _ = make_trackers()
        hits = []
        setup.launch("t")
        setup.when_done("t", lambda r: hits.append(1))
        setup.when_done("t", lambda r: hits.append(2))
        loop.run_until(1_000.0)
        assert hits == [1, 2]


class TestOuterLeafletPatches:
    @pytest.fixture
    def snapshot(self):
        sim = ContinuumSim(ContinuumConfig(grid=32, n_inner=2, n_outer=3,
                                           n_proteins=2, dt=0.05, seed=0))
        sim.step(5)
        return sim.snapshot()

    def test_default_has_no_outer(self, snapshot):
        patch = PatchCreator(patch_grid=9).create(snapshot)[0]
        assert patch.outer is None
        assert patch.flat().shape == (2 * 81,)

    def test_include_outer_extends_encoding(self, snapshot):
        patch = PatchCreator(patch_grid=9, include_outer=True).create(snapshot)[0]
        assert patch.outer is not None
        assert patch.outer.shape == (3, 9, 9)
        assert patch.flat().shape == ((2 + 3) * 81,)

    def test_outer_roundtrips_through_bytes(self, snapshot):
        patch = PatchCreator(patch_grid=9, include_outer=True).create(snapshot)[0]
        back = Patch.from_bytes(patch.to_bytes())
        np.testing.assert_array_equal(back.outer, patch.outer)

    def test_inner_only_roundtrip_stays_none(self, snapshot):
        patch = PatchCreator(patch_grid=9).create(snapshot)[0]
        back = Patch.from_bytes(patch.to_bytes())
        assert back.outer is None
