"""Tests for patch-queue routing (two- and five-queue layouts)."""

import numpy as np
import pytest

from repro.app.routing import FIVE_QUEUES, TWO_QUEUES, five_queue_router, state_router
from repro.core.patches import Patch, PatchCreator
from repro.sims.continuum import ContinuumConfig, ContinuumSim


def make_patch(state=0, neighbors=0):
    return Patch(
        patch_id="p", time_us=0.0, center=np.zeros(2),
        densities=np.ones((1, 3, 3)), protein_state=state, box_nm=30.0,
        n_neighbors=neighbors,
    )


class TestRouters:
    def test_state_router(self):
        assert state_router(make_patch(state=0)) == "ras"
        assert state_router(make_patch(state=1)) == "ras-raf"
        assert set(TWO_QUEUES) == {"ras", "ras-raf"}

    @pytest.mark.parametrize("state,neighbors,expected", [
        (0, 0, "ras-isolated"),
        (0, 1, "ras-paired"),
        (0, 2, "ras-crowded"),
        (0, 5, "ras-crowded"),
        (1, 0, "ras-raf-isolated"),
        (1, 3, "ras-raf-crowded"),
    ])
    def test_five_queue_router(self, state, neighbors, expected):
        assert five_queue_router(make_patch(state, neighbors)) == expected

    def test_router_outputs_are_declared_queues(self):
        for state in (0, 1):
            for n in range(6):
                assert five_queue_router(make_patch(state, n)) in FIVE_QUEUES


class TestNeighborCounting:
    def test_isolated_proteins_have_zero_neighbors(self):
        sim = ContinuumSim(ContinuumConfig(grid=32, n_inner=1, n_outer=1,
                                           n_proteins=2, dt=0.05, seed=0))
        # Pin the two proteins far apart.
        sim.proteins.positions[:] = [[0.1, 0.1], [0.7, 0.7]]
        patches = PatchCreator(patch_grid=9).create(sim.snapshot())
        assert [p.n_neighbors for p in patches] == [0, 0]

    def test_adjacent_proteins_count_each_other(self):
        sim = ContinuumSim(ContinuumConfig(grid=32, n_inner=1, n_outer=1,
                                           n_proteins=3, dt=0.05, seed=0))
        sim.proteins.positions[:] = [[0.5, 0.5], [0.52, 0.5], [0.9, 0.9]]
        patches = PatchCreator(patch_grid=9, patch_nm=30.0).create(sim.snapshot())
        # 0.02 µm = 20 nm <= 30 nm patch extent: the first two see each other.
        assert patches[0].n_neighbors == 1
        assert patches[1].n_neighbors == 1
        assert patches[2].n_neighbors == 0

    def test_periodic_neighbor_counting(self):
        sim = ContinuumSim(ContinuumConfig(grid=32, n_inner=1, n_outer=1,
                                           n_proteins=2, dt=0.05, seed=0))
        sim.proteins.positions[:] = [[0.005, 0.5], [0.995, 0.5]]  # across the seam
        patches = PatchCreator(patch_grid=9).create(sim.snapshot())
        assert patches[0].n_neighbors == 1

    def test_patch_bytes_roundtrip_keeps_neighbors(self):
        p = make_patch(state=1, neighbors=3)
        back = Patch.from_bytes(p.to_bytes())
        assert back.n_neighbors == 3


class TestFiveQueueWorkflow:
    def test_wm_runs_with_five_queues(self):
        from repro.core.wm import WorkflowConfig, WorkflowManager
        from repro.datastore import KVStore
        from repro.ml.encoder import PatchEncoder

        from repro.sims.cg.forcefield import martini_like

        macro = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                             n_proteins=6, dt=0.25, seed=1))
        wm = WorkflowManager(
            macro=macro,
            encoder=PatchEncoder(input_dim=2 * 81, latent_dim=9, hidden=(16,),
                                 rng=np.random.default_rng(0)),
            forcefield=martini_like(2),
            store=KVStore(nservers=2),
            config=WorkflowConfig(beads_per_type=6, cg_chunks_per_job=1,
                                  cg_steps_per_chunk=5, seed=1),
            patch_creator=PatchCreator(patch_grid=9),
            patch_queues=FIVE_QUEUES,
            queue_router=five_queue_router,
        )
        wm.task1_process_macro()
        sizes = wm.patch_selector.queue_sizes()
        assert set(sizes) == set(FIVE_QUEUES)
        assert sum(sizes.values()) == 6

    def test_router_without_queues_rejected(self):
        from repro.core.wm import WorkflowManager
        from repro.datastore import KVStore
        from repro.ml.encoder import PatchEncoder
        from repro.sims.cg.forcefield import martini_like

        macro = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                             n_proteins=2, dt=0.25, seed=0))
        with pytest.raises(ValueError, match="patch_queues"):
            WorkflowManager(
                macro=macro,
                encoder=PatchEncoder(input_dim=2 * 81, hidden=(8,)),
                forcefield=martini_like(2),
                store=KVStore(),
                queue_router=five_queue_router,
            )
