"""KV-cluster-specific behaviour: slotting, routing, counters, latency."""

import numpy as np
import pytest

from repro.datastore.base import KeyNotFound, StoreError
from repro.datastore.kvstore import (
    KVCluster,
    KVServer,
    KVStore,
    LatencyModel,
    key_slot,
)


class TestKeySlot:
    def test_stable(self):
        assert key_slot("rdf/frame-1") == key_slot("rdf/frame-1")

    def test_in_range(self):
        for k in ("a", "b", "rdf/f", "x" * 100):
            assert 0 <= key_slot(k) < 16384

    def test_hash_tags_group_keys(self):
        # Redis semantics: only the {...} part is hashed.
        assert key_slot("{sim42}/rdf") == key_slot("{sim42}/frames")

    def test_known_redis_vector(self):
        # CRC16-XModem("123456789") == 0x31C3 == 12739 (standard test vector).
        assert key_slot("123456789") == 12739 % 16384


class TestKVServer:
    def test_set_get(self):
        s = KVServer()
        s.set("k", b"v")
        assert s.get("k") == b"v"

    def test_get_missing(self):
        with pytest.raises(KeyNotFound):
            KVServer().get("k")

    def test_delete(self):
        s = KVServer()
        s.set("k", b"v")
        s.delete("k")
        assert len(s) == 0
        with pytest.raises(KeyNotFound):
            s.delete("k")

    def test_rename(self):
        s = KVServer()
        s.set("a", b"v")
        s.rename("a", "b")
        assert s.get("b") == b"v"
        with pytest.raises(KeyNotFound):
            s.rename("nope", "x")

    def test_scan_prefix(self):
        s = KVServer()
        s.set("rdf/1", b"")
        s.set("rdf/2", b"")
        s.set("other", b"")
        assert sorted(s.scan("rdf/")) == ["rdf/1", "rdf/2"]

    def test_counters(self):
        s = KVServer()
        s.set("k", b"v")
        s.get("k")
        s.scan()
        assert s.counters.set == 1
        assert s.counters.get == 1
        assert s.counters.scan == 1
        assert s.counters.total() == 3

    def test_flush_and_memory(self):
        s = KVServer()
        s.set("k", b"12345")
        assert s.memory_bytes() == 5
        s.flush()
        assert len(s) == 0


class TestKVCluster:
    def test_routing_is_consistent(self):
        c = KVCluster(nservers=5)
        c.set("key", b"v")
        assert c.server_for("key").get("key") == b"v"

    def test_keys_spread_across_servers(self):
        c = KVCluster(nservers=10)
        for i in range(2000):
            c.set(f"frame-{i:05d}", b"x")
        lo, hi = c.balance()
        assert lo > 0  # every shard got something
        assert hi < 2000  # and no shard got everything

    def test_scan_aggregates_all_servers(self):
        c = KVCluster(nservers=4)
        for i in range(50):
            c.set(f"k{i:02d}", b"x")
        assert len(c.scan()) == 50

    def test_cross_slot_rename(self):
        c = KVCluster(nservers=7)
        c.set("aaa", b"payload")
        c.rename("aaa", "zzzzzz")
        assert c.get("zzzzzz") == b"payload"
        with pytest.raises(KeyNotFound):
            c.get("aaa")

    def test_len_counts_all(self):
        c = KVCluster(nservers=3)
        for i in range(20):
            c.set(f"k{i}", b"")
        assert len(c) == 20

    def test_needs_one_server(self):
        with pytest.raises(StoreError):
            KVCluster(nservers=0)

    def test_aggregate_counters(self):
        c = KVCluster(nservers=3)
        for i in range(10):
            c.set(f"k{i}", b"v")
        for i in range(10):
            c.get(f"k{i}")
        agg = c.counters()
        assert agg.set == 10 and agg.get == 10


class TestLatencyModel:
    def test_costs_accumulate(self):
        c = KVCluster(nservers=2, latency=LatencyModel(per_op=0.001, per_byte=0.0))
        for i in range(10):
            c.set(f"k{i}", b"x")
        assert c.virtual_time_spent == pytest.approx(0.01)

    def test_reads_cost_more_with_larger_payloads(self):
        lm = LatencyModel(per_op=0.0, per_byte=1e-6)
        c = KVCluster(nservers=1, latency=lm)
        c.set("small", b"x")
        c.set("big", b"x" * 10_000)
        c.drain_virtual_time()
        c.get("small")
        t_small = c.drain_virtual_time()
        c.get("big")
        t_big = c.drain_virtual_time()
        assert t_big > t_small

    def test_scan_cost_scales_with_keys(self):
        lm = LatencyModel(per_op=0.0, per_byte=0.0, scan_per_key=1e-5)
        c = KVCluster(nservers=1, latency=lm)
        for i in range(100):
            c.set(f"k{i:03d}", b"")
        c.drain_virtual_time()
        c.scan()
        assert c.drain_virtual_time() == pytest.approx(100 * 1e-5)

    def test_drain_resets(self):
        c = KVCluster(latency=LatencyModel())
        c.set("k", b"v")
        assert c.drain_virtual_time() > 0
        assert c.drain_virtual_time() == 0.0

    def test_no_latency_model_costs_nothing(self):
        c = KVCluster(nservers=1)
        c.set("k", b"v")
        assert c.virtual_time_spent == 0.0


class TestKVStoreAdapter:
    def test_shares_cluster(self):
        cluster = KVCluster(nservers=2)
        store = KVStore(cluster)
        store.write("k", b"v")
        assert cluster.get("k") == b"v"

    def test_default_cluster(self):
        store = KVStore(nservers=4)
        assert len(store.cluster.servers) == 4
