"""Tests for the Workflow Manager driving real (tiny) simulations."""

import numpy as np
import pytest

from repro.core.patches import PatchCreator
from repro.core.wm import WorkflowConfig, WorkflowManager
from repro.datastore import KVStore
from repro.ml.encoder import PatchEncoder
from repro.sched.adapter import ThreadAdapter
from repro.sims.cg.forcefield import martini_like
from repro.sims.continuum import ContinuumConfig, ContinuumSim


def make_wm(store=None, **cfg_kwargs):
    macro = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                         n_proteins=3, dt=0.25, seed=0))
    store = store if store is not None else KVStore(nservers=2)
    encoder = PatchEncoder(input_dim=2 * 81, latent_dim=9, hidden=(16,),
                           rng=np.random.default_rng(0))
    ff = martini_like(n_lipid_types=2, seed=0)
    config = WorkflowConfig(beads_per_type=10, cg_chunks_per_job=2,
                            cg_steps_per_chunk=10, aa_chunks_per_job=1,
                            aa_steps_per_chunk=10, seed=0, **cfg_kwargs)
    wm = WorkflowManager(
        macro=macro,
        encoder=encoder,
        forcefield=ff,
        store=store,
        adapter=ThreadAdapter(max_workers=1),
        config=config,
        patch_creator=PatchCreator(patch_grid=9, store=store),
    )
    return wm, store


class TestTask1:
    def test_processes_macro_into_candidates(self):
        wm, _ = make_wm()
        n = wm.task1_process_macro(advance_us=1.0)
        assert n == 3  # one patch per protein
        assert wm.counters["snapshots"] == 1
        assert wm.counters["patches"] == 3
        assert wm.patch_selector.ncandidates() == 3

    def test_patches_routed_by_protein_state(self):
        wm, _ = make_wm()
        wm.task1_process_macro()
        sizes = wm.patch_selector.queue_sizes()
        assert sum(sizes.values()) == 3
        assert set(sizes) == {"ras", "ras-raf"}

    def test_patches_persisted(self):
        wm, store = make_wm()
        wm.task1_process_macro()
        assert len(store.keys("patches/")) == 3


class TestFullRounds:
    def test_one_round_runs_the_whole_pipeline(self):
        wm, store = make_wm()
        wm.round(advance_us=1.0)
        c = wm.counters
        assert c["patches_selected"] > 0
        assert c["cg_spawned"] > 0
        assert c["cg_finished"] > 0
        assert c["frames_seen"] > 0
        # RDFs streamed into the live namespace by CG analysis jobs.
        assert len(store.keys("rdf/live/")) > 0

    def test_aa_scale_reached_within_rounds(self):
        wm, store = make_wm()
        wm.run(nrounds=3)
        c = wm.counters
        assert c["frames_selected"] > 0
        assert c["aa_spawned"] > 0
        assert c["aa_finished"] > 0
        assert len(store.keys("ss/live/")) > 0

    def test_counters_monotone_across_rounds(self):
        wm, _ = make_wm()
        first = dict(wm.round())
        second = dict(wm.round())
        for key in first:
            assert second[key] >= first[key]

    def test_buffers_respect_targets(self):
        wm, _ = make_wm(cg_ready_target=1, max_cg_sims=1)
        wm.round()
        assert len(wm.cg_ready) <= 1

    def test_trackers_have_four_job_types(self):
        wm, _ = make_wm()
        assert set(wm.trackers) == {"createsim", "cg-sim", "backmap", "aa-sim"}

    def test_selector_histories_populate(self):
        wm, _ = make_wm()
        wm.run(nrounds=2)
        assert len(wm.patch_selector.history) > 0


class TestCheckpoint:
    def test_checkpoint_restore_roundtrip(self):
        wm, store = make_wm()
        wm.run(nrounds=2)
        wm.checkpoint()
        counters = dict(wm.counters)
        rounds = wm.rounds

        wm2, _ = make_wm(store=store)
        payload = wm2.restore()
        assert wm2.rounds == rounds
        assert wm2.counters == counters
        assert payload["macro_time_us"] > 0

    def test_checkpoint_restores_selector_state(self):
        wm, store = make_wm()
        wm.run(nrounds=2)
        wm.checkpoint()
        candidates_before = wm.patch_selector.ncandidates()
        selected_before = wm.patch_selector.nselected()

        wm2, _ = make_wm(store=store)
        wm2.restore()
        assert wm2.patch_selector.ncandidates() == candidates_before
        assert wm2.patch_selector.nselected() == selected_before
        assert wm2.frame_selector.ncandidates() == wm.frame_selector.ncandidates()

    def test_checkpoint_records_feedback_versions(self):
        wm, store = make_wm()
        wm.round()
        wm.checkpoint()
        payload = store.read_json("wm/checkpoint")
        assert "coupling_version" in payload
        assert "ss_pattern" in payload
