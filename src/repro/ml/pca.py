"""PCA patch encoder: the paper's "simpler dimensionality reduction".

§4.4 Task 2: encoded representations "may be computed using a ML
inference engine (as done by the Patch Selector), a simpler
dimensionality reduction (e.g., principal component analysis), or any
configurational representation". :class:`PCAEncoder` is that second
option — duck-type compatible with :class:`~repro.ml.encoder.PatchEncoder`
(``encode``/``latent_dim``/``state_dict``) so it drops into the
Workflow Manager unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

__all__ = ["PCAEncoder"]


class PCAEncoder:
    """Principal-component projection to the novelty space.

    Fit once on an initial batch of flattened patches, then encode any
    stream. Components come from the SVD of the centered data (computed
    with ``full_matrices=False`` — the economy decomposition; see the
    repository's performance notes on SVD cost).
    """

    def __init__(self, input_dim: int, latent_dim: int = 9) -> None:
        if latent_dim < 1 or input_dim < latent_dim:
            raise ValueError("need input_dim >= latent_dim >= 1")
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self._mean: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None  # (latent, input)
        self.explained_variance_ratio: Optional[np.ndarray] = None

    @property
    def fitted(self) -> bool:
        return self._components is not None

    def fit(self, data: np.ndarray) -> "PCAEncoder":
        """Fit components on (n, input_dim) patch vectors."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        if data.shape[1] != self.input_dim:
            raise ValueError(f"expected input dim {self.input_dim}, got {data.shape[1]}")
        if data.shape[0] < self.latent_dim:
            raise ValueError(
                f"need at least {self.latent_dim} samples to fit, got {data.shape[0]}"
            )
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        # Economy SVD: we only need the top latent_dim right singular
        # vectors, never the full (n, n) U.
        _u, s, vt = np.linalg.svd(centered, full_matrices=False)
        self._components = vt[: self.latent_dim]
        var = s**2
        total = var.sum()
        self.explained_variance_ratio = (
            var[: self.latent_dim] / total if total > 0 else np.zeros(self.latent_dim)
        )
        return self

    def encode(self, patches: np.ndarray) -> np.ndarray:
        """(n, input_dim) -> (n, latent_dim) projections."""
        if not self.fitted:
            raise RuntimeError("PCAEncoder.encode before fit()")
        patches = np.atleast_2d(np.asarray(patches, dtype=np.float64))
        if patches.shape[1] != self.input_dim:
            raise ValueError(f"expected input dim {self.input_dim}, got {patches.shape[1]}")
        return (patches - self._mean) @ self._components.T

    __call__ = encode

    # --- persistence (checkpoint parity with PatchEncoder) ----------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        if not self.fitted:
            raise RuntimeError("cannot checkpoint an unfitted encoder")
        return {
            "mean": self._mean.copy(),
            "components": self._components.copy(),
            "evr": self.explained_variance_ratio.copy(),
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        components = state["components"]
        if components.shape != (self.latent_dim, self.input_dim):
            raise ValueError("component shape mismatch")
        self._mean = state["mean"].copy()
        self._components = components.copy()
        self.explained_variance_ratio = state["evr"].copy()
