"""Tests for the spectral continuum solver and FD cross-validation."""

import numpy as np
import pytest

from repro.sims.continuum import ContinuumConfig, ContinuumSim


def make(solver, dt, grid=32, seed=4, couple=0.3):
    cfg = ContinuumConfig(grid=grid, n_inner=2, n_outer=1, n_proteins=3,
                          dt=dt, solver=solver, seed=seed)
    sim = ContinuumSim(cfg)
    # Mild, deterministic couplings shared by both solvers.
    rng = np.random.default_rng(0)
    sim.update_couplings(rng.normal(0, couple, (2, 2)), rng.normal(0, couple, (1, 2)))
    return sim


class TestSpectralSolver:
    def test_solver_validation(self):
        with pytest.raises(ValueError, match="solver"):
            ContinuumConfig(solver="magic")

    def test_fd_stability_check_skipped_for_spectral(self):
        # This dt violates the FD limit but is fine spectrally.
        cfg = ContinuumConfig(grid=64, dt=1.0, solver="spectral")
        assert cfg.solver == "spectral"
        with pytest.raises(ValueError, match="stability"):
            ContinuumConfig(grid=64, dt=1.0, solver="fd")

    def test_mass_conserved_to_roundoff(self):
        sim = make("spectral", dt=0.25)
        m0 = sim.total_mass()
        sim.step(100)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_stable_beyond_fd_limit(self):
        # dt = 4x the FD stability limit for this grid: spectral stays
        # bounded; the same dt is rejected outright for FD.
        dx = 1.0 / 32
        fd_limit = dx * dx / (4 * 1e-3)
        sim = make("spectral", dt=4 * fd_limit)
        sim.step(50)
        assert np.all(np.isfinite(sim.inner))
        assert sim.inner.max() < 100.0

    def test_fields_stay_near_positive(self):
        # No clipping in the spectral path: mild dynamics must not need it.
        sim = make("spectral", dt=0.25)
        sim.step(200)
        assert sim.inner.min() > -1e-2

    def test_matches_fd_on_short_horizon(self):
        dt = 0.05  # within the FD limit for grid=32
        fd = make("fd", dt=dt, couple=0.2)
        sp = make("spectral", dt=dt, couple=0.2)
        # Same initial state by construction (same seed); evolve fields
        # only (freeze proteins so the field comparison is clean).
        fd.proteins.bind_rate = fd.proteins.unbind_rate = 0.0
        sp.proteins.bind_rate = sp.proteins.unbind_rate = 0.0
        fd.config = fd.config  # no-op, clarity
        kernels_fd = fd._protein_kernel()
        kernels_sp = sp._protein_kernel()
        np.testing.assert_allclose(kernels_fd[0], kernels_sp[0])
        for _ in range(20):
            fd._step_fields(fd.inner, fd.g_inner, kernels_fd)
            sp._step_fields(sp.inner, sp.g_inner, kernels_sp)
        # Different discretizations of the same PDE: close, not equal.
        rel = np.abs(fd.inner - sp.inner) / np.abs(fd.inner).mean()
        assert rel.max() < 0.05

    def test_full_pipeline_runs_with_spectral_macro(self):
        """The WM accepts a spectral-solver continuum unchanged."""
        from repro.app.builder import build_application
        from repro.core.wm import WorkflowConfig

        app = build_application(
            workflow=WorkflowConfig(beads_per_type=6, cg_chunks_per_job=1,
                                    cg_steps_per_chunk=5, seed=0),
            seed=0,
        )
        # Swap the macro for a spectral one of the same shape.
        app.wm.macro = ContinuumSim(
            ContinuumConfig(grid=16, n_inner=2, n_outer=2, n_proteins=3,
                            dt=0.25, solver="spectral", seed=0)
        )
        app.cg2cont.continuum = app.wm.macro
        counters = app.run(nrounds=1)
        assert counters["patches"] > 0
