"""Physics-diagnostic tests for the CG engine."""

import numpy as np
import pytest

from repro.sims.cg.engine import CGConfig, CGSim
from repro.sims.cg.forcefield import BeadType, CGForceField, martini_like
from repro.sims.cg.observables import (
    EnergySeries,
    TrajectoryRecorder,
    bond_length_stats,
    diffusion_coefficient,
    mean_squared_displacement,
)


def ideal_gas(n=200, box=50.0, seed=0, temperature=1.0, mobility=1.0):
    """Non-interacting beads: pure Brownian motion (eps = 0 everywhere)."""
    ff = CGForceField([BeadType("L0")], eps=np.zeros((1, 1)), eps_rep=0.0)
    rng = np.random.default_rng(seed)
    cfg = CGConfig(box=box, n_lipids=n, seed=seed, temperature=temperature,
                   mobility=mobility, dt=5e-3)
    return CGSim(rng.random((n, 2)) * box, np.zeros(n, dtype=int), ff, cfg)


class TestDiffusion:
    def test_free_particles_obey_einstein_relation(self):
        # For overdamped Langevin, D = mobility * kT; MSD = 4 D t in 2-D.
        sim = ideal_gas(n=400, temperature=1.0, mobility=1.0)
        rec = TrajectoryRecorder(sim).run(nframes=40, steps_per_frame=10)
        msd = mean_squared_displacement(rec.trajectory())
        D = diffusion_coefficient(np.array(rec.times), msd)
        assert D == pytest.approx(1.0, rel=0.15)

    def test_diffusion_scales_with_temperature(self):
        def measure(T):
            sim = ideal_gas(n=300, temperature=T, seed=1)
            rec = TrajectoryRecorder(sim).run(nframes=30, steps_per_frame=10)
            return diffusion_coefficient(
                np.array(rec.times), mean_squared_displacement(rec.trajectory())
            )

        assert measure(2.0) == pytest.approx(2 * measure(1.0), rel=0.3)

    def test_msd_starts_at_zero_and_grows(self):
        sim = ideal_gas(n=100, seed=2)
        rec = TrajectoryRecorder(sim).run(nframes=10, steps_per_frame=5)
        msd = mean_squared_displacement(rec.trajectory())
        assert msd[0] == 0.0
        assert msd[-1] > msd[1] > 0

    def test_unwrapping_crosses_boundaries(self):
        # Long run in a small box: raw wrapped MSD would saturate at
        # ~box^2/4; the unwrapped one keeps growing past it.
        sim = ideal_gas(n=100, box=3.0, seed=3)
        rec = TrajectoryRecorder(sim).run(nframes=120, steps_per_frame=20)
        msd = mean_squared_displacement(rec.trajectory())
        assert msd[-1] > 3.0**2  # beyond what the wrapped box allows

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_squared_displacement(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            diffusion_coefficient(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            diffusion_coefficient(np.zeros(3), np.zeros(3))


class TestBondsAndEnergy:
    def test_bond_lengths_hover_near_rest(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=50, seed=4))
        sim.step(300)
        stats = bond_length_stats(sim)
        assert stats["mean"] == pytest.approx(stats["rest_mean"], rel=0.3)
        assert stats["max_strain"] < 1.0

    def test_stiffer_bonds_fluctuate_less(self):
        def spread(ss):
            sim = CGSim.random_system(config=CGConfig(n_lipids=30, seed=5))
            sim.apply_feedback(ss)
            sim.step(400)
            return bond_length_stats(sim)["std"]

        assert spread("HHHHHH") < spread("CCCCCC")

    def test_no_bonds_raises(self):
        sim = ideal_gas(n=10)
        with pytest.raises(ValueError):
            bond_length_stats(sim)

    def test_energy_equilibrates(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=120, seed=6))
        sim.step(200)  # burn-in
        series = EnergySeries.collect(sim, nsamples=20, steps_per_sample=20)
        assert abs(series.drift()) < 0.5  # no runaway heating/cooling

    def test_zero_temperature_energy_monotone_drift_down(self):
        sim = CGSim.random_system(config=CGConfig(n_lipids=120, seed=7,
                                                  temperature=0.0))
        series = EnergySeries.collect(sim, nsamples=10, steps_per_sample=20)
        assert series.drift() <= 0
