"""The continuum (macro) scale: DDFT lipid densities + protein particles."""

from repro.sims.continuum.ddft import ContinuumSim, ContinuumConfig
from repro.sims.continuum.proteins import ProteinState, ProteinTable
from repro.sims.continuum.snapshot import Snapshot

__all__ = [
    "ContinuumSim",
    "ContinuumConfig",
    "ProteinState",
    "ProteinTable",
    "Snapshot",
]
