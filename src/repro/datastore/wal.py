"""Per-shard durability: framed append-only log, snapshots, compaction.

A :class:`ShardWAL` gives one NetKV shard a crash-consistent disk image
made of a few files in its directory:

* ``snapshot.bin`` — the full key space at some past moment, written
  atomically (temp file + fsync + ``os.replace`` + directory fsync).
* ``wal.log`` — every mutation since the last compaction began, one
  CRC-framed record per logical write (deletes included, so a replayed
  shard does not resurrect removed keys).
* ``wal.log.<n>`` — sealed segments awaiting compaction.  Compaction is
  split in two so the heavy part can run off the serving thread:
  :meth:`begin_snapshot` (cheap: rename the live log to a sealed
  segment and start a fresh one) runs under the shard's dispatch lock
  together with the key-space copy, then :meth:`write_snapshot` does
  the snapshot write + fsync on an executor and deletes the sealed
  segments on success.  A crash between the two leaves the segments on
  disk; recovery replays snapshot, then segments in order, then the
  live log, so nothing acked is lost.

Recovery loads the snapshot and replays the log(s).  A torn tail record —
the normal result of crashing mid-append — is *truncated*, not fatal:
replay stops at the last frame whose length and CRC32 check out, and
the file is cut back to that offset before appends resume.  Everything
before the tear was acked against a completed fsync and survives.

Durability is group-committed: appends only buffer bytes in memory and
bump ``seq``; the serving loop awaits :meth:`commit` before releasing
responses, and concurrent waiters share a single write+fsync pass on an
executor thread.  One fsync therefore covers an entire pipelined burst
(and every burst that arrived while the previous fsync was in flight),
which is what keeps durable writes within shouting distance of the
in-memory numbers (see ``BENCH_netkv_persist.json``).

A failed write+fsync poisons the WAL rather than losing records: the
drained buffer is pushed back in front of anything appended since, the
file is cut back to its last known-good frame boundary, and every
subsequent :meth:`commit` raises so the shard refuses to ack mutations
it cannot make durable.

Frame format (little-endian)::

    record  := u32 body_len | u32 crc32(body) | body
    body    := op:1 | fields
    op 'S'  := u32 key_len | key_utf8 | value_bytes
    op 'D'  := key_utf8
    op 'R'  := u32 src_len | src_utf8 | dst_utf8
    op 'F'  := (empty; clears the key space)

The snapshot file is the magic line ``RKVSNAP1\\n`` followed by 'S'
records in the same framing, so one decoder serves both files.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import struct
import threading
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.datastore.base import StoreError

__all__ = [
    "DurabilityConfig",
    "ShardWAL",
    "WALCorruption",
    "encode_record",
    "iter_frames",
    "replay_into",
]

_HDR = struct.Struct("<II")  # body_len, crc32(body)
_U32 = struct.Struct("<I")
_SNAP_MAGIC = b"RKVSNAP1\n"
_SNAP_NAME = "snapshot.bin"
_WAL_NAME = "wal.log"
_MAX_FRAME = 1 << 30  # sanity bound; anything larger is corruption


class WALCorruption(StoreError):
    """A frame *before* the tail failed validation.

    Torn tails are expected and silently truncated; a bad frame with
    valid frames after it means the file was damaged some other way and
    recovery refuses to guess.  (We only detect this within the bytes
    we scan linearly, so in practice this surfaces for snapshot files,
    whose atomic rename means they must be wholly valid.)
    """


@dataclasses.dataclass(frozen=True)
class DurabilityConfig:
    """Knobs for the ``[durability]`` config section.

    ``fsync`` gates every synchronous-flush call site (WAL group
    commit, snapshot rename, FSStore atomic writes); turning it off
    keeps the write path byte-identical but trusts the OS page cache.
    ``compact_bytes`` is the WAL size that triggers an automatic
    snapshot + log reset on the next mutation.
    """

    fsync: bool = True
    compact_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.compact_bytes < 4096:
            raise ValueError("durability.compact_bytes must be >= 4096")


def _sync_file(fh) -> None:
    fh.flush()
    if hasattr(os, "fdatasync"):
        os.fdatasync(fh.fileno())
    else:  # pragma: no cover - non-POSIX fallback
        os.fsync(fh.fileno())


def _write_all(fh, data: bytes) -> None:
    """Write every byte of ``data`` to an unbuffered file handle."""
    view = memoryview(data)
    while view:
        n = fh.write(view)
        if n is None:  # pragma: no cover - regular files always block
            n = len(view)
        view = view[n:]


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems that refuse
        pass
    finally:
        os.close(fd)


# --- framing ---------------------------------------------------------------


def encode_record(op: bytes, *fields: bytes) -> bytes:
    """Frame one record: 'S' (key, value), 'D' (key), 'R' (src, dst),
    'F' ()."""
    if op in (b"S", b"R"):
        first, second = fields
        body = op + _U32.pack(len(first)) + first + second
    elif op == b"D":
        body = op + fields[0]
    elif op == b"F":
        body = op
    else:
        raise ValueError(f"unknown WAL op {op!r}")
    return _HDR.pack(len(body), zlib.crc32(body)) + body


def iter_frames(data: bytes, offset: int = 0) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(next_offset, body)`` for every valid frame; stop at the
    first torn or corrupt one (the caller decides whether what remains
    is an acceptable tail)."""
    n = len(data)
    while offset + _HDR.size <= n:
        body_len, crc = _HDR.unpack_from(data, offset)
        end = offset + _HDR.size + body_len
        if body_len > _MAX_FRAME or end > n:
            return  # torn tail: length field or body ran off the file
        body = data[offset + _HDR.size:end]
        if zlib.crc32(body) != crc:
            return  # torn tail: partially written body
        yield end, body
        offset = end


def _decode_body(body: bytes) -> Tuple[bytes, List[bytes]]:
    op = body[:1]
    if op == b"S" or op == b"R":
        if len(body) < 1 + _U32.size:
            raise WALCorruption("record too short for its op")
        (first_len,) = _U32.unpack_from(body, 1)
        first_end = 1 + _U32.size + first_len
        if first_end > len(body):
            raise WALCorruption("record key length exceeds body")
        return op, [body[1 + _U32.size:first_end], body[first_end:]]
    if op == b"D":
        return op, [body[1:]]
    if op == b"F":
        return op, []
    raise WALCorruption(f"unknown WAL op {op!r}")


def replay_into(data: bytes, into: Dict[str, bytes],
                offset: int = 0) -> Tuple[int, int]:
    """Apply every valid frame in ``data`` to ``into``.

    Returns ``(records_applied, valid_end_offset)``; bytes past the
    valid end are a torn tail the caller should truncate.
    """
    applied = 0
    valid_end = offset
    for end, body in iter_frames(data, offset):
        op, fields = _decode_body(body)
        if op == b"S":
            into[fields[0].decode("utf-8")] = fields[1]
        elif op == b"D":
            into.pop(fields[0].decode("utf-8"), None)
        elif op == b"R":
            src = fields[0].decode("utf-8")
            dst = fields[1].decode("utf-8")
            if src in into:
                into[dst] = into.pop(src)
        elif op == b"F":
            into.clear()
        applied += 1
        valid_end = end
    return applied, valid_end


# --- the per-shard log -----------------------------------------------------


class ShardWAL:
    """Append-only write log plus snapshot for one shard.

    Thread model: appends and :meth:`commit` run on the shard's event
    loop thread (serialized by the server's dispatch lock); the actual
    write+fsync runs on an executor thread.  ``_buf_lock`` guards the
    pending buffer and sequence counters across that boundary, and
    ``_file_lock`` serializes file I/O so concurrent sync passes and
    snapshots cannot interleave their writes.
    """

    def __init__(self, directory: str,
                 config: Optional[DurabilityConfig] = None) -> None:
        self.directory = directory
        self.config = config or DurabilityConfig()
        os.makedirs(directory, exist_ok=True)
        self._buf_lock = threading.Lock()
        self._file_lock = threading.Lock()
        self._pending = bytearray()
        self.seq = 0           # records appended since open
        self.synced_seq = 0    # records durable on disk
        self._sync_task: Optional[asyncio.Task] = None
        self._closed = False
        self._failed = False   # a write+fsync raised; stop acking
        # compaction-in-flight state (begin_snapshot .. write_snapshot)
        self._compacting = False
        self._frozen = b""       # pending bytes set aside by begin_snapshot
        self._frozen_seq = 0     # seq the snapshot will cover
        self._frozen_bytes = 0   # on-disk bytes held in sealed segments
        self._segments: List[str] = []
        self._seg_index = 0
        self._dir_dirty = False  # new live log needs a directory fsync
        # counters surfaced via info() / SNAPSHOT responses
        self.appends = 0
        self.fsync_batches = 0
        self.wal_bytes = 0     # bytes written to the log since open
        self.snapshots = 0
        self.sync_failures = 0
        self.replayed_records = 0
        self.truncated_bytes = 0
        self.recovered = self._recover()
        # Unbuffered: after a failed write we ftruncate back to the last
        # good frame boundary, and a userspace buffer could flush stale
        # bytes past it on close.
        self._fh = open(self._wal_path, "ab", buffering=0)
        try:
            self.log_bytes = os.path.getsize(self._wal_path)
        except OSError:  # pragma: no cover
            self.log_bytes = 0

    # -- paths -------------------------------------------------------------

    @property
    def _wal_path(self) -> str:
        return os.path.join(self.directory, _WAL_NAME)

    @property
    def _snap_path(self) -> str:
        return os.path.join(self.directory, _SNAP_NAME)

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> Dict[str, bytes]:
        """Snapshot + segment + log replay with torn-tail truncation.

        Sealed ``wal.log.<n>`` segments on disk mean a compaction began
        but its snapshot never landed; they replay between the snapshot
        and the live log, oldest first.  Replaying records the snapshot
        already covers is harmless — every op is idempotent against the
        state that already includes it (a rename whose source is gone
        is a no-op), so a suffix of history can be applied twice.
        """
        data: Dict[str, bytes] = {}
        if os.path.exists(self._snap_path):
            with open(self._snap_path, "rb") as fh:
                raw = fh.read()
            if not raw.startswith(_SNAP_MAGIC):
                raise WALCorruption(
                    f"{self._snap_path} is not a NetKV snapshot")
            applied, valid_end = replay_into(raw, data, len(_SNAP_MAGIC))
            if valid_end != len(raw):
                # The snapshot was renamed into place after a full
                # fsync; a short one means outside interference.
                raise WALCorruption(
                    f"{self._snap_path} is damaged at byte {valid_end}")
            self.replayed_records += applied
        numbered = []
        try:
            names = os.listdir(self.directory)
        except OSError:  # pragma: no cover
            names = []
        prefix = _WAL_NAME + "."
        for name in names:
            if name.startswith(prefix) and name[len(prefix):].isdigit():
                numbered.append((int(name[len(prefix):]),
                                 os.path.join(self.directory, name)))
        numbered.sort()
        self._segments = [path for _, path in numbered]
        self._seg_index = numbered[-1][0] + 1 if numbered else 0
        for path in self._segments + [self._wal_path]:
            if not os.path.exists(path):
                continue
            with open(path, "rb") as fh:
                raw = fh.read()
            applied, valid_end = replay_into(raw, data)
            self.replayed_records += applied
            if valid_end != len(raw):
                # Crash mid-append: drop the torn tail so appends
                # resume on a frame boundary.  (Only the newest file
                # can legitimately tear, but truncation is safe — a
                # tear is always at the very end of acked history.)
                self.truncated_bytes += len(raw) - valid_end
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
                    if self.config.fsync:
                        _sync_file(fh)
            if path != self._wal_path:
                self._frozen_bytes += valid_end
        # Leftover segments do not block commits: _compacting stays
        # False and the interrupted compaction simply retries at the
        # next needs_compaction() trigger (the sizes still count).
        return data

    # -- appends (loop thread) ---------------------------------------------

    def _append(self, record: bytes) -> int:
        with self._buf_lock:
            if self._closed:
                raise StoreError("WAL is closed")
            self._pending += record
            self.seq += 1
            self.appends += 1
            return self.seq

    def append_set(self, key: str, value: bytes) -> int:
        return self._append(encode_record(b"S", key.encode("utf-8"), value))

    def append_delete(self, key: str) -> int:
        return self._append(encode_record(b"D", key.encode("utf-8")))

    def append_rename(self, src: str, dst: str) -> int:
        return self._append(encode_record(
            b"R", src.encode("utf-8"), dst.encode("utf-8")))

    def append_flush(self) -> int:
        return self._append(encode_record(b"F"))

    # -- group commit ------------------------------------------------------

    async def commit(self, target: Optional[int] = None) -> None:
        """Block until every record up to ``target`` (default: all
        appended so far) is durable.  Concurrent callers coalesce onto
        one executor write+fsync pass; a pass picks up everything
        buffered at the moment it drains, so late joiners usually find
        their records already covered."""
        if target is None:
            target = self.seq
        while self.synced_seq < target:
            if self._failed:
                raise StoreError(
                    "WAL write failed; shard refuses to ack mutations")
            if self._compacting:
                # A snapshot is landing on the executor; its fsync will
                # cover every frozen record.  Records appended *after*
                # begin_snapshot still need a sync pass, but that pass
                # must not run concurrently with the snapshot (ordering
                # on failure), so just poll until the flag clears.
                await asyncio.sleep(0.002)
                continue
            task = self._sync_task
            if task is None:
                task = asyncio.get_running_loop().create_task(
                    self._sync_once())
                self._sync_task = task
            try:
                # shield: one cancelled waiter must not abort the write
                # other connections' acks are riding on.
                await asyncio.shield(task)
            finally:
                if self._sync_task is task and task.done():
                    self._sync_task = None

    async def _sync_once(self) -> None:
        await asyncio.get_running_loop().run_in_executor(
            None, self._write_and_sync)

    def _write_and_sync(self) -> None:
        with self._file_lock:
            with self._buf_lock:
                if self._closed or self._failed or self._compacting:
                    return
                buf = bytes(self._pending)
                self._pending.clear()
                upto = self.seq
            if buf:
                try:
                    _write_all(self._fh, buf)
                    if self.config.fsync:
                        _sync_file(self._fh)
                    if self._dir_dirty and self.config.fsync:
                        fsync_dir(self.directory)
                except Exception as exc:
                    # Put the records back in front of anything appended
                    # since, cut the file back to its last good frame
                    # boundary, and stop acking: a WAL silently missing
                    # acked mutations is worse than a shard that
                    # refuses writes.
                    with self._buf_lock:
                        self._pending[:0] = buf
                        self._failed = True
                        self.sync_failures += 1
                    try:
                        os.ftruncate(self._fh.fileno(), self.log_bytes)
                    except OSError:  # pragma: no cover - double fault
                        pass
                    raise StoreError(
                        f"WAL write+fsync failed: {exc}") from exc
                self._dir_dirty = False
                self.wal_bytes += len(buf)
                self.log_bytes += len(buf)
                self.fsync_batches += 1
            with self._buf_lock:
                if upto > self.synced_seq:
                    self.synced_seq = upto

    # -- snapshot + compaction ---------------------------------------------

    def begin_snapshot(self) -> None:
        """Freeze the log for compaction (cheap: two renames, no data
        I/O).

        The caller holds whatever lock makes its upcoming ``items``
        copy a consistent view of the shard and calls this inside it —
        that lock is the sequence point making the copy and the freeze
        agree.  Pending bytes move aside, the live log is sealed into a
        numbered segment, and appends continue into a fresh file.
        Until :meth:`write_snapshot` finishes, sync passes stand down
        (commit waiters poll) so a snapshot failure cannot leave
        post-freeze records on disk ahead of the re-queued frozen ones.
        """
        with self._file_lock:
            with self._buf_lock:
                if self._closed:
                    raise StoreError("WAL is closed")
                if self._failed:
                    raise StoreError("WAL failed; refusing to compact")
                if self._compacting:
                    raise StoreError("a snapshot is already in progress")
                self._compacting = True
                self._frozen = bytes(self._pending)
                self._pending.clear()
                self._frozen_seq = self.seq
            try:
                self._fh.close()
                seg = f"{self._wal_path}.{self._seg_index}"
                self._seg_index += 1
                os.rename(self._wal_path, seg)
                self._segments.append(seg)
                self._frozen_bytes += self.log_bytes
                self.log_bytes = 0
                self._fh = open(self._wal_path, "ab", buffering=0)
                self._dir_dirty = True  # next commit fsyncs the dir
            except Exception:
                # Could not seal the segment: un-freeze so commits do
                # not poll a compaction that will never finish.
                with self._buf_lock:
                    self._pending[:0] = self._frozen
                    self._frozen = b""
                    self._compacting = False
                    self._failed = True  # the log file state is unknown
                raise

    def write_snapshot(
            self, items: Iterable[Tuple[str, bytes]]) -> Dict[str, int]:
        """Write the snapshot begun by :meth:`begin_snapshot` and
        retire the sealed segments.

        Heavy (full key-space write + fsync): run it on an executor.
        ``_file_lock`` keeps group commits out while the file work
        happens, but the event loop stays free to serve.  On failure
        the frozen records re-queue ahead of later appends and the
        segments stay on disk for recovery, so nothing acked is lost.
        """
        committed = False
        try:
            with self._file_lock:
                if self._closed:
                    raise StoreError("WAL is closed")
                nkeys = 0
                tmp = self._snap_path + ".tmp"
                with open(tmp, "wb") as fh:
                    fh.write(_SNAP_MAGIC)
                    for key, value in items:
                        fh.write(encode_record(
                            b"S", key.encode("utf-8"), value))
                        nkeys += 1
                    if self.config.fsync:
                        _sync_file(fh)
                os.replace(tmp, self._snap_path)
                if self.config.fsync:
                    fsync_dir(self.directory)
                committed = True
                for seg in self._segments:
                    try:
                        os.unlink(seg)
                    except OSError:  # pragma: no cover - leftover is fine
                        pass
                self._segments = []
                self._frozen_bytes = 0
                self.snapshots += 1
                with self._buf_lock:
                    self._frozen = b""
                    if self._frozen_seq > self.synced_seq:
                        self.synced_seq = self._frozen_seq
                    self._compacting = False
            return {"keys": nkeys, "snapshots": self.snapshots,
                    "wal_bytes": self.wal_bytes}
        finally:
            if not committed:
                with self._buf_lock:
                    self._pending[:0] = self._frozen
                    self._frozen = b""
                    self._compacting = False

    def snapshot(self, items: Iterable[Tuple[str, bytes]]) -> Dict[str, int]:
        """Synchronous snapshot + compaction for callers without an
        event loop (CLI recovery checks, tests).  The caller must
        ensure no concurrent appends between materializing ``items``
        and the freeze — the async server uses the two-step form under
        its dispatch lock instead."""
        items = list(items)
        self.begin_snapshot()
        return self.write_snapshot(items)

    def needs_compaction(self) -> bool:
        # In-memory size tracking: this runs after every mutating
        # command, so it must not cost a stat() syscall.  Sealed
        # segments count so an interrupted compaction retriggers.
        if self._compacting:
            return False
        return (self.log_bytes + self._frozen_bytes + len(self._pending)
                >= self.config.compact_bytes)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush whatever is buffered and close the file handle."""
        with self._buf_lock:
            if self._compacting:
                # Closing mid-compaction: the sealed segments stay on
                # disk for recovery; fold the frozen buffer back in
                # front of later appends so the final flush writes it
                # to the live log (which replays after the segments,
                # preserving order).
                self._pending[:0] = self._frozen
                self._frozen = b""
                self._compacting = False
        try:
            self._write_and_sync()
        except StoreError:  # already poisoned; still release the handle
            pass
        with self._file_lock, self._buf_lock:
            if not self._closed:
                self._closed = True
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover
                    pass

    def info(self) -> Dict[str, object]:
        with self._buf_lock:
            return {
                "directory": self.directory,
                "fsync": self.config.fsync,
                "seq": self.seq,
                "synced_seq": self.synced_seq,
                "appends": self.appends,
                "fsync_batches": self.fsync_batches,
                "wal_bytes": self.wal_bytes,
                "snapshots": self.snapshots,
                "segments": len(self._segments),
                "sync_failures": self.sync_failures,
                "failed": self._failed,
                "replayed_records": self.replayed_records,
                "truncated_bytes": self.truncated_bytes,
                "recovered_keys": len(self.recovered),
            }
