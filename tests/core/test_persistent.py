"""Tests for persistent workflows across elastic allocations."""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig
from repro.core.persistent import (
    Allocation,
    AllocationBroker,
    ClusterSpec,
    PersistentCampaign,
)
from repro.sched.resources import lassen_like, summit_like

SMALL_CLUSTERS = (
    ClusterSpec("summit", summit_like, max_nodes=40, min_nodes=10,
                typical_queue_hours=2.0, max_walltime_hours=6.0),
    ClusterSpec("lassen", lassen_like, max_nodes=25, min_nodes=8,
                typical_queue_hours=1.0, max_walltime_hours=5.0),
)


class TestAllocationBroker:
    def test_grants_in_time_order(self):
        broker = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(0))
        grants = broker.take(20)
        times = [a.granted_at_hours for a in grants]
        assert times == sorted(times)

    def test_grants_respect_cluster_bounds(self):
        broker = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(1))
        for a in broker.take(30):
            spec = next(c for c in SMALL_CLUSTERS if c.name == a.cluster)
            assert spec.min_nodes <= a.nnodes <= spec.max_nodes
            assert a.walltime_hours <= spec.max_walltime_hours

    def test_both_clusters_eventually_grant(self):
        broker = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(2))
        clusters = {a.cluster for a in broker.take(30)}
        assert clusters == {"summit", "lassen"}

    def test_grants_vary_in_size(self):
        broker = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(3))
        sizes = {a.nnodes for a in broker.take(20)}
        assert len(sizes) > 5  # genuinely variable-sized

    def test_seeded_reproducibility(self):
        a = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(4)).take(10)
        b = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(4)).take(10)
        assert a == b

    def test_needs_clusters(self):
        with pytest.raises(ValueError):
            AllocationBroker(())


class TestPersistentCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        broker = AllocationBroker(SMALL_CLUSTERS, rng=np.random.default_rng(7))
        campaign = PersistentCampaign(
            broker, node_hour_budget=600.0, config=CampaignConfig(ledger=(), seed=11)
        )
        out = campaign.run()
        out._campaign = campaign  # stash for assertions
        return out

    def test_budget_met(self, result):
        assert result.counters["node_hours"] >= 600.0
        assert result.total_node_hours() == result.counters["node_hours"]

    def test_spans_multiple_clusters(self, result):
        assert result.counters["clusters_used"] == 2
        assert result.counters["node_hours_summit"] > 0
        assert result.counters["node_hours_lassen"] > 0

    def test_table_records_cluster_per_allocation(self, result):
        assert all("cluster" in row for row in result.table1)
        assert len(result.table1) >= 3  # several variable allocations

    def test_simulations_persist_across_allocations(self, result):
        campaign = result._campaign
        # Some sims accumulated more time than any single allocation
        # could deliver (walltimes are <= 6h => <= ~0.27 µs of CG time).
        longest_alloc_hours = max(a.walltime_hours for a in campaign.allocations_used)
        single_alloc_bound = longest_alloc_hours / 24.0 * 1.3
        assert max(result.cg_lengths_us) > single_alloc_bound

    def test_occupancy_profiled_across_all_allocations(self, result):
        assert len(result.profile_events) > 10
        gpu = np.array([e.gpu_occupancy for e in result.profile_events])
        assert np.median(gpu) > 0.9

    def test_heterogeneous_gpu_counts_handled(self, result):
        # Lassen nodes have 4 GPUs, Summit 6; both hosted simulations.
        campaign = result._campaign
        lassen_allocs = [a for a in campaign.allocations_used if a.cluster == "lassen"]
        assert lassen_allocs  # the campaign really ran on the 4-GPU cluster

    def test_budget_validation(self):
        broker = AllocationBroker(SMALL_CLUSTERS)
        with pytest.raises(ValueError):
            PersistentCampaign(broker, node_hour_budget=0)
