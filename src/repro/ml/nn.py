"""Dense layers and an MLP with exact backprop, all NumPy.

Everything is batch-first: inputs are (n, d_in) arrays. Gradients are
exact (verified against finite differences in the test suite), and all
math is vectorized — no per-sample Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Activation", "relu", "tanh", "identity", "Dense", "MLP"]


@dataclass(frozen=True)
class Activation:
    """Elementwise nonlinearity and its derivative (as f'(x) given x)."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    grad: Callable[[np.ndarray], np.ndarray]


relu = Activation(
    "relu",
    fn=lambda x: np.maximum(x, 0.0),
    grad=lambda x: (x > 0).astype(x.dtype),
)

tanh = Activation(
    "tanh",
    fn=np.tanh,
    grad=lambda x: 1.0 - np.tanh(x) ** 2,
)

identity = Activation(
    "identity",
    fn=lambda x: x,
    grad=lambda x: np.ones_like(x),
)


class Dense:
    """A fully connected layer: ``y = act(x @ W + b)``.

    Weights use He initialization scaled for the activation; parameters
    are exposed as a dict so optimizers stay layer-agnostic.
    """

    def __init__(
        self,
        d_in: int,
        d_out: int,
        activation: Activation = relu,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if d_in < 1 or d_out < 1:
            raise ValueError("layer dims must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = np.sqrt(2.0 / d_in) if activation.name == "relu" else np.sqrt(1.0 / d_in)
        self.W = rng.normal(0.0, scale, size=(d_in, d_out))
        self.b = np.zeros(d_out)
        self.activation = activation
        self._x: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        z = x @ self.W + self.b
        if train:
            self._x, self._z = x, z
        return self.activation.fn(z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/dy, compute parameter grads and return dL/dx."""
        if self._x is None or self._z is None:
            raise RuntimeError("backward() before forward(train=True)")
        dz = grad_out * self.activation.grad(self._z)
        self.gW = self._x.T @ dz
        self.gb = dz.sum(axis=0)
        return dz @ self.W.T

    def params(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    def grads(self) -> Dict[str, np.ndarray]:
        return {"W": self.gW, "b": self.gb}


class MLP:
    """A stack of :class:`Dense` layers.

    >>> net = MLP([64, 32, 9], activation=relu, out_activation=identity)
    """

    def __init__(
        self,
        dims: Sequence[int],
        activation: Activation = relu,
        out_activation: Activation = identity,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(dims) < 2:
            raise ValueError("need at least input and output dims")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.layers: List[Dense] = []
        for i in range(len(dims) - 1):
            act = out_activation if i == len(dims) - 2 else activation
            self.layers.append(Dense(dims[i], dims[i + 1], act, rng))
        self.dims = tuple(dims)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    __call__ = forward

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backprop dL/d(output) through the whole stack; returns dL/d(input)."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Tuple[Dense, str, np.ndarray]]:
        """Flat (layer, name, array) list for optimizers."""
        return [(layer, name, arr) for layer in self.layers for name, arr in layer.params().items()]

    def gradients(self) -> List[np.ndarray]:
        return [layer.grads()[name] for layer in self.layers for name in ("W", "b")]

    def nparams(self) -> int:
        return sum(arr.size for _, _, arr in self.parameters())

    # --- persistence (checkpointing, §4.4) ---------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            state[f"layer{i}.W"] = layer.W.copy()
            state[f"layer{i}.b"] = layer.b.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            W = state[f"layer{i}.W"]
            b = state[f"layer{i}.b"]
            if W.shape != layer.W.shape or b.shape != layer.b.shape:
                raise ValueError(f"shape mismatch restoring layer {i}")
            layer.W = W.copy()
            layer.b = b.copy()
