"""ChaosStore semantics: replication, failover, hints, tombstones."""

import numpy as np
import pytest

from repro.chaos import ChaosStore
from repro.datastore.base import KeyNotFound, StoreError, StoreUnavailable


def quiet_store(**kwargs):
    """A store whose injector never fires (deterministic happy wire)."""
    store = ChaosStore(rng=np.random.default_rng(0), **kwargs)
    store.injector.rates = {"drop": 0.0, "delay": 0.0, "close": 0.0, "garbage": 0.0}
    return store


def test_basic_round_trip_and_keys():
    store = quiet_store()
    store.write("a/1", b"x")
    store.write("a/2", b"y")
    store.write("b/1", b"z")
    assert store.read("a/1") == b"x"
    assert store.keys("a/") == ["a/1", "a/2"]
    store.delete("a/1")
    with pytest.raises(KeyNotFound):
        store.read("a/1")
    assert store.keys("a/") == ["a/2"]


def test_move_is_copy_plus_tombstone():
    store = quiet_store()
    store.write("src", b"v")
    store.move("src", "dst")
    assert store.read("dst") == b"v"
    with pytest.raises(KeyNotFound):
        store.read("src")
    assert store.verify_acked(strict=True) == []


def test_replication_validation():
    with pytest.raises(StoreError):
        ChaosStore(nshards=2, replication=3)
    with pytest.raises(StoreError):
        ChaosStore(nshards=0)


def test_read_survives_one_replica_down():
    store = quiet_store()
    for i in range(16):
        store.write(f"k{i}", b"v%d" % i)
    store.shard_down(1)
    for i in range(16):
        assert store.read(f"k{i}") == b"v%d" % i
    assert store.verify_acked() == []


def test_write_during_outage_leaves_hint_and_repairs_on_rejoin():
    store = quiet_store()
    store.shard_down(0)
    # Some keys replicate onto shard 0; writes still ack on the peer.
    for i in range(16):
        store.write(f"k{i}", b"new")
    health = store.replica_health()
    assert health["pending_repairs"] > 0
    store.shard_up(0)
    assert store.replica_health()["pending_repairs"] == 0
    assert store.verify_acked(strict=True) == []


def test_stale_replica_never_serves_reads():
    store = quiet_store(nshards=2, replication=2)
    store.write("k", b"old")
    store.shard_down(0)
    store.write("k", b"new")          # shard 0 misses this write
    store.shard_up(1)                 # no-op; 1 already up
    store.shard_down(1)
    store.shard_up(0)
    # Shard 0 rejoined stale, and _repair_all had no healthy donor while 1
    # was down... but shard_up drains hints from 1 only once it's back.
    store.shard_up(1)
    assert store.read("k") == b"new"
    assert store.verify_acked(strict=True) == []


def test_reads_refuse_rather_than_go_stale_mid_outage():
    store = quiet_store(nshards=2, replication=2)
    store.write("k", b"old")
    store.shard_down(0)
    store.write("k", b"new")
    store.shard_down(1)
    store.shard_up(0)  # only the stale, hinted replica is up
    with pytest.raises(StoreUnavailable):
        store.read("k")
    # Non-strict verification tolerates the outage; strict does not.
    assert store.verify_acked(strict=False) == []
    assert any("unverifiable" in p for p in store.verify_acked(strict=True))


def test_all_replicas_down_is_unavailable_not_lost():
    store = quiet_store(nshards=2, replication=1)
    store.write("k", b"v")
    shard = [i for i in range(2) if "k" in store._shards[i]][0]
    store.shard_down(shard)
    with pytest.raises(StoreUnavailable):
        store.read("k")
    with pytest.raises(StoreUnavailable):
        store.write("k", b"v2")
    with pytest.raises(StoreUnavailable):
        store.keys("")
    store.heal_all()
    assert store.read("k") == b"v"
    assert store.verify_acked(strict=True) == []


def test_tombstones_survive_partial_outage():
    store = quiet_store()
    store.write("k", b"v")
    store.shard_down(0)
    try:
        store.delete("k")
    except StoreUnavailable:
        pytest.skip("key fully placed on downed shard for this layout")
    store.shard_up(0)
    with pytest.raises(KeyNotFound):
        store.read("k")
    assert store.verify_acked(strict=True) == []


def test_heal_all_garbage_collects_tombstones():
    store = quiet_store()
    store.write("k", b"v")
    store.delete("k")
    store.heal_all()
    assert all("k" not in shard for shard in store._shards)
    assert store.verify_acked(strict=True) == []


def test_verify_acked_catches_lost_write():
    store = quiet_store()
    store.write("k", b"v")
    for shard in store._shards:   # simulate a buggy cluster losing the key
        shard.pop("k", None)
    assert any("acked write lost" in p for p in store.verify_acked())


def test_verify_acked_catches_resurrected_delete():
    store = quiet_store()
    store.write("k", b"v")
    store.delete("k")
    for shard in store._shards:   # stale copy reappears, tombstone gone
        shard.pop("k", None)
    store._shards[store._replicas("k")[0]]["k"] = (1, b"v")
    assert any("tombstone resurrected" in p for p in store.verify_acked())


def test_virtual_delay_accumulates_and_drains():
    store = ChaosStore(rng=np.random.default_rng(0))
    store.injector.rates = {"drop": 0.0, "delay": 1.0, "close": 0.0, "garbage": 0.0}
    store.write("k", b"v")
    assert store.fault_counts["delayed"] > 0
    delay = store.drain_virtual_delay()
    assert delay > 0.0
    assert store.drain_virtual_delay() == 0.0


def test_transport_stats_feed_telemetry_shape():
    store = quiet_store()
    store.write("k", b"v")
    stats = store.transport_stats.as_dict()
    assert stats["requests"] >= 1
    health = store.replica_health()
    assert health["up"] == store.nshards
    assert all(s["address"].startswith("chaos://") for s in health["shards"])
