"""The campaign control plane: ``repro serve`` (paper → platform).

The paper's campaigns lived and died inside one WM process; the top
coordination lesson is that campaign state must *outlive* any single
process. This package is that step — a long-running daemon that
multiplexes many user-submitted campaigns onto shared infrastructure
(one worker pool under weighted fair sharing, one store cluster under
per-tenant key namespacing), in the shape REANA gives reusable-analysis
platforms: submit over HTTP, inspect and steer (pause/resume/cancel)
through a lifecycle FSM, stream telemetry and trace tails, drain and
restart safely.

Modules
-------
registry
    :class:`CampaignHandle` (the addressable owner of one campaign's
    state and lifecycle FSM) and :class:`CampaignRegistry` (tenancy,
    quotas, shared substrate).
api
    The versioned HTTP route table and JSON handlers — introspectable,
    so OPERATIONS.md is held in sync by a doc test.
server
    The stdlib ``ThreadingHTTPServer`` front end (``repro serve``).
client
    A stdlib JSON client mirroring the API one method per route.

See OPERATIONS.md for the operator's handbook.
"""

from repro.service.api import ROUTES, Route
from repro.service.client import ServiceClient, ServiceError
from repro.service.registry import (
    CampaignHandle,
    CampaignRegistry,
    CampaignState,
    IllegalTransition,
    QuotaExceeded,
    RegistryError,
    ServiceConfig,
    StoreDegraded,
    UnknownCampaign,
)
from repro.service.server import ControlPlaneServer

__all__ = [
    "ROUTES",
    "Route",
    "ServiceClient",
    "ServiceError",
    "CampaignHandle",
    "CampaignRegistry",
    "CampaignState",
    "IllegalTransition",
    "QuotaExceeded",
    "RegistryError",
    "ServiceConfig",
    "StoreDegraded",
    "UnknownCampaign",
    "ControlPlaneServer",
]
