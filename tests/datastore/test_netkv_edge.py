"""Edge-case tests for the networked KV protocol."""

import pytest

from repro.datastore.base import KeyNotFound
from repro.datastore.netkv import NetKVClient, NetKVServer


@pytest.fixture
def client():
    srv = NetKVServer().start()
    c = NetKVClient(srv.address)
    yield c
    c.close()
    srv.stop()


class TestLargePayloads:
    def test_megabyte_payload(self, client):
        blob = bytes(range(256)) * 4096  # 1 MiB
        client.set("big", blob)
        assert client.get("big") == blob

    def test_many_small_then_large(self, client):
        for i in range(100):
            client.set(f"s{i}", b"x" * i)
        client.set("big", b"y" * 500_000)
        assert client.get("s50") == b"x" * 50
        assert len(client.get("big")) == 500_000


class TestProtocolRobustness:
    def test_keys_with_slashes_and_dots(self, client):
        client.set("a/b.c/d-e_f", b"v")
        assert client.get("a/b.c/d-e_f") == b"v"

    def test_rename_to_missing_dst_namespace(self, client):
        client.set("x", b"v")
        client.rename("x", "deep/nested/name")
        assert client.get("deep/nested/name") == b"v"

    def test_error_then_normal_operation(self, client):
        # A failed op must not poison the connection.
        with pytest.raises(KeyNotFound):
            client.get("missing")
        client.set("after", b"ok")
        assert client.get("after") == b"ok"

    def test_interleaved_errors_and_payloads(self, client):
        for i in range(20):
            if i % 3 == 0:
                with pytest.raises(KeyNotFound):
                    client.get(f"never-{i}")
            else:
                client.set(f"k{i}", bytes([i]) * 10)
                assert client.get(f"k{i}") == bytes([i]) * 10
