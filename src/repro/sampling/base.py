"""Shared sampler interface and replayable selection history.

§4.4: "key components (ML and job scheduling) also maintain elaborate
history files that may be replayed exactly, if necessary." Every
sampler records a :class:`SelectionEvent` per selection and can dump or
reload its history through a :class:`~repro.datastore.base.DataStore`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sampling.points import Point

__all__ = ["Sampler", "SelectionEvent"]


@dataclass(frozen=True)
class SelectionEvent:
    """One selection: which candidates were chosen, when, and why."""

    time: float
    selected: tuple
    candidates_at_time: int
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "selected": list(self.selected),
            "candidates": self.candidates_at_time,
            "detail": self.detail,
        }


class Sampler(abc.ABC):
    """Add candidates cheaply; select the most important on demand.

    Contract (§4.4 Task 2): ``add`` must be near-free because candidates
    arrive continuously from thousands of simulations; all expensive
    computation is deferred to ``select``, which happens orders of
    magnitude less often.
    """

    def __init__(self) -> None:
        self.history: List[SelectionEvent] = []

    @abc.abstractmethod
    def add(self, point: Point) -> None:
        """Ingest one candidate (must be cheap)."""

    @abc.abstractmethod
    def select(self, k: int, now: float = 0.0) -> List[Point]:
        """Choose and consume the top-``k`` candidates."""

    @abc.abstractmethod
    def ncandidates(self) -> int:
        """Candidates currently eligible for selection."""

    def add_many(self, points: Sequence[Point]) -> None:
        """Per-point ingest loop; samplers with a vectorized batch path
        override :meth:`add_batch` instead (this stays as the portable
        fallback and the reference semantics)."""
        for p in points:
            self.add(p)

    def add_batch(self, points: Sequence[Point]) -> int:
        """Batch ingest; returns how many candidates were accepted.

        Default implementation delegates to :meth:`add`; concrete
        samplers override with a vectorized path (one histogram pass,
        one cache append sweep) that must ingest the same candidates.
        """
        before = self.ncandidates()
        self.add_many(points)
        return self.ncandidates() - before

    def _record(self, now: float, selected: Sequence[Point], detail: str = "") -> None:
        self.history.append(
            SelectionEvent(
                time=now,
                selected=tuple(p.id for p in selected),
                candidates_at_time=self.ncandidates(),
                detail=detail,
            )
        )

    def history_rows(self) -> List[dict]:
        return [ev.to_dict() for ev in self.history]
