"""Ablation S4 (§4.4 Task 2): binned sampler vs farthest-point sampler.

Paper: the FPS Patch Selector caps its queues at 35,000 candidates and
needs 3-4 minutes to re-rank them when full; the new binned Frame
Selector provides "significantly faster updates to ranking: 3-4 minutes
for 9M candidates" — about 165x more data for the same budget.

We measure the actual select-time cost of each sampler as the candidate
count grows, and verify the binned sampler's cost stays flat while the
FPS cost grows with the candidate mass.
"""

import time

import numpy as np
from conftest import report

from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point

FPS_COUNTS = [2_000, 8_000, 35_000]
BINNED_COUNTS = [35_000, 200_000, 1_000_000]


def _fps_select_cost(n, rng):
    sampler = FarthestPointSampler(dim=9, queue_cap=max(FPS_COUNTS))
    sampler.seed_selected(
        [Point(id=f"sel{i}", coords=rng.random(9)) for i in range(200)]
    )
    coords = rng.random((n, 9))
    for i in range(n):
        sampler.add(Point(id=f"p{i}", coords=coords[i]))
    t0 = time.perf_counter()
    sampler.select(1)
    return time.perf_counter() - t0


def _binned_select_cost(n, rng):
    sampler = BinnedSampler(
        [BinSpec(0, 1, 10)] * 3, rng=np.random.default_rng(0)
    )
    coords = rng.random((n, 3))
    for i in range(n):
        sampler.add(Point(id=f"p{i}", coords=coords[i]))
    t0 = time.perf_counter()
    sampler.select(1)
    return time.perf_counter() - t0


def test_ablation_sampler_capacity(benchmark):
    rng = np.random.default_rng(0)

    def sweep():
        fps = [(n, _fps_select_cost(n, rng)) for n in FPS_COUNTS]
        binned = [(n, _binned_select_cost(n, rng)) for n in BINNED_COUNTS]
        return fps, binned

    fps, binned = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["farthest-point sampler (9-D, rank update per select):"]
    for n, t in fps:
        lines.append(f"  {n:>9,} candidates: {t*1e3:9.2f} ms/select")
    lines.append("binned sampler (3-D histogram):")
    for n, t in binned:
        lines.append(f"  {n:>9,} candidates: {t*1e3:9.2f} ms/select")
    ratio = BINNED_COUNTS[-1] / FPS_COUNTS[-1]
    lines.append(f"capacity at comparable select cost: "
                 f"{ratio:.0f}x more candidates for the binned sampler "
                 "(paper: ~165x, 9M vs 35k)")
    report("ablation_sampler_scaling", lines)

    # FPS select cost grows with candidates; binned stays (near) flat.
    fps_growth = fps[-1][1] / max(fps[0][1], 1e-9)
    binned_growth = binned[-1][1] / max(binned[0][1], 1e-9)
    assert fps_growth > 3.0
    assert binned_growth < 3.0
    # At 1M candidates the binned select is cheaper than FPS at 35k.
    assert binned[-1][1] < fps[-1][1]


def test_ablation_add_cost_is_flat_for_both(benchmark):
    """Ingest must stay O(1) for both samplers (candidates arrive from
    thousands of simulations continuously)."""
    rng = np.random.default_rng(1)

    def measure_adds():
        out = {}
        fps = FarthestPointSampler(dim=9, queue_cap=100_000)
        coords = rng.random((50_000, 9))
        t0 = time.perf_counter()
        for i in range(50_000):
            fps.add(Point(id=f"p{i}", coords=coords[i]))
        out["fps"] = (time.perf_counter() - t0) / 50_000
        binned = BinnedSampler([BinSpec(0, 1, 10)] * 3)
        coords3 = rng.random((50_000, 3))
        t0 = time.perf_counter()
        for i in range(50_000):
            binned.add(Point(id=f"p{i}", coords=coords3[i]))
        out["binned"] = (time.perf_counter() - t0) / 50_000
        return out

    per_add = benchmark.pedantic(measure_adds, rounds=1, iterations=1)
    report("ablation_sampler_ingest", [
        f"per-candidate ingest: fps {per_add['fps']*1e6:.1f} us, "
        f"binned {per_add['binned']*1e6:.1f} us",
    ])
    assert per_add["fps"] < 1e-3
    assert per_add["binned"] < 1e-3
