"""Tests for shared-state locking helpers and unit formatting."""

import threading

from repro.util import units
from repro.util.locks import SharedState, try_acquire


class TestSharedState:
    def test_locked_yields_object(self):
        s = SharedState({"n": 0})
        with s.locked() as d:
            d["n"] = 7
        assert s.apply(lambda d: d["n"]) == 7

    def test_apply_returns_result(self):
        s = SharedState([1, 2, 3])
        assert s.apply(sum) == 6

    def test_try_locked_yields_none_when_held_by_other_thread(self):
        s = SharedState({})
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with s.locked():
                holding.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        holding.wait(timeout=5)
        with s.try_locked() as obj:
            assert obj is None
        assert s.stats.failed_tries == 1
        release.set()
        t.join()

    def test_reentrant_from_same_thread(self):
        s = SharedState({"n": 0})
        with s.locked() as d1:
            with s.locked() as d2:
                assert d1 is d2

    def test_concurrent_increments_are_serialized(self):
        s = SharedState({"n": 0})

        def bump():
            for _ in range(1000):
                with s.locked() as d:
                    d["n"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.apply(lambda d: d["n"]) == 4000

    def test_stats_counts_acquisitions(self):
        s = SharedState({})
        with s.locked():
            pass
        with s.try_locked():
            pass
        assert s.stats.acquisitions == 2
        assert s.stats.as_dict()["acquisitions"] == 2


class TestTryAcquire:
    def test_acquires_free_lock(self):
        lock = threading.Lock()
        with try_acquire(lock) as got:
            assert got
        assert lock.acquire(blocking=False)
        lock.release()

    def test_fails_on_held_lock(self):
        lock = threading.Lock()
        lock.acquire()
        with try_acquire(lock) as got:
            assert not got
        lock.release()


class TestUnits:
    def test_time_constants(self):
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR

    def test_format_duration_ranges(self):
        assert units.format_duration(0.005) == "5.0 ms"
        assert units.format_duration(30) == "30.0 s"
        assert units.format_duration(90) == "1.5 min"
        assert units.format_duration(2 * units.HOUR) == "2.00 h"
        assert units.format_duration(3 * units.DAY) == "3.00 d"
        assert units.format_duration(-30).startswith("-")

    def test_format_bytes_ranges(self):
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(2 * units.MB) == "2.00 MiB"
        assert units.format_bytes(3 * units.GB) == "3.00 GiB"

    def test_format_sim_time(self):
        assert units.format_sim_time(0.5) == "0.500 ns"
        assert units.format_sim_time(1500) == "1.500 us"
        assert units.format_sim_time(2e6) == "2.000 ms"
