"""TieredStore behaviour when the fast (networked) tier is unreachable."""

import socket

import pytest

from repro.datastore.base import StoreUnavailable
from repro.datastore.kvstore import KVCluster, KVStore
from repro.datastore.netkv import NetKVStore, TransportConfig
from repro.datastore.tiered import TieredStore

DEAD_FAST = TransportConfig(op_timeout=0.3, connect_timeout=0.3, retries=0,
                            backoff_base=0.0, backoff_max=0.0)


def dead_address():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


@pytest.fixture
def degraded():
    fast = NetKVStore.connect([dead_address()], config=DEAD_FAST)
    backing = KVStore(KVCluster(nservers=1))
    store = TieredStore(fast, backing, persist_prefixes=("ckpt/",))
    yield store, backing
    fast.close()


class TestDegradedMode:
    def test_persistent_write_lands_in_backing(self, degraded):
        store, backing = degraded
        store.write("ckpt/a", b"saved")
        assert backing.read("ckpt/a") == b"saved"
        assert store.degraded_ops > 0

    def test_nonpersistent_write_still_raises(self, degraded):
        store, _ = degraded
        # Swallowing this would silently lose data that has no other home.
        with pytest.raises(StoreUnavailable):
            store.write("scratch/x", b"gone")

    def test_read_falls_back_to_backing(self, degraded):
        store, backing = degraded
        backing.write("ckpt/b", b"from-backing")
        assert store.read("ckpt/b") == b"from-backing"
        assert store.degraded_ops > 0

    def test_keys_lists_backing_only(self, degraded):
        store, backing = degraded
        backing.write("ckpt/one", b"1")
        backing.write("ckpt/two", b"2")
        assert store.keys("ckpt/") == ["ckpt/one", "ckpt/two"]

    def test_healthy_tiers_never_count_degraded(self):
        fast = KVStore(KVCluster(nservers=1))
        backing = KVStore(KVCluster(nservers=1))
        store = TieredStore(fast, backing, persist_prefixes=("ckpt/",))
        store.write("ckpt/a", b"x")
        assert store.read("ckpt/a") == b"x"
        store.evict()
        assert store.read("ckpt/a") == b"x"  # recovered from backing
        assert store.degraded_ops == 0
