"""Loss functions: value and gradient together.

Each loss returns ``(scalar_loss, grad)`` where ``grad`` has the shape
of the prediction, ready to feed :meth:`repro.ml.nn.MLP.backward`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["mse_loss", "triplet_loss"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    pred = np.atleast_2d(pred)
    target = np.atleast_2d(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def triplet_loss(
    anchor: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    margin: float = 1.0,
) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Metric-learning triplet loss with squared-L2 distances.

    ``max(0, ||a-p||^2 - ||a-n||^2 + margin)`` averaged over the batch.
    Returns (loss, grad_anchor, grad_positive, grad_negative).
    """
    a, p, n = np.atleast_2d(anchor), np.atleast_2d(positive), np.atleast_2d(negative)
    if not (a.shape == p.shape == n.shape):
        raise ValueError("anchor/positive/negative shapes must match")
    d_ap = np.sum((a - p) ** 2, axis=1)
    d_an = np.sum((a - n) ** 2, axis=1)
    hinge = d_ap - d_an + margin
    active = (hinge > 0).astype(float)[:, None]
    batch = a.shape[0]
    loss = float(np.mean(np.maximum(hinge, 0.0)))
    grad_a = active * 2.0 * (n - p) / batch
    grad_p = active * 2.0 * (p - a) / batch
    grad_n = active * 2.0 * (a - n) / batch
    return loss, grad_a, grad_p, grad_n
