"""Tests for the command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.rounds == 3
        assert args.store == "kv://4"

    def test_campaign_flags(self):
        args = build_parser().parse_args(["campaign", "--small", "--seed", "5"])
        assert args.small and args.seed == 5

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "datastore" in out

    def test_run_small(self, capsys):
        assert main(["run", "--rounds", "1", "--store", "kv://2"]) == 0
        out = capsys.readouterr().out
        assert "snapshots" in out
        assert "cg_finished" in out

    def test_run_from_config(self, tmp_path, capsys):
        cfg = tmp_path / "app.toml"
        cfg.write_text(
            '[application]\nstore_url = "kv://2"\nseed = 1\n'
            "[workflow]\nbeads_per_type = 6\n"
        )
        assert main(["run", "--config", str(cfg), "--rounds", "1"]) == 0
        assert "snapshots" in capsys.readouterr().out

    def test_campaign_small(self, capsys):
        assert main(["campaign", "--small"]) == 0
        out = capsys.readouterr().out
        assert "node-hours" in out
        assert "GPU occupancy" in out

    def test_campaign_from_config(self, tmp_path, capsys):
        cfg = tmp_path / "camp.toml"
        cfg.write_text(
            "[campaign]\nseed = 2\n"
            "[[campaign.ledger]]\nnnodes = 10\nwalltime_hours = 2\ncount = 1\n"
        )
        assert main(["campaign", "--config", str(cfg)]) == 0
        assert "20" in capsys.readouterr().out  # 10 nodes * 2h

    def test_persistent(self, capsys):
        assert main(["persistent", "--node-hours", "200", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out
        assert "persisted across allocations" in out

    def test_emulate(self, capsys):
        assert main(["emulate", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "traversal reduction" in out

    def test_chaos_fuzz_writes_report_and_trace(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        trace = tmp_path / "trace.jsonl"
        argv = ["chaos", "--seed", "7", "--rounds", "3", "--campaigns", "2",
                "--report", str(report), "--trace", str(trace)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "campaign(s) green" in out
        assert report.exists() and trace.exists()
        # Determinism contract: a second run is byte-identical.
        first_report, first_trace = report.read_bytes(), trace.read_bytes()
        assert main(argv) == 0
        capsys.readouterr()
        assert report.read_bytes() == first_report
        assert trace.read_bytes() == first_trace

    def test_chaos_replay_round_trip(self, tmp_path, capsys):
        from repro.chaos import ChaosConfig, FaultSchedule, save_replay

        path = tmp_path / "replay.json"
        save_replay(str(path),
                    FaultSchedule().shard_down(30.0, 1).shard_up(90.0, 1),
                    ChaosConfig(seed=5, rounds=2))
        assert main(["chaos", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 fault event(s)" in out


def test_python_dash_m_entrypoint():
    """The module actually runs as `python -m repro`."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "info"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "MuMMI" in proc.stdout


class TestNetKVAdminFlags:
    def test_migrate_requires_slots_and_to(self, capsys):
        assert main(["netkv", "--migrate", "netkv://h:1?replication=2"]) == 2
        assert "--slots and --to" in capsys.readouterr().err

    def test_migrate_requires_explicit_replication(self, capsys):
        # Migration windows come from the replication factor; defaulting
        # it silently prunes replica copies (see OPERATIONS.md).
        assert main(["netkv", "--migrate", "netkv://h:1",
                     "--slots", "0-10", "--to", "0"]) == 2
        assert "replication" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["x", "5-1", "1-2-3", "-4", ""])
    def test_bad_slot_range_is_rejected(self, spec, capsys):
        assert main(["netkv", "--migrate", "netkv://h:1?replication=2",
                     "--slots", spec, "--to", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_slot_range_parsing(self):
        from repro.cli import _parse_slot_range
        assert list(_parse_slot_range("7")) == [7]
        assert list(_parse_slot_range("3-5")) == [3, 4, 5]
