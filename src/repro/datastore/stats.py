"""I/O accounting shared by every backend.

The campaign "creat[es] and manag[es] several TBs of data each day"; the
WM needs to know how much each store moved to report that. Backends
call :meth:`IOStats.note` from their primitives; the WM and benches
read the counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Byte and operation counters for one store."""

    bytes_written: int = 0
    bytes_read: int = 0
    writes: int = 0
    reads: int = 0
    deletes: int = 0
    moves: int = 0
    scans: int = 0

    def note(self, op: str, nbytes: int = 0) -> None:
        if op == "write":
            self.writes += 1
            self.bytes_written += nbytes
        elif op == "read":
            self.reads += 1
            self.bytes_read += nbytes
        elif op == "delete":
            self.deletes += 1
        elif op == "move":
            self.moves += 1
        elif op == "scan":
            self.scans += 1
        else:
            raise ValueError(f"unknown op {op!r}")

    def ops(self) -> int:
        return self.writes + self.reads + self.deletes + self.moves + self.scans

    def as_dict(self) -> Dict[str, int]:
        return {
            "bytes_written": self.bytes_written,
            "bytes_read": self.bytes_read,
            "writes": self.writes,
            "reads": self.reads,
            "deletes": self.deletes,
            "moves": self.moves,
            "scans": self.scans,
        }

    def reset(self) -> None:
        self.bytes_written = self.bytes_read = 0
        self.writes = self.reads = self.deletes = self.moves = self.scans = 0
