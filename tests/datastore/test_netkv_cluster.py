"""Replicated-cluster tests: failover, repair, tombstones, batching.

These cover the acceptance criteria of the replication work: a
campaign keeps running with zero acknowledged-write loss when one
replica of each slot dies, feedback managers complete against the
degraded cluster without surfacing StoreUnavailable, cross-shard
renames never lose the value (a duplicate is the worst case), and
deleted keys stay deleted when a stale replica comes back.

Tests that need several live servers carry ``@pytest.mark.multi_server``
so constrained runners can opt out via ``REPRO_SKIP_MULTI_SERVER=1``.
"""

import contextlib

import pytest

from repro.datastore.base import (
    KeyNotFound,
    StoreError,
    StoreUnavailable,
    open_store,
)
from repro.datastore.netkv import (
    NetKVClient,
    NetKVCluster,
    NetKVServer,
    NetKVStore,
    TransportConfig,
)

FAST = TransportConfig(op_timeout=0.5, connect_timeout=0.5, retries=1,
                       backoff_base=0.01, backoff_max=0.05)


@contextlib.contextmanager
def live_cluster(nservers, replication, config=FAST, probe_cooldown=0.05):
    servers = [NetKVServer().start() for _ in range(nservers)]
    cluster = NetKVCluster([s.address for s in servers], config=config,
                           replication=replication,
                           probe_cooldown=probe_cooldown)
    try:
        yield servers, cluster
    finally:
        cluster.close()
        for s in servers:
            s.stop()


def key_on_shard(cluster, shard, tag="k"):
    """A key whose *primary* replica is the given shard."""
    for i in range(10_000):
        key = f"{tag}{i}"
        if cluster._replicas_for(key)[0] == shard:
            return key
    raise AssertionError(f"no key hashed to shard {shard}")


@pytest.mark.multi_server
class TestReplicaFailover:
    def test_kill_one_replica_campaign_zero_acked_loss(self):
        """Acceptance: with replication=2 over 3 shards, killing one
        server mid-campaign loses no acknowledged write, and the
        store-backed feedback loop keeps completing iterations."""
        from repro.core.feedback import FeedbackManager, StoreFeedbackMixin

        class CountingFeedback(StoreFeedbackMixin, FeedbackManager):
            def __init__(self, store):
                FeedbackManager.__init__(self)
                StoreFeedbackMixin.__init__(self, store, "live/", "done/")

            def process(self, items):
                return len(items)

            def report(self, result):
                pass

        with live_cluster(3, replication=2) as (servers, cluster):
            store = NetKVStore(cluster)
            payloads = {f"frame/{i:04d}": f"data-{i}".encode() * 7
                        for i in range(200)}
            store.write_many(payloads)  # every write acknowledged
            store.write_many({f"live/{i:03d}": b"x" * 32 for i in range(40)})

            servers[1].stop()  # one replica of every slot survives

            for key, value in payloads.items():
                assert store.read(key) == value  # zero acked-write loss
            assert len(store.keys("frame/")) == 200

            mgr = CountingFeedback(store)
            while store.keys("live/"):
                rep = mgr.run_iteration()
                assert rep.error == ""  # never surfaced StoreUnavailable
            assert mgr.total_items == 40
            assert len(store.keys("done/")) == 40

            assert cluster.stats.shard_down_events >= 1
            assert cluster.stats.failovers > 0
            health = cluster.replica_health()
            assert health["up"] == 2 and health["nshards"] == 3

    def test_failback_repair_restores_missed_writes(self):
        """A shard that dies and comes back is repaired: it pulls the
        writes it missed, so it can serve the keyspace alone later."""
        with live_cluster(2, replication=2) as (servers, cluster):
            for i in range(30):
                cluster.set(f"pre/{i:02d}", b"old")
            host, port = servers[1].address
            servers[1].stop()
            for i in range(30):
                cluster.set(f"post/{i:02d}", b"new")  # acked on shard 0 only
            cluster.delete("pre/00")  # tombstoned: shard 1 never hears of it

            servers[1] = NetKVServer(host=host, port=port).start()  # empty
            cluster.repair()
            assert cluster.stats.shard_up_events >= 1
            assert cluster.stats.read_repairs > 0

            servers[0].stop()  # now shard 1 must carry everything
            for i in range(1, 30):
                assert cluster.get(f"pre/{i:02d}") == b"old"
            for i in range(30):
                assert cluster.get(f"post/{i:02d}") == b"new"
            with pytest.raises(KeyNotFound):
                cluster.get("pre/00")  # the delete survived the repair
            assert "pre/00" not in cluster.keys("pre/")

    def test_all_replicas_down_raises_store_unavailable(self):
        with live_cluster(2, replication=2) as (servers, cluster):
            cluster.set("k", b"v")
            for s in servers:
                s.stop()
            with pytest.raises(StoreUnavailable):
                cluster.get("k")
            with pytest.raises(StoreUnavailable):
                cluster.keys("")  # a dead window must refuse, not lie


@pytest.mark.multi_server
class TestTombstones:
    def test_deleted_key_is_not_resurrected_by_stale_replica(self):
        """A replica that kept a deleted key across an outage must not
        bring it back: peers' tombstones veto listings and the repair
        pass prunes the stale copy for real."""
        with live_cluster(2, replication=2) as (servers, cluster):
            cluster.set("doomed", b"v")
            host, port = servers[1].address
            servers[1].stop()
            cluster.delete("doomed")  # reaches shard 0 only -> tombstone

            servers[1] = NetKVServer(host=host, port=port).start()
            stale = NetKVClient(servers[1].address, config=FAST)
            stale.set("doomed", b"v")  # the copy a crashed disk kept
            cluster.repair()

            assert "doomed" not in cluster.keys("")
            with pytest.raises(KeyNotFound):
                cluster.get("doomed")
            with pytest.raises(KeyNotFound):
                stale.get("doomed")  # pruned on the replica itself
            stale.close()

    def test_rewrite_supersedes_pending_tombstone(self):
        with live_cluster(2, replication=2) as (servers, cluster):
            cluster.set("phoenix", b"old")
            host, port = servers[1].address
            servers[1].stop()
            cluster.delete("phoenix")
            cluster.set("phoenix", b"new")  # re-birth clears the marker

            servers[1] = NetKVServer(host=host, port=port).start()
            cluster.repair()
            servers[0].stop()
            assert cluster.get("phoenix") == b"new"
            assert "phoenix" in cluster.keys("")


@pytest.mark.multi_server
class TestCrossShardRename:
    def test_cross_shard_rename_happy_path(self):
        with live_cluster(2, replication=1) as (servers, cluster):
            src = key_on_shard(cluster, 0, "src")
            dst = key_on_shard(cluster, 1, "dst")
            cluster.set(src, b"payload")
            cluster.rename(src, dst)
            assert cluster.get(dst) == b"payload"
            with pytest.raises(KeyNotFound):
                cluster.get(src)
            assert cluster.stats.rename_orphans == 0

    def test_shard_death_between_phases_orphans_never_loses(self):
        """Kill the source shard after the destination copy is fully
        acknowledged but before the source delete: the rename must
        still succeed, leaving at worst a duplicate (counted as an
        orphan), never a lost value."""
        with live_cluster(2, replication=1) as (servers, cluster):
            src = key_on_shard(cluster, 0, "src")
            dst = key_on_shard(cluster, 1, "dst")
            cluster.set(src, b"payload")

            original_delete = cluster.delete

            def delete_on_a_dying_shard(key):
                servers[0].stop()  # crash inside the two-phase window
                return original_delete(key)

            cluster.delete = delete_on_a_dying_shard
            try:
                cluster.rename(src, dst)  # must not raise
            finally:
                cluster.delete = original_delete

            assert cluster.get(dst) == b"payload"
            assert cluster.stats.rename_orphans == 1


@pytest.mark.multi_server
class TestPipelinedBatches:
    def test_mset_mget_mdelete_roundtrip(self):
        with live_cluster(3, replication=2) as (servers, cluster):
            items = [(f"b/{i:03d}", bytes([i]) * 16) for i in range(100)]
            cluster.mset(items)
            keys = [k for k, _ in items] + ["b/missing"]
            values = cluster.mget(keys)
            assert values[:-1] == [v for _, v in items]  # order preserved
            assert values[-1] is None
            assert cluster.stats.batched_requests > 0
            assert cluster.stats.batched_keys >= 100
            assert cluster.stats.max_batch_keys <= cluster.config.batch_keys

            flags = cluster.mdelete(keys)
            assert flags == [True] * 100 + [False]
            assert cluster.keys("b/") == []

    def test_batches_chunk_at_batch_keys(self):
        config = TransportConfig(op_timeout=0.5, connect_timeout=0.5,
                                 retries=1, backoff_base=0.01,
                                 backoff_max=0.05, batch_keys=8)
        with live_cluster(1, replication=1, config=config) as (_, cluster):
            cluster.mset([(f"c/{i:02d}", b"v") for i in range(30)])
            assert cluster.stats.max_batch_keys <= 8
            assert cluster.stats.batched_requests >= 4  # ceil(30 / 8)

    def test_mget_fails_over_past_a_dead_replica(self):
        with live_cluster(2, replication=2) as (servers, cluster):
            items = [(f"f/{i:03d}", b"v%d" % i) for i in range(60)]
            cluster.mset(items)
            servers[0].stop()
            values = cluster.mget([k for k, _ in items])
            assert values == [v for _, v in items]  # no holes

    def test_store_batched_overrides_roundtrip(self):
        with live_cluster(2, replication=2) as (servers, cluster):
            store = NetKVStore(cluster)
            store.write_many({f"s/{i}": b"x%d" % i for i in range(20)})
            found = store.read_present([f"s/{i}" for i in range(25)])
            assert found == {f"s/{i}": b"x%d" % i for i in range(20)}
            with pytest.raises(KeyNotFound):
                store.read_many(["s/0", "s/999"])
            assert store.delete_many(f"s/{i}" for i in range(25)) == 20


class TestUrlAndValidation:
    def test_url_replication_option_is_parsed(self):
        store = open_store(
            "netkv://127.0.0.1:1,127.0.0.1:2,127.0.0.1:3?replication=2")
        try:
            assert isinstance(store, NetKVStore)
            assert store.cluster.replication == 2
            assert store.cluster.addresses == [("127.0.0.1", 1),
                                               ("127.0.0.1", 2),
                                               ("127.0.0.1", 3)]
        finally:
            store.close()

    def test_replication_is_clamped_to_shard_count(self):
        store = open_store("netkv://127.0.0.1:1,127.0.0.1:2?replication=5")
        try:
            assert store.cluster.replication == 2
        finally:
            store.close()

    def test_unknown_url_option_is_rejected(self):
        with pytest.raises(StoreError):
            open_store("netkv://127.0.0.1:1?bogus=1")
        with pytest.raises(StoreError):
            open_store("netkv://127.0.0.1:1?replication=two")

    def test_constructor_validation(self):
        with pytest.raises(StoreError):
            NetKVCluster([])
        with pytest.raises(StoreError):
            NetKVCluster([("127.0.0.1", 1)], replication=0)
        with pytest.raises(StoreError):
            NetKVCluster([("127.0.0.1", 1)], probe_cooldown=-1.0)


@pytest.mark.multi_server
class TestClusterCLI:
    def test_health_exit_codes_track_shard_state(self, capsys):
        from repro.cli import main

        servers = [NetKVServer().start() for _ in range(2)]
        url = "netkv://" + ",".join(f"{h}:{p}" for h, p in
                                    (s.address for s in servers))
        try:
            assert main(["netkv", "--health", url]) == 0
            out = capsys.readouterr().out
            assert "2/2 shard(s) up" in out

            servers[0].stop()
            assert main(["netkv", "--health", url]) == 1
            out = capsys.readouterr().out
            assert "1/2 shard(s) up" in out
            assert "DOWN" in out
        finally:
            for s in servers:
                s.stop()

    def test_health_rejects_bad_url(self, capsys):
        from repro.cli import main

        assert main(["netkv", "--health", "netkv://nonsense"]) == 2
