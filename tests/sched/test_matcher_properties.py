"""Property-based matcher tests: seeded random graphs + request streams.

No hypothesis in the container, so this is the poor-man's equivalent:
``numpy`` Generators seeded per case drive both the resource-graph
shapes and the job streams, and every property is checked over dozens
of sampled scenarios. Failures print the offending seed so a case can
be replayed exactly.

Properties:

- *capacity*: across any mix of matches and releases, under either
  policy, no node ever has more cores/GPUs claimed than it owns, and no
  resource is double-claimed (the graph raises if a claim conflicts).
- *conservation*: releasing everything returns the graph to fully free.
- *cursor*: the first-match round-robin cursor advances only when a
  request fully places (the PR 4 invariant) and always stays a valid
  node index.
- *agreement*: both policies succeed or fail together on a fresh graph
  (they differ in cost and choice, never in feasibility) for
  single-node requests.
"""

import numpy as np
import pytest

from repro.sched.jobspec import JobSpec
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.resources import ResourceGraph

SEEDS = range(12)


def random_graph(rng):
    # Cores split across 2 sockets, so per-node core counts are even.
    return ResourceGraph(
        nnodes=int(rng.integers(2, 20)),
        cores_per_node=2 * int(rng.integers(1, 17)),
        gpus_per_node=int(rng.integers(0, 5)),
    )


def random_spec(rng, graph, tight=False):
    """A request that is sometimes satisfiable, sometimes not."""
    stretch = 2 if tight else 1
    ncores = int(rng.integers(1, stretch * graph.cores_per_node + 1))
    ngpus = int(rng.integers(0, graph.gpus_per_node + 2)) if graph.gpus_per_node else 0
    return JobSpec(
        name=f"job-{int(rng.integers(1e6))}",
        ncores=ncores,
        ngpus=ngpus,
        nnodes=int(rng.integers(1, 4)),
        exclusive=bool(rng.random() < 0.1),
    )


def assert_within_capacity(graph, live_allocs):
    claimed_cores = {}
    claimed_gpus = {}
    for alloc in live_allocs:
        for node_id, cores, gpus in alloc.items:
            for c in cores:
                assert (node_id, c) not in claimed_cores, \
                    f"core {c} on node {node_id} double-claimed"
                claimed_cores[(node_id, c)] = True
            for g in gpus:
                assert (node_id, g) not in claimed_gpus
                claimed_gpus[(node_id, g)] = True
            node = graph.nodes[node_id]
            in_use_here = sum(1 for (n, _) in claimed_cores if n == node_id)
            assert in_use_here <= node.ncores
            gpus_here = sum(1 for (n, _) in claimed_gpus if n == node_id)
            assert gpus_here <= node.ngpus


@pytest.mark.parametrize("policy", list(MatchPolicy))
@pytest.mark.parametrize("seed", SEEDS)
def test_no_placement_exceeds_node_capacity(policy, seed):
    rng = np.random.default_rng(seed)
    graph = random_graph(rng)
    matcher = Matcher(graph, policy=policy)
    live = []
    for _ in range(60):
        if live and rng.random() < 0.35:
            matcher.release(live.pop(int(rng.integers(len(live)))))
            continue
        alloc = matcher.match(random_spec(rng, graph, tight=True))
        if alloc is not None:
            live.append(alloc)
        assert_within_capacity(graph, live)
    for alloc in live:
        matcher.release(alloc)
    # Conservation: everything released → graph fully free again.
    assert sum(len(n.free_core_ids()) for n in graph.nodes) == \
        len(graph.nodes) * graph.cores_per_node
    assert sum(len(n.free_gpu_ids()) for n in graph.nodes) == \
        len(graph.nodes) * graph.gpus_per_node


@pytest.mark.parametrize("seed", SEEDS)
def test_rr_cursor_advances_only_on_full_placement(seed):
    rng = np.random.default_rng(100 + seed)
    graph = random_graph(rng)
    matcher = Matcher(graph, policy=MatchPolicy.FIRST_MATCH)
    for _ in range(80):
        before = matcher._rr_cursor
        alloc = matcher.match(random_spec(rng, graph, tight=True))
        after = matcher._rr_cursor
        assert 0 <= after < len(graph.nodes)
        if alloc is None:
            # The PR 4 invariant: a failed (or partially feasible) match
            # must not rotate the cursor past the few feasible nodes.
            assert after == before, f"cursor moved on failed match (seed {seed})"
        if alloc is not None and rng.random() < 0.5:
            matcher.release(alloc)


@pytest.mark.parametrize("seed", SEEDS)
def test_policies_agree_on_single_node_feasibility(seed):
    rng = np.random.default_rng(200 + seed)
    nnodes = int(rng.integers(2, 12))
    cores = 2 * int(rng.integers(1, 9))
    gpus = int(rng.integers(0, 3))
    for _ in range(40):
        spec_rng = np.random.default_rng(int(rng.integers(2**31)))
        graph_a = ResourceGraph(nnodes, cores, gpus)
        graph_b = ResourceGraph(nnodes, cores, gpus)
        spec = random_spec(spec_rng, graph_a, tight=True)
        if spec.nnodes > 1 or spec.exclusive:
            continue
        a = Matcher(graph_a, policy=MatchPolicy.LOW_ID_FIRST).match(spec)
        b = Matcher(graph_b, policy=MatchPolicy.FIRST_MATCH).match(spec)
        assert (a is None) == (b is None), \
            f"policies disagree on feasibility (seed {seed}, spec {spec})"


@pytest.mark.parametrize("seed", range(6))
def test_first_match_visits_no_more_than_exhaustive(seed):
    rng = np.random.default_rng(300 + seed)
    graph_a = ResourceGraph(16, 8, 2)
    graph_b = ResourceGraph(16, 8, 2)
    low = Matcher(graph_a, policy=MatchPolicy.LOW_ID_FIRST)
    fast = Matcher(graph_b, policy=MatchPolicy.FIRST_MATCH)
    for _ in range(50):
        spec = random_spec(rng, graph_a)
        spec_b = JobSpec(name=spec.name, ncores=spec.ncores, ngpus=spec.ngpus,
                         nnodes=spec.nnodes, exclusive=spec.exclusive)
        low.match(spec)
        fast.match(spec_b)
    assert fast.stats.vertices_visited <= low.stats.vertices_visited
