"""Per-shard durability: framed append-only log, snapshots, compaction.

A :class:`ShardWAL` gives one NetKV shard a crash-consistent disk image
made of two files in its directory:

* ``snapshot.bin`` — the full key space at some past moment, written
  atomically (temp file + fsync + ``os.replace`` + directory fsync).
* ``wal.log`` — every mutation since that snapshot, one CRC-framed
  record per logical write (deletes included, so a replayed shard does
  not resurrect removed keys).

Recovery loads the snapshot and replays the log.  A torn tail record —
the normal result of crashing mid-append — is *truncated*, not fatal:
replay stops at the last frame whose length and CRC32 check out, and
the file is cut back to that offset before appends resume.  Everything
before the tear was acked against a completed fsync and survives.

Durability is group-committed: appends only buffer bytes in memory and
bump ``seq``; the serving loop awaits :meth:`commit` before releasing
responses, and concurrent waiters share a single write+fsync pass on an
executor thread.  One fsync therefore covers an entire pipelined burst
(and every burst that arrived while the previous fsync was in flight),
which is what keeps durable writes within shouting distance of the
in-memory numbers (see ``BENCH_netkv_persist.json``).

Frame format (little-endian)::

    record  := u32 body_len | u32 crc32(body) | body
    body    := op:1 | fields
    op 'S'  := u32 key_len | key_utf8 | value_bytes
    op 'D'  := key_utf8
    op 'R'  := u32 src_len | src_utf8 | dst_utf8
    op 'F'  := (empty; clears the key space)

The snapshot file is the magic line ``RKVSNAP1\\n`` followed by 'S'
records in the same framing, so one decoder serves both files.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import struct
import threading
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.datastore.base import StoreError

__all__ = [
    "DurabilityConfig",
    "ShardWAL",
    "WALCorruption",
    "encode_record",
    "iter_frames",
    "replay_into",
]

_HDR = struct.Struct("<II")  # body_len, crc32(body)
_U32 = struct.Struct("<I")
_SNAP_MAGIC = b"RKVSNAP1\n"
_SNAP_NAME = "snapshot.bin"
_WAL_NAME = "wal.log"
_MAX_FRAME = 1 << 30  # sanity bound; anything larger is corruption


class WALCorruption(StoreError):
    """A frame *before* the tail failed validation.

    Torn tails are expected and silently truncated; a bad frame with
    valid frames after it means the file was damaged some other way and
    recovery refuses to guess.  (We only detect this within the bytes
    we scan linearly, so in practice this surfaces for snapshot files,
    whose atomic rename means they must be wholly valid.)
    """


@dataclasses.dataclass(frozen=True)
class DurabilityConfig:
    """Knobs for the ``[durability]`` config section.

    ``fsync`` gates every synchronous-flush call site (WAL group
    commit, snapshot rename, FSStore atomic writes); turning it off
    keeps the write path byte-identical but trusts the OS page cache.
    ``compact_bytes`` is the WAL size that triggers an automatic
    snapshot + log reset on the next mutation.
    """

    fsync: bool = True
    compact_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.compact_bytes < 4096:
            raise ValueError("durability.compact_bytes must be >= 4096")


def _sync_file(fh) -> None:
    fh.flush()
    if hasattr(os, "fdatasync"):
        os.fdatasync(fh.fileno())
    else:  # pragma: no cover - non-POSIX fallback
        os.fsync(fh.fileno())


def fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems that refuse
        pass
    finally:
        os.close(fd)


# --- framing ---------------------------------------------------------------


def encode_record(op: bytes, *fields: bytes) -> bytes:
    """Frame one record: 'S' (key, value), 'D' (key), 'R' (src, dst),
    'F' ()."""
    if op in (b"S", b"R"):
        first, second = fields
        body = op + _U32.pack(len(first)) + first + second
    elif op == b"D":
        body = op + fields[0]
    elif op == b"F":
        body = op
    else:
        raise ValueError(f"unknown WAL op {op!r}")
    return _HDR.pack(len(body), zlib.crc32(body)) + body


def iter_frames(data: bytes, offset: int = 0) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(next_offset, body)`` for every valid frame; stop at the
    first torn or corrupt one (the caller decides whether what remains
    is an acceptable tail)."""
    n = len(data)
    while offset + _HDR.size <= n:
        body_len, crc = _HDR.unpack_from(data, offset)
        end = offset + _HDR.size + body_len
        if body_len > _MAX_FRAME or end > n:
            return  # torn tail: length field or body ran off the file
        body = data[offset + _HDR.size:end]
        if zlib.crc32(body) != crc:
            return  # torn tail: partially written body
        yield end, body
        offset = end


def _decode_body(body: bytes) -> Tuple[bytes, List[bytes]]:
    op = body[:1]
    if op == b"S" or op == b"R":
        if len(body) < 1 + _U32.size:
            raise WALCorruption("record too short for its op")
        (first_len,) = _U32.unpack_from(body, 1)
        first_end = 1 + _U32.size + first_len
        if first_end > len(body):
            raise WALCorruption("record key length exceeds body")
        return op, [body[1 + _U32.size:first_end], body[first_end:]]
    if op == b"D":
        return op, [body[1:]]
    if op == b"F":
        return op, []
    raise WALCorruption(f"unknown WAL op {op!r}")


def replay_into(data: bytes, into: Dict[str, bytes],
                offset: int = 0) -> Tuple[int, int]:
    """Apply every valid frame in ``data`` to ``into``.

    Returns ``(records_applied, valid_end_offset)``; bytes past the
    valid end are a torn tail the caller should truncate.
    """
    applied = 0
    valid_end = offset
    for end, body in iter_frames(data, offset):
        op, fields = _decode_body(body)
        if op == b"S":
            into[fields[0].decode("utf-8")] = fields[1]
        elif op == b"D":
            into.pop(fields[0].decode("utf-8"), None)
        elif op == b"R":
            src = fields[0].decode("utf-8")
            dst = fields[1].decode("utf-8")
            if src in into:
                into[dst] = into.pop(src)
        elif op == b"F":
            into.clear()
        applied += 1
        valid_end = end
    return applied, valid_end


# --- the per-shard log -----------------------------------------------------


class ShardWAL:
    """Append-only write log plus snapshot for one shard.

    Thread model: appends and :meth:`commit` run on the shard's event
    loop thread (serialized by the server's dispatch lock); the actual
    write+fsync runs on an executor thread.  ``_buf_lock`` guards the
    pending buffer and sequence counters across that boundary, and
    ``_file_lock`` serializes file I/O so concurrent sync passes and
    snapshots cannot interleave their writes.
    """

    def __init__(self, directory: str,
                 config: Optional[DurabilityConfig] = None) -> None:
        self.directory = directory
        self.config = config or DurabilityConfig()
        os.makedirs(directory, exist_ok=True)
        self._buf_lock = threading.Lock()
        self._file_lock = threading.Lock()
        self._pending = bytearray()
        self.seq = 0           # records appended since open
        self.synced_seq = 0    # records durable on disk
        self._sync_task: Optional[asyncio.Task] = None
        self._closed = False
        # counters surfaced via info() / SNAPSHOT responses
        self.appends = 0
        self.fsync_batches = 0
        self.wal_bytes = 0     # bytes written to the log since open
        self.snapshots = 0
        self.replayed_records = 0
        self.truncated_bytes = 0
        self.recovered = self._recover()
        self._fh = open(self._wal_path, "ab")
        try:
            self.log_bytes = os.path.getsize(self._wal_path)
        except OSError:  # pragma: no cover
            self.log_bytes = 0

    # -- paths -------------------------------------------------------------

    @property
    def _wal_path(self) -> str:
        return os.path.join(self.directory, _WAL_NAME)

    @property
    def _snap_path(self) -> str:
        return os.path.join(self.directory, _SNAP_NAME)

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> Dict[str, bytes]:
        """Snapshot + log replay with torn-tail truncation."""
        data: Dict[str, bytes] = {}
        if os.path.exists(self._snap_path):
            with open(self._snap_path, "rb") as fh:
                raw = fh.read()
            if not raw.startswith(_SNAP_MAGIC):
                raise WALCorruption(
                    f"{self._snap_path} is not a NetKV snapshot")
            applied, valid_end = replay_into(raw, data, len(_SNAP_MAGIC))
            if valid_end != len(raw):
                # The snapshot was renamed into place after a full
                # fsync; a short one means outside interference.
                raise WALCorruption(
                    f"{self._snap_path} is damaged at byte {valid_end}")
            self.replayed_records += applied
        if os.path.exists(self._wal_path):
            with open(self._wal_path, "rb") as fh:
                raw = fh.read()
            applied, valid_end = replay_into(raw, data)
            self.replayed_records += applied
            if valid_end != len(raw):
                # Crash mid-append: drop the torn tail so appends
                # resume on a frame boundary.
                self.truncated_bytes += len(raw) - valid_end
                with open(self._wal_path, "r+b") as fh:
                    fh.truncate(valid_end)
                    if self.config.fsync:
                        _sync_file(fh)
        return data

    # -- appends (loop thread) ---------------------------------------------

    def _append(self, record: bytes) -> int:
        with self._buf_lock:
            if self._closed:
                raise StoreError("WAL is closed")
            self._pending += record
            self.seq += 1
            self.appends += 1
            return self.seq

    def append_set(self, key: str, value: bytes) -> int:
        return self._append(encode_record(b"S", key.encode("utf-8"), value))

    def append_delete(self, key: str) -> int:
        return self._append(encode_record(b"D", key.encode("utf-8")))

    def append_rename(self, src: str, dst: str) -> int:
        return self._append(encode_record(
            b"R", src.encode("utf-8"), dst.encode("utf-8")))

    def append_flush(self) -> int:
        return self._append(encode_record(b"F"))

    # -- group commit ------------------------------------------------------

    async def commit(self, target: Optional[int] = None) -> None:
        """Block until every record up to ``target`` (default: all
        appended so far) is durable.  Concurrent callers coalesce onto
        one executor write+fsync pass; a pass picks up everything
        buffered at the moment it drains, so late joiners usually find
        their records already covered."""
        if target is None:
            target = self.seq
        while self.synced_seq < target:
            task = self._sync_task
            if task is None:
                task = asyncio.get_running_loop().create_task(
                    self._sync_once())
                self._sync_task = task
            try:
                # shield: one cancelled waiter must not abort the write
                # other connections' acks are riding on.
                await asyncio.shield(task)
            finally:
                if self._sync_task is task and task.done():
                    self._sync_task = None

    async def _sync_once(self) -> None:
        await asyncio.get_running_loop().run_in_executor(
            None, self._write_and_sync)

    def _write_and_sync(self) -> None:
        with self._file_lock:
            with self._buf_lock:
                if self._closed:
                    return
                buf = bytes(self._pending)
                self._pending.clear()
                upto = self.seq
            if buf:
                self._fh.write(buf)
                if self.config.fsync:
                    _sync_file(self._fh)
                else:
                    self._fh.flush()
                self.wal_bytes += len(buf)
                self.log_bytes += len(buf)
                self.fsync_batches += 1
            with self._buf_lock:
                if upto > self.synced_seq:
                    self.synced_seq = upto

    # -- snapshot + compaction ---------------------------------------------

    def snapshot(self, items: Iterable[Tuple[str, bytes]]) -> Dict[str, int]:
        """Write a full snapshot and reset the log (compaction).

        Runs synchronously on the caller's thread; the caller must hold
        whatever lock makes ``items`` a consistent view of the shard.
        Everything appended so far is superseded by the snapshot, so
        pending records are dropped and outstanding :meth:`commit`
        waiters are satisfied by the snapshot's fsync.
        """
        tmp = self._snap_path + ".tmp"
        with self._file_lock:
            if self._closed:
                raise StoreError("WAL is closed")
            nkeys = 0
            with open(tmp, "wb") as fh:
                fh.write(_SNAP_MAGIC)
                for key, value in items:
                    fh.write(encode_record(b"S", key.encode("utf-8"), value))
                    nkeys += 1
                if self.config.fsync:
                    _sync_file(fh)
            os.replace(tmp, self._snap_path)
            if self.config.fsync:
                fsync_dir(self.directory)
            self._fh.close()
            self._fh = open(self._wal_path, "wb")  # truncate the log
            if self.config.fsync:
                _sync_file(self._fh)
            with self._buf_lock:
                self._pending.clear()
                self.synced_seq = self.seq
            self.log_bytes = 0
            self.snapshots += 1
        return {"keys": nkeys, "snapshots": self.snapshots,
                "wal_bytes": self.wal_bytes}

    def needs_compaction(self) -> bool:
        # In-memory size tracking: this runs after every mutating
        # command, so it must not cost a stat() syscall.
        return (self.log_bytes + len(self._pending)
                >= self.config.compact_bytes)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush whatever is buffered and close the file handle."""
        self._write_and_sync()
        with self._file_lock, self._buf_lock:
            if not self._closed:
                self._closed = True
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover
                    pass

    def info(self) -> Dict[str, object]:
        with self._buf_lock:
            return {
                "directory": self.directory,
                "fsync": self.config.fsync,
                "seq": self.seq,
                "synced_seq": self.synced_seq,
                "appends": self.appends,
                "fsync_batches": self.fsync_batches,
                "wal_bytes": self.wal_bytes,
                "snapshots": self.snapshots,
                "replayed_records": self.replayed_records,
                "truncated_bytes": self.truncated_bytes,
                "recovered_keys": len(self.recovered),
            }
