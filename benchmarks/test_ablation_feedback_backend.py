"""Ablation S3 (§4.2/§5.2): feedback through the KV store vs the filesystem.

Paper: moving the CG→continuum feedback from GPFS files to Redis was a
key enabler of the >12× faster feedback loop ("we eliminate the need to
store and read RDFs from disk; instead, we leverage Redis as a
short-term and highly responsive in-memory cache").

The same :class:`CGToContinuumFeedback` class runs against each backend
— only the store URL changes — over an identical stream of RDF frames.
"""

import numpy as np
import pytest
from conftest import report

from repro.app.feedback import CGToContinuumFeedback
from repro.datastore import open_store
from repro.sims.cg.analysis import RDFResult
from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim

N_FRAMES = 2_000
CONT = ContinuumConfig(grid=16, n_inner=2, n_outer=2, n_proteins=2, dt=0.25, seed=0)


def _rdf_bytes(i):
    edges = np.linspace(0, 3, 13)
    g = np.ones((2, 12))
    g[0, :4] = 1.5 + 0.1 * (i % 5)
    return RDFResult(sim_id=f"cg{i%100:03d}", time=float(i), edges=edges, g=g).to_bytes()


def _run_backend(url, tmp_path=None):
    resolved = url if url.startswith("kv") else f"{url}://{tmp_path}/{url}"
    store = open_store(resolved)
    payloads = [_rdf_bytes(i) for i in range(N_FRAMES)]
    for i, p in enumerate(payloads):
        store.write(f"rdf/live/f{i:06d}", p)
    cont = ContinuumSim(CONT)
    mgr = CGToContinuumFeedback(store, cont)
    rep = mgr.run_iteration()
    assert rep.n_items == N_FRAMES
    assert cont.coupling_version == 1
    store.close()
    return rep.total_seconds


def test_ablation_feedback_backend(benchmark, tmp_path):
    def run_all():
        return {
            "kv (redis-like)": _run_backend("kv://20"),
            "fs (gpfs-like)": _run_backend("fs", tmp_path),
            "taridx": _run_backend("taridx", tmp_path),
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = times["fs (gpfs-like)"] / times["kv (redis-like)"]
    lines = [f"{N_FRAMES:,} RDF frames, one full feedback iteration "
             "(collect + aggregate + report + tag):"]
    for name, t in sorted(times.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:<16s} {t:8.3f} s "
                     f"({N_FRAMES / t:,.0f} frames/s)")
    lines.append(f"kv vs fs speedup: {speedup:.1f}x "
                 "(paper: >12x faster feedback overall)")
    report("ablation_feedback_backend", lines)

    # Winner and ordering: the in-memory store beats the filesystem.
    assert times["kv (redis-like)"] < times["fs (gpfs-like)"]
    assert speedup > 2.0


def test_ablation_feedback_identical_result(benchmark, tmp_path):
    """The backend swap changes performance only: the aggregated
    couplings are bit-identical across backends."""

    def couplings_for(url):
        resolved = url if url.startswith("kv") else f"{url}://{tmp_path}/eq-{url}"
        store = open_store(resolved)
        for i in range(50):
            store.write(f"rdf/live/f{i:03d}", _rdf_bytes(i))
        cont = ContinuumSim(CONT)
        CGToContinuumFeedback(store, cont).run_iteration()
        store.close()
        return cont.g_inner

    results = benchmark.pedantic(
        lambda: [couplings_for(u) for u in ("kv://4", "fs", "taridx")],
        rounds=1, iterations=1,
    )
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])
    report("ablation_feedback_equivalence",
           ["couplings identical across kv/fs/taridx backends: OK"])
