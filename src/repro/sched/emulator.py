"""Matcher-policy emulation at (scaled) Summit size — the 670× result.

§5.2: "Under Flux's emulated environment with a resource graph
configuration similar to 4000 Summit nodes and the same job mix (24,000
jobs with 1 GPU and 3 CPU cores each, and 1 job with 150 nodes, each
with 24 cores), we measured a 670× improvement in the performance."

:func:`run_policy_emulation` replays that exact job mix against both
matcher policies and reports traversal visits and wall time. ``scale``
shrinks nodes and jobs proportionally so the emulation also runs inside
unit tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sched.jobspec import JobSpec
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.resources import ResourceGraph, summit_like

__all__ = ["EmulationResult", "paper_job_mix", "run_policy_emulation",
           "compare_policies", "ScaleProbeResult", "make_nearly_full_graph",
           "run_matcher_scale_probe"]


@dataclass(frozen=True)
class EmulationResult:
    """Outcome of one policy run over the full job mix."""

    policy: str
    nnodes: int
    njobs: int
    matched: int
    vertices_visited: int
    wall_seconds: float

    def visits_per_job(self) -> float:
        return self.vertices_visited / self.njobs if self.njobs else 0.0


def paper_job_mix(scale: float = 1.0) -> List[JobSpec]:
    """The §5.2 mix: one 150-node×24-core job, then 24,000 1-GPU jobs.

    ``scale`` multiplies both the GPU-job count and the continuum job's
    node count (so the mix still fills the scaled machine).
    """
    n_gpu_jobs = max(1, int(24_000 * scale))
    continuum_nodes = max(1, int(150 * scale))
    mix: List[JobSpec] = [
        JobSpec(name="continuum", nnodes=continuum_nodes, ncores=24, ngpus=0)
    ]
    mix.extend(
        JobSpec(name="gpu-sim", ncores=3, ngpus=1, tag=f"sim{i:05d}")
        for i in range(n_gpu_jobs)
    )
    return mix


def run_policy_emulation(policy: MatchPolicy, scale: float = 1.0,
                         partitioned: bool = True) -> EmulationResult:
    """Match the full job mix under one policy on a scaled Summit graph."""
    nnodes = max(2, int(4000 * scale))
    graph = summit_like(nnodes)
    matcher = Matcher(graph, policy, partitioned=partitioned)
    mix = paper_job_mix(scale)
    t0 = time.perf_counter()
    matched = 0
    for spec in mix:
        if matcher.match(spec) is not None:
            matched += 1
    wall = time.perf_counter() - t0
    return EmulationResult(
        policy=policy.value,
        nnodes=nnodes,
        njobs=len(mix),
        matched=matched,
        vertices_visited=matcher.stats.vertices_visited,
        wall_seconds=wall,
    )


def compare_policies(scale: float = 1.0) -> Dict[str, EmulationResult]:
    """Run both policies on identical mixes; returns results by policy name."""
    return {
        policy.value: run_policy_emulation(policy, scale)
        for policy in (MatchPolicy.LOW_ID_FIRST, MatchPolicy.FIRST_MATCH)
    }


@dataclass(frozen=True)
class ScaleProbeResult:
    """Per-call matcher cost on a nearly-full machine of ``nnodes``.

    This is the regime where the flat greedy scan degrades to O(nodes):
    the rotating cursor is usually far from the few free nodes, so every
    call walks most of the machine. The partitioned scan dismisses full
    partitions with one watermark check each, which is what keeps the
    cost sublinear in machine size.
    """

    nnodes: int
    policy: str
    partitioned: bool
    probes: int
    holes: int
    mean_call_seconds: float
    visits_per_call: float
    partitions_skipped: int


def make_nearly_full_graph(nnodes: int, holes: int = 8) -> ResourceGraph:
    """A Summit-shaped graph with all but ``holes`` evenly spaced nodes
    claimed whole-node — the probe scenario's fixed backdrop."""
    graph = summit_like(nnodes)
    hole_ids = {int(i * nnodes / holes) for i in range(holes)}
    all_cores = list(range(graph.cores_per_node))
    all_gpus = list(range(graph.gpus_per_node))
    graph.claim([(nid, all_cores, all_gpus)
                 for nid in range(nnodes) if nid not in hole_ids])
    return graph


def run_matcher_scale_probe(
    nnodes: int,
    policy: MatchPolicy,
    partitioned: bool,
    probes: int = 200,
    holes: int = 8,
    graph: Optional[ResourceGraph] = None,
) -> ScaleProbeResult:
    """Measure per-call match cost at ``nnodes`` with the machine nearly full.

    Every node except ``holes`` evenly spaced ones is claimed whole-node;
    each probe matches one GPU job (which can only land in a hole) and
    releases it again, so the graph state is identical for every probe
    and for every (policy, partitioned) variant being compared. Passing
    a prebuilt ``graph`` (from :func:`make_nearly_full_graph`) lets a
    sweep share one backdrop across variants — the probe leaves it
    exactly as found.
    """
    if graph is None:
        graph = make_nearly_full_graph(nnodes, holes)
    matcher = Matcher(graph, policy, partitioned=partitioned)
    spec = JobSpec(name="probe", ncores=3, ngpus=1)
    t0 = time.perf_counter()
    for _ in range(probes):
        alloc = matcher.match(spec)
        assert alloc is not None, "probe job must fit in a hole"
        matcher.release(alloc)
    wall = time.perf_counter() - t0
    return ScaleProbeResult(
        nnodes=nnodes,
        policy=policy.value,
        partitioned=partitioned,
        probes=probes,
        holes=holes,
        mean_call_seconds=wall / probes,
        visits_per_call=matcher.stats.visits_per_call(),
        partitions_skipped=matcher.stats.partitions_skipped,
    )
