"""Summary statistics and histogram helpers used by benches and figures.

The paper's figures are distributions (simulation lengths, performance,
occupancy, feedback times). These helpers compute the summaries the
benchmarks print, using vectorized NumPy throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Summary", "summarize", "Histogram", "percentile_of", "fraction_at_least"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a 1-D sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_row(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "max": self.maximum,
        }


def summarize(data: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``data`` (must be non-empty)."""
    arr = np.asarray(list(data) if not isinstance(data, np.ndarray) else data, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q = np.percentile(arr, [25, 50, 75])
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        maximum=float(arr.max()),
    )


def percentile_of(data: Sequence[float], value: float) -> float:
    """Fraction (0-100) of samples <= ``value``."""
    arr = np.asarray(data, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    return float(100.0 * np.mean(arr <= value))


def fraction_at_least(data: Sequence[float], threshold: float) -> float:
    """Fraction (0-1) of samples >= ``threshold``.

    Used for headline claims of the form "GPU occupancy was at least 98%
    for more than 83% of the time".
    """
    arr = np.asarray(data, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    return float(np.mean(arr >= threshold))


class Histogram:
    """A fixed-bin histogram accumulator with streaming ``add``.

    Unlike ``np.histogram`` this supports incremental accumulation from
    a running campaign without retaining every sample.
    """

    def __init__(self, edges: Sequence[float]) -> None:
        edges_arr = np.asarray(edges, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.size < 2:
            raise ValueError("edges must be a 1-D sequence of at least 2 values")
        if not np.all(np.diff(edges_arr) > 0):
            raise ValueError("edges must be strictly increasing")
        self.edges = edges_arr
        self.counts = np.zeros(edges_arr.size - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    @classmethod
    def linear(cls, lo: float, hi: float, nbins: int) -> "Histogram":
        """Equal-width bins over [lo, hi]."""
        if nbins < 1:
            raise ValueError("nbins must be >= 1")
        return cls(np.linspace(lo, hi, nbins + 1))

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow

    def add(self, values: Iterable[float]) -> None:
        """Accumulate values; out-of-range values go to under/overflow."""
        arr = np.atleast_1d(np.asarray(values, dtype=float))
        if arr.size == 0:
            return
        self.underflow += int(np.sum(arr < self.edges[0]))
        self.overflow += int(np.sum(arr > self.edges[-1]))
        in_range = arr[(arr >= self.edges[0]) & (arr <= self.edges[-1])]
        if in_range.size:
            counts, _ = np.histogram(in_range, bins=self.edges)
            self.counts += counts

    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def normalized(self) -> np.ndarray:
        """Counts as fractions of the in-range total (sums to 1)."""
        s = self.counts.sum()
        return self.counts / s if s else self.counts.astype(float)

    def mode_bin(self) -> Tuple[float, int]:
        """(center, count) of the most populated bin."""
        i = int(np.argmax(self.counts))
        return float(self.centers()[i]), int(self.counts[i])

    def as_series(self) -> list:
        """Rows of (bin_lo, bin_hi, count) for table-style printing."""
        return [
            (float(self.edges[i]), float(self.edges[i + 1]), int(self.counts[i]))
            for i in range(self.counts.size)
        ]
