"""repro — a from-scratch reproduction of the MuMMI multiscale workflow framework.

This package reimplements the system described in "Generalizable
Coordination of Large Multiscale Workflows: Challenges and Learnings at
Scale" (SC '21): the coordination layer (data management, job
scheduling, workflow management, ML-driven sampling, in situ feedback)
plus simulated substrates for the three resolution scales (continuum,
coarse-grained, all-atom) and a discrete-event campaign simulator that
stands in for the Summit supercomputer.

Subpackages
-----------
util
    Virtual clock, discrete-event loop, seeded RNG, I/O armoring.
trace
    Low-overhead hierarchical span tracing with a JSONL exporter and
    per-stage latency analysis (see OBSERVABILITY.md).
datastore
    Abstract data interface with filesystem, indexed-tar (pytaridx) and
    in-memory KV-cluster (Redis-like) backends.
sched
    Flux-like hierarchical scheduler: resource graph, queue manager,
    pluggable matcher policies, Maestro-like adapter, emulation harness.
sampling
    DynIm-style importance sampling: farthest-point and binned samplers
    over encoded point objects, with exact/approximate ANN backends.
ml
    From-scratch NumPy neural networks used as the patch encoder.
sims
    The three simulation scales and the inter-scale mapping tools.
core
    The Workflow Manager and its four concurrent tasks, job tracking,
    feedback management, and the campaign simulator.
app
    The RAS-RAF-membrane application wiring (selectors, job types,
    feedback implementations, campaign presets).
"""

from repro._version import __version__

__all__ = ["__version__"]
