"""The predecessor's bundled scheduling, kept as the ablation baseline.

§4.3: "Previously, MuMMI scaled the job scheduling by bundling
simulations on compute nodes, with each simulation in the bundle
consuming one GPU ... this bundling strategy prevents controlling each
simulation explicitly, reducing the effective use of resources (with
the worst case utilization of 1/4, when a single simulation keeps the
job alive and continues to occupy the node)." On Summit the worst case
is 1/6. This module provides the bundling transform plus the utilization
accounting that the S1 ablation bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sched.jobspec import JobSpec

__all__ = ["bundle_gpu_jobs", "BundleExpander", "bundle_utilization"]


def bundle_gpu_jobs(specs: Sequence[JobSpec], gpus_per_node: int) -> List[JobSpec]:
    """Pack single-GPU job specs into whole-node bundles.

    Each bundle is an exclusive one-node job whose duration is the max
    of its members' (the bundle lives until its slowest member ends —
    precisely the utilization problem). Member tags are joined so the
    simulation-to-job mapping survives, in degraded, bundle-level form.
    """
    for s in specs:
        if s.ngpus != 1 or s.nnodes != 1 or s.exclusive:
            raise ValueError(f"can only bundle single-GPU single-node jobs: {s}")
    bundles: List[JobSpec] = []
    for i in range(0, len(specs), gpus_per_node):
        group = specs[i : i + gpus_per_node]
        durations = [s.duration for s in group]
        duration = None if any(d is None for d in durations) else max(durations)
        bundles.append(
            JobSpec(
                name=f"bundle[{group[0].name}]",
                exclusive=True,
                ncores=0,
                ngpus=0,
                duration=duration,
                tag="+".join(s.tag or "?" for s in group),
            )
        )
    return bundles


@dataclass(frozen=True)
class BundleExpander:
    """Recovers member-level accounting from a bundle's tag."""

    bundle: JobSpec

    def member_tags(self) -> List[str]:
        return (self.bundle.tag or "").split("+")

    def nmembers(self) -> int:
        return len(self.member_tags())


def bundle_utilization(member_durations: Sequence[float], gpus_per_node: int) -> Tuple[float, float]:
    """(bundled, unbundled) GPU-time utilization for one cohort of sims.

    Bundled: each group of ``gpus_per_node`` sims holds a whole node for
    ``max(group durations)``; utilization is the busy fraction of that
    GPU time. Unbundled: each sim holds exactly one GPU for exactly its
    duration — utilization 1 by construction.
    """
    durations = np.asarray(member_durations, dtype=float)
    if durations.size == 0:
        raise ValueError("need at least one simulation")
    busy = float(durations.sum())
    held = 0.0
    for i in range(0, durations.size, gpus_per_node):
        group = durations[i : i + gpus_per_node]
        held += float(group.max()) * gpus_per_node
    return busy / held, 1.0
