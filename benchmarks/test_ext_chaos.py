"""Extension bench: chaos-harness overhead per simulated round.

CHAOS.md promises the chaos layer is cheap enough to run by default.
This bench prices what the harness adds around a WM round — fault
scheduling, the per-round invariant pass (which re-verifies the full
ack log), virtual-time bookkeeping, and the always-on tracer — by
timing the same seeded pipeline two ways:

- *bare*: the identical WM/ChaosStore/ChaosAdapter wiring driven by a
  plain ``wm.round()`` loop with no faults, no invariant checks, no
  tracer;
- *campaign*: the full ``ChaosCampaign`` with a representative fault
  schedule (one shard bounce, wire faults, a mid-run restart).

Both run on virtual time, so the difference is pure harness cost. The
per-round wall-clock numbers land in ``BENCH_chaos.json`` at the repo
root via the merge-on-write ledger helper.
"""

import time

from conftest import record_json, report

from repro.chaos import ChaosCampaign, ChaosConfig, FaultSchedule

ROUNDS = 8
REPEATS = 3


def _bare_rounds(config):
    """The same wiring as ChaosCampaign, driven without the harness."""
    campaign = ChaosCampaign(FaultSchedule().heal(0.0), config)
    t0 = time.perf_counter()
    for _ in range(config.rounds):
        campaign.wm.round(config.advance_us)
    return time.perf_counter() - t0


def _full_campaign(config):
    sched = (FaultSchedule()
             .shard_down(61.0, 1)
             .delay(65.0, 0.2)
             .checkpoint_restore(185.0)
             .shard_up(245.0, 1)
             .heal(300.0))
    campaign = ChaosCampaign(sched, config)
    t0 = time.perf_counter()
    rep = campaign.run()
    elapsed = time.perf_counter() - t0
    assert rep.ok, [v.to_json() for v in rep.violations]
    return elapsed


def test_harness_overhead_per_round():
    config = ChaosConfig(seed=11, rounds=ROUNDS)
    bare = min(_bare_rounds(config) for _ in range(REPEATS))
    full = min(_full_campaign(config) for _ in range(REPEATS))
    bare_ms = 1e3 * bare / ROUNDS
    full_ms = 1e3 * full / ROUNDS
    overhead_ms = full_ms - bare_ms

    report("ext_chaos_overhead", [
        f"rounds per campaign        {ROUNDS}",
        f"bare WM round              {bare_ms:8.2f} ms",
        f"chaos campaign round       {full_ms:8.2f} ms",
        f"harness overhead per round {overhead_ms:8.2f} ms "
        f"({100.0 * overhead_ms / bare_ms:+.1f}%)",
    ])
    record_json("BENCH_chaos.json", "harness_overhead", {
        "rounds": ROUNDS,
        "bare_ms_per_round": round(bare_ms, 3),
        "campaign_ms_per_round": round(full_ms, 3),
        "overhead_ms_per_round": round(overhead_ms, 3),
    })
    # Guard rail, not a microbenchmark: the harness (faults + invariant
    # sweep + tracing) must stay within 3x of the bare pipeline round.
    # The checkpoint/restore round legitimately pays for two full WM
    # builds, amortized across ROUNDS here.
    assert full < 3.0 * bare + 1.0
