"""Extension bench: in-process vs networked KV for the feedback path.

The paper's Redis cluster is a networked service; our default ``kv://``
backend is in-process. This bench quantifies what the wire costs: the
same frame stream through both, using real TCP sockets for the
networked side.
"""

import time

from conftest import report

from repro.datastore import KVStore
from repro.datastore.netkv import NetKVServer, NetKVStore

N_FRAMES = 2_000
PAYLOAD = b"x" * 850


def _drive(store):
    t0 = time.perf_counter()
    for i in range(N_FRAMES):
        store.write(f"rdf/live/f{i:06d}", PAYLOAD)
    t_write = time.perf_counter() - t0
    keys = store.keys("rdf/live/")
    t0 = time.perf_counter()
    for k in keys:
        store.read(k)
    t_read = time.perf_counter() - t0
    t0 = time.perf_counter()
    for k in keys:
        store.move(k, k.replace("live", "done"))
    t_move = time.perf_counter() - t0
    return t_write, t_read, t_move


def test_network_overhead(benchmark):
    def run_both():
        inproc = _drive(KVStore(nservers=4))
        servers = [NetKVServer().start() for _ in range(4)]
        net_store = NetKVStore.connect([s.address for s in servers])
        net = _drive(net_store)
        net_store.close()
        for s in servers:
            s.stop()
        return inproc, net

    (inw, inr, inm), (nw, nr, nm) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = [
        f"{N_FRAMES:,} frames (850 B each), 4 shards:",
        f"  in-process: write {N_FRAMES/inw:>9,.0f}/s  read {N_FRAMES/inr:>9,.0f}/s  "
        f"move {N_FRAMES/inm:>9,.0f}/s",
        f"  TCP       : write {N_FRAMES/nw:>9,.0f}/s  read {N_FRAMES/nr:>9,.0f}/s  "
        f"move {N_FRAMES/nm:>9,.0f}/s",
        f"  wire overhead: {nw/inw:.0f}x / {nr/inr:.0f}x / {nm/inm:.0f}x "
        "(write/read/move)",
    ]
    report("ext_network_overhead", lines)
    # The semantics are identical; the wire only costs time.
    assert nw > inw
    assert N_FRAMES / nw > 500  # still serviceable for feedback loops
