"""Unit constants and formatting helpers.

All simulated wall-clock times in :mod:`repro` are floats in seconds;
all simulated physical times are floats in nanoseconds. These helpers
keep conversions explicit at call sites (``3 * units.HOUR`` reads better
than ``10800``).
"""

from __future__ import annotations

# --- wall-clock time (seconds) -----------------------------------------
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

# --- physical (simulated MD) time (nanoseconds) -------------------------
NS = 1.0
US = 1e3
MS = 1e6

# --- data sizes (bytes) --------------------------------------------------
KB = 1024
MB = 1024**2
GB = 1024**3
TB = 1024**4


def format_duration(seconds: float) -> str:
    """Render a wall-clock duration as a short human-readable string."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < MINUTE:
        return f"{seconds:.1f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    if seconds < DAY:
        return f"{seconds / HOUR:.2f} h"
    return f"{seconds / DAY:.2f} d"


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit."""
    if n < 0:
        return "-" + format_bytes(-n)
    for unit, name in ((TB, "TiB"), (GB, "GiB"), (MB, "MiB"), (KB, "KiB")):
        if n >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def format_sim_time(ns: float) -> str:
    """Render a simulated physical time (given in nanoseconds)."""
    if ns >= MS:
        return f"{ns / MS:.3f} ms"
    if ns >= US:
        return f"{ns / US:.3f} us"
    return f"{ns:.3f} ns"
