"""Tests for secondary-structure dynamics statistics."""

import numpy as np
import pytest

from repro.sims.aa.analysis import SecondaryStructureAnalysis


def analysis_with(patterns):
    an = SecondaryStructureAnalysis(np.arange(len(patterns[0])))
    an.patterns = list(patterns)
    return an


class TestComposition:
    def test_fractions_sum_to_one(self):
        an = analysis_with(["HHEC", "HHCC"])
        comp = an.composition()
        assert sum(comp.values()) == pytest.approx(1.0)
        assert comp["H"] == pytest.approx(4 / 8)

    def test_empty(self):
        an = SecondaryStructureAnalysis(np.arange(4))
        assert an.composition() == {"H": 0.0, "E": 0.0, "C": 0.0}


class TestTransitions:
    def test_counts_per_residue_pair(self):
        an = analysis_with(["HH", "HC"])
        counts = an.transition_counts()
        assert counts == {("H", "H"): 1, ("H", "C"): 1}

    def test_three_frames_accumulate(self):
        an = analysis_with(["H", "C", "H"])
        counts = an.transition_counts()
        assert counts == {("H", "C"): 1, ("C", "H"): 1}

    def test_inconsistent_lengths_rejected(self):
        an = analysis_with(["HH", "H"])
        with pytest.raises(ValueError):
            an.transition_counts()

    def test_single_frame_no_transitions(self):
        an = analysis_with(["HHH"])
        assert an.transition_counts() == {}


class TestStability:
    def test_perfectly_settled(self):
        an = analysis_with(["HHCC"] * 5)
        assert an.stability() == 1.0

    def test_fully_churning(self):
        an = analysis_with(["HH", "CC", "HH"])
        assert an.stability() == 0.0

    def test_partial(self):
        an = analysis_with(["HC", "HH"])  # one kept, one flipped
        assert an.stability() == 0.5

    def test_no_frames_counts_as_settled(self):
        an = analysis_with(["H"])
        assert an.stability() == 1.0

    def test_real_trajectory_stabilizes_with_stiff_bonds(self):
        """A rigid chain's SS churns less than a floppy one."""
        from repro.sims.cg.engine import CGConfig, CGSim
        from repro.sims.aa.analysis import classify_backbone

        def churn(ss):
            sim = CGSim.random_system(config=CGConfig(n_lipids=20, seed=3))
            sim.apply_feedback(ss)
            prot = np.nonzero(sim.protein_mask())[0]
            an = SecondaryStructureAnalysis(prot, box=sim.config.box)
            for _ in range(15):
                sim.step(40)
                an.analyze_frame(sim.positions)
            return an.stability()

        assert churn("HHHHHH") >= churn("CCCCCC") - 0.05
