"""Ablation S2 (§5.2): first-match vs exhaustive low-id-first matching.

Paper: "Under Flux's emulated environment with a resource graph
configuration similar to 4000 Summit nodes and the same job mix (24,000
jobs with 1 GPU and 3 CPU cores each, and 1 job with 150 nodes, each
with 24 cores), we measured a 670x improvement in the performance."

We replay the identical mix at several scales and report the graph-
traversal reduction (the quantity the policy change actually targets)
plus wall time.
"""

import numpy as np
from conftest import report

from repro.sched.emulator import compare_policies, run_policy_emulation
from repro.sched.matcher import MatchPolicy

SCALES = [0.02, 0.05, 0.1, 0.25]


def test_ablation_policy_traversal_sweep(benchmark):
    def sweep():
        return {s: compare_policies(scale=s) for s in SCALES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'nodes':>6} {'jobs':>7} {'low-id visits':>15} "
             f"{'first-match':>12} {'reduction':>10}"]
    ratios = []
    for s in SCALES:
        low = results[s]["low-id-first"]
        fast = results[s]["first-match"]
        ratio = low.vertices_visited / fast.vertices_visited
        ratios.append(ratio)
        lines.append(
            f"{low.nnodes:>6} {low.njobs:>7,} {low.vertices_visited:>15,} "
            f"{fast.vertices_visited:>12,} {ratio:>9,.0f}x"
        )
    lines.append("(paper: 670x at 4000 nodes / 24,001 jobs)")
    report("ablation_matcher_policy", lines)

    # Both policies place the whole mix, and the reduction is orders of
    # magnitude and grows with machine size — the paper's story.
    for s in SCALES:
        for r in results[s].values():
            assert r.matched == r.njobs
    assert all(r > 50 for r in ratios)
    assert ratios[-1] > ratios[0]


def test_ablation_policy_wall_time(benchmark):
    """Wall time of the full-mix match at the largest bench scale."""
    scale = 0.25  # 1000 nodes, 6000 GPU jobs

    fast = benchmark(lambda: run_policy_emulation(MatchPolicy.FIRST_MATCH, scale))
    slow = run_policy_emulation(MatchPolicy.LOW_ID_FIRST, scale)
    report("ablation_matcher_wall", [
        f"1000 nodes / {fast.njobs:,} jobs:",
        f"  first-match : {fast.wall_seconds*1e3:8.1f} ms wall, "
        f"{fast.vertices_visited:,} visits",
        f"  low-id-first: {slow.wall_seconds*1e3:8.1f} ms wall, "
        f"{slow.vertices_visited:,} visits",
    ])
    assert fast.wall_seconds < slow.wall_seconds
    assert slow.vertices_visited / fast.vertices_visited > 500


def test_ablation_first_match_not_worse_when_loaded(benchmark):
    """First-match's advantage is largest on a vacant machine ('too many
    choices'); verify it stays cheap as the machine fills too."""

    def visits_over_load():
        from repro.sched.jobspec import JobSpec
        from repro.sched.matcher import Matcher
        from repro.sched.resources import summit_like

        matcher = Matcher(summit_like(200), MatchPolicy.FIRST_MATCH)
        spec = JobSpec(name="gpu", ncores=3, ngpus=1)
        visits = []
        for i in range(1200):  # exactly fills the machine
            before = matcher.stats.vertices_visited
            assert matcher.match(spec) is not None
            visits.append(matcher.stats.vertices_visited - before)
        return np.array(visits)

    visits = benchmark.pedantic(visits_over_load, rounds=1, iterations=1)
    report("ablation_first_match_load", [
        f"visits/job: first 100 jobs mean {visits[:100].mean():.0f}, "
        f"last 100 jobs mean {visits[-100:].mean():.0f} "
        f"(graph has {1 + 200 * 53:,} vertices)",
    ])
    # Even at full load the greedy scan stays far below a full traversal.
    assert visits.mean() < 200 * 53 / 10
