"""Fig. 6: job-loading behaviour at 1000 vs 4000 nodes.

Paper: "a typical 1000-node run took only an hour to load" at ~100
jobs/min, while "our scaling run (using 4000 nodes) revealed some
scheduling bottlenecks where the submitted jobs took much longer to
run" — synchronous Q↔R communication let submission handling starve
the matcher. The follow-up fixes (asynchronous Q↔R + first-match) are
benchmarked as the third configuration.
"""

import numpy as np
from conftest import report

from repro.sched.loadtest import run_load_experiment
from repro.sched.matcher import MatchPolicy
from repro.sched.queue import QueueMode
from repro.util import units


def _row(label, r):
    t99 = r.time_to_load(0.99)
    t99_h = f"{t99 / units.HOUR:.2f}h" if t99 is not None else ">horizon"
    return (
        f"  {label:<28s} loaded {r.loaded_fraction:.0%}  t99={t99_h:<8s} "
        f"peak backlog={r.peak_backlog():>6,}  start phase={r.start_phase_mean():.2f}"
    )


def test_fig6_1000_node_loading(benchmark):
    """Left panel: 1000 nodes load in about an hour at ~100 jobs/min."""
    result = benchmark.pedantic(
        lambda: run_load_experiment(1000, 6000, max_hours=4.0),
        rounds=1, iterations=1,
    )
    t99 = result.time_to_load(0.99)
    rate = 0.99 * 6000 / (t99 / units.MINUTE)
    report("fig6_1000_nodes", [
        _row("1000n sync/low-id (campaign)", result),
        f"  effective placement rate: {rate:.0f} jobs/min (paper: ~100/min)",
    ])
    assert result.loaded_fraction == 1.0
    assert 0.5 * units.HOUR <= t99 <= 1.5 * units.HOUR  # "only an hour"
    assert 80 <= rate <= 120
    assert result.peak_backlog() <= 300  # queue never backs up


def test_fig6_4000_node_bottleneck(benchmark):
    """Right panel: the same configuration at 4000 nodes starves."""
    result = benchmark.pedantic(
        lambda: run_load_experiment(4000, 24_000, max_hours=24.0),
        rounds=1, iterations=1,
    )
    t99 = result.time_to_load(0.99)
    report("fig6_4000_nodes_sync", [
        _row("4000n sync/low-id (campaign)", result),
        "  submission handling starves the matcher: pending jobs pile up",
    ])
    # Submission alone takes 4h at 100/min; the sync bottleneck pushes
    # loading well past that, with a large standing backlog.
    assert t99 is None or t99 > 4.5 * units.HOUR
    assert result.peak_backlog() > 5_000
    # Starts skew late within each submission window (intake first).
    assert result.start_phase_mean() > 0.5


def test_fig6_fixed_configuration(benchmark):
    """§5.2 'Strategies for Further Scaling': async Q↔R + first-match
    restores submission-limited loading at 4000 nodes."""
    result = benchmark.pedantic(
        lambda: run_load_experiment(
            4000, 24_000,
            policy=MatchPolicy.FIRST_MATCH,
            mode=QueueMode.ASYNC,
            max_hours=12.0,
        ),
        rounds=1, iterations=1,
    )
    t99 = result.time_to_load(0.99)
    report("fig6_4000_nodes_fixed", [
        _row("4000n async/first-match (fixed)", result),
        f"  loading is submission-limited again "
        f"(~{0.99 * 24000 / (t99 / units.MINUTE):.0f} jobs/min)",
    ])
    assert result.loaded_fraction == 1.0
    assert t99 <= 4.5 * units.HOUR  # ≈ 24k jobs / 100 per min
    assert result.peak_backlog() <= 300
    assert result.start_phase_mean() < 0.3  # matches during intake


def test_fig6_loading_curves_shape(benchmark):
    """The cumulative-start curves: near-linear at 1000 nodes; the sync
    4000-node curve falls behind the submission curve."""

    def run_small_pair():
        ok = run_load_experiment(250, 1500, max_hours=2.0)
        slow = run_load_experiment(
            2000, 6000, max_hours=6.0,
        )
        return ok, slow

    ok, slow = benchmark.pedantic(run_small_pair, rounds=1, iterations=1)
    ok_curve = np.cumsum(ok.starts_per_bin(600))
    slow_curve = np.cumsum(slow.starts_per_bin(600))
    lines = ["cumulative starts per 10 min (scaled experiment):",
             f"  250n : {[int(x) for x in ok_curve[:8]]}",
             f"  2000n: {[int(x) for x in slow_curve[:8]]}"]
    report("fig6_curves", lines)
    # The smaller machine finishes its (proportional) load sooner.
    frac_ok = ok_curve / ok.njobs
    frac_slow = slow_curve / slow.njobs
    n = min(frac_ok.size, frac_slow.size)
    assert np.all(frac_ok[:n] >= frac_slow[:n] - 1e-9)
