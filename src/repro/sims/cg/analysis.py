"""Online CG analysis: protein-lipid RDFs and frame candidates.

§4.1 (3): "Custom, Python-based analysis is executed simultaneously on
the same computational node ... the corresponding analysis is allocated
3 CPU cores." The analysis produces two streams the coordination layer
consumes:

- **RDFs** per lipid type (the CG→continuum feedback payload);
- **frame candidates**: "identifying information (~850 B) that is
  minimal and sufficient for the downstream tasks", here the id plus
  the 3-D configurational encoding of the RAS-RAF complex that the
  binned Frame Selector buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.datastore import serial
from repro.sims.cg.engine import CGSim

__all__ = ["RDFResult", "FrameCandidate", "CGAnalysis"]


@dataclass(frozen=True)
class RDFResult:
    """Protein-lipid radial distribution functions at one frame."""

    sim_id: str
    time: float
    edges: np.ndarray  # (nbins+1,)
    g: np.ndarray  # (n_lipid_types, nbins)

    def to_bytes(self) -> bytes:
        return serial.npz_to_bytes(
            {
                "time": np.array([self.time]),
                "edges": self.edges,
                "g": self.g,
                "sim_id": np.frombuffer(self.sim_id.encode(), dtype=np.uint8),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RDFResult":
        arrays = serial.bytes_to_npz(data)
        return cls(
            sim_id=arrays["sim_id"].tobytes().decode(),
            time=float(arrays["time"][0]),
            edges=arrays["edges"],
            g=arrays["g"],
        )


@dataclass(frozen=True)
class FrameCandidate:
    """Identifying information for one CG frame (≈850 B in the paper)."""

    frame_id: str
    sim_id: str
    time: float
    encoding: np.ndarray  # (3,) configurational coding of the complex

    def to_json(self) -> dict:
        return {
            "frame_id": self.frame_id,
            "sim_id": self.sim_id,
            "time": self.time,
            "encoding": [float(x) for x in self.encoding],
        }

    @classmethod
    def from_json(cls, row: dict) -> "FrameCandidate":
        return cls(
            frame_id=row["frame_id"],
            sim_id=row["sim_id"],
            time=float(row["time"]),
            encoding=np.asarray(row["encoding"], dtype=float),
        )


class CGAnalysis:
    """Per-simulation analysis module run alongside the engine."""

    def __init__(
        self,
        sim: CGSim,
        sim_id: str,
        rdf_rmax: Optional[float] = None,
        rdf_bins: int = 24,
    ) -> None:
        self.sim = sim
        self.sim_id = sim_id
        self.rdf_rmax = rdf_rmax if rdf_rmax is not None else sim.ff.cutoff * 3.0
        self.rdf_bins = rdf_bins
        self.frames_analyzed = 0

    # --- RDFs -------------------------------------------------------------

    def compute_rdf(self) -> RDFResult:
        """g(r) between the protein centroid and each lipid type.

        Normalized by shell area and bulk density so a featureless
        system gives g ≈ 1 at large r (2-D normalization).
        """
        sim = self.sim
        box = sim.config.box
        prot = sim.protein_mask()
        centroid = sim.positions[prot].mean(axis=0)
        lipid_names = sim.ff.lipid_type_names()
        edges = np.linspace(0.0, self.rdf_rmax, self.rdf_bins + 1)
        areas = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
        g = np.zeros((len(lipid_names), self.rdf_bins))
        d = sim._min_image(sim.positions - centroid)
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        for k, name in enumerate(lipid_names):
            sel = r[sim.type_ids == sim.ff.index_of(name)]
            if sel.size == 0:
                continue
            counts, _ = np.histogram(sel, bins=edges)
            density = sel.size / box**2
            g[k] = counts / (areas * density)
        return RDFResult(sim_id=self.sim_id, time=sim.time, edges=edges, g=g)

    # --- frame encoding ---------------------------------------------------------

    def encode_frame(self) -> np.ndarray:
        """The 3-D configurational coding of the RAS-RAF complex.

        Three disparate quantities (hence no meaningful L2 metric,
        which is why the Frame Selector bins instead):

        0. RAS–RAF centroid separation,
        1. complex orientation angle in [0, pi),
        2. complex radius of gyration.
        """
        sim = self.sim
        prot = np.nonzero(sim.protein_mask())[0]
        if prot.size < 2:
            raise ValueError("frame encoding needs at least two protein beads")
        pos = sim.positions[prot]
        # Unwrap the complex around its first bead (it is bonded and compact).
        rel = sim._min_image(pos - pos[0])
        ras_id = sim.ff.index_of("RAS")
        is_ras = sim.type_ids[prot] == ras_id
        if is_ras.any() and (~is_ras).any():
            sep = float(np.linalg.norm(rel[is_ras].mean(0) - rel[~is_ras].mean(0)))
        else:
            sep = 0.0
        centered = rel - rel.mean(axis=0)
        cov = centered.T @ centered / prot.size
        evals, evecs = np.linalg.eigh(cov)
        principal = evecs[:, -1]
        angle = float(np.arctan2(principal[1], principal[0]) % np.pi)
        rg = float(np.sqrt(np.trace(cov)))
        return np.array([sep, angle, rg])

    def frame_candidate(self) -> FrameCandidate:
        cand = FrameCandidate(
            frame_id=f"{self.sim_id}/f{self.frames_analyzed:06d}",
            sim_id=self.sim_id,
            time=self.sim.time,
            encoding=self.encode_frame(),
        )
        self.frames_analyzed += 1
        return cand

    # --- combined step (what the co-scheduled analysis job does) ------------

    def analyze(self) -> Dict:
        """One analysis pass: RDF + frame candidate for the current state."""
        return {"rdf": self.compute_rdf(), "candidate": self.frame_candidate()}
