"""Tests for node-failure injection and resilience in the campaign."""

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, CampaignSimulator, RunSpec


def run_campaign(failure_rate, seed=13, nnodes=30, hours=6, runs=2):
    cfg = CampaignConfig(
        ledger=(RunSpec(nnodes, hours, runs),),
        node_failures_per_1000node_day=failure_rate,
        seed=seed,
    )
    sim = CampaignSimulator(cfg)
    return sim, sim.run()


class TestFailureInjection:
    def test_disabled_by_default(self):
        _, res = run_campaign(0.0)
        assert res.counters["node_failures"] == 0
        assert res.counters["sim_failures"] == 0

    def test_failures_occur_at_high_rate(self):
        _, res = run_campaign(500.0)
        assert res.counters["node_failures"] > 0
        assert res.counters["sim_failures"] > 0

    def test_campaign_completes_despite_failures(self):
        _, res = run_campaign(500.0)
        assert len(res.cg_lengths_us) > 10
        assert res.total_node_hours() == 30 * 6 * 2

    def test_failed_sims_lose_at_most_checkpoint_window(self):
        # With failures, total simulated time shrinks only mildly: each
        # failure costs <= 15 min of one GPU's progress plus rescheduling.
        _, clean = run_campaign(0.0, seed=21)
        _, faulty = run_campaign(300.0, seed=21)
        total_clean = sum(clean.cg_lengths_us) + sum(clean.aa_lengths_ns) / 1000
        total_faulty = sum(faulty.cg_lengths_us) + sum(faulty.aa_lengths_ns) / 1000
        assert total_faulty > 0.5 * total_clean

    def test_failed_sims_resume_and_accumulate(self):
        sim, res = run_campaign(400.0, seed=5)
        assert res.counters["sim_failures"] > 0
        # Some sims that failed still reached substantial lengths — the
        # checkpoint-resume path works.
        assert max(res.cg_lengths_us) > 0.15

    def test_drained_nodes_lower_occupancy_tail(self):
        _, clean = run_campaign(0.0, seed=3)
        _, faulty = run_campaign(800.0, seed=3)
        g_clean = np.mean([e.gpu_occupancy for e in clean.profile_events])
        g_faulty = np.mean([e.gpu_occupancy for e in faulty.profile_events])
        assert g_faulty < g_clean

    def test_failure_counts_scale_with_rate(self):
        _, lo = run_campaign(100.0, seed=9)
        _, hi = run_campaign(1000.0, seed=9)
        assert hi.counters["node_failures"] > lo.counters["node_failures"]
