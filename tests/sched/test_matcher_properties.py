"""Property-based matcher tests: seeded random graphs + request streams.

No hypothesis in the container, so this is the poor-man's equivalent:
``numpy`` Generators seeded per case drive both the resource-graph
shapes and the job streams, and every property is checked over dozens
of sampled scenarios. Failures print the offending seed so a case can
be replayed exactly.

Properties:

- *capacity*: across any mix of matches and releases, under any
  policy, no node ever has more cores/GPUs claimed than it owns, and no
  resource is double-claimed (the graph raises if a claim conflicts).
- *conservation*: releasing everything returns the graph to fully free
  — checked from 2-node graphs up to 40k-node graphs under churn.
- *cursor*: the first-match round-robin cursor advances only when a
  request fully places (the PR 4 invariant) and always stays a valid
  node index.
- *agreement*: both paper policies succeed or fail together on a fresh
  graph (they differ in cost and choice, never in feasibility) for
  single-node requests.
- *oracle equivalence*: the partitioned matcher is behaviorally
  identical to the flat matcher — same allocations, same cursor, same
  success/failure — under every policy, on mirrored call streams. Only
  the traversal cost may differ, and then only downward (watermark
  skips never add node visits).
- *gang/preemption*: ensembles place all-or-nothing and preemption is
  all-or-nothing too; neither can leak or double-claim resources, and
  a failed attempt leaves graph and cursor untouched.
"""

import numpy as np
import pytest

from repro.sched.jobspec import JobSpec
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.resources import ResourceGraph

SEEDS = range(12)


def random_graph(rng):
    # Cores split across 2 sockets, so per-node core counts are even.
    # Tiny partition sizes force multi-partition graphs so the
    # watermark-skip machinery is always in play.
    return ResourceGraph(
        nnodes=int(rng.integers(2, 20)),
        cores_per_node=2 * int(rng.integers(1, 17)),
        gpus_per_node=int(rng.integers(0, 5)),
        partition_size=int(rng.integers(1, 8)),
    )


def clone_graph(graph):
    """A fresh graph with the same shape (for mirrored-stream oracles)."""
    return ResourceGraph(
        nnodes=len(graph.nodes),
        cores_per_node=graph.cores_per_node,
        gpus_per_node=graph.gpus_per_node,
        partition_size=graph.partition_size,
    )


def assert_partition_summaries_consistent(graph):
    """Partition watermarks/vacancy must equal a recompute from scratch."""
    for p in range(graph.npartitions):
        lo, hi = graph._partition_bounds(p)
        drained = graph._drained_mask[lo:hi]
        fc = np.where(drained, -1, graph._fc[lo:hi])
        fg = np.where(drained, -1, graph._fg[lo:hi])
        assert graph._part_max_fc[p] == fc.max(), f"stale core watermark in partition {p}"
        assert graph._part_max_fg[p] == fg.max(), f"stale gpu watermark in partition {p}"
        nvacant = np.count_nonzero(
            (fc == graph.cores_per_node) & (fg == graph.gpus_per_node))
        assert graph._part_nvacant[p] == nvacant, f"stale vacancy count in partition {p}"


def random_spec(rng, graph, tight=False):
    """A request that is sometimes satisfiable, sometimes not."""
    stretch = 2 if tight else 1
    ncores = int(rng.integers(1, stretch * graph.cores_per_node + 1))
    ngpus = int(rng.integers(0, graph.gpus_per_node + 2)) if graph.gpus_per_node else 0
    return JobSpec(
        name=f"job-{int(rng.integers(1e6))}",
        ncores=ncores,
        ngpus=ngpus,
        nnodes=int(rng.integers(1, 4)),
        exclusive=bool(rng.random() < 0.1),
    )


def assert_within_capacity(graph, live_allocs):
    claimed_cores = {}
    claimed_gpus = {}
    for alloc in live_allocs:
        for node_id, cores, gpus in alloc.items:
            for c in cores:
                assert (node_id, c) not in claimed_cores, \
                    f"core {c} on node {node_id} double-claimed"
                claimed_cores[(node_id, c)] = True
            for g in gpus:
                assert (node_id, g) not in claimed_gpus
                claimed_gpus[(node_id, g)] = True
            node = graph.nodes[node_id]
            in_use_here = sum(1 for (n, _) in claimed_cores if n == node_id)
            assert in_use_here <= node.ncores
            gpus_here = sum(1 for (n, _) in claimed_gpus if n == node_id)
            assert gpus_here <= node.ngpus


@pytest.mark.parametrize("policy", list(MatchPolicy))
@pytest.mark.parametrize("seed", SEEDS)
def test_no_placement_exceeds_node_capacity(policy, seed):
    rng = np.random.default_rng(seed)
    graph = random_graph(rng)
    matcher = Matcher(graph, policy=policy)
    live = []
    for _ in range(60):
        if live and rng.random() < 0.35:
            matcher.release(live.pop(int(rng.integers(len(live)))))
            continue
        alloc = matcher.match(random_spec(rng, graph, tight=True))
        if alloc is not None:
            live.append(alloc)
        assert_within_capacity(graph, live)
    for alloc in live:
        matcher.release(alloc)
    # Conservation: everything released → graph fully free again.
    assert sum(len(n.free_core_ids()) for n in graph.nodes) == \
        len(graph.nodes) * graph.cores_per_node
    assert sum(len(n.free_gpu_ids()) for n in graph.nodes) == \
        len(graph.nodes) * graph.gpus_per_node


@pytest.mark.parametrize("seed", SEEDS)
def test_rr_cursor_advances_only_on_full_placement(seed):
    rng = np.random.default_rng(100 + seed)
    graph = random_graph(rng)
    matcher = Matcher(graph, policy=MatchPolicy.FIRST_MATCH)
    for _ in range(80):
        before = matcher._rr_cursor
        alloc = matcher.match(random_spec(rng, graph, tight=True))
        after = matcher._rr_cursor
        assert 0 <= after < len(graph.nodes)
        if alloc is None:
            # The PR 4 invariant: a failed (or partially feasible) match
            # must not rotate the cursor past the few feasible nodes.
            assert after == before, f"cursor moved on failed match (seed {seed})"
        if alloc is not None and rng.random() < 0.5:
            matcher.release(alloc)


@pytest.mark.parametrize("seed", SEEDS)
def test_policies_agree_on_single_node_feasibility(seed):
    rng = np.random.default_rng(200 + seed)
    nnodes = int(rng.integers(2, 12))
    cores = 2 * int(rng.integers(1, 9))
    gpus = int(rng.integers(0, 3))
    for _ in range(40):
        spec_rng = np.random.default_rng(int(rng.integers(2**31)))
        graph_a = ResourceGraph(nnodes, cores, gpus)
        graph_b = ResourceGraph(nnodes, cores, gpus)
        spec = random_spec(spec_rng, graph_a, tight=True)
        if spec.nnodes > 1 or spec.exclusive:
            continue
        a = Matcher(graph_a, policy=MatchPolicy.LOW_ID_FIRST).match(spec)
        b = Matcher(graph_b, policy=MatchPolicy.FIRST_MATCH).match(spec)
        assert (a is None) == (b is None), \
            f"policies disagree on feasibility (seed {seed}, spec {spec})"


@pytest.mark.parametrize("seed", range(6))
def test_first_match_visits_no_more_than_exhaustive(seed):
    rng = np.random.default_rng(300 + seed)
    graph_a = ResourceGraph(16, 8, 2)
    graph_b = ResourceGraph(16, 8, 2)
    low = Matcher(graph_a, policy=MatchPolicy.LOW_ID_FIRST)
    fast = Matcher(graph_b, policy=MatchPolicy.FIRST_MATCH)
    for _ in range(50):
        spec = random_spec(rng, graph_a)
        spec_b = JobSpec(name=spec.name, ncores=spec.ncores, ngpus=spec.ngpus,
                         nnodes=spec.nnodes, exclusive=spec.exclusive)
        low.match(spec)
        fast.match(spec_b)
    assert fast.stats.vertices_visited <= low.stats.vertices_visited


# --- partitioned-vs-flat oracle equivalence ---------------------------------


@pytest.mark.parametrize("policy", list(MatchPolicy))
@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_matches_flat_oracle(policy, seed):
    """The partitioned matcher is observationally identical to the flat
    one on a mirrored call stream: same success/failure, same node and
    resource ids in every allocation, same rotating cursor afterwards —
    and never more node visits (watermark skips only remove work)."""
    rng = np.random.default_rng(400 + seed)
    graph_p = random_graph(rng)
    graph_f = clone_graph(graph_p)
    part = Matcher(graph_p, policy=policy, partitioned=True)
    flat = Matcher(graph_f, policy=policy, partitioned=False)
    live = []  # (partitioned alloc, flat alloc) pairs
    for step in range(80):
        if live and rng.random() < 0.3:
            ap, af = live.pop(int(rng.integers(len(live))))
            part.release(ap)
            flat.release(af)
            continue
        spec = random_spec(rng, graph_p, tight=True)
        before_p = part.stats.vertices_visited
        before_f = flat.stats.vertices_visited
        ap = part.match(spec)
        af = flat.match(spec)
        assert (ap is None) == (af is None), \
            f"feasibility diverged (seed {seed}, step {step}, spec {spec})"
        if ap is not None:
            assert ap.items == af.items, \
                f"placement diverged (seed {seed}, step {step}, spec {spec})"
            live.append((ap, af))
        assert part._rr_cursor == flat._rr_cursor, \
            f"cursor diverged (seed {seed}, step {step})"
        assert (part.stats.vertices_visited - before_p) <= \
            (flat.stats.vertices_visited - before_f), \
            f"partitioned scan cost more than flat (seed {seed}, step {step})"
    assert_partition_summaries_consistent(graph_p)
    for ap, af in live:
        part.release(ap)
        flat.release(af)
    assert np.array_equal(graph_p._fc, graph_f._fc)
    assert np.array_equal(graph_p._fg, graph_f._fg)


# --- capacity conservation under churn at scale -----------------------------


def _churn_and_check(nnodes, seed, ops):
    graph = ResourceGraph(nnodes, cores_per_node=8, gpus_per_node=2,
                          partition_size=256)
    rng = np.random.default_rng(seed)
    matcher = Matcher(graph, policy=MatchPolicy.FIRST_MATCH, partitioned=True)
    live = []
    for _ in range(ops):
        if live and rng.random() < 0.4:
            matcher.release(live.pop(int(rng.integers(len(live)))))
            continue
        spec = JobSpec(
            name="churn",
            ncores=int(rng.integers(1, 9)),
            ngpus=int(rng.integers(0, 3)),
            nnodes=int(rng.integers(1, 4)),
            exclusive=bool(rng.random() < 0.2),
        )
        alloc = matcher.match(spec)
        if alloc is not None:
            live.append(alloc)
    assert_partition_summaries_consistent(graph)
    for alloc in live:
        matcher.release(alloc)
    assert int(graph._fc.sum()) == graph.total_cores
    assert int(graph._fg.sum()) == graph.total_gpus
    assert graph.free_cores == graph.total_cores
    assert graph.free_gpus == graph.total_gpus
    assert_partition_summaries_consistent(graph)


@pytest.mark.parametrize("seed", range(4))
def test_capacity_conserved_under_churn_1k(seed):
    _churn_and_check(1000, 500 + seed, ops=120)


@pytest.mark.matcher_scale
@pytest.mark.parametrize("seed", range(2))
def test_capacity_conserved_under_churn_10k(seed):
    _churn_and_check(10_000, 600 + seed, ops=120)


@pytest.mark.matcher_scale
@pytest.mark.parametrize("seed", range(2))
def test_capacity_conserved_under_churn_40k(seed):
    _churn_and_check(40_000, 700 + seed, ops=120)


# --- first-match visit-count upper bound with skips -------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_partitioned_first_match_visit_bound(seed):
    """Per call, the partitioned first-match charge (nodes scanned plus
    one per skipped partition) never exceeds the graph size, and across
    a stream it never exceeds the flat scan's total."""
    rng = np.random.default_rng(800 + seed)
    graph = random_graph(rng)
    graph_flat = clone_graph(graph)
    part = Matcher(graph, policy=MatchPolicy.FIRST_MATCH, partitioned=True)
    flat = Matcher(graph_flat, policy=MatchPolicy.FIRST_MATCH, partitioned=False)
    n = len(graph.nodes)
    for _ in range(60):
        spec = random_spec(rng, graph, tight=True)
        before = part.stats.vertices_visited
        ap = part.match(spec)
        af = flat.match(spec)
        scan_charge = part.stats.vertices_visited - before
        if ap is not None:
            # Subtract the claim-enumeration charge to isolate the scan.
            scan_charge -= ap.ncores + ap.ngpus
        assert scan_charge <= n + graph.npartitions, \
            f"scan charged {scan_charge} on a {n}-node graph (seed {seed})"
        if ap is not None:
            part.release(ap)
        if af is not None:
            flat.release(af)
    assert part.stats.vertices_visited <= flat.stats.vertices_visited
    assert part.stats.partitions_skipped >= 0


# --- gang all-or-nothing ----------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_gang_is_all_or_nothing(seed):
    """A failed gang leaves the graph and cursor exactly as they were; a
    placed gang holds exactly its members' resources and releases back
    to the pre-gang state."""
    rng = np.random.default_rng(900 + seed)
    graph = random_graph(rng)
    matcher = Matcher(graph, policy=MatchPolicy.GANG, partitioned=True)
    # Pre-load some background occupancy so gangs sometimes fail.
    background = []
    for _ in range(int(rng.integers(0, 6))):
        alloc = matcher.match(random_spec(rng, graph))
        if alloc is not None:
            background.append(alloc)
    for _ in range(15):
        size = int(rng.integers(1, 5))
        gang = [
            JobSpec(name=f"g{j}", ncores=int(rng.integers(1, graph.cores_per_node + 1)),
                    ngpus=int(rng.integers(0, graph.gpus_per_node + 1)),
                    gang_id="ens")
            for j in range(size)
        ]
        fc_before = graph._fc.copy()
        fg_before = graph._fg.copy()
        cursor_before = matcher._rr_cursor
        allocs = matcher.match_gang(gang)
        if allocs is None:
            assert np.array_equal(graph._fc, fc_before), \
                f"failed gang leaked cores (seed {seed})"
            assert np.array_equal(graph._fg, fg_before), \
                f"failed gang leaked gpus (seed {seed})"
            assert matcher._rr_cursor == cursor_before, \
                f"failed gang moved the cursor (seed {seed})"
        else:
            assert len(allocs) == len(gang)
            for held in allocs:
                matcher.release(held)
            assert np.array_equal(graph._fc, fc_before)
            assert np.array_equal(graph._fg, fg_before)
        assert_partition_summaries_consistent(graph)
    for alloc in background:
        matcher.release(alloc)
    assert int(graph._fc.sum()) == graph.total_cores


# --- preemption no-resource-leak --------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_preempt_never_leaks_resources(seed):
    """Preemption evicts only strictly-lower-priority victims, and both
    outcomes are leak-free: failure restores the graph bit-for-bit,
    success holds exactly the new allocation plus the survivors."""
    rng = np.random.default_rng(1000 + seed)
    graph = random_graph(rng)
    matcher = Matcher(graph, policy=MatchPolicy.FIRST_MATCH, partitioned=True)
    running = {}  # key -> (priority, alloc)
    key = 0
    # Fill the machine with low/medium-priority work.
    for _ in range(40):
        prio = int(rng.integers(0, 3))
        alloc = matcher.match(JobSpec(
            name=f"bg{key}", ncores=int(rng.integers(1, graph.cores_per_node + 1)),
            ngpus=int(rng.integers(0, graph.gpus_per_node + 1)), priority=prio))
        if alloc is not None:
            running[key] = (prio, alloc)
            key += 1
    for _ in range(10):
        spec = JobSpec(
            name="urgent", ncores=int(rng.integers(1, graph.cores_per_node + 1)),
            ngpus=int(rng.integers(0, graph.gpus_per_node + 1)),
            priority=int(rng.integers(0, 5)))
        victims = [(prio, k, alloc) for k, (prio, alloc) in running.items()]
        fc_before = graph._fc.copy()
        fg_before = graph._fg.copy()
        result = matcher.preempt(spec, victims)
        if result is None:
            assert np.array_equal(graph._fc, fc_before), \
                f"failed preempt leaked cores (seed {seed})"
            assert np.array_equal(graph._fg, fg_before), \
                f"failed preempt leaked gpus (seed {seed})"
        else:
            placement, evicted_keys = result
            for k in evicted_keys:
                assert running[k][0] < spec.priority, \
                    f"evicted an equal/higher-priority job (seed {seed})"
                del running[k]
            running[key] = (spec.priority, placement)
            key += 1
        # Accounting: free + held == total, with no double claims.
        held = [alloc for _, alloc in running.values()]
        assert_within_capacity(graph, held)
        held_cores = sum(a.ncores for a in held)
        held_gpus = sum(a.ngpus for a in held)
        assert int(graph._fc.sum()) == graph.total_cores - held_cores
        assert int(graph._fg.sum()) == graph.total_gpus - held_gpus
        assert_partition_summaries_consistent(graph)
    for _, alloc in running.values():
        matcher.release(alloc)
    assert int(graph._fc.sum()) == graph.total_cores
    assert int(graph._fg.sum()) == graph.total_gpus
