"""The control plane's HTTP API: one introspectable route table.

Routes are declared as data (:data:`ROUTES`) and dispatched by pattern,
which buys two things:

- the server needs no web framework — a stdlib handler walks the table;
- the API reference cannot rot — ``tests/service/test_api_doc.py``
  asserts every route here is documented in OPERATIONS.md, the same
  doc-sync contract ``test_observability_doc.py`` applies to telemetry.

Handlers take ``(registry, params, query, body)`` and return
``(status, payload)``; payloads are JSON-serializable dicts. Errors are
raised as :class:`~repro.service.registry.RegistryError` subclasses,
whose ``http_status`` the server maps onto the response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import trace
from repro._version import __version__
from repro.service.registry import CampaignRegistry, RegistryError

__all__ = ["Route", "ROUTES", "dispatch", "allowed_methods"]

Handler = Callable[[CampaignRegistry, Dict[str, str], Dict[str, str],
                    Optional[Dict[str, Any]]], Tuple[int, Any]]


@dataclass(frozen=True)
class Route:
    """One API endpoint: ``method pattern`` plus its handler."""

    method: str
    pattern: str  # e.g. "/v1/campaigns/{id}/pause"
    handler: Handler
    description: str

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(self.pattern.strip("/").split("/"))

    def match(self, path: str) -> Optional[Dict[str, str]]:
        """Path parameters if ``path`` matches this pattern, else None."""
        parts = tuple(path.strip("/").split("/"))
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for want, got in zip(self.segments, parts):
            if want.startswith("{") and want.endswith("}"):
                params[want[1:-1]] = got
            elif want != got:
                return None
        return params


# ---------------------------------------------------------------------------
# handlers
# ---------------------------------------------------------------------------

def _health(reg, params, query, body):
    return 200, reg.health()


def _ready(reg, params, query, body):
    if reg.ready():
        return 200, {"ready": True}
    return 503, {"ready": False, "reason": "draining"}


def _info(reg, params, query, body):
    return 200, {
        "service": "repro-control-plane",
        "version": __version__,
        "limits": {
            "max_campaigns_per_tenant": reg.config.max_campaigns_per_tenant,
            "max_campaigns_total": reg.config.max_campaigns_total,
            "max_rounds": reg.config.max_rounds,
            "pool_workers": reg.config.pool_workers,
        },
        "store": type(reg.store).__name__,
    }


def _list_campaigns(reg, params, query, body):
    return 200, {"campaigns": reg.list(tenant=query.get("tenant"))}


def _submit(reg, params, query, body):
    if body is None:
        raise RegistryError("POST /v1/campaigns requires a JSON body")
    handle = reg.submit(body)
    return 201, {"campaign": handle.snapshot()}


def _get_campaign(reg, params, query, body):
    return 200, {"campaign": reg.get(params["id"]).snapshot()}


def _lifecycle(action: str) -> Handler:
    def handler(reg, params, query, body):
        handle = reg.get(params["id"])
        handle.request(action)
        return 200, {"campaign": handle.snapshot()}

    return handler


def _delete_campaign(reg, params, query, body):
    return 200, {"deleted": reg.delete(params["id"])}


def _telemetry(reg, params, query, body):
    return 200, {"telemetry": reg.get(params["id"]).telemetry()}


def _campaign_trace(reg, params, query, body):
    limit = _int_query(query, "limit", default=100, lo=1, hi=10_000)
    return 200, {"spans": reg.get(params["id"]).trace_tail(limit=limit)}


def _daemon_trace(reg, params, query, body):
    limit = _int_query(query, "limit", default=100, lo=1, hi=10_000)
    tracer = trace.get_tracer()
    rows = tracer.rows()[-limit:] if tracer is not None else []
    return 200, {"spans": rows, "tracing": tracer is not None}


def _tenants(reg, params, query, body):
    return 200, {"tenants": reg.tenants()}


def _drain(reg, params, query, body):
    return 202, reg.drain()


def _int_query(query: Dict[str, str], name: str, default: int,
               lo: int, hi: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise RegistryError(f"query parameter {name!r} must be an integer")
    if not lo <= value <= hi:
        raise RegistryError(f"query parameter {name!r} out of [{lo}, {hi}]")
    return value


#: The whole API surface, in documentation order.
ROUTES: List[Route] = [
    Route("GET", "/v1/health", _health,
          "Daemon liveness, campaign counts, store and pool health"),
    Route("GET", "/v1/ready", _ready,
          "Readiness: 200 while accepting submissions, 503 when draining"),
    Route("GET", "/v1/info", _info,
          "Service version, configured limits, store backend"),
    Route("GET", "/v1/campaigns", _list_campaigns,
          "List campaigns (filter with ?tenant=)"),
    Route("POST", "/v1/campaigns", _submit,
          "Submit a campaign; 201 with the new campaign resource"),
    Route("GET", "/v1/campaigns/{id}", _get_campaign,
          "One campaign's state, counters, and namespace"),
    Route("POST", "/v1/campaigns/{id}/pause", _lifecycle("pause"),
          "RUNNING -> PAUSED at the next round boundary"),
    Route("POST", "/v1/campaigns/{id}/resume", _lifecycle("resume"),
          "PAUSED -> RUNNING"),
    Route("POST", "/v1/campaigns/{id}/cancel", _lifecycle("cancel"),
          "Any non-terminal state -> CANCELLED"),
    Route("DELETE", "/v1/campaigns/{id}", _delete_campaign,
          "Forget a terminal campaign and purge its keyspace"),
    Route("GET", "/v1/campaigns/{id}/telemetry", _telemetry,
          "Full telemetry report snapshot for one campaign"),
    Route("GET", "/v1/campaigns/{id}/trace", _campaign_trace,
          "Trace tail scoped to one campaign (?limit=N)"),
    Route("GET", "/v1/trace", _daemon_trace,
          "Daemon-wide trace tail (?limit=N)"),
    Route("GET", "/v1/tenants", _tenants,
          "Per-tenant usage, quotas, and fair-share accounting"),
    Route("POST", "/v1/drain", _drain,
          "Stop accepting submissions; running campaigns finish"),
]


def allowed_methods(path: str) -> List[str]:
    """Methods with a route at this path (for 405 Allow headers)."""
    return sorted({r.method for r in ROUTES if r.match(path) is not None})


def dispatch(registry: CampaignRegistry, method: str, path: str,
             query: Dict[str, str],
             body: Optional[Dict[str, Any]]) -> Tuple[int, Any]:
    """Route one request; returns ``(status, JSON payload)``.

    Unknown path → 404; known path, wrong verb → 405; handler-raised
    :class:`RegistryError` subclasses → their ``http_status``.
    """
    for route in ROUTES:
        if route.method != method:
            continue
        params = route.match(path)
        if params is None:
            continue
        try:
            return route.handler(registry, params, query, body)
        except RegistryError as exc:
            return exc.http_status, {"error": str(exc)}
    allowed = allowed_methods(path)
    if allowed:
        return 405, {"error": f"method {method} not allowed", "allow": allowed}
    return 404, {"error": f"no route for {method} {path}"}
