"""Tests for the Patch Creator, performance models, and profiler."""

import numpy as np
import pytest

from repro.core.patches import Patch, PatchCreator
from repro.core.perfmodel import PerformanceModel
from repro.core.profiling import OccupancyProfiler
from repro.datastore import KVStore
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec
from repro.sched.resources import summit_like
from repro.sims.continuum import ContinuumConfig, ContinuumSim
from repro.util.clock import EventLoop


@pytest.fixture
def snapshot():
    sim = ContinuumSim(ContinuumConfig(grid=32, n_inner=2, n_outer=2,
                                       n_proteins=4, dt=0.05, seed=0))
    sim.step(5)
    return sim.snapshot()


class TestPatchCreator:
    def test_one_patch_per_protein(self, snapshot):
        pc = PatchCreator(patch_grid=9)
        patches = pc.create(snapshot)
        assert len(patches) == 4
        assert pc.patches_created == 4
        assert pc.snapshots_processed == 1

    def test_patch_shape_and_state(self, snapshot):
        pc = PatchCreator(patch_grid=9)
        patch = pc.create(snapshot)[0]
        assert patch.densities.shape == (2, 9, 9)
        assert patch.grid == 9
        assert patch.protein_state in (0, 1)
        assert patch.flat().shape == (2 * 81,)

    def test_ids_unique_across_snapshots(self, snapshot):
        pc = PatchCreator(patch_grid=9)
        a = pc.create(snapshot)
        b = pc.create(snapshot)
        ids = {p.patch_id for p in a + b}
        assert len(ids) == 8

    def test_patch_centered_on_protein(self):
        # A density spike at the protein should appear near the patch center.
        sim = ContinuumSim(ContinuumConfig(grid=32, n_inner=1, n_outer=1,
                                           n_proteins=1, dt=0.05, seed=1))
        pos = sim.proteins.positions[0]
        dx = sim.config.box / sim.config.grid
        ci, cj = int(pos[0] / dx), int(pos[1] / dx)
        sim.inner[0][ci, cj] = 100.0
        # patch_nm wide enough that the 9 samples land on distinct cells
        # of the coarse test grid (production grids are 2400^2, where the
        # default 30 nm resolves to ~72 cells).
        patch = PatchCreator(patch_grid=9, patch_nm=300.0).create(sim.snapshot())[0]
        peak = np.unravel_index(np.argmax(patch.densities[0]), (9, 9))
        assert abs(peak[0] - 4) <= 1 and abs(peak[1] - 4) <= 1

    def test_store_persistence(self, snapshot):
        store = KVStore(nservers=2)
        pc = PatchCreator(patch_grid=9, store=store)
        patches = pc.create(snapshot)
        keys = store.keys("patches/")
        assert len(keys) == len(patches)
        back = Patch.from_bytes(store.read(keys[0]))
        assert back.grid == 9

    def test_bytes_roundtrip(self, snapshot):
        patch = PatchCreator(patch_grid=9).create(snapshot)[0]
        back = Patch.from_bytes(patch.to_bytes())
        assert back.patch_id == patch.patch_id
        np.testing.assert_array_equal(back.densities, patch.densities)
        assert back.protein_state == patch.protein_state

    def test_validation(self):
        with pytest.raises(ValueError):
            PatchCreator(patch_grid=2)
        with pytest.raises(ValueError):
            PatchCreator(patch_nm=0)


class TestPerformanceModel:
    def test_reference_rates(self):
        assert PerformanceModel.continuum_rate(3600) == pytest.approx(0.96)
        assert PerformanceModel.cg_rate(140_000) == pytest.approx(1.04)
        assert PerformanceModel.aa_rate(1_575_000) == pytest.approx(13.98)

    def test_continuum_scales_down_with_cores(self):
        full = PerformanceModel.continuum_rate(3600)
        half = PerformanceModel.continuum_rate(2400)
        assert half < full
        # and does not scale past the reference allocation
        assert PerformanceModel.continuum_rate(7200) == pytest.approx(full)

    def test_rates_fall_with_system_size(self):
        assert PerformanceModel.cg_rate(150_000) < PerformanceModel.cg_rate(130_000)
        assert PerformanceModel.aa_rate(1.6e6) < PerformanceModel.aa_rate(1.5e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceModel.continuum_rate(0)
        with pytest.raises(ValueError):
            PerformanceModel.cg_rate(0)
        with pytest.raises(ValueError):
            PerformanceModel.aa_rate(-5)

    def test_cg_samples_cluster_around_reference(self):
        pm = PerformanceModel(rng=np.random.default_rng(0))
        samples = [pm.sample_cg() for _ in range(300)]
        rates = np.array([s.rate for s in samples])
        sizes = np.array([s.system_size for s in samples])
        assert abs(rates.mean() - 1.04) < 0.05
        assert abs(sizes.mean() - 140_000) < 500

    def test_mpi_bug_slows_cg(self):
        pm1 = PerformanceModel(rng=np.random.default_rng(1), slow_tail_prob=0)
        pm2 = PerformanceModel(rng=np.random.default_rng(1), slow_tail_prob=0)
        ok = np.mean([pm1.sample_cg(mpi_bug=False).rate for _ in range(100)])
        bug = np.mean([pm2.sample_cg(mpi_bug=True).rate for _ in range(100)])
        assert bug == pytest.approx(0.8 * ok, rel=0.01)

    def test_slow_tail_exists(self):
        pm = PerformanceModel(rng=np.random.default_rng(2), slow_tail_prob=0.2)
        rates = np.array([pm.sample_aa().rate for _ in range(500)])
        expected = 13.98
        assert np.sum(rates < 0.85 * expected) > 30  # a visible slow tail

    def test_samples_are_seed_reproducible(self):
        a = PerformanceModel(rng=np.random.default_rng(3)).sample_cg()
        b = PerformanceModel(rng=np.random.default_rng(3)).sample_cg()
        assert a == b


class TestOccupancyProfiler:
    def _loaded_flux(self):
        loop = EventLoop()
        flux = FluxInstance(summit_like(2), loop)
        for _ in range(12):  # exactly fills 12 GPUs
            flux.submit(JobSpec(name="cg-sim", ncores=3, ngpus=1, duration=10_000.0))
        return loop, flux

    def test_poll_reads_occupancy(self):
        loop, flux = self._loaded_flux()
        loop.run_until(60.0)
        prof = OccupancyProfiler(flux)
        ev = prof.poll()
        assert ev.gpu_occupancy == 1.0
        assert 0 < ev.cpu_occupancy < 1.0
        assert ev.running == {"cg-sim": 12}

    def test_scheduled_polling(self):
        loop, flux = self._loaded_flux()
        prof = OccupancyProfiler(flux, interval=100.0)
        prof.start(until=1000.0)
        loop.run_until(1000.0)
        assert len(prof.events) == 10

    def test_headline_stats(self):
        loop, flux = self._loaded_flux()
        prof = OccupancyProfiler(flux, interval=100.0)
        prof.start(until=500.0)
        loop.run_until(500.0)
        head = prof.headline()
        assert head["gpu_fraction_at_98"] > 0.5
        assert 0 <= head["cpu_median"] <= 1

    def test_headline_requires_events(self):
        loop, flux = self._loaded_flux()
        with pytest.raises(ValueError):
            OccupancyProfiler(flux).headline()

    def test_invalid_interval(self):
        loop, flux = self._loaded_flux()
        with pytest.raises(ValueError):
            OccupancyProfiler(flux, interval=0)
