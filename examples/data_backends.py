#!/usr/bin/env python
"""Data-management tour: one payload, three backends, plus pytaridx tricks.

Shows §4.2 in action: the single-URL backend switch, taridx's inode
reduction and crash recovery, and the namespace-move tagging that keeps
feedback cost proportional to ongoing work.

Run:  python examples/data_backends.py
"""

import os
import tempfile
import time

import numpy as np

from repro.datastore import IndexedTar, TaridxStore, open_store, recover_index


def backend_switch(tmp: str) -> None:
    print("--- the single configuration switch ---")
    payload = {"rdf": np.random.default_rng(0).random((6, 24))}
    for url in (f"fs://{tmp}/fs", f"taridx://{tmp}/tar", "kv://4"):
        with open_store(url) as store:
            store.write_npz("rdf/live/frame-0001", payload)
            back = store.read_npz("rdf/live/frame-0001")
            ok = np.array_equal(back["rdf"], payload["rdf"])
            print(f"  {url:<28s} roundtrip {'OK' if ok else 'FAILED'}")


def inode_reduction(tmp: str) -> None:
    print("\n--- taridx: many logical files, few inodes ---")
    store = TaridxStore(os.path.join(tmp, "archive"), max_entries=50_000)
    n = 20_000
    t0 = time.perf_counter()
    for i in range(n):
        store.write(f"analysis/frame-{i:06d}", b"x" * 850)  # ~850 B, like CG frames
    dt = time.perf_counter() - t0
    print(f"  wrote {n:,} logical files in {dt:.2f}s ({n/dt:,.0f} files/s)")
    print(f"  physical inodes on disk: {store.nfiles()} "
          f"(reduction {store.inode_reduction():,.0f}x; paper saw ~9000x)")
    t0 = time.perf_counter()
    rng = np.random.default_rng(1)
    for i in rng.integers(0, n, size=2000):
        store.read(f"analysis/frame-{i:06d}")
    dt = time.perf_counter() - t0
    print(f"  random reads: {2000/dt:,.0f} files/s (paper: ~575 files/s on GPFS)")
    store.close()


def crash_recovery(tmp: str) -> None:
    print("\n--- taridx: crash tolerance ---")
    path = os.path.join(tmp, "crash.tar")
    with IndexedTar(path) as arc:
        arc.append("ckpt", b"possibly-truncated-by-crash")
        arc.append("ckpt", b"reinserted-after-restart")
    os.remove(path + ".idx")  # lose the sidecar entirely
    entries = recover_index(path)
    with IndexedTar(path) as arc:
        print(f"  sidecar lost -> rebuilt {len(entries)} entries from the tar; "
              f"read back: {arc.read('ckpt').decode()!r} (last write wins)")


def namespace_tagging() -> None:
    print("\n--- namespace-move tagging (feedback bookkeeping) ---")
    store = open_store("kv://2")
    for i in range(5):
        store.write(f"rdf/live/f{i}", b"data")
    print(f"  live frames before iteration: {len(store.keys('rdf/live/'))}")
    for key in store.keys("rdf/live/"):
        store.move(key, key.replace("live", "done"))
    print(f"  after tagging: live={len(store.keys('rdf/live/'))}, "
          f"done={len(store.keys('rdf/done/'))} — next iteration scans only new work")


def tiered_storage(tmp: str) -> None:
    print("\n--- tiered storage (RAM disk + shared filesystem) ---")
    from repro.datastore import FSStore, KVStore
    from repro.datastore.tiered import TieredStore

    store = TieredStore(
        fast=KVStore(nservers=2),
        backing=FSStore(os.path.join(tmp, "gpfs")),
        persist_prefixes=("ckpt/",),
    )
    store.write("traj/frame-0001", b"bulk trajectory data")  # RAM disk only
    store.write("ckpt/sim-0001", b"checkpoint")  # written through
    print(f"  scratch durable? {store.durable('traj/frame-0001')}   "
          f"checkpoint durable? {store.durable('ckpt/sim-0001')}")
    store.evict()  # node reboots: the RAM disk is gone
    print(f"  after eviction: checkpoint still readable -> "
          f"{store.read('ckpt/sim-0001').decode()!r}")
    store.close()


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        backend_switch(tmp)
        inode_reduction(tmp)
        crash_recovery(tmp)
        namespace_tagging()
        tiered_storage(tmp)
