"""Tests for the nearest-neighbour backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sampling.ann import ExactIndex, KDTreeIndex, ProjectionIndex

ALL_INDEXES = [ExactIndex, KDTreeIndex, lambda: ProjectionIndex(ncells=4, nprobe=4)]


@pytest.fixture(params=ALL_INDEXES, ids=["exact", "kdtree", "projection-full-probe"])
def index(request):
    return request.param()


class TestCommonBehaviour:
    def test_empty_index_returns_inf(self, index):
        index.build(np.empty((0, 3)))
        out = index.nearest_distance(np.ones((2, 3)))
        assert np.all(np.isinf(out))

    def test_query_on_indexed_point_is_zero(self, index):
        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        index.build(coords)
        d = index.nearest_distance(np.array([[1.0, 1.0]]))
        assert d[0] == pytest.approx(0.0, abs=1e-9)

    def test_known_distance(self, index):
        index.build(np.array([[0.0, 0.0]]))
        d = index.nearest_distance(np.array([[3.0, 4.0]]))
        assert d[0] == pytest.approx(5.0)

    def test_batch_queries(self, index):
        index.build(np.array([[0.0], [10.0]]))
        d = index.nearest_distance(np.array([[1.0], [9.0], [4.0]]))
        np.testing.assert_allclose(d, [1.0, 1.0, 4.0])

    def test_size(self, index):
        index.build(np.random.default_rng(0).random((7, 2)))
        assert index.size == 7

    def test_rebuild_replaces(self, index):
        index.build(np.array([[0.0]]))
        index.build(np.array([[100.0]]))
        d = index.nearest_distance(np.array([[0.0]]))
        assert d[0] == pytest.approx(100.0)


@settings(max_examples=30, deadline=None)
@given(
    coords=hnp.arrays(np.float64, st.tuples(st.integers(1, 30), st.just(4)),
                      elements=st.floats(-100, 100)),
    queries=hnp.arrays(np.float64, st.tuples(st.integers(1, 10), st.just(4)),
                       elements=st.floats(-100, 100)),
)
def test_property_kdtree_matches_exact(coords, queries):
    exact, tree = ExactIndex(), KDTreeIndex()
    exact.build(coords)
    tree.build(coords)
    # ExactIndex uses the ||q||^2 - 2q.c + ||c||^2 expansion, which loses
    # a few ULPs to cancellation at large coordinates — hence atol 1e-5.
    np.testing.assert_allclose(
        exact.nearest_distance(queries), tree.nearest_distance(queries), rtol=1e-6, atol=1e-5
    )


class TestIncrementalAdd:
    def test_add_matches_rebuild(self, index):
        rng = np.random.default_rng(10)
        base = rng.random((60, 4))
        extra = rng.random((25, 4))
        queries = rng.random((30, 4))
        index.build(base)
        index.add(extra)
        rebuilt = type(index)() if not isinstance(index, ProjectionIndex) else None
        if rebuilt is None:
            # Same cell geometry requires the same anchors; retrain path
            # already covers small sizes, so compare against a full-probe
            # twin seeded identically.
            rebuilt = ProjectionIndex(ncells=index.ncells, nprobe=index.nprobe,
                                      seed=index.seed)
        rebuilt.build(np.vstack([base, extra]))
        np.testing.assert_allclose(
            index.nearest_distance(queries),
            rebuilt.nearest_distance(queries),
            rtol=1e-9, atol=1e-12,
        )
        assert index.size == 85

    def test_add_into_empty(self, index):
        index.build(np.empty((0, 3)))
        index.add(np.array([[0.0, 0.0, 0.0]]))
        d = index.nearest_distance(np.array([[3.0, 4.0, 0.0]]))
        assert d[0] == pytest.approx(5.0)

    def test_delta_distance_is_distance_to_new_points_only(self, index):
        rng = np.random.default_rng(11)
        index.build(rng.random((40, 3)))
        queries = rng.random((10, 3))
        new = np.array([[100.0, 100.0, 100.0]])
        d = index.delta_distance(queries, new)
        want = np.sqrt(((queries - new) ** 2).sum(axis=1))
        np.testing.assert_allclose(d, want, rtol=1e-9)

    def test_kdtree_pending_buffer_flushes_amortized(self):
        tree = KDTreeIndex(pending_cap=4)
        tree.build(np.zeros((1, 2)))
        for i in range(1, 9):
            tree.add(np.array([[float(i), 0.0]]))
        # Flushes happen when pending >= max(cap, tree size), never per add.
        assert tree.stats.flushes >= 1
        assert tree.stats.flushes < 8
        d = tree.nearest_distance(np.array([[7.6, 0.0]]))
        assert d[0] == pytest.approx(0.4)

    def test_stats_count_builds_and_queries(self, index):
        index.build(np.zeros((3, 2)))
        index.nearest_distance(np.ones((5, 2)))
        assert index.stats.builds >= 1
        assert index.stats.queries == 5  # counts query rows, not calls
        if not isinstance(index, KDTreeIndex):
            # distance_evals counts brute-force expansion work; a KD-tree
            # with an empty pending overlay answers from the tree alone.
            assert index.stats.distance_evals > 0


class TestProjectionIndex:
    def test_full_probe_is_exact(self):
        rng = np.random.default_rng(3)
        coords = rng.random((200, 9))
        queries = rng.random((50, 9))
        exact = ExactIndex()
        exact.build(coords)
        approx = ProjectionIndex(ncells=8, nprobe=8)
        approx.build(coords)
        np.testing.assert_allclose(
            exact.nearest_distance(queries), approx.nearest_distance(queries), rtol=1e-9
        )

    def test_partial_probe_overestimates_at_worst(self):
        # Approximation can only miss the true nearest -> distance >= exact.
        rng = np.random.default_rng(4)
        coords = rng.random((500, 9))
        queries = rng.random((100, 9))
        exact = ExactIndex()
        exact.build(coords)
        approx = ProjectionIndex(ncells=16, nprobe=1)
        approx.build(coords)
        d_exact = exact.nearest_distance(queries)
        d_approx = approx.nearest_distance(queries)
        assert np.all(d_approx >= d_exact - 1e-12)

    def test_partial_probe_recall_is_reasonable(self):
        rng = np.random.default_rng(5)
        coords = rng.random((1000, 9))
        queries = rng.random((200, 9))
        exact = ExactIndex()
        exact.build(coords)
        approx = ProjectionIndex(ncells=16, nprobe=4)
        approx.build(coords)
        d_exact = exact.nearest_distance(queries)
        d_approx = approx.nearest_distance(queries)
        recall = np.mean(np.isclose(d_exact, d_approx))
        assert recall > 0.5  # probing 1/4 of cells finds most true NNs

    def test_fewer_points_than_cells(self):
        approx = ProjectionIndex(ncells=64, nprobe=64)
        approx.build(np.array([[0.0, 0.0], [5.0, 5.0]]))
        d = approx.nearest_distance(np.array([[0.0, 1.0]]))
        assert d[0] == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProjectionIndex(ncells=0)
        with pytest.raises(ValueError):
            ProjectionIndex(ncells=4, nprobe=0)
