"""Tests for the WM's overlapping (production-style) round mode."""

import pytest

from repro.sched.adapter import ThreadAdapter
from tests.core.test_wm import make_wm


class TestOverlappingRounds:
    def test_wait_false_returns_before_jobs_finish(self):
        wm, _ = make_wm()
        wm.round(wait=False)
        # Jobs may still be in flight; the WM did not block on them.
        adapter = wm.adapter
        assert isinstance(adapter, ThreadAdapter)
        adapter.wait_all()  # drain before asserting final state
        assert wm.counters["patches"] == 3

    def test_overlapped_rounds_converge_to_same_work(self):
        # Several non-blocking rounds followed by a drain produce the
        # same kind of progress as blocking rounds (counts, not exact
        # values — scheduling interleavings differ by design).
        wm, store = make_wm()
        for _ in range(3):
            wm.round(wait=False)
        wm.adapter.wait_all()
        wm.task3_manage_jobs()  # pick up buffers the drain just filled
        wm.adapter.wait_all()
        c = wm.counters
        assert c["snapshots"] == 3
        assert c["patches_selected"] > 0
        assert c["cg_finished"] > 0
        assert len(store.keys("rdf/live/")) + len(store.keys("rdf/done/")) > 0

    def test_counters_never_go_backwards_under_overlap(self):
        wm, _ = make_wm()
        prev = dict(wm.counters)
        for _ in range(3):
            now = wm.round(wait=False)
            for key in prev:
                assert now[key] >= prev[key]
            prev = now
        wm.adapter.wait_all()
