"""Tests for deterministic named RNG streams."""

import numpy as np

from repro.util.rng import RngStream, spawn_rngs


class TestRngStream:
    def test_same_seed_same_name_reproduces(self):
        a = RngStream(42).child("x").random(100)
        b = RngStream(42).child("x").random(100)
        np.testing.assert_array_equal(a, b)

    def test_different_names_are_independent(self):
        root = RngStream(42)
        a = root.child("x").random(100)
        b = root.child("y").random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStream(1).child("x").random(100)
        b = RngStream(2).child("x").random(100)
        assert not np.array_equal(a, b)

    def test_child_is_cached(self):
        root = RngStream(0)
        assert root.child("x") is root.child("x")

    def test_fresh_child_resets_stream(self):
        root = RngStream(7)
        first = root.child("s").random(10)
        root.child("s").random(10)  # advance state
        again = root.fresh_child("s").random(10)
        np.testing.assert_array_equal(first, again)

    def test_adding_stream_does_not_perturb_existing(self):
        # The key property: consumers added later never shift earlier draws.
        root1 = RngStream(9)
        a1 = root1.child("a").random(50)

        root2 = RngStream(9)
        root2.child("zzz")  # a new consumer, created first
        a2 = root2.child("a").random(50)
        np.testing.assert_array_equal(a1, a2)


def test_spawn_rngs_builds_named_dict():
    rngs = spawn_rngs(3, ["a", "b"])
    assert set(rngs) == {"a", "b"}
    assert not np.array_equal(rngs["a"].random(10), rngs["b"].random(10))
