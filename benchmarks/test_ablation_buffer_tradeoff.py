"""Ablation S7 (§4.4 Task 3): the readiness-vs-staleness buffer trade-off.

"To prevent GPU downtime, sets of CG and AA simulations are kept
prepared (setup completed) in anticipation. The sizes of these sets are
a trade-off between readiness for availability of resources and
simulating stale configurations. This user-configurable trade-off
governs the utilization of CPUs."

We sweep the buffer provisioning factor on identical campaigns: under-
provisioned buffers starve the GPUs of prepared systems (occupancy
decays as sims turn over); generous buffers keep GPUs saturated at the
cost of more CPU-hours in setup jobs.
"""

import numpy as np
from conftest import report

from repro.core.campaign import CampaignConfig, CampaignSimulator, RunSpec

FACTORS = [0.2, 0.8, 1.8]


def _campaign(factor):
    cfg = CampaignConfig(
        ledger=(RunSpec(40, 12, 1),),
        buffer_provision_factor=factor,
        # Faster turnover than the production campaign so under-
        # provisioning bites within one 12h run (but gentle enough that
        # a provisioned buffer CAN keep up within the CPU budget).
        cg_retire_mean_days=0.5,
        aa_retire_mean_days=0.5,
        seed=31,
    )
    res = CampaignSimulator(cfg).run()
    gpu = np.array([e.gpu_occupancy for e in res.profile_events])
    cpu = np.array([e.cpu_occupancy for e in res.profile_events])
    tail = slice(len(gpu) // 2, None)  # past the load phase
    return float(gpu[tail].mean()), float(cpu[tail].mean())


def test_ablation_buffer_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: [(f, *_campaign(f)) for f in FACTORS], rounds=1, iterations=1
    )
    lines = [f"{'factor':>7} {'GPU occ (steady)':>17} {'CPU occ (steady)':>17}"]
    for f, gpu, cpu in rows:
        lines.append(f"{f:>7.1f} {gpu:>16.1%} {cpu:>16.1%}")
    lines.append("readiness buys GPU occupancy with CPU time — the paper's knob")
    report("ablation_buffer_tradeoff", lines)

    gpus = [gpu for _f, gpu, _c in rows]
    cpus = [cpu for _f, _g, cpu in rows]
    # Starved buffers lose GPU occupancy; provisioned ones hold it.
    assert gpus[0] < gpus[-1] - 0.05
    assert gpus[-1] > 0.85
    # And the cost side: more provisioning, more CPU spent on setup.
    assert cpus[-1] > cpus[0]
