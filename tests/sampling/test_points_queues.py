"""Tests for point objects and capped candidate queues."""

import numpy as np
import pytest

from repro.sampling.points import Point, PointStore
from repro.sampling.queues import CandidateQueue, QueueFullPolicy


def P(pid, *coords):
    return Point(id=pid, coords=np.array(coords, dtype=float))


class TestPoint:
    def test_coords_are_immutable(self):
        p = P("a", 1.0, 2.0)
        with pytest.raises(ValueError):
            p.coords[0] = 9.0

    def test_dim(self):
        assert P("a", 1, 2, 3).dim == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Point(id="a", coords=np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Point(id="a", coords=np.zeros((2, 2)))


class TestPointStore:
    def test_add_and_get(self):
        s = PointStore(dim=2)
        s.add(P("a", 1, 2))
        got = s.get("a")
        np.testing.assert_array_equal(got.coords, [1, 2])

    def test_duplicate_id_rejected(self):
        s = PointStore(dim=2)
        s.add(P("a", 1, 2))
        with pytest.raises(KeyError):
            s.add(P("a", 3, 4))

    def test_wrong_dim_rejected(self):
        s = PointStore(dim=2)
        with pytest.raises(ValueError):
            s.add(P("a", 1, 2, 3))

    def test_grows_past_capacity(self):
        s = PointStore(dim=1, capacity=2)
        for i in range(100):
            s.add(P(f"p{i}", float(i)))
        assert len(s) == 100
        np.testing.assert_array_equal(s.coords_view()[:, 0], np.arange(100.0))

    def test_coords_view_readonly(self):
        s = PointStore(dim=1)
        s.add(P("a", 1.0))
        with pytest.raises(ValueError):
            s.coords_view()[0, 0] = 5.0

    def test_row_id_mapping(self):
        s = PointStore(dim=1)
        s.add(P("a", 1.0))
        s.add(P("b", 2.0))
        assert s.row_of("b") == 1
        assert s.id_at(1) == "b"
        assert "b" in s and "c" not in s

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            PointStore(dim=0)


class TestCandidateQueue:
    def test_fifo_order(self):
        q = CandidateQueue("q", cap=10)
        for i in range(3):
            q.add(P(f"p{i}", float(i)))
        assert q.ids() == ["p0", "p1", "p2"]

    def test_duplicate_id_ignored(self):
        q = CandidateQueue("q")
        assert q.add(P("a", 1.0))
        assert not q.add(P("a", 2.0))
        assert len(q) == 1

    def test_cap_drop_oldest(self):
        q = CandidateQueue("q", cap=3, policy=QueueFullPolicy.DROP_OLDEST)
        for i in range(5):
            q.add(P(f"p{i}", float(i)))
        assert q.ids() == ["p2", "p3", "p4"]
        assert q.dropped == 2

    def test_cap_drop_new(self):
        q = CandidateQueue("q", cap=3, policy=QueueFullPolicy.DROP_NEW)
        for i in range(5):
            q.add(P(f"p{i}", float(i)))
        assert q.ids() == ["p0", "p1", "p2"]
        assert q.dropped == 2

    def test_pop_specific(self):
        q = CandidateQueue("q")
        q.add(P("a", 1.0))
        q.add(P("b", 2.0))
        got = q.pop("a")
        assert got.id == "a"
        assert q.ids() == ["b"]

    def test_pop_missing_raises(self):
        q = CandidateQueue("q")
        with pytest.raises(KeyError):
            q.pop("nope")

    def test_discard_is_silent(self):
        q = CandidateQueue("q")
        q.discard("nope")  # no error

    def test_full_property(self):
        q = CandidateQueue("q", cap=1)
        assert not q.full
        q.add(P("a", 1.0))
        assert q.full

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            CandidateQueue("q", cap=0)

    def test_duplicates_distinct_from_dropped(self):
        q = CandidateQueue("q", cap=2, policy=QueueFullPolicy.DROP_OLDEST)
        q.add(P("a", 1.0))
        q.add(P("a", 9.0))  # duplicate: ignored
        q.add(P("b", 2.0))
        q.add(P("c", 3.0))  # evicts a
        assert q.duplicates == 1
        assert q.dropped == 1
        assert q.ids() == ["b", "c"]

    def test_oldest_and_get(self):
        q = CandidateQueue("q")
        assert q.oldest() is None
        q.add(P("a", 1.0))
        q.add(P("b", 2.0))
        assert q.oldest() == "a"
        assert q.get("b").id == "b"
        q.pop("a")
        assert q.oldest() == "b"
