"""Tests for the Maestro-like adapter, bundling ablation, and emulator."""

import pytest

from repro.sched.adapter import FluxAdapter, ThreadAdapter
from repro.sched.bundling import BundleExpander, bundle_gpu_jobs, bundle_utilization
from repro.sched.emulator import compare_policies, paper_job_mix, run_policy_emulation
from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec, JobState
from repro.sched.matcher import MatchPolicy
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop


class TestFluxAdapter:
    def test_submit_poll_cancel(self):
        loop = EventLoop()
        adapter = FluxAdapter(FluxInstance(summit_like(1), loop))
        rec = adapter.submit(JobSpec(name="cg", ncores=1, ngpus=1, duration=10.0))
        assert adapter.poll(rec.job_id) is JobState.PENDING
        loop.run_until(100.0)
        assert adapter.poll(rec.job_id) is JobState.COMPLETED
        adapter.cancel(rec.job_id)  # no-op on terminal


class TestThreadAdapter:
    def test_runs_real_function(self):
        adapter = ThreadAdapter(max_workers=2)
        rec = adapter.submit(JobSpec(name="calc", ncores=1), fn=lambda: 6 * 7)
        adapter.wait_all()
        assert rec.state is JobState.COMPLETED
        assert rec.result == 42
        adapter.shutdown()

    def test_failure_is_captured_not_raised(self):
        adapter = ThreadAdapter()

        def boom():
            raise RuntimeError("sim crashed")

        rec = adapter.submit(JobSpec(name="bad", ncores=1), fn=boom)
        adapter.wait_all()
        assert rec.state is JobState.FAILED
        assert isinstance(rec.result, RuntimeError)
        adapter.shutdown()

    def test_on_complete_callback(self):
        adapter = ThreadAdapter()
        done = []
        adapter.submit(JobSpec(name="x", ncores=1), fn=lambda: 1, on_complete=done.append)
        adapter.wait_all()
        assert len(done) == 1
        adapter.shutdown()

    def test_poll(self):
        adapter = ThreadAdapter()
        rec = adapter.submit(JobSpec(name="x", ncores=1), fn=lambda: None)
        adapter.wait_all()
        assert adapter.poll(rec.job_id) is JobState.COMPLETED
        adapter.shutdown()


class TestBundling:
    def _sims(self, n, base=100.0):
        return [
            JobSpec(name="cg", ncores=3, ngpus=1, duration=base + 10 * i, tag=f"s{i}")
            for i in range(n)
        ]

    def test_bundles_pack_by_gpu_count(self):
        bundles = bundle_gpu_jobs(self._sims(12), gpus_per_node=6)
        assert len(bundles) == 2
        assert all(b.exclusive for b in bundles)

    def test_bundle_duration_is_max_of_members(self):
        bundles = bundle_gpu_jobs(self._sims(6), gpus_per_node=6)
        assert bundles[0].duration == 150.0

    def test_partial_last_bundle(self):
        bundles = bundle_gpu_jobs(self._sims(8), gpus_per_node=6)
        assert len(bundles) == 2
        assert BundleExpander(bundles[1]).nmembers() == 2

    def test_member_tags_preserved(self):
        bundles = bundle_gpu_jobs(self._sims(6), gpus_per_node=6)
        assert BundleExpander(bundles[0]).member_tags() == [f"s{i}" for i in range(6)]

    def test_rejects_non_gpu_jobs(self):
        with pytest.raises(ValueError):
            bundle_gpu_jobs([JobSpec(name="cpu", ncores=24)], 6)

    def test_unbundled_utilization_is_one(self):
        bundled, unbundled = bundle_utilization([100.0] * 6, 6)
        assert unbundled == 1.0
        assert bundled == pytest.approx(1.0)  # identical durations: no waste

    def test_skewed_durations_waste_gpu_time(self):
        # One straggler keeps the node alive: the paper's 1/6 worst case.
        durations = [10.0, 10.0, 10.0, 10.0, 10.0, 600.0]
        bundled, _ = bundle_utilization(durations, 6)
        assert bundled == pytest.approx(650.0 / 3600.0)
        assert bundled < 0.2

    def test_worst_case_approaches_one_sixth(self):
        durations = [1e-9] * 5 + [100.0]
        bundled, _ = bundle_utilization(durations, 6)
        assert bundled == pytest.approx(1 / 6, rel=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bundle_utilization([], 6)


class TestEmulator:
    def test_job_mix_shape(self):
        mix = paper_job_mix(scale=1.0)
        assert len(mix) == 24_001
        assert mix[0].nnodes == 150
        assert all(s.ngpus == 1 for s in mix[1:])

    def test_scaled_mix(self):
        mix = paper_job_mix(scale=0.01)
        assert len(mix) == 241
        assert mix[0].nnodes == 1

    def test_both_policies_place_everything(self):
        results = compare_policies(scale=0.02)  # 80 nodes, 480 GPU jobs
        for r in results.values():
            assert r.matched == r.njobs  # machine is exactly big enough

    def test_first_match_visits_far_fewer_vertices(self):
        results = compare_policies(scale=0.02)
        ratio = (
            results["low-id-first"].vertices_visited
            / results["first-match"].vertices_visited
        )
        assert ratio > 20  # orders-of-magnitude gap, grows with scale

    def test_visit_gap_grows_with_scale(self):
        small = compare_policies(scale=0.01)
        large = compare_policies(scale=0.04)
        r_small = (
            small["low-id-first"].vertices_visited
            / small["first-match"].vertices_visited
        )
        r_large = (
            large["low-id-first"].vertices_visited
            / large["first-match"].vertices_visited
        )
        assert r_large > r_small

    def test_result_fields(self):
        r = run_policy_emulation(MatchPolicy.FIRST_MATCH, scale=0.01)
        assert r.policy == "first-match"
        assert r.wall_seconds >= 0
        assert r.visits_per_job() > 0
