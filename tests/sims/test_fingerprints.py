"""Tests for lipid fingerprints and enrichment profiles."""

import numpy as np
import pytest

from repro.sims.continuum import ContinuumConfig, ContinuumSim
from repro.sims.continuum.analysis import (
    enrichment_profile,
    fingerprint_at,
    snapshot_fingerprints,
)

CFG = ContinuumConfig(grid=32, n_inner=3, n_outer=1, n_proteins=3, dt=0.05, seed=2)


@pytest.fixture
def snapshot():
    sim = ContinuumSim(CFG)
    sim.step(10)
    return sim.snapshot()


class TestFingerprint:
    def test_composition_sums_to_one(self, snapshot):
        fp = fingerprint_at(snapshot, 0)
        assert fp.composition.sum() == pytest.approx(1.0)
        assert fp.composition.shape == (3,)

    def test_uniform_fields_give_unit_enrichment(self, snapshot):
        snap = snapshot
        snap.inner[:] = 1.0  # flatten everything
        fp = fingerprint_at(snap, 0)
        np.testing.assert_allclose(fp.enrichment, 1.0, rtol=1e-9)

    def test_detects_engineered_enrichment(self):
        sim = ContinuumSim(CFG)
        snap = sim.snapshot()
        pos = snap.protein_positions[0]
        grid = snap.grid_size
        dx = snap.box / grid
        ci, cj = int(pos[0] / dx), int(pos[1] / dx)
        # Pump lipid type 1 around protein 0 only.
        snap.inner[1][max(ci - 2, 0): ci + 3, max(cj - 2, 0): cj + 3] *= 10
        fp = fingerprint_at(snap, 0, radius_um=0.06)
        assert fp.most_enriched_type() == 1
        assert fp.enrichment[1] > fp.enrichment[0]

    def test_all_proteins(self, snapshot):
        fps = snapshot_fingerprints(snapshot)
        assert len(fps) == 3
        assert {fp.protein_index for fp in fps} == {0, 1, 2}
        assert all(fp.protein_state in (0, 1) for fp in fps)

    def test_bad_index(self, snapshot):
        with pytest.raises(IndexError):
            fingerprint_at(snapshot, 99)

    def test_radius_too_small(self, snapshot):
        with pytest.raises(ValueError):
            fingerprint_at(snapshot, 0, radius_um=1e-9)


class TestEnrichmentProfile:
    def test_shapes(self, snapshot):
        prof = enrichment_profile(snapshot, 0)
        assert prof["radii"].shape == (8,)
        assert prof["enrichment"].shape == (3, 8)

    def test_far_field_near_bulk(self, snapshot):
        prof = enrichment_profile(snapshot, 0,
                                  radii_um=np.linspace(0.05, 0.45, 6))
        outer = prof["enrichment"][:, -2:]
        assert np.all(np.abs(outer[outer > 0] - 1.0) < 0.5)

    def test_feedback_moves_the_profile(self):
        """The verification probe: strong positive coupling on type 0
        raises its near-protein enrichment over time."""
        sim = ContinuumSim(CFG)
        g_in = np.zeros((3, 2)); g_in[0] = 6.0
        sim.update_couplings(g_in, np.zeros((1, 2)))
        before = enrichment_profile(sim.snapshot(), 0,
                                    radii_um=np.array([0.05]))["enrichment"][0, 0]
        sim.step(300)
        after = enrichment_profile(sim.snapshot(), 0,
                                   radii_um=np.array([0.05]))["enrichment"][0, 0]
        assert after > before
