"""A networked KV server/client: the Redis substitute over real sockets.

The in-process :mod:`~repro.datastore.kvstore` models the cluster's
semantics; this module provides the same operations over actual TCP so
deployments where components live in different processes (the paper's
WM + thousands of simulation jobs) exercise a real wire protocol.

Protocol (text header + raw payload, one request per round trip)::

    request : <CMD> [args...] <payload_len>\\n<payload bytes>
    response: OK <len>\\n<payload>   |   NF\\n   |   ERR <message>\\n

Commands: PING, SET key, GET key, DEL key, KEYS prefix, RENAME src dst,
LEN, FLUSH, SHUTDOWN. A :class:`NetKVCluster` client routes keys over
several servers with the same hash-slot rule as the in-process cluster.

Transport resilience (§5.1 / §6 — the in-memory store is the campaign's
availability bottleneck):

- every client operation runs under a per-operation socket timeout and
  a capped exponential-backoff retry loop (:class:`TransportConfig`);
  a dead or flapping server surfaces as
  :class:`~repro.datastore.base.StoreUnavailable` instead of a hang;
- reads are buffered (:class:`_RecvBuffer`) on both sides instead of
  one ``recv()`` per header byte — see
  ``benchmarks/test_ext_netkv_transport.py`` for the measured win;
- the server validates frames defensively (length fields, header size,
  key charset) and *closes* a connection it can no longer trust rather
  than desyncing on the next request;
- a :class:`~repro.util.faults.NetworkFaultInjector` can be plugged
  into the server to rehearse drops, delays, half-closes, and garbage;
- every retry/timeout/reconnect and round-trip latency lands in a
  shared :class:`~repro.datastore.stats.TransportStats` that
  :func:`repro.core.telemetry.collect_telemetry` reports.
"""

from __future__ import annotations

import dataclasses
import socket
import socketserver
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import trace
from repro.datastore.base import (
    DataStore,
    KeyNotFound,
    StoreError,
    StoreUnavailable,
    validate_key,
)
from repro.datastore.kvstore import KVServer, key_slot
from repro.datastore.stats import TransportStats
from repro.util.faults import NetworkFaultInjector

__all__ = [
    "TransportConfig",
    "WireProtocolError",
    "NetKVServer",
    "NetKVClient",
    "NetKVCluster",
    "NetKVStore",
]

_MAX_HEADER = 4096
_RECV_CHUNK = 65536


class WireProtocolError(StoreError):
    """A frame violated the wire protocol (bad length, oversized header,
    forbidden key bytes). The connection that produced it is untrusted:
    the peer closes it instead of guessing where the next frame starts."""


@dataclass(frozen=True)
class TransportConfig:
    """Client-side transport knobs (the ``[transport]`` config section).

    ``op_timeout`` bounds every socket send/recv; ``retries`` is how
    many times a failed operation is re-attempted on a fresh connection
    before :class:`StoreUnavailable`; the backoff between attempts is
    ``min(backoff_max, backoff_base * 2**attempt)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]`` so a thousand clients
    recovering from one server blip don't reconnect in lockstep.
    """

    op_timeout: float = 5.0
    connect_timeout: float = 2.0
    retries: int = 4
    backoff_base: float = 0.02
    backoff_max: float = 1.0
    jitter: float = 0.5
    max_payload: int = 256 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.op_timeout <= 0 or self.connect_timeout <= 0:
            raise ValueError("timeouts must be > 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < self.backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_max")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.max_payload < 1:
            raise ValueError("max_payload must be >= 1")


class _RecvBuffer:
    """Buffered reads over a socket: one ``recv()`` per chunk, not per byte.

    EOF raises :class:`ConnectionError` (retryable transport failure);
    an oversized header raises :class:`WireProtocolError` (the stream
    can no longer be framed).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def _fill(self) -> None:
        chunk = self._sock.recv(_RECV_CHUNK)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        self._buf.extend(chunk)

    def recv_line(self, limit: int = _MAX_HEADER) -> bytes:
        """Read up to and including a newline; return it without the newline."""
        while True:
            idx = self._buf.find(b"\n")
            if idx != -1:
                if idx > limit:
                    raise WireProtocolError(f"header exceeds {limit} bytes")
                line = bytes(self._buf[:idx])
                del self._buf[: idx + 1]
                return line
            if len(self._buf) > limit:
                raise WireProtocolError(f"header exceeds {limit} bytes")
            self._fill()

    def recv_exact(self, n: int) -> bytes:
        while len(self._buf) < n:
            self._fill()
        data = bytes(self._buf[:n])
        del self._buf[:n]
        return data


def _recv_line_unbuffered(sock: socket.socket) -> bytes:
    """The pre-hardening byte-at-a-time header read.

    Kept only as the baseline for the buffered-reader micro-benchmark
    (``benchmarks/test_ext_netkv_transport.py``); production paths use
    :class:`_RecvBuffer`.
    """
    buf = bytearray()
    while len(buf) < _MAX_HEADER:
        b = sock.recv(1)
        if not b:
            raise StoreError("connection closed mid-header")
        if b == b"\n":
            return bytes(buf)
        buf.extend(b)
    raise StoreError("header too long")


def _recv_exact_unbuffered(sock: socket.socket, n: int) -> bytes:
    """The pre-hardening payload read (benchmark baseline, see above)."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, _RECV_CHUNK))
        if not chunk:
            raise StoreError("connection closed mid-payload")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _check_wire_key(key: str) -> str:
    """Reject keys the text protocol cannot carry unambiguously.

    The header is whitespace-split, so keys with spaces would silently
    truncate; NUL would corrupt the KEYS separator; newlines would
    desync framing. Checked on both ends — at the client before bytes
    leave, and at the server against hand-rolled peers.
    """
    if not key:
        raise WireProtocolError("empty key")
    if any(c in key for c in (" ", "\t", "\n", "\r", "\x00")):
        raise WireProtocolError(f"key contains bytes the wire protocol reserves: {key!r}")
    return key


class _Handler(socketserver.BaseRequestHandler):
    """One request-response exchange per connection round trip.

    Connections are persistent: the handler loops until the client
    disconnects, sends SHUTDOWN, or violates the protocol. A violated
    connection gets one ERR frame and is closed — after a malformed
    SET header the payload boundary is unknowable, and continuing would
    parse payload bytes as the next header (the desync bug).
    """

    def handle(self) -> None:  # noqa: C901 - a protocol switch is a switch
        server: "NetKVServer" = self.server.owner  # type: ignore[attr-defined]
        sock = self.request
        injector = server.fault_injector
        if injector is not None and injector.connection_fate() == "drop":
            return  # close before reading anything
        server._register(sock)
        try:
            self._serve(server, sock, injector)
        finally:
            server._unregister(sock)

    def _serve(self, server: "NetKVServer", sock: socket.socket,
               injector: Optional[NetworkFaultInjector]) -> None:
        buf = _RecvBuffer(sock)
        while True:
            try:
                header = buf.recv_line()
            except (ConnectionError, OSError):
                return  # client went away
            except WireProtocolError as exc:
                self._send_err(sock, str(exc))
                return
            if not header:
                # A blank line cannot start a request; before the fix this
                # `continue`d and spun forever on a client sending "\n"s.
                self._send_err(sock, "empty header")
                return
            with trace.span("netkv.handle") as sp:
                if injector is not None:
                    fate = injector.request_fate()
                    if fate == "delay":
                        if sp:
                            sp.event("fault", fate="delay",
                                     seconds=injector.delay_seconds)
                        time.sleep(injector.delay_seconds)
                    elif fate == "close":
                        if sp:
                            sp.event("fault", fate="close")
                        return
                    elif fate == "garbage":
                        if sp:
                            sp.event("fault", fate="garbage")
                        try:
                            sock.sendall(injector.garbage_bytes)
                        except OSError:
                            pass
                        return
                try:
                    parts = header.decode("utf-8").split()
                except UnicodeDecodeError:
                    self._send_err(sock, "header is not UTF-8")
                    return
                cmd, args = parts[0].upper(), parts[1:]
                if sp:
                    sp.set(cmd=cmd)
                try:
                    payload = b""
                    if cmd == "SET":
                        payload, args = self._read_set_payload(buf, args, server)
                    response = self._dispatch(server, cmd, args, payload)
                except KeyNotFound:
                    sock.sendall(b"NF\n")
                    continue
                except WireProtocolError as exc:
                    # Framing is broken (bad length field, oversized payload):
                    # the bytes that follow cannot be trusted as a header.
                    self._send_err(sock, str(exc))
                    return
                except (ConnectionError, OSError):
                    return
                except Exception as exc:  # application errors become ERR frames
                    msg = str(exc).replace("\n", " ")[:500]
                    sock.sendall(f"ERR {msg}\n".encode("utf-8"))
                    continue
                if response is None:
                    return  # SHUTDOWN
                sock.sendall(f"OK {len(response)}\n".encode("utf-8") + response)

    @staticmethod
    def _send_err(sock: socket.socket, msg: str) -> None:
        try:
            sock.sendall(f"ERR {msg}\n".encode("utf-8", "replace"))
        except OSError:
            pass

    @staticmethod
    def _read_set_payload(buf: _RecvBuffer, args: List[str],
                          server: "NetKVServer") -> Tuple[bytes, List[str]]:
        """Parse and read a SET payload, or raise :class:`WireProtocolError`."""
        if len(args) < 2:
            raise WireProtocolError("SET needs a key and a payload length")
        try:
            length = int(args[-1])
        except ValueError:
            raise WireProtocolError(f"SET length is not an integer: {args[-1]!r}") from None
        if length < 0 or length > server.max_payload:
            raise WireProtocolError(f"SET length out of range: {length}")
        return buf.recv_exact(length), args[:-1]

    @staticmethod
    def _dispatch(server: "NetKVServer", cmd: str, args: List[str],
                  payload: bytes) -> Optional[bytes]:
        store = server.backend
        with server.lock:
            if cmd == "PING":
                return b"PONG"
            if cmd == "SET":
                store.set(_check_wire_key(args[0]), payload)
                return b""
            if cmd == "GET":
                return store.get(args[0])
            if cmd == "DEL":
                store.delete(args[0])
                return b""
            if cmd == "KEYS":
                prefix = args[0] if args else ""
                return "\x00".join(sorted(store.scan(prefix))).encode("utf-8")
            if cmd == "RENAME":
                store.rename(args[0], _check_wire_key(args[1]))
                return b""
            if cmd == "LEN":
                return str(len(store)).encode("utf-8")
            if cmd == "FLUSH":
                store.flush()
                return b""
            if cmd == "SHUTDOWN":
                threading.Thread(target=server.stop, daemon=True).start()
                return None
            raise StoreError(f"unknown command {cmd!r}")


class _TCPServer(socketserver.ThreadingTCPServer):
    # Restarting a shard on its old port must not fail on TIME_WAIT —
    # the resilience tests stop and revive servers at the same address.
    allow_reuse_address = True
    daemon_threads = True


class NetKVServer:
    """One networked shard wrapping an in-memory :class:`KVServer`.

    ``fault_injector`` plugs a
    :class:`~repro.util.faults.NetworkFaultInjector` into the accept
    and request paths for degraded-network testing.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 fault_injector: Optional[NetworkFaultInjector] = None,
                 max_payload: int = 256 * 1024 * 1024) -> None:
        self.backend = KVServer()
        self.lock = threading.Lock()
        self.fault_injector = fault_injector
        self.max_payload = max_payload
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.owner = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._conn_lock = threading.Lock()

    def _register(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._conns.add(sock)

    def _unregister(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._conns.discard(sock)

    @property
    def address(self) -> Tuple[str, int]:
        return self._tcp.server_address  # type: ignore[return-value]

    def start(self) -> "NetKVServer":
        self._thread = threading.Thread(target=self._tcp.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop listening AND sever live connections.

        Without the second step, handler threads on established
        connections would keep serving a "stopped" shard — a zombie the
        restart/resilience semantics (and tests) cannot tolerate.
        """
        self._tcp.shutdown()
        self._tcp.server_close()
        with self._conn_lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "NetKVServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class NetKVClient:
    """A connection to one shard with timeouts, reconnect, and retries.

    The connection is opened lazily and re-opened transparently: any
    timeout, connection failure, or malformed response closes the
    socket, waits out a jittered backoff, and re-attempts on a fresh
    connection until the retry budget is spent, at which point
    :class:`StoreUnavailable` is raised. Application-level outcomes
    (``NF`` → :class:`KeyNotFound`, ``ERR`` → :class:`StoreError`) are
    never retried.

    Retries make every operation at-least-once: SET/GET/RENAME are
    idempotent, but a DEL whose response was lost can raise
    :class:`KeyNotFound` on the re-attempt even though the key was
    removed (see DESIGN.md, "Transport failure semantics").
    """

    def __init__(self, address: Tuple[str, int], timeout: Optional[float] = None,
                 config: Optional[TransportConfig] = None,
                 stats: Optional[TransportStats] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.address = address
        cfg = config or TransportConfig()
        if timeout is not None:  # back-compat with the old timeout-only ctor
            cfg = dataclasses.replace(cfg, op_timeout=float(timeout))
        self.config = cfg
        self.stats = stats if stats is not None else TransportStats()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._sleep = time.sleep  # swappable in tests
        self._sock: Optional[socket.socket] = None
        self._buf: Optional[_RecvBuffer] = None
        self._ever_connected = False

    # --- connection management -------------------------------------------

    def _ensure_connected(self) -> _RecvBuffer:
        if self._sock is None:
            sock = socket.create_connection(self.address,
                                            timeout=self.config.connect_timeout)
            sock.settimeout(self.config.op_timeout)
            self._sock = sock
            self._buf = _RecvBuffer(sock)
            if self._ever_connected:
                self.stats.note_reconnect()
            self._ever_connected = True
        assert self._buf is not None
        return self._buf

    def _drop_connection(self) -> None:
        """Close a socket we no longer trust; never reuse it."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._buf = None

    def close(self) -> None:
        self._drop_connection()

    def _backoff(self, attempt: int) -> None:
        base = min(self.config.backoff_max,
                   self.config.backoff_base * (2.0 ** attempt))
        if base <= 0:
            return
        spread = self.config.jitter
        factor = 1.0 if spread == 0 else (1.0 - spread) + 2.0 * spread * float(self._rng.random())
        self._sleep(base * factor)

    # --- the request loop -------------------------------------------------

    def _roundtrip(self, header: str, payload: bytes = b"") -> bytes:
        wire = header.encode("utf-8") + b"\n" + payload
        op = header.split(" ", 1)[0]
        attempts = self.config.retries + 1
        last_exc: Optional[BaseException] = None
        for attempt in range(attempts):
            t0 = time.perf_counter()
            try:
                buf = self._ensure_connected()
                self.stats.note_request(len(wire))
                self._sock.sendall(wire)  # type: ignore[union-attr]
                return self._read_response(buf, header, t0)
            except (socket.timeout, TimeoutError) as exc:
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=True)
                trace.event("retry", kind="timeout", op=op, attempt=attempt)
            except WireProtocolError as exc:
                # The peer sent something unframeable — desynced or
                # garbage-injected. The connection is dead to us.
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=False, protocol=True)
                trace.event("retry", kind="protocol", op=op, attempt=attempt)
            except (ConnectionError, OSError) as exc:
                last_exc = exc
                self._drop_connection()
                self.stats.note_retry(timed_out=False)
                trace.event("retry", kind="connection", op=op, attempt=attempt)
            if attempt < attempts - 1:
                self._backoff(attempt)
        self.stats.note_exhausted()
        trace.event("exhausted", op=op, attempts=attempts)
        raise StoreUnavailable(
            f"{header.split()[0]} against {self.address[0]}:{self.address[1]} "
            f"failed after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _read_response(self, buf: _RecvBuffer, header: str, t0: float) -> bytes:
        status = buf.recv_line().decode("utf-8", "replace")
        if status.startswith("OK "):
            try:
                n = int(status[3:])
            except ValueError:
                raise WireProtocolError(f"malformed OK length: {status!r}") from None
            if n < 0 or n > self.config.max_payload:
                raise WireProtocolError(f"OK length out of range: {n}")
            body = buf.recv_exact(n)
            self.stats.note_response(n, time.perf_counter() - t0)
            return body
        if status == "NF":
            self.stats.note_response(0, time.perf_counter() - t0)
            raise KeyNotFound(header.split()[1] if " " in header else "?")
        if status.startswith("ERR "):
            self.stats.note_response(0, time.perf_counter() - t0)
            raise StoreError(status[4:])
        raise WireProtocolError(f"unparseable response {status!r}")

    # --- operations -------------------------------------------------------

    def ping(self) -> bool:
        return self._roundtrip("PING") == b"PONG"

    def set(self, key: str, value: bytes) -> None:
        self._roundtrip(f"SET {_check_wire_key(key)} {len(value)}", value)

    def get(self, key: str) -> bytes:
        return self._roundtrip(f"GET {key}")

    def delete(self, key: str) -> None:
        self._roundtrip(f"DEL {key}")

    def keys(self, prefix: str = "") -> List[str]:
        raw = self._roundtrip(f"KEYS {prefix}" if prefix else "KEYS")
        return raw.decode("utf-8").split("\x00") if raw else []

    def rename(self, src: str, dst: str) -> None:
        self._roundtrip(f"RENAME {src} {_check_wire_key(dst)}")

    def __len__(self) -> int:
        return int(self._roundtrip("LEN"))

    def shutdown_server(self) -> None:
        try:
            self._ensure_connected()
            self._sock.sendall(b"SHUTDOWN\n")  # type: ignore[union-attr]
        except OSError:
            pass
        self.close()


class NetKVCluster:
    """Slot-routed client over several networked shards.

    All per-shard clients share one :class:`TransportStats` and one
    :class:`TransportConfig`, so the cluster reports transport health
    for the store as a whole.
    """

    def __init__(self, addresses: List[Tuple[str, int]],
                 config: Optional[TransportConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not addresses:
            raise StoreError("cluster needs at least one server address")
        self.config = config or TransportConfig()
        self.stats = TransportStats()
        self.clients = [
            NetKVClient(addr, config=self.config, stats=self.stats, rng=rng)
            for addr in addresses
        ]

    def client_for(self, key: str) -> NetKVClient:
        return self.clients[key_slot(key) % len(self.clients)]

    def set(self, key: str, value: bytes) -> None:
        self.client_for(key).set(key, value)

    def get(self, key: str) -> bytes:
        return self.client_for(key).get(key)

    def delete(self, key: str) -> None:
        self.client_for(key).delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        out: List[str] = []
        for client in self.clients:
            out.extend(client.keys(prefix))
        return sorted(out)

    def rename(self, src: str, dst: str) -> None:
        src_client = self.client_for(src)
        dst_client = self.client_for(dst)
        if src_client is dst_client:
            src_client.rename(src, dst)
        else:
            value = src_client.get(src)
            dst_client.set(dst, value)
            src_client.delete(src)

    def close(self) -> None:
        for client in self.clients:
            client.close()


class NetKVStore(DataStore):
    """DataStore adapter over a :class:`NetKVCluster`.

    Drop-in for the in-process ``kv://`` backend when components run in
    separate processes; the feedback managers work against it unchanged.
    """

    def __init__(self, cluster: NetKVCluster) -> None:
        self.cluster = cluster

    @classmethod
    def connect(cls, addresses: List[Tuple[str, int]],
                config: Optional[TransportConfig] = None,
                rng: Optional[np.random.Generator] = None) -> "NetKVStore":
        return cls(NetKVCluster(addresses, config=config, rng=rng))

    @property
    def transport_stats(self) -> TransportStats:
        """Wire-level counters across every shard of the cluster."""
        return self.cluster.stats

    def write(self, key: str, data: bytes) -> None:
        self.cluster.set(validate_key(key), data)

    def read(self, key: str) -> bytes:
        return self.cluster.get(key)

    def delete(self, key: str) -> None:
        self.cluster.delete(key)

    def keys(self, prefix: str = "") -> List[str]:
        return self.cluster.keys(prefix)

    def move(self, src: str, dst: str) -> None:
        self.cluster.rename(src, validate_key(dst))

    def close(self) -> None:
        self.cluster.close()
