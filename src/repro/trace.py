"""End-to-end span tracing: per-stage latency attribution for the workflow.

§4.4 makes profiling a first-class WM responsibility, and every §5
result is a reduction over profiling streams — but counters alone
cannot say *where* a particular patch's journey spent its time. This
module adds the missing provenance-style capture: hierarchical spans
around every hot path (selection, scheduling, simulation job bodies,
store operations, feedback iterations), so one exported trace attributes
latency to stages the way the paper attributes node-hours to job types.

Design constraints, in order:

1. **Near-zero disabled overhead.** Tracing is off by default. The
   module keeps one global tracer reference (``None`` when disabled);
   :func:`span` then returns a shared no-op context manager — one
   global load, one truthiness check, no allocation beyond the kwargs
   dict. Hot loops that cannot afford even that (the matcher) guard on
   :func:`enabled` first. ``benchmarks/test_ext_trace_overhead.py``
   holds the disabled cost under 5% of the matcher hot loop.
2. **Deterministic ordering without wall clocks.** Every span gets a
   monotonically increasing sequence number under the tracer lock;
   exports are ordered by that sequence, never by timestamp. The
   timestamp source itself is injectable: ``time.perf_counter`` for
   real runs, a :class:`repro.util.clock.VirtualClock` for
   bit-reproducible discrete-event traces (the same determinism
   contract as the event loop).
3. **Context crosses threads explicitly.** Span context lives in a
   ``threading.local`` stack; :func:`wrap` captures the caller's active
   span and re-installs it as the ambient parent inside a worker
   thread. The WM wraps every job body it launches, so a store write
   issued from a CG-simulation thread parents back to the job span
   that caused it.
4. **Bounded memory.** Finished spans land in a ring buffer
   (drop-oldest); the tracer counts what it dropped instead of growing
   without bound under a long campaign.

Typical use::

    from repro import trace

    tracer = trace.enable()                  # or trace.enable(clock=loop.clock)
    with trace.span("wm.select", patch="p0001"):
        ...                                  # child spans nest automatically
    trace.event("retry", kind="timeout")     # annotate the active span
    tracer.export_jsonl("trace.jsonl")
    trace.disable()

Analysis helpers (:func:`load_trace`, :func:`stage_breakdown`,
:func:`critical_path`, :func:`concurrency_series`,
:func:`render_breakdown`) replay an exported trace into the per-stage
latency table the ``repro trace`` CLI command prints.
"""

from __future__ import annotations

import contextlib
import functools
import json
import threading
from collections import deque
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

__all__ = [
    "Span",
    "Tracer",
    "enable",
    "disable",
    "configure",
    "get_tracer",
    "enabled",
    "span",
    "event",
    "current_span",
    "current_id",
    "inherit",
    "wrap",
    "load_trace",
    "stage_breakdown",
    "name_breakdown",
    "event_counts",
    "critical_path",
    "concurrency_series",
    "render_breakdown",
]

DEFAULT_CAPACITY = 65_536


def _resolve_clock(clock: Any) -> Callable[[], float]:
    """Accept a callable, a VirtualClock-like object, or None (perf_counter)."""
    if clock is None:
        import time

        return time.perf_counter
    if callable(clock):
        return clock
    if hasattr(clock, "now"):
        return lambda: float(clock.now)
    raise TypeError(f"clock must be callable or expose .now, got {clock!r}")


class _NoopSpan:
    """The shared disabled-path span: every method is a no-op.

    Falsy so call sites can skip attribute construction entirely::

        with trace.span("schedule.match") as sp:
            if sp:
                sp.set(job=spec.name)
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One live (or finished) span: a named, timed, attributed interval.

    Created by :meth:`Tracer.span`; use as a context manager. ``attrs``
    hold identifying detail (patch id, key, job name); ``events`` are
    point-in-time annotations inside the interval (a transport retry, a
    fault injection, a store outage).
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "thread_index",
        "t_start", "t_end", "seq", "attrs", "events",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], thread_index: int,
                 t_start: float, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_index = thread_index
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.seq: Optional[int] = None  # assigned at finish, orders the export
        self.attrs = attrs
        self.events: List[Dict[str, Any]] = []

    def __bool__(self) -> bool:
        return True

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on the span."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time annotation inside this span."""
        self.events.append(
            {"name": name, "t": self.tracer._clock(), "attrs": attrs}
        )

    @property
    def duration(self) -> float:
        """Span length in clock seconds (0.0 while still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return False

    def to_row(self) -> Dict[str, Any]:
        """The JSONL row for one finished span."""
        return {
            "seq": self.seq,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "stage": self.name.split(".", 1)[0],
            "thread": self.thread_index,
            "t0": self.t_start,
            "t1": self.t_end,
            "dur": self.duration,
            "attrs": self.attrs,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.t_end is None else f"{self.duration * 1e3:.3f} ms"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class Tracer:
    """Span collector: thread-local context stacks over one ring buffer.

    Parameters
    ----------
    capacity:
        Maximum finished spans retained (drop-oldest beyond it); the
        drop count is kept in :attr:`dropped`.
    clock:
        Timestamp source — a zero-arg callable, an object with ``.now``
        (e.g. :class:`repro.util.clock.VirtualClock`), or None for
        ``time.perf_counter``. Ordering never depends on it: spans are
        sequenced by a counter assigned under the tracer lock.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, clock: Any = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._clock = _resolve_clock(clock)
        self._lock = threading.Lock()
        self._finished: deque = deque(maxlen=capacity)
        self._next_span_id = 0
        self._next_seq = 0
        self.dropped = 0
        self._local = threading.local()
        # Thread indices are assigned in first-span order, so a
        # single-threaded virtual-time trace is fully deterministic.
        self._thread_indices: Dict[int, int] = {}

    # --- context plumbing -------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _inherited_parent(self) -> Optional[int]:
        return getattr(self._local, "inherited", None)

    def _thread_index(self) -> int:
        ident = threading.get_ident()
        idx = self._thread_indices.get(ident)
        if idx is None:
            with self._lock:
                idx = self._thread_indices.setdefault(
                    ident, len(self._thread_indices)
                )
        return idx

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_id(self) -> Optional[int]:
        """Id of the active span (or the inherited cross-thread parent)."""
        current = self.current()
        if current is not None:
            return current.span_id
        return self._inherited_parent()

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.t_end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested exit; keep the stack sane
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            span.seq = self._next_seq
            self._next_seq += 1
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
            self._finished.append(span)

    # --- span creation -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span parented to this thread's active context."""
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        return Span(
            tracer=self,
            name=name,
            span_id=span_id,
            parent_id=self.current_id(),
            thread_index=self._thread_index(),
            t_start=self._clock(),
            attrs=attrs,
        )

    def event(self, name: str, **attrs: Any) -> None:
        """Annotate the active span; silently ignored with no span open."""
        current = self.current()
        if current is not None:
            current.event(name, **attrs)

    def wrap(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Bind the caller's active span as the ambient parent of ``fn``.

        The returned callable installs that parent for the duration of
        the call, so spans opened inside ``fn`` — typically on a worker
        thread — parent back to the span that scheduled the work.
        """
        parent = self.current_id()
        if parent is None:
            return fn

        @functools.wraps(fn)
        def bound(*args: Any, **kwargs: Any) -> Any:
            previous = getattr(self._local, "inherited", None)
            self._local.inherited = parent
            try:
                return fn(*args, **kwargs)
            finally:
                self._local.inherited = previous

        return bound

    # --- export -----------------------------------------------------------

    def rows(self) -> List[Dict[str, Any]]:
        """Finished spans as export rows, ordered by finish sequence."""
        with self._lock:
            spans = list(self._finished)
        return [s.to_row() for s in sorted(spans, key=lambda s: s.seq)]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns the count."""
        rows = self.rows()
        with open(path, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def summary(self) -> Dict[str, Any]:
        """Compact per-stage totals for the telemetry report."""
        rows = self.rows()
        stages = stage_breakdown(rows)
        return {
            "spans": len(rows),
            "dropped": self.dropped,
            "stages": {
                stage: {
                    "count": s["count"],
                    "total_ms": s["total_ms"],
                }
                for stage, s in stages.items()
            },
        }

    def reset(self) -> None:
        """Discard finished spans (open spans keep recording)."""
        with self._lock:
            self._finished.clear()
            self.dropped = 0


# ---------------------------------------------------------------------------
# Module-level switch: one global tracer, None when disabled.
# ---------------------------------------------------------------------------

_TRACER: Optional[Tracer] = None


def configure(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with None, remove) the process-wide tracer."""
    global _TRACER
    _TRACER = tracer
    return tracer


def enable(capacity: int = DEFAULT_CAPACITY, clock: Any = None) -> Tracer:
    """Create and install a tracer; returns it for export/analysis."""
    tracer = Tracer(capacity=capacity, clock=clock)
    configure(tracer)
    return tracer


def disable() -> None:
    """Disable tracing; subsequent spans are no-ops again."""
    configure(None)


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def enabled() -> bool:
    """Whether a tracer is installed (the hot-loop guard)."""
    return _TRACER is not None


def span(name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
    """Open a span on the global tracer, or the shared no-op when disabled."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Annotate the active span on the global tracer (no-op when disabled)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **attrs)


def current_span() -> Optional[Span]:
    """The active span on this thread, or None."""
    tracer = _TRACER
    return tracer.current() if tracer is not None else None


def current_id() -> Optional[int]:
    """Id of this thread's active (or inherited) span, or None.

    This is the capture half of explicit cross-thread context transfer:
    grab the id where the work is *decided*, re-install it with
    :func:`inherit` where the work *runs* (e.g. a coroutine on a
    dedicated event-loop thread whose spans should parent back to the
    submitting thread's round span).
    """
    tracer = _TRACER
    return tracer.current_id() if tracer is not None else None


@contextlib.contextmanager
def inherit(parent_id: Optional[int]) -> Iterator[None]:
    """Install ``parent_id`` as this thread's ambient span parent.

    The re-install half of :func:`current_id`: spans opened inside the
    ``with`` block parent to ``parent_id`` even though it was captured
    on another thread. No-op when tracing is off or the id is None.
    """
    tracer = _TRACER
    if tracer is None or parent_id is None:
        yield
        return
    previous = getattr(tracer._local, "inherited", None)
    tracer._local.inherited = parent_id
    try:
        yield
    finally:
        tracer._local.inherited = previous


def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Propagate the caller's span context into ``fn`` (identity when off)."""
    tracer = _TRACER
    if tracer is None:
        return fn
    return tracer.wrap(fn)


# ---------------------------------------------------------------------------
# Trace analysis: replay an exported JSONL into latency attributions.
# ---------------------------------------------------------------------------


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into rows, re-sorted by sequence."""
    rows: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    rows.sort(key=lambda r: r.get("seq", 0))
    return rows


def _self_times(rows: Sequence[Dict[str, Any]]) -> Dict[int, float]:
    """Per-span self time: duration minus same-thread child durations.

    Children running on *other* threads overlap their parent
    concurrently, so only same-thread children are subtracted; the
    result is clamped at zero.
    """
    child_sum: Dict[int, float] = {}
    by_id = {r["span"]: r for r in rows}
    for row in rows:
        parent = row.get("parent")
        if parent is not None and parent in by_id:
            if by_id[parent].get("thread") == row.get("thread"):
                child_sum[parent] = child_sum.get(parent, 0.0) + row["dur"]
    return {
        r["span"]: max(0.0, r["dur"] - child_sum.get(r["span"], 0.0))
        for r in rows
    }


def _breakdown(rows: Sequence[Dict[str, Any]], key: str) -> Dict[str, Dict[str, float]]:
    selfs = _self_times(rows)
    out: Dict[str, Dict[str, float]] = {}
    for row in rows:
        group = row[key]
        agg = out.setdefault(group, {
            "count": 0, "total_ms": 0.0, "self_ms": 0.0, "max_ms": 0.0,
        })
        agg["count"] += 1
        agg["total_ms"] += row["dur"] * 1e3
        agg["self_ms"] += selfs[row["span"]] * 1e3
        agg["max_ms"] = max(agg["max_ms"], row["dur"] * 1e3)
    for agg in out.values():
        agg["mean_ms"] = agg["total_ms"] / agg["count"]
    return out


def stage_breakdown(rows: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Latency aggregation by stage (the segment before the first dot)."""
    return _breakdown(rows, "stage")


def name_breakdown(rows: Sequence[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Latency aggregation by full span name."""
    return _breakdown(rows, "name")


def event_counts(rows: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """How many times each event annotation occurred across the trace."""
    out: Dict[str, int] = {}
    for row in rows:
        for ev in row.get("events", ()):
            out[ev["name"]] = out.get(ev["name"], 0) + 1
    return out


def critical_path(rows: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The heaviest root-to-leaf chain: at each level, the longest child.

    This is the provenance question the counters cannot answer — for
    the most expensive top-level operation, which nested stage carried
    the time.
    """
    if not rows:
        return []
    by_id = {r["span"]: r for r in rows}
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for row in rows:
        parent = row.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (parent dropped from the ring): treat as root
        children.setdefault(parent, []).append(row)
    roots = children.get(None, [])
    if not roots:
        return []
    path: List[Dict[str, Any]] = []
    node = max(roots, key=lambda r: (r["dur"], -r["seq"]))
    while node is not None:
        path.append(node)
        kids = children.get(node["span"], [])
        node = max(kids, key=lambda r: (r["dur"], -r["seq"])) if kids else None
    return path


def concurrency_series(
    rows: Sequence[Dict[str, Any]],
    prefix: str = "",
    nbins: int = 50,
) -> List[Dict[str, float]]:
    """Time-binned span concurrency: a Fig. 5-style occupancy view.

    Counts how many spans whose name starts with ``prefix`` were open
    in each of ``nbins`` equal slices of the trace's time extent —
    e.g. ``prefix="wm.cg_sim"`` recovers a running-CG-jobs occupancy
    series from a trace alone.
    """
    if nbins < 1:
        raise ValueError("nbins must be >= 1")
    selected = [r for r in rows if r["name"].startswith(prefix)]
    if not selected:
        return []
    t_lo = min(r["t0"] for r in selected)
    t_hi = max(r["t1"] for r in selected)
    width = (t_hi - t_lo) / nbins or 1.0
    out = []
    for i in range(nbins):
        lo = t_lo + i * width
        hi = lo + width
        active = sum(1 for r in selected if r["t0"] < hi and r["t1"] > lo)
        out.append({"t0": lo, "t1": hi, "active": float(active)})
    return out


def render_breakdown(rows: Sequence[Dict[str, Any]]) -> str:
    """Human-readable per-stage / per-span report (`repro trace` output)."""
    if not rows:
        return "trace is empty: no finished spans"
    lines = [f"trace: {len(rows)} spans"]
    lines.append("  per-stage latency:")
    lines.append(
        f"    {'stage':<10s} {'count':>7s} {'total':>12s} "
        f"{'self':>12s} {'mean':>10s} {'max':>10s}"
    )
    stages = stage_breakdown(rows)
    for stage in sorted(stages, key=lambda s: -stages[s]["total_ms"]):
        agg = stages[stage]
        lines.append(
            f"    {stage:<10s} {agg['count']:>7d} {agg['total_ms']:>10.2f} ms "
            f"{agg['self_ms']:>10.2f} ms {agg['mean_ms']:>7.2f} ms "
            f"{agg['max_ms']:>7.2f} ms"
        )
    lines.append("  per-span-name latency:")
    names = name_breakdown(rows)
    for name in sorted(names, key=lambda n: -names[n]["total_ms"]):
        agg = names[name]
        lines.append(
            f"    {name:<22s} {agg['count']:>6d}x  total {agg['total_ms']:>9.2f} ms"
            f"  mean {agg['mean_ms']:>7.3f} ms"
        )
    events = event_counts(rows)
    if events:
        lines.append("  span events:")
        for name in sorted(events, key=lambda n: -events[n]):
            lines.append(f"    {name:<22s} {events[name]}")
    path = critical_path(rows)
    if path:
        lines.append("  critical path (heaviest chain):")
        for depth, row in enumerate(path):
            detail = ""
            if row.get("attrs"):
                pairs = ", ".join(f"{k}={v}" for k, v in sorted(row["attrs"].items()))
                detail = f"  [{pairs}]"
            lines.append(
                f"    {'  ' * depth}{row['name']:<20s} {row['dur'] * 1e3:9.3f} ms{detail}"
            )
    return "\n".join(lines)
