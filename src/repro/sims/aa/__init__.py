"""The all-atom (finest) scale: refinement MD + secondary-structure analysis."""

from repro.sims.aa.engine import AASim, AAConfig
from repro.sims.aa.analysis import SecondaryStructureAnalysis, classify_backbone

__all__ = ["AASim", "AAConfig", "SecondaryStructureAnalysis", "classify_backbone"]
