"""Extension bench: control-plane API latency and campaign multiplexing.

Service mode (OPERATIONS.md) fronts the workflow with an HTTP control
plane; this bench measures what that costs an operator: steady-state
read latency (``GET /v1/campaigns/{id}``), submission latency
(``POST /v1/campaigns``, including workflow build and control-thread
start), and how wall time scales when one daemon multiplexes several
tenants' campaigns onto its shared fair-share pool. Machine-readable
numbers land in ``BENCH_service.json`` at the repo root.
"""

import time

import pytest
from conftest import record_json, report

from repro.service import ControlPlaneServer, ServiceClient, ServiceConfig

pytestmark = pytest.mark.service

N_STATUS = 200
N_SUBMITS = 8
FLEETS = (1, 2, 4, 6)
ROUNDS = 2


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_service_api_latency_and_scaling():
    cfg = ServiceConfig(pool_workers=4, max_campaigns_per_tenant=8,
                        max_campaigns_total=32)
    lines = []
    payload = {}
    with ControlPlaneServer(store_url="kv://2", config=cfg) as server:
        client = ServiceClient(*server.address)

        # --- status round-trip latency on a settled campaign ------------
        probe = client.submit("bench", rounds=1)
        client.wait(probe["id"], timeout=60)
        samples = []
        for _ in range(N_STATUS):
            t0 = time.perf_counter()
            client.status(probe["id"])
            samples.append((time.perf_counter() - t0) * 1e3)
        status_ms = {"p50": _percentile(samples, 0.50),
                     "p99": _percentile(samples, 0.99)}
        lines.append(f"GET status round-trip: p50 {status_ms['p50']:.3f} ms, "
                     f"p99 {status_ms['p99']:.3f} ms over {N_STATUS} calls")

        # --- submit latency (validate + build + start) ------------------
        submit_samples = []
        submitted = []
        for i in range(N_SUBMITS):
            t0 = time.perf_counter()
            snap = client.submit("bench", rounds=1, name=f"s{i}")
            submit_samples.append((time.perf_counter() - t0) * 1e3)
            submitted.append(snap["id"])
        for cid in submitted:
            client.wait(cid, timeout=60)
        submit_ms = {"p50": _percentile(submit_samples, 0.50),
                     "max": max(submit_samples)}
        lines.append(f"POST submit: p50 {submit_ms['p50']:.2f} ms, "
                     f"max {submit_ms['max']:.2f} ms over {N_SUBMITS} submits")

        # --- multiplexing: N concurrent campaigns, round-robin tenants --
        scaling = []
        for fleet in FLEETS:
            t0 = time.perf_counter()
            ids = [client.submit(f"tenant{i % 3}", rounds=ROUNDS,
                                 name=f"fleet{fleet}-{i}")["id"]
                   for i in range(fleet)]
            for cid in ids:
                assert client.wait(cid, timeout=120)["state"] == "done"
            wall = time.perf_counter() - t0
            scaling.append({"campaigns": fleet, "wall_s": wall,
                            "wall_per_campaign_s": wall / fleet})
            lines.append(f"{fleet} concurrent campaign(s) x {ROUNDS} rounds: "
                         f"{wall:.2f} s wall "
                         f"({wall / fleet:.2f} s/campaign)")

    # Multiplexing must beat serial: per-campaign wall time at the
    # largest fleet stays under the single-campaign wall time.
    solo = scaling[0]["wall_s"]
    packed = scaling[-1]["wall_per_campaign_s"]
    assert packed < solo * 1.5, (
        f"no multiplexing win: {packed:.2f}s/campaign at fleet "
        f"{FLEETS[-1]} vs {solo:.2f}s solo")

    payload.update({"status_roundtrip_ms": status_ms,
                    "submit_ms": submit_ms,
                    "scaling": scaling})
    report("ext_service", lines)
    record_json("BENCH_service.json", "service_api", payload)
