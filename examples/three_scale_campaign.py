#!/usr/bin/env python
"""A longer three-scale campaign with a trained encoder and checkpointing.

Demonstrates the full application lifecycle the paper describes:
metric-training the patch encoder, running coordination rounds, watching
the two feedback loops steer the coarser models, checkpointing the
Workflow Manager, and restoring it into a fresh process state.

Run:  python examples/three_scale_campaign.py
"""

import numpy as np

from repro.app import build_application
from repro.core.wm import WorkflowConfig


def main() -> None:
    print("Building application (with encoder metric-training)...")
    app = build_application(
        store_url="kv://8",
        grid=24,
        n_lipid_types=3,
        n_proteins=4,
        pretrain_encoder=True,
        workflow=WorkflowConfig(
            max_cg_sims=3, max_aa_sims=2, cg_ready_target=3, aa_ready_target=2,
            beads_per_type=12, cg_chunks_per_job=3, cg_steps_per_chunk=30,
            aa_chunks_per_job=2, aa_steps_per_chunk=20, seed=7,
        ),
        seed=7,
    )

    print("Running 6 rounds...")
    g_before = app.macro.g_inner.copy()
    for r in range(6):
        counters = app.wm.round(advance_us=1.0)
        print(
            f"  round {r}: patches={counters['patches']:3d} "
            f"cg_done={counters['cg_finished']:2d} aa_done={counters['aa_finished']:2d} "
            f"couplings_v{app.macro.coupling_version} ff_v{app.forcefield.version}"
        )

    print("\n--- ML-driven selection ---")
    print(f"  patch queues: {app.wm.patch_selector.queue_sizes()}")
    print(f"  patch selections: {len(app.wm.patch_selector.history)} events")
    print(f"  frame bins occupied: {len(app.wm.frame_selector.occupancy())}")
    print(f"  frame-bin coverage: {app.wm.frame_selector.coverage():.1%}")

    print("\n--- feedback steering ---")
    drift = float(np.abs(app.macro.g_inner - g_before).mean())
    print(f"  mean |coupling drift| from CG->continuum feedback: {drift:.4f}")
    print(f"  consensus SS from AA->CG feedback: {app.forcefield.ss_pattern!r}")
    iters = app.cg2cont.reports + app.aa2cg.reports
    print(f"  feedback iterations run: {len(iters)}, "
          f"frames processed: {sum(r.n_items for r in iters)}")

    print("\n--- checkpoint / restore ---")
    app.wm.checkpoint()
    saved = dict(app.wm.counters)
    app2 = build_application(store_url="kv://8", seed=7)
    # A restored WM would normally share the same store; emulate by
    # copying the checkpoint payload across.
    app2.store.write("wm/checkpoint", app.store.read("wm/checkpoint"))
    payload = app2.wm.restore()
    assert app2.wm.counters == saved
    print(f"  restored WM at round {payload['rounds']} "
          f"with macro time {payload['macro_time_us']:.1f} us — counters match.")


if __name__ == "__main__":
    main()
