"""Ablation S6 (§4.2): one payload, any backend, one configuration switch.

Paper: "save a Numpy archive into a byte stream that can be redirected
effortlessly to a file, an archive, or a database — all with a single
configuration switch." This bench measures the write/read cost of the
same NumPy payloads through each backend and verifies bit-identical
roundtrips.
"""

import time

import numpy as np
import pytest
from conftest import report

from repro.datastore import open_store

N_PAYLOADS = 500
ARRAYS = {"rdf": np.random.default_rng(0).random((6, 24)),
          "meta": np.arange(16)}


def _url(scheme, tmp_path):
    return scheme if scheme.startswith("kv") else f"{scheme}://{tmp_path}/{scheme}"


def test_backend_swap_roundtrip_and_cost(benchmark, tmp_path):
    def run_all():
        times = {}
        for scheme in ("kv://8", "fs", "taridx"):
            store = open_store(_url(scheme, tmp_path))
            t0 = time.perf_counter()
            for i in range(N_PAYLOADS):
                store.write_npz(f"patches/p{i:05d}", ARRAYS)
            t_write = time.perf_counter() - t0
            t0 = time.perf_counter()
            for i in range(N_PAYLOADS):
                back = store.read_npz(f"patches/p{i:05d}")
                assert np.array_equal(back["rdf"], ARRAYS["rdf"])
            t_read = time.perf_counter() - t0
            times[scheme] = (t_write, t_read)
            store.close()
        return times

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{N_PAYLOADS} NumPy-archive payloads per backend:"]
    for scheme, (tw, tr) in times.items():
        lines.append(f"  {scheme:<10s} write {N_PAYLOADS/tw:>9,.0f}/s   "
                     f"read {N_PAYLOADS/tr:>9,.0f}/s")
    report("backend_swap", lines)
    # The in-memory backend is the fastest writer — the ordering that
    # justified moving feedback off the filesystem.
    kv_write = times["kv://8"][0]
    assert kv_write <= min(tw for tw, _ in times.values()) * 1.001


@pytest.mark.parametrize("scheme", ["kv://2", "fs", "taridx"])
def test_backend_namespace_semantics_identical(benchmark, tmp_path, scheme):
    """The feedback-tagging semantics (scan, move, rescan) behave the
    same on every backend."""
    store = open_store(_url(scheme, tmp_path / "ns"))

    def tag_cycle():
        for i in range(50):
            store.write(f"live/f{i:03d}", b"x")
        live = store.keys("live/")
        for k in live:
            store.move(k, "done/" + k.split("/", 1)[1])
        return len(live), len(store.keys("live/")), len(store.keys("done/"))

    before, after, done = benchmark.pedantic(tag_cycle, rounds=1, iterations=1)
    assert (before, after, done) == (50, 0, 50)
    store.close()
