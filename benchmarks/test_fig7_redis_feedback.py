"""Fig. 7: KV-cluster query performance for CG→continuum feedback.

Paper: a 20-node Redis cluster served the feedback loop at ~10,000 key
retrievals/s, ~10,000 deletions/s, and ~2,000 value reads/s; the figure
plots time vs number of CG frames for the three operation types, all
scaling linearly. We measure the same three operations on the in-memory
cluster re-implementation across the same frame-count sweep.
"""

import time

import numpy as np
from conftest import report

from repro.datastore.kvstore import KVCluster

FRAME_COUNTS = [5_000, 10_000, 20_000, 40_000, 70_000]
PAYLOAD = b"x" * 850  # one CG frame's identifying info (~850 B)


def _populate(cluster, n):
    for i in range(n):
        cluster.set(f"rdf/live/frame-{i:07d}", PAYLOAD)


def _sweep():
    rows = []
    for n in FRAME_COUNTS:
        cluster = KVCluster(nservers=20)
        _populate(cluster, n)
        t0 = time.perf_counter()
        keys = cluster.scan("rdf/live/")
        t_keys = time.perf_counter() - t0
        t0 = time.perf_counter()
        for k in keys:
            cluster.get(k)
        t_values = time.perf_counter() - t0
        t0 = time.perf_counter()
        for k in keys:
            cluster.delete(k)
        t_delete = time.perf_counter() - t0
        rows.append((n, t_keys, t_values, t_delete))
    return rows


def test_fig7_feedback_query_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"{'frames':>8} {'keys(s)':>9} {'values(s)':>10} {'delete(s)':>10}"]
    for n, tk, tv, td in rows:
        lines.append(f"{n:>8,} {tk:>9.3f} {tv:>10.3f} {td:>10.3f}")
    biggest = rows[-1]
    lines += [
        "",
        f"at {biggest[0]:,} frames: "
        f"{biggest[0]/max(biggest[1],1e-9):,.0f} key-scans-worth/s, "
        f"{biggest[0]/biggest[2]:,.0f} reads/s, "
        f"{biggest[0]/biggest[3]:,.0f} deletes/s",
        "(paper at 4000-node scale: ~10k key/delete ops/s, ~2k reads/s)",
    ]
    report("fig7_kv_feedback", lines)

    ns = np.array([r[0] for r in rows], dtype=float)
    for col in (1, 2, 3):
        ts = np.array([r[col] for r in rows])
        # Linear scaling: time per frame roughly constant across the sweep
        # (within 4x — the figure's aberrant points were worse).
        per_frame = ts / ns
        assert per_frame.max() / per_frame.min() < 4.0
        # And more frames never take less total time.
        assert ts[-1] > ts[0]


def test_fig7_keys_spread_over_cluster(benchmark):
    """The campaign mapped clients randomly over 20 Redis nodes; slot
    routing must spread the frame keys evenly for the throughput above."""

    def build():
        cluster = KVCluster(nservers=20)
        _populate(cluster, 20_000)
        return cluster.balance()

    lo, hi = benchmark(build)
    report("fig7_balance", [f"keys per shard across 20 shards: min={lo}, max={hi}"])
    assert lo > 0
    assert hi / lo < 1.5  # even spread, no hot shard
