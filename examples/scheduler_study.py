#!/usr/bin/env python
"""Scheduler study: unbundled jobs, matcher policies, and node failure.

Reproduces the §4.3/§5.2 scheduling story interactively:

1. the bundled-vs-unbundled utilization trade-off (the 1/6 worst case);
2. the exhaustive (low-id-first) vs greedy (first-match) matcher on the
   paper's emulated job mix — the 670× traversal gap;
3. Flux-style resilience: a node failure drains the node, kills its
   jobs, and the tracker resubmits them elsewhere.

Run:  python examples/scheduler_study.py
"""

import numpy as np

from repro.core.jobs import JobTracker, JobTypeConfig
from repro.sched.adapter import FluxAdapter
from repro.sched.bundling import bundle_utilization
from repro.sched.emulator import compare_policies
from repro.sched.flux import FluxInstance
from repro.sched.matcher import MatchPolicy
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop


def study_bundling() -> None:
    print("--- 1. bundled vs unbundled scheduling (Summit: 6 GPUs/node) ---")
    rng = np.random.default_rng(0)
    for skew, label in ((0.1, "uniform sim lengths"), (2.0, "skewed sim lengths")):
        durations = rng.lognormal(mean=np.log(10_000), sigma=skew, size=600)
        bundled, unbundled = bundle_utilization(durations, gpus_per_node=6)
        print(f"  {label:22s}: bundled GPU utilization {bundled:.1%}, "
              f"unbundled {unbundled:.0%}")
    worst = bundle_utilization([1e-6] * 5 + [1.0], 6)[0]
    print(f"  worst case (one straggler holds the node): {worst:.1%} "
          f"(the paper's 1/6)")


def study_matcher() -> None:
    print("\n--- 2. matcher policies on the emulated job mix ---")
    scale = 0.1  # 400 nodes, 2400 GPU jobs + the continuum job
    results = compare_policies(scale=scale)
    low = results["low-id-first"]
    fast = results["first-match"]
    print(f"  emulated machine: {low.nnodes} nodes, {low.njobs} jobs")
    for r in (low, fast):
        print(f"  {r.policy:>14s}: {r.vertices_visited:>12,} vertices visited, "
              f"{r.wall_seconds*1e3:8.1f} ms wall")
    ratio = low.vertices_visited / fast.vertices_visited
    print(f"  traversal reduction from first-match: {ratio:,.0f}x "
          f"(paper measured 670x at 4000 nodes)")


def study_resilience() -> None:
    print("\n--- 3. node failure: drain, kill, resubmit ---")
    loop = EventLoop()
    flux = FluxInstance(summit_like(3), loop, policy=MatchPolicy.LOW_ID_FIRST)
    tracker = JobTracker(
        JobTypeConfig(name="cg-sim", ncores=3, ngpus=1, max_retries=2,
                      duration_sampler=lambda rng: 50_000.0),
        FluxAdapter(flux),
    )
    for i in range(12):
        tracker.launch(f"sim{i:02d}")
    loop.run_until(60.0)
    print(f"  running jobs: {tracker.nrunning()}")
    victims = flux.fail_node(0)
    print(f"  node 0 failed -> {len(victims)} jobs killed, node drained")
    loop.run_until(120.0)
    placed = {rec.allocation.node_ids()[0]
              for rec in flux.queue.running.values() if rec.allocation}
    print(f"  after resubmission: {tracker.nrunning()} running on nodes {sorted(placed)} "
          f"(node 0 avoided), retries recorded for "
          f"{sum(1 for i in range(12) if tracker.retries_used(f'sim{i:02d}'))} sims")


if __name__ == "__main__":
    study_bundling()
    study_matcher()
    study_resilience()
