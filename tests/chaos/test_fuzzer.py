"""CampaignFuzzer: sampling, crash capture, shrinking, replay files.

The centrepiece is the planted-bug test: we break the ChaosStore's
hinted-handoff bookkeeping (a write that misses a downed replica leaves
no hint), fuzz, and require the fuzzer to (a) catch the resulting
stale-data invariant violations and (b) shrink the failing schedule to
a handful of fault events whose replay file still reproduces the bug.
"""

import pytest

from repro.chaos import (CampaignFuzzer, ChaosCampaign, FaultSchedule,
                         load_replay, save_replay)
from repro.chaos.store import ChaosStore


def buggy_put(self, key, payload):
    """ChaosStore._put with hinted handoff 'forgotten' (the planted bug).

    Writes that miss a downed replica leave no hint, so the replica
    rejoins believing it is current and its stale data can be served
    (or a GC pass can collect a tombstone the replica never saw).
    """
    ups = self._ups(key)
    if not ups:
        raise self._unavailable(key, "all replicas down")
    self._version += 1
    entry = (self._version, payload)
    for i in self._replicas(key):
        if not self._down[i]:
            self._shards[i][key] = entry
            self._pending[i].discard(key)
    self.acked[key] = payload


def test_sampled_schedules_are_stable_and_distinct():
    fuzzer = CampaignFuzzer(seed=7, rounds=6)
    again = CampaignFuzzer(seed=7, rounds=6)
    schedules = [fuzzer.sample_schedule(i) for i in range(4)]
    assert schedules == [again.sample_schedule(i) for i in range(4)]
    assert len({s.dumps() for s in schedules}) > 1


def test_crash_becomes_violation_not_exception():
    def exploding_factory(schedule, config):
        raise RuntimeError("harness blew up")

    fuzzer = CampaignFuzzer(seed=0, rounds=2, campaign_factory=exploding_factory)
    report = fuzzer.run_one(FaultSchedule().heal(0.0))
    assert not report.ok
    assert report.violations[0].invariant == "crash"
    assert "harness blew up" in report.violations[0].detail


def test_replay_file_round_trip(tmp_path):
    fuzzer = CampaignFuzzer(seed=3, rounds=6)
    schedule = fuzzer.sample_schedule(0)
    path = tmp_path / "replay.json"
    save_replay(str(path), schedule, fuzzer._config())
    loaded_schedule, loaded_config = load_replay(str(path))
    assert loaded_schedule == schedule
    assert loaded_config == fuzzer._config()
    with pytest.raises(ValueError):
        path.write_text(path.read_text().replace('"version": 1', '"version": 9'))
        load_replay(str(path))


@pytest.mark.chaos
@pytest.mark.timeout(600)
def test_planted_bug_is_caught_and_shrunk(tmp_path, monkeypatch):
    monkeypatch.setattr(ChaosStore, "_put", buggy_put)
    # seed 3 trips the lost-hint bug within a handful of campaigns.
    fuzzer = CampaignFuzzer(seed=3, rounds=6)
    result = fuzzer.run(6)
    assert not result.ok, "planted hinted-handoff bug went undetected"

    failure = result.failures[0]
    stale_kinds = {"stale_read", "acked_write_lost", "tombstone_resurrection"}
    assert {v.invariant for v in failure.violations} & stale_kinds
    # The reproducer must be minimal: a handful of events, not a storm.
    assert len(failure.shrunk) <= 5
    assert len(failure.shrunk) <= len(failure.schedule)

    # The shrunk schedule still reproduces through a saved replay file.
    path = tmp_path / "shrunk.json"
    save_replay(str(path), failure.shrunk, fuzzer._config())
    schedule, config = load_replay(str(path))
    replayed = ChaosCampaign(schedule, config).run()
    assert not replayed.ok

    # And a healthy store passes the very same replay.
    monkeypatch.undo()
    healthy = ChaosCampaign(*load_replay(str(path))).run()
    assert healthy.ok, [v.to_json() for v in healthy.violations]
