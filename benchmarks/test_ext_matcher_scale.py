"""Extension bench: partitioned vs flat matcher from 4k to 40k nodes.

§5.2's first-match policy fixed the "too many choices" traversal on a
*vacant* machine, but the paper's campaign also runs the machine nearly
full — and there the flat greedy scan degrades to O(nodes) per call,
because the rotating cursor is usually far from the few free nodes.
The partitioned graph keeps per-partition free-resource watermarks, so
the scan dismisses whole partitions with one summary check each.

This sweep probes a nearly-full machine (all but 8 nodes claimed) at
4k/10k/20k/40k nodes for every (policy × partitioned) variant and
records per-call wall time, visit counts, and partition skips to
``BENCH_matcher.json``. Two guards make it a regression test:

- partitioned first-match per-call wall time at 40k stays within 3× of
  4k (the flat scan is ~10× — it scans 10× the nodes);
- the visit-count ratio is deterministic: partitioned stays flat-ish
  across a 10× machine-size jump while the flat scan grows ~linearly.
"""

import pytest
from conftest import record_json, report

from repro.sched.emulator import make_nearly_full_graph, run_matcher_scale_probe
from repro.sched.matcher import MatchPolicy

NODE_COUNTS = [4000, 10_000, 20_000, 40_000]
HOLES = 8
PROBES = 200
REPEATS = 3  # best-of, to shrug off scheduler noise on shared runners

VARIANTS = [
    (MatchPolicy.LOW_ID_FIRST, False),
    (MatchPolicy.LOW_ID_FIRST, True),
    (MatchPolicy.FIRST_MATCH, False),
    (MatchPolicy.FIRST_MATCH, True),
]


def variant_key(policy, partitioned):
    return f"{policy.value}/{'partitioned' if partitioned else 'flat'}"


@pytest.mark.matcher_scale
def test_matcher_scale_sweep(benchmark):
    def sweep():
        results = {}
        for nnodes in NODE_COUNTS:
            # One shared backdrop per size: every probe run restores the
            # graph exactly, so all variants see identical occupancy.
            graph = make_nearly_full_graph(nnodes, holes=HOLES)
            for policy, partitioned in VARIANTS:
                best = None
                for _ in range(REPEATS):
                    res = run_matcher_scale_probe(
                        nnodes, policy, partitioned,
                        probes=PROBES, holes=HOLES, graph=graph,
                    )
                    if best is None or res.mean_call_seconds < best.mean_call_seconds:
                        best = res
                results[(nnodes, policy, partitioned)] = best
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [f"{'nodes':>7} {'variant':>26} {'us/call':>9} "
             f"{'visits/call':>12} {'part.skips':>11}"]
    payload = {"holes": HOLES, "probes": PROBES, "repeats": REPEATS, "sweep": {}}
    for nnodes in NODE_COUNTS:
        row = {}
        for policy, partitioned in VARIANTS:
            r = results[(nnodes, policy, partitioned)]
            lines.append(
                f"{nnodes:>7,} {variant_key(policy, partitioned):>26} "
                f"{r.mean_call_seconds * 1e6:>9.1f} {r.visits_per_call:>12.0f} "
                f"{r.partitions_skipped:>11,}"
            )
            row[variant_key(policy, partitioned)] = {
                "mean_call_us": r.mean_call_seconds * 1e6,
                "visits_per_call": r.visits_per_call,
                "partitions_skipped": r.partitions_skipped,
            }
        payload["sweep"][str(nnodes)] = row

    fm_part_small = results[(NODE_COUNTS[0], MatchPolicy.FIRST_MATCH, True)]
    fm_part_large = results[(NODE_COUNTS[-1], MatchPolicy.FIRST_MATCH, True)]
    fm_flat_small = results[(NODE_COUNTS[0], MatchPolicy.FIRST_MATCH, False)]
    fm_flat_large = results[(NODE_COUNTS[-1], MatchPolicy.FIRST_MATCH, False)]
    wall_ratio_part = fm_part_large.mean_call_seconds / fm_part_small.mean_call_seconds
    wall_ratio_flat = fm_flat_large.mean_call_seconds / fm_flat_small.mean_call_seconds
    visit_ratio_part = fm_part_large.visits_per_call / fm_part_small.visits_per_call
    visit_ratio_flat = fm_flat_large.visits_per_call / fm_flat_small.visits_per_call
    payload["guard"] = {
        "node_span": [NODE_COUNTS[0], NODE_COUNTS[-1]],
        "first_match_wall_ratio_partitioned": wall_ratio_part,
        "first_match_wall_ratio_flat": wall_ratio_flat,
        "first_match_visit_ratio_partitioned": visit_ratio_part,
        "first_match_visit_ratio_flat": visit_ratio_flat,
        "wall_ratio_bound": 3.0,
    }
    lines.append(
        f"first-match {NODE_COUNTS[0]//1000}k->{NODE_COUNTS[-1]//1000}k: "
        f"wall x{wall_ratio_part:.2f} partitioned vs x{wall_ratio_flat:.2f} flat; "
        f"visits x{visit_ratio_part:.2f} vs x{visit_ratio_flat:.2f} "
        f"(machine grew x{NODE_COUNTS[-1]/NODE_COUNTS[0]:.0f})"
    )
    report("ext_matcher_scale", lines)
    record_json("BENCH_matcher.json", "matcher_scale_sweep", payload)

    # Regression guard: partitioned first-match per-call wall time must
    # stay within 3x across the 10x machine-size jump.
    assert wall_ratio_part <= 3.0, (
        f"partitioned first-match degraded {wall_ratio_part:.2f}x from "
        f"{NODE_COUNTS[0]} to {NODE_COUNTS[-1]} nodes (bound: 3x)"
    )
    # Deterministic sublinearity: visit counts, unlike wall time, have
    # no noise. The flat scan's per-call visits grow ~linearly with the
    # machine (10x nodes -> ~10x visits); the partitioned scan's must
    # stay essentially flat.
    assert visit_ratio_flat > 5.0
    assert visit_ratio_part < 2.0
    assert visit_ratio_part < 0.3 * visit_ratio_flat
    # The watermark index is doing the work: at 40k the partitioned
    # scan skipped partitions wholesale.
    assert fm_part_large.partitions_skipped > 0


@pytest.mark.matcher_scale
def test_exhaustive_policy_also_benefits(benchmark):
    """Low-id-first gains too: only hole-bearing partitions are examined."""
    nnodes = NODE_COUNTS[-1]

    def probe():
        graph = make_nearly_full_graph(nnodes, holes=HOLES)
        part = run_matcher_scale_probe(
            nnodes, MatchPolicy.LOW_ID_FIRST, True, probes=50, graph=graph)
        flat = run_matcher_scale_probe(
            nnodes, MatchPolicy.LOW_ID_FIRST, False, probes=50, graph=graph)
        return part, flat

    part, flat = benchmark.pedantic(probe, rounds=1, iterations=1)
    report("ext_matcher_scale_lowid", [
        f"{nnodes:,} nodes, low-id-first: "
        f"partitioned {part.visits_per_call:,.0f} visits/call vs "
        f"flat {flat.visits_per_call:,.0f}",
    ])
    # Flat exhaustive charges every node every call; partitioned only
    # the hole-bearing partitions plus one per skipped partition.
    assert part.visits_per_call < flat.visits_per_call / 10
