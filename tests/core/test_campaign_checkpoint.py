"""Tests for campaign checkpoint/restore: crash-resume equivalence."""

import json

import numpy as np
import pytest

from repro.core.campaign import CampaignConfig, CampaignSimulator, RunSpec
from repro.datastore import KVStore

LEDGER = (RunSpec(15, 2, 2), RunSpec(30, 3, 2))
CFG = CampaignConfig(ledger=LEDGER, seed=17)


class TestIncrementalRun:
    def test_max_runs_pauses(self):
        sim = CampaignSimulator(CFG)
        sim.run(max_runs=1)
        assert sim.runs_completed == 1
        assert sim.result.table1 == []  # not finalized yet

    def test_resume_completes(self):
        sim = CampaignSimulator(CFG)
        sim.run(max_runs=1)
        result = sim.run()
        assert sim.runs_completed == 4
        assert result.total_node_hours() == 15 * 2 * 2 + 30 * 3 * 2

    def test_run_after_completion_is_idempotent(self):
        sim = CampaignSimulator(CFG)
        r1 = sim.run()
        n = len(r1.cg_lengths_us)
        r2 = sim.run()
        assert len(r2.cg_lengths_us) == n  # not double-finalized


class TestCheckpointEquivalence:
    def test_resume_reproduces_uninterrupted_campaign(self):
        """Crash after run 2, restore into a fresh simulator, finish —
        the result must equal the uninterrupted campaign exactly."""
        straight = CampaignSimulator(CFG).run()

        first = CampaignSimulator(CFG)
        first.run(max_runs=2)
        state = first.state_dict()

        resumed = CampaignSimulator(CFG)
        resumed.load_state_dict(state)
        result = resumed.run()

        assert result.cg_lengths_us == straight.cg_lengths_us
        assert result.aa_lengths_ns == straight.aa_lengths_ns
        assert result.counters == straight.counters
        gpu_a = [e.gpu_occupancy for e in result.profile_events]
        gpu_b = [e.gpu_occupancy for e in straight.profile_events]
        assert gpu_a == gpu_b

    def test_state_is_json_serializable(self):
        sim = CampaignSimulator(CFG)
        sim.run(max_runs=1)
        payload = json.dumps(sim.state_dict())
        assert len(payload) > 100

    def test_checkpoint_roundtrips_through_a_store(self):
        store = KVStore(nservers=2)
        sim = CampaignSimulator(CFG)
        sim.run(max_runs=2)
        store.write_json("campaign/ckpt", sim.state_dict())

        resumed = CampaignSimulator(CFG)
        resumed.load_state_dict(store.read_json("campaign/ckpt"))
        result = resumed.run()
        assert result.total_node_hours() == 240

    def test_wrong_seed_rejected(self):
        sim = CampaignSimulator(CFG)
        sim.run(max_runs=1)
        other = CampaignSimulator(CampaignConfig(ledger=LEDGER, seed=99))
        with pytest.raises(ValueError, match="seed"):
            other.load_state_dict(sim.state_dict())

    def test_inflight_sims_survive_checkpoint(self):
        sim = CampaignSimulator(CFG)
        sim.run(max_runs=1)
        state = sim.state_dict()
        inflight = sum(len(v) for v in state["inflight"].values())
        assert inflight > 0  # 2h run: most sims were checkpointed mid-flight
        resumed = CampaignSimulator(CFG)
        resumed.load_state_dict(state)
        assert sum(len(v) for v in resumed._inflight.values()) == inflight
