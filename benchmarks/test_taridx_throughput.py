"""Ablation S5 (§5.2): pytaridx archive throughput and inode reduction.

Paper: "we had compiled over 1 billion files (1,034,232,900, to be
precise) across 114,552 tar archives — a 9000x reduction in the number
of files (and inodes) while retaining efficient random access. ...
Reading from a tar file provides a throughput of ~575 files/s or ~87.56
MB/s (at ~156 KB/file)."
"""

import time

import numpy as np
from conftest import report

from repro.datastore import FSStore, TaridxStore

N_FILES = 10_000
PAYLOAD = bytes(np.random.default_rng(0).integers(0, 256, size=4096, dtype=np.uint8))


def test_taridx_write_read_throughput(benchmark, tmp_path):
    def run():
        store = TaridxStore(str(tmp_path / "arch"), max_entries=4_000)
        t0 = time.perf_counter()
        for i in range(N_FILES):
            store.write(f"frames/f{i:07d}", PAYLOAD)
        t_write = time.perf_counter() - t0
        rng = np.random.default_rng(1)
        idx = rng.integers(0, N_FILES, size=3_000)
        t0 = time.perf_counter()
        for i in idx:
            assert store.read(f"frames/f{i:07d}") == PAYLOAD
        t_read = time.perf_counter() - t0
        stats = {
            "write_fps": N_FILES / t_write,
            "read_fps": 3_000 / t_read,
            "read_mbps": 3_000 * len(PAYLOAD) / t_read / 1e6,
            "inode_reduction": store.inode_reduction(),
            "narchives": store.narchives(),
        }
        store.close()
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report("taridx_throughput", [
        f"{N_FILES:,} logical files across {stats['narchives']} rotating archives",
        f"write: {stats['write_fps']:,.0f} files/s",
        f"random read: {stats['read_fps']:,.0f} files/s, "
        f"{stats['read_mbps']:.1f} MB/s (paper on GPFS: ~575 files/s, ~88 MB/s)",
        f"inode reduction: {stats['inode_reduction']:,.0f}x (paper: ~9000x)",
    ])
    assert stats["read_fps"] > 575  # local disk beats GPFS; same order+
    assert stats["inode_reduction"] > 500


def test_taridx_vs_individual_files(benchmark, tmp_path):
    """Inode count: the reduction the paper achieved on a filesystem
    that was running out of them."""
    n = 3_000

    def run():
        fs = FSStore(str(tmp_path / "plain"))
        tar = TaridxStore(str(tmp_path / "tar"), max_entries=100_000)
        for i in range(n):
            key = f"frames/f{i:05d}"
            fs.write(key, PAYLOAD)
            tar.write(key, PAYLOAD)
        out = (fs.nfiles(), tar.nfiles())
        tar.close()
        return out

    fs_inodes, tar_inodes = benchmark.pedantic(run, rounds=1, iterations=1)
    report("taridx_inodes", [
        f"{n:,} frames: plain filesystem {fs_inodes:,} inodes, "
        f"taridx {tar_inodes} inodes ({fs_inodes / tar_inodes:,.0f}x fewer)",
    ])
    assert fs_inodes == n
    assert tar_inodes <= 4


def test_taridx_scales_in_archive_count(benchmark, tmp_path):
    """Archives rotate and reads span them all — the mechanism that let
    the campaign spread a billion files over 114,552 archives."""

    def run():
        store = TaridxStore(str(tmp_path / "rot"), max_entries=500)
        for i in range(5_000):
            store.write(f"k{i:05d}", b"data")
        assert store.narchives() == 10
        # Spot-check reads from every archive.
        for i in range(0, 5_000, 499):
            assert store.read(f"k{i:05d}") == b"data"
        n = store.narchives()
        store.close()
        return n

    narch = benchmark.pedantic(run, rounds=1, iterations=1)
    report("taridx_rotation", [f"5,000 files over {narch} archives, reads OK"])
    assert narch == 10
