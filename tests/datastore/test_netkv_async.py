"""Async-transport unit tests: coalescing, pool bounds, connection caps.

The protocol/cluster/resilience suites exercise the async transport
through the same surface as the old threaded one; this file targets
what is *new* in the event-loop rewrite — the opportunistic request
coalescer, the ``max_connections`` accept cap, and the bounded
``_ClientPool`` semaphore that fixed the threaded transport's
connection churn.
"""

from __future__ import annotations

import concurrent.futures
import random
import threading
import time

import pytest

from repro.datastore.aio import AsyncClientChannel, _Op
from repro.datastore.base import KeyNotFound, StoreError, StoreUnavailable
from repro.datastore.netkv import (
    NetKVClient,
    NetKVCluster,
    NetKVServer,
    TransportConfig,
    _ClientPool,
)
from repro.datastore.stats import TransportStats

pytestmark = pytest.mark.async_transport


@pytest.fixture()
def server():
    srv = NetKVServer().start()
    yield srv
    srv.stop()


@pytest.fixture()
def channel(server):
    chan = AsyncClientChannel(server.address, TransportConfig())
    yield chan
    chan.close()


def _enqueue_batch(chan, ops):
    """Queue ops in one loop callback so the drainer sees them together.

    The first ``_enqueue`` creates the drainer task, but the loop only
    runs it after this callback returns — by then the whole batch is
    queued, making the fold deterministic instead of timing-dependent.
    """
    chan.ping()  # force loop + connection up before going behind the API
    lt = chan._ensure_loop()

    def put():
        for op in ops:
            chan._enqueue(op)

    lt.loop.call_soon_threadsafe(put)
    return [op.fut for op in ops]


def _op(kind, arg):
    return _Op(kind, arg, concurrent.futures.Future())


class TestCoalescing:
    def test_queued_gets_fold_into_one_mget(self, channel):
        for i in range(8):
            channel.set(f"k{i}", b"v%d" % i)
        channel.stats.reset()
        ops = [_op("GET", f"k{i}") for i in range(8)]
        futs = _enqueue_batch(channel, ops)
        assert [f.result(10) for f in futs] == [b"v%d" % i for i in range(8)]
        assert channel.stats.coalesced_requests == 1
        assert channel.stats.coalesced_keys == 8
        assert channel.stats.max_batch_keys >= 8

    def test_fold_stops_at_kind_boundary_and_preserves_fifo(self, channel):
        channel.set("a", b"1")
        channel.set("b", b"2")
        channel.stats.reset()
        ops = [
            _op("GET", "a"),
            _op("GET", "b"),
            _op("SET", ("c", b"3")),
            _op("SET", ("d", b"4")),
            _op("DEL", "a"),
            _op("DEL", "b"),
        ]
        futs = _enqueue_batch(channel, ops)
        assert futs[0].result(10) == b"1"
        assert futs[1].result(10) == b"2"
        for f in futs[2:]:
            assert f.result(10) is None
        # Three same-kind runs of two: MGET, MSET, MDEL — never a mix.
        assert channel.stats.coalesced_requests == 3
        assert channel.stats.coalesced_keys == 6
        # FIFO held: the DELs ran after the SETs, so c and d survive.
        assert channel.get("c") == b"3"
        with pytest.raises(KeyNotFound):
            channel.get("a")

    def test_folded_miss_maps_back_to_the_one_caller(self, channel):
        channel.set("hit", b"x")
        ops = [_op("GET", "hit"), _op("GET", "miss"), _op("GET", "hit")]
        futs = _enqueue_batch(channel, ops)
        assert futs[0].result(10) == b"x"
        with pytest.raises(KeyNotFound):
            futs[1].result(10)
        assert futs[2].result(10) == b"x"

    def test_unfoldable_key_ships_alone(self, channel):
        channel.set("good", b"g")
        channel.stats.reset()
        # "bad key" can't ride in an MGET frame (the wire uses NUL/space
        # framing), so it must break the run and ship as a single GET.
        ops = [_op("GET", "good"), _op("GET", "bad key"), _op("GET", "good")]
        futs = _enqueue_batch(channel, ops)
        assert futs[0].result(10) == b"g"
        with pytest.raises(StoreError):
            futs[1].result(10)
        assert futs[2].result(10) == b"g"
        assert channel.stats.coalesced_requests == 0

    def test_concurrent_callers_coalesce_and_stay_correct(self, server):
        chan = AsyncClientChannel(server.address, TransportConfig())
        try:
            for i in range(16):
                chan.set(f"c{i}", b"v%d" % i)
            errors = []

            def worker(i):
                try:
                    for _ in range(25):
                        assert chan.get(f"c{i}") == b"v%d" % i
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            # 16 callers blocked behind one wire: while one round trip
            # is in flight the rest pile up and fold. Over 400 gets the
            # coalescer cannot plausibly stay idle.
            assert chan.stats.coalesced_requests > 0
            assert chan.stats.coalesced_keys >= 2 * chan.stats.coalesced_requests
        finally:
            chan.close()


class TestClientPoolBounds:
    def test_churn_is_bounded_by_max_size(self, server):
        """Regression: bursty fan-out used to open one short-lived
        connection per concurrent miss; the semaphore caps lifetime
        connections at max_size.

        max_idle == max_size so every released client goes back to the
        idle list: with a smaller idle cap the pool *deliberately*
        closes surplus connections on release and reopens on the next
        miss, so `created` drifts above max_size whenever more than
        max_idle borrowers happen to overlap — a scheduling accident,
        which made this test flaky. The bug being pinned (one socket
        per miss) would still blow past the bound by two orders."""
        pool = _ClientPool(server.address, TransportConfig(),
                           TransportStats(), lambda: random.Random(7),
                           max_idle=4, max_size=4)
        errors = []

        def worker():
            try:
                for _ in range(30):
                    client = pool.acquire()
                    try:
                        assert client.ping()
                    finally:
                        pool.release(client)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert not errors
            assert 1 <= pool.created <= 4
        finally:
            pool.close()

    def test_max_size_must_cover_max_idle(self, server):
        with pytest.raises(StoreError):
            _ClientPool(server.address, TransportConfig(), TransportStats(),
                        lambda: random.Random(7), max_idle=8, max_size=4)


class TestMaxConnections:
    def test_excess_connections_are_refused_then_admitted(self):
        srv = NetKVServer(max_connections=2).start()
        cfg = TransportConfig(retries=1, backoff_base=0.001,
                              backoff_max=0.005, connect_timeout=2.0,
                              op_timeout=2.0)
        c1 = c2 = c3 = None
        try:
            c1 = NetKVClient(srv.address, config=cfg)
            c2 = NetKVClient(srv.address, config=cfg)
            assert c1.ping() and c2.ping()
            assert srv.connection_count() == 2
            c3 = NetKVClient(srv.address, config=cfg)
            with pytest.raises(StoreUnavailable):
                c3.ping()
            # Freeing a slot readmits the refused client on retry.
            c1.close()
            deadline = time.monotonic() + 5.0
            while srv.connection_count() > 1:
                assert time.monotonic() < deadline, "slot never freed"
                time.sleep(0.01)
            assert c3.ping()
        finally:
            for c in (c1, c2, c3):
                if c is not None:
                    c.close()
            srv.stop()


class TestTransportSelection:
    def test_threaded_transport_still_serves(self, server):
        cluster = NetKVCluster([server.address], transport="threaded")
        try:
            cluster.set("k", b"v")
            assert cluster.get("k") == b"v"
            assert all(isinstance(p, _ClientPool) for p in cluster._pools)
        finally:
            cluster.close()

    def test_unknown_transport_is_rejected(self, server):
        with pytest.raises(StoreError):
            NetKVCluster([server.address], transport="carrier-pigeon")
