"""Tests for the AA engine, SS analysis, createsim, and backmapping."""

import numpy as np
import pytest

from repro.sims.aa.analysis import (
    SecondaryStructureAnalysis,
    classify_backbone,
    consensus_pattern,
)
from repro.sims.aa.engine import AAConfig, AASim
from repro.sims.cg.forcefield import martini_like
from repro.sims.mapping.backmap import backmap
from repro.sims.mapping.createsim import build_membrane, createsim
from repro.sims.mapping.systems import AASystem, CGSystem


def straight_chain(n, spacing=0.4):
    return np.stack([np.arange(n) * spacing, np.zeros(n)], axis=1) + 1.0


class TestSecondaryStructure:
    def test_straight_chain_is_extended(self):
        pos = straight_chain(8)
        ss = classify_backbone(pos, np.arange(8))
        assert ss == "E" * 8

    def test_right_angle_turns_are_helix(self):
        # Square-wave chain: every interior angle is 90 degrees.
        pts = np.array([[0, 0], [1, 0], [1, 1], [2, 1], [2, 2], [3, 2]], dtype=float) + 3
        ss = classify_backbone(pts, np.arange(6))
        assert set(ss) == {"H"}

    def test_short_chains_are_coil(self):
        assert classify_backbone(np.zeros((2, 2)), np.arange(2)) == "CC"
        assert classify_backbone(np.zeros((0, 2)), np.arange(0)) == ""

    def test_periodic_wrapping_handled(self):
        # Chain crossing the periodic boundary stays "straight".
        box = 10.0
        xs = (np.arange(8) * 0.4 + 9.0) % box
        pos = np.stack([xs, np.full(8, 5.0)], axis=1)
        ss = classify_backbone(pos, np.arange(8), box=box)
        assert ss == "E" * 8

    def test_consensus_majority(self):
        assert consensus_pattern(["HHC", "HEC", "HHE"]) == "HHC"

    def test_consensus_validation(self):
        with pytest.raises(ValueError):
            consensus_pattern([])
        with pytest.raises(ValueError):
            consensus_pattern(["HH", "H"])

    def test_analysis_accumulates(self):
        an = SecondaryStructureAnalysis(np.arange(6))
        an.analyze_frame(straight_chain(6))
        an.analyze_frame(straight_chain(6))
        assert len(an.patterns) == 2
        assert an.consensus() == "E" * 6
        assert an.helicity() == 0.0


class TestAASim:
    def _toy(self, seed=0, restrained=False):
        pos = straight_chain(6)
        bonds = np.array([[i, i + 1, 0.4] for i in range(5)], dtype=float)
        mask = None
        if restrained:
            mask = np.ones(6, dtype=bool)
        return AASim(pos, bonds, np.arange(6), config=AAConfig(seed=seed), restrained=mask)

    def test_minimize_reduces_energy(self):
        sim = self._toy()
        sim.positions += np.random.default_rng(0).normal(0, 0.1, sim.positions.shape)
        _, e0 = sim.forces()
        e1 = sim.minimize(nsteps=100)
        assert e1 < e0

    def test_step_advances_time(self):
        sim = self._toy()
        sim.step(10)
        assert sim.time == pytest.approx(10 * sim.config.dt)

    def test_restraints_hold_atoms(self):
        pinned = self._toy(seed=1, restrained=True)
        free = self._toy(seed=1, restrained=False)
        pinned.step(200)
        free.step(200)
        drift_pinned = np.linalg.norm(pinned._min_image(pinned.positions - straight_chain(6)), axis=1).mean()
        drift_free = np.linalg.norm(free._min_image(free.positions - straight_chain(6)), axis=1).mean()
        assert drift_pinned < drift_free

    def test_release_restraints(self):
        sim = self._toy(restrained=True)
        sim.release_restraints()
        assert not sim.restrained.any()

    def test_checkpoint_roundtrip(self):
        sim = self._toy(seed=2)
        sim.step(5)
        state = sim.state_dict()
        sim.step(5)
        after = sim.positions.copy()
        fresh = self._toy(seed=2)
        fresh.load_state_dict(state)
        fresh.step(5)
        np.testing.assert_array_equal(fresh.positions, after)

    def test_validation(self):
        with pytest.raises(ValueError):
            AAConfig(dt=0)
        with pytest.raises(ValueError):
            AASim(np.zeros((2, 3)), np.empty((0, 3)), np.arange(2))


class TestBuildMembrane:
    def test_counts_per_type(self):
        rng = np.random.default_rng(0)
        dens = np.ones((3, 8, 8))
        pos, types = build_membrane(dens, box=4.0, beads_per_type=50, rng=rng)
        assert pos.shape == (150, 2)
        assert np.all(np.bincount(types) == 50)

    def test_positions_follow_density(self):
        rng = np.random.default_rng(1)
        dens = np.zeros((1, 8, 8))
        dens[0, :4, :] = 1.0  # all mass in the left half (x < box/2)
        pos, _ = build_membrane(dens, box=4.0, beads_per_type=200, rng=rng)
        assert np.all(pos[:, 0] < 2.0)

    def test_empty_density_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            build_membrane(np.zeros((1, 4, 4)), box=1.0, beads_per_type=10, rng=rng)

    def test_needs_3d(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            build_membrane(np.ones((4, 4)), box=1.0, beads_per_type=10, rng=rng)


class TestCreatesim:
    def _patch_densities(self):
        rng = np.random.default_rng(4)
        return 1.0 + 0.2 * rng.random((4, 12, 12))

    def test_produces_runnable_system(self):
        sys = createsim(self._patch_densities(), box=8.0, with_raf=True,
                        patch_id="patch-1", beads_per_type=30, seed=0)
        assert isinstance(sys, CGSystem)
        assert sys.source_patch == "patch-1"
        assert sys.nparticles == 4 * 30 + 6
        assert sys.bonds.shape[0] == 5

    def test_raf_state_controls_protein_composition(self):
        ff = martini_like(4)
        with_raf = createsim(self._patch_densities(), box=8.0, with_raf=True,
                             forcefield=ff, beads_per_type=10, seed=1)
        without = createsim(self._patch_densities(), box=8.0, with_raf=False,
                            forcefield=ff, beads_per_type=10, seed=1)
        raf_id = ff.index_of("RAF")
        assert np.sum(with_raf.type_ids == raf_id) > 0
        assert np.sum(without.type_ids == raf_id) == 0

    def test_relaxation_reduces_energy(self):
        from repro.sims.cg.engine import CGConfig, CGSim

        dens = self._patch_densities()
        ff = martini_like(4)
        raw = createsim(dens, box=8.0, with_raf=True, forcefield=ff,
                        beads_per_type=30, relax_steps=0, seed=2)
        relaxed = createsim(dens, box=8.0, with_raf=True, forcefield=martini_like(4),
                            beads_per_type=30, relax_steps=60, seed=2)

        def energy(sys, ff):
            sim = CGSim(sys.positions, sys.type_ids, ff,
                        CGConfig(box=8.0, n_lipids=120), bonds=sys.bonds)
            return sim.forces()[1]

        assert energy(relaxed, martini_like(4)) < energy(raw, ff)

    def test_too_few_ff_types_rejected(self):
        with pytest.raises(ValueError):
            createsim(np.ones((8, 4, 4)), box=4.0, with_raf=True,
                      forcefield=martini_like(2), beads_per_type=5)

    def test_system_bytes_roundtrip(self):
        sys = createsim(self._patch_densities(), box=8.0, with_raf=True,
                        patch_id="p9", beads_per_type=10, seed=3)
        back = CGSystem.from_bytes(sys.to_bytes())
        np.testing.assert_array_equal(back.positions, sys.positions)
        assert back.source_patch == "p9"
        assert back.box == sys.box


class TestBackmap:
    def _cg_system(self, seed=0):
        dens = 1.0 + np.random.default_rng(seed).random((2, 8, 8))
        return createsim(dens, box=6.0, with_raf=True, forcefield=martini_like(2),
                         beads_per_type=15, n_protein_beads=6, seed=seed)

    def test_expansion_counts(self):
        sys = self._cg_system()
        aa = backmap(sys, martini_like(2), frame_id="f1", atoms_per_bead=3)
        assert isinstance(aa, AASystem)
        assert aa.natoms == sys.nparticles * 3
        assert aa.source_frame == "f1"

    def test_backbone_follows_protein_beads(self):
        sys = self._cg_system()
        aa = backmap(sys, martini_like(2), atoms_per_bead=4)
        assert aa.backbone.size == 6  # one backbone atom per protein bead
        assert np.all(aa.backbone % 4 == 0)

    def test_atoms_near_source_beads(self):
        sys = self._cg_system()
        aa = backmap(sys, martini_like(2), atoms_per_bead=3, cycles=1)
        # Each atom should stay within ~ring radius + relaxation drift of
        # its parent bead.
        parents = np.repeat(np.arange(sys.nparticles), 3)
        d = aa.positions - sys.positions[parents]
        d -= sys.box * np.round(d / sys.box)
        assert np.linalg.norm(d, axis=1).max() < 1.0

    def test_runnable_by_aa_engine(self):
        sys = self._cg_system()
        aa = backmap(sys, martini_like(2))
        sim = AASim(aa.positions, aa.bonds, aa.backbone, config=AAConfig(box=aa.box))
        sim.step(5)  # must not blow up
        assert np.all(np.isfinite(sim.positions))

    def test_bytes_roundtrip(self):
        sys = self._cg_system()
        aa = backmap(sys, martini_like(2), frame_id="f7")
        back = AASystem.from_bytes(aa.to_bytes())
        np.testing.assert_array_equal(back.backbone, aa.backbone)
        assert back.source_frame == "f7"

    def test_invalid_atoms_per_bead(self):
        with pytest.raises(ValueError):
            backmap(self._cg_system(), martini_like(2), atoms_per_bead=0)
