"""I/O armoring: retries, backoff, and backup-on-write.

Section 4.2 of the paper: "Where needed, I/O armoring and redundancy is
used to guard against filesystem failures, e.g., backups of checkpoint
files and retrials if reading/writing fails." This module provides those
primitives for every backend.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple, Type

__all__ = ["RetryPolicy", "ArmorError", "armored_call", "backup_write", "restore_from_backup"]


class ArmorError(RuntimeError):
    """Raised when an armored call exhausts all its retries.

    The last underlying exception is available as ``__cause__``.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait between attempts.

    ``backoff`` multiplies the delay after each failure; ``sleep`` may be
    swapped for a no-op (or a virtual-clock advance) in tests.
    """

    retries: int = 3
    delay: float = 0.0
    backoff: float = 2.0
    exceptions: Tuple[Type[BaseException], ...] = (OSError, IOError)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


def armored_call(
    fn: Callable[..., Any],
    *args: Any,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    **kwargs: Any,
) -> Any:
    """Call ``fn(*args, **kwargs)``, retrying per ``policy`` on failure.

    Returns the function's result; raises :class:`ArmorError` once the
    retry budget is exhausted. ``on_retry(attempt, exc)`` is invoked
    after each failed attempt (for logging/metrics).
    """
    policy = policy or RetryPolicy()
    delay = policy.delay
    last_exc: Optional[BaseException] = None
    for attempt in range(policy.retries + 1):
        try:
            return fn(*args, **kwargs)
        except policy.exceptions as exc:  # noqa: PERF203 - retry loop
            last_exc = exc
            if on_retry is not None:
                on_retry(attempt, exc)
            if attempt < policy.retries and delay > 0:
                sleep(delay)
                delay *= policy.backoff
    raise ArmorError(
        f"{getattr(fn, '__name__', fn)!r} failed after {policy.retries + 1} attempts"
    ) from last_exc


def backup_write(path: str, data: bytes, *, backup_suffix: str = ".bak") -> None:
    """Write ``data`` to ``path``, keeping the previous contents as a backup.

    The write is atomic with respect to crashes: data lands in a temp
    file first and is renamed into place, and the prior version (if any)
    survives as ``path + backup_suffix``.
    """
    tmp = path + ".tmp"
    if os.path.exists(path):
        shutil.copy2(path, path + backup_suffix)
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def restore_from_backup(path: str, *, backup_suffix: str = ".bak") -> bytes:
    """Read ``path``, falling back to its backup if the primary is bad.

    Raises :class:`ArmorError` when neither the file nor its backup can
    be read.
    """
    for candidate in (path, path + backup_suffix):
        try:
            with open(candidate, "rb") as fh:
                return fh.read()
        except OSError:
            continue
    raise ArmorError(f"neither {path!r} nor its backup could be read")
