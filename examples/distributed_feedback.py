#!/usr/bin/env python
"""Distributed deployment: the feedback loop over a real TCP KV cluster.

The campaign's Redis cluster lived on 20 dedicated nodes, with every
compute node's analysis pushing RDFs over the network. This example
spins up a small networked KV cluster (real sockets, in this process),
streams RDF frames from "simulation" threads, and runs the actual
CG→continuum feedback manager against it — the same manager class used
with in-process stores, pointed at the wire.

Run:  python examples/distributed_feedback.py
"""

import threading
import time

import numpy as np

from repro.app.feedback import CGToContinuumFeedback
from repro.datastore.netkv import NetKVServer, NetKVStore
from repro.sims.cg.analysis import RDFResult
from repro.sims.continuum.ddft import ContinuumConfig, ContinuumSim

N_SERVERS = 4
N_SIM_THREADS = 6
FRAMES_PER_SIM = 40


def simulation_worker(store: NetKVStore, sim_id: str, rng: np.random.Generator) -> None:
    """Stands in for one CG simulation+analysis job pushing RDFs."""
    edges = np.linspace(0, 3, 13)
    for frame in range(FRAMES_PER_SIM):
        g = np.ones((2, 12))
        g[0, :4] += rng.random()  # type-0 enrichment near the protein
        rdf = RDFResult(sim_id=sim_id, time=float(frame), edges=edges, g=g)
        store.write(f"rdf/live/{sim_id}-{frame:03d}", rdf.to_bytes())


def main() -> None:
    print(f"Starting {N_SERVERS} networked KV shards...")
    servers = [NetKVServer().start() for _ in range(N_SERVERS)]
    addresses = [s.address for s in servers]
    print(f"  listening on {addresses}")

    store = NetKVStore.connect(addresses)
    continuum = ContinuumSim(ContinuumConfig(grid=16, n_inner=2, n_outer=2,
                                             n_proteins=2, dt=0.25, seed=0))
    feedback = CGToContinuumFeedback(store, continuum)

    print(f"Streaming RDFs from {N_SIM_THREADS} concurrent simulation threads...")
    rng = np.random.default_rng(0)
    threads = [
        threading.Thread(target=simulation_worker,
                         args=(NetKVStore.connect(addresses), f"cg{i:02d}",
                               np.random.default_rng(i)))
        for i in range(N_SIM_THREADS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    push_time = time.perf_counter() - t0
    total = N_SIM_THREADS * FRAMES_PER_SIM
    print(f"  pushed {total} frames over TCP in {push_time:.2f}s "
          f"({total/push_time:,.0f} frames/s)")

    print("Running a feedback iteration against the cluster...")
    t0 = time.perf_counter()
    report = feedback.run_iteration()
    print(f"  processed {report.n_items} frames in "
          f"{time.perf_counter() - t0:.2f}s; continuum couplings now at "
          f"version {continuum.coupling_version}")
    print(f"  live namespace emptied: {len(store.keys('rdf/live/'))} left, "
          f"{len(store.keys('rdf/done/'))} tagged done")

    store.close()
    for s in servers:
        s.stop()
    print("Cluster shut down.")


if __name__ == "__main__":
    main()
