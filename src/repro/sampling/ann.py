"""Nearest-neighbour backends for the farthest-point sampler.

The paper ranks patch candidates with "approximate nearest neighbor
queries (with L2 distances) powered by the FAISS framework". FAISS is
not available offline, so three interchangeable backends stand in:

- :class:`ExactIndex` — brute-force vectorized L2 (ground truth).
- :class:`KDTreeIndex` — :class:`scipy.spatial.cKDTree` (exact, fast
  at low dimension like the 9-D patch encoding).
- :class:`ProjectionIndex` — an IVF-style approximate index: coarse
  quantization by random projection, candidate search restricted to
  the ``nprobe`` nearest cells. Trades recall for speed exactly the way
  FAISS's IVF indexes do.

All backends answer "distance from each query to its nearest indexed
point", which is the only query farthest-point sampling needs.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["NeighborIndex", "ExactIndex", "KDTreeIndex", "ProjectionIndex"]


class NeighborIndex(abc.ABC):
    """Index over a fixed set of points; queried for nearest distances."""

    @abc.abstractmethod
    def build(self, coords: np.ndarray) -> None:
        """(Re)build the index over ``coords`` of shape (n, dim)."""

    @abc.abstractmethod
    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        """L2 distance from each query row to its nearest indexed point.

        Returns +inf for every query when the index is empty.
        """

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of indexed points."""


def _empty_result(queries: np.ndarray) -> np.ndarray:
    return np.full(queries.shape[0], np.inf)


class ExactIndex(NeighborIndex):
    """Brute force: one broadcasted distance matrix per query batch."""

    def __init__(self) -> None:
        self._coords: Optional[np.ndarray] = None

    def build(self, coords: np.ndarray) -> None:
        self._coords = np.asarray(coords, dtype=np.float64)

    @property
    def size(self) -> int:
        return 0 if self._coords is None else self._coords.shape[0]

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        if self.size == 0:
            return _empty_result(queries)
        # ||q - c||^2 = ||q||^2 - 2 q.c + ||c||^2, vectorized (no copies of
        # the full pairwise difference tensor).
        q2 = np.einsum("ij,ij->i", queries, queries)[:, None]
        c2 = np.einsum("ij,ij->i", self._coords, self._coords)[None, :]
        d2 = q2 - 2.0 * queries @ self._coords.T + c2
        np.maximum(d2, 0.0, out=d2)
        return np.sqrt(d2.min(axis=1))


class KDTreeIndex(NeighborIndex):
    """scipy cKDTree backend — exact, sublinear queries at low dim."""

    def __init__(self) -> None:
        self._tree: Optional[cKDTree] = None
        self._n = 0

    def build(self, coords: np.ndarray) -> None:
        coords = np.asarray(coords, dtype=np.float64)
        self._n = coords.shape[0]
        self._tree = cKDTree(coords) if self._n else None

    @property
    def size(self) -> int:
        return self._n

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        if self._tree is None:
            return _empty_result(queries)
        dists, _ = self._tree.query(queries, k=1)
        return np.atleast_1d(dists)


class ProjectionIndex(NeighborIndex):
    """IVF-style approximate index.

    Points are assigned to ``ncells`` coarse cells by nearest random
    anchor; a query searches only its ``nprobe`` closest cells. With
    ``nprobe == ncells`` the result is exact.
    """

    def __init__(self, ncells: int = 16, nprobe: int = 2, seed: int = 0) -> None:
        if ncells < 1 or not 1 <= nprobe:
            raise ValueError("ncells >= 1 and nprobe >= 1 required")
        self.ncells = ncells
        self.nprobe = min(nprobe, ncells)
        self._rng = np.random.default_rng(seed)
        self._coords: Optional[np.ndarray] = None
        self._anchors: Optional[np.ndarray] = None
        self._cell_members: list = []

    def build(self, coords: np.ndarray) -> None:
        coords = np.asarray(coords, dtype=np.float64)
        self._coords = coords
        n = coords.shape[0]
        if n == 0:
            self._anchors = None
            self._cell_members = []
            return
        ncells = min(self.ncells, n)
        anchor_rows = self._rng.choice(n, size=ncells, replace=False)
        self._anchors = coords[anchor_rows]
        assign = self._nearest_anchor(coords)
        self._cell_members = [np.nonzero(assign == c)[0] for c in range(ncells)]

    def _nearest_anchor(self, points: np.ndarray) -> np.ndarray:
        d2 = (
            np.einsum("ij,ij->i", points, points)[:, None]
            - 2.0 * points @ self._anchors.T
            + np.einsum("ij,ij->i", self._anchors, self._anchors)[None, :]
        )
        return d2.argmin(axis=1)

    def _anchor_order(self, points: np.ndarray) -> np.ndarray:
        d2 = (
            np.einsum("ij,ij->i", points, points)[:, None]
            - 2.0 * points @ self._anchors.T
            + np.einsum("ij,ij->i", self._anchors, self._anchors)[None, :]
        )
        return d2.argsort(axis=1)

    @property
    def size(self) -> int:
        return 0 if self._coords is None else self._coords.shape[0]

    def nearest_distance(self, queries: np.ndarray) -> np.ndarray:
        queries = np.atleast_2d(queries)
        if self.size == 0 or self._anchors is None:
            return _empty_result(queries)
        order = self._anchor_order(queries)[:, : self.nprobe]
        out = np.full(queries.shape[0], np.inf)
        for qi in range(queries.shape[0]):
            rows = np.concatenate([self._cell_members[c] for c in order[qi]])
            if rows.size == 0:
                continue
            diffs = self._coords[rows] - queries[qi]
            out[qi] = np.sqrt(np.einsum("ij,ij->i", diffs, diffs).min())
        return out
