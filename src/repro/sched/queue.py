"""The queue manager (Q): FCFS, no backfilling, sync or async Q↔R.

§5.2 diagnoses the 4000-node bottleneck: "Flux's queue manager (Q) and
resource graph matcher (R) communicate synchronously. Our scaling run
exposed this bottleneck where Q spends the bulk of its time handling
new job submissions as opposed to forwarding jobs to R." The fix made
that communication asynchronous.

:class:`QueueManager` models both modes in virtual time. Work is
accounted in seconds: every intake costs ``submit_cost`` and every
match attempt costs ``match_overhead + per-vertex traversal``. A
scheduling *cycle* has a fixed time budget:

- ``SYNC``: intake and matching share one budget, intake first — so a
  sustained submission stream starves the matcher, and job starts come
  in chunks when the stream pauses (Fig. 6, 4000 nodes).
- ``ASYNC``: intake and matching each get a full budget (they run
  concurrently), so starts track submissions smoothly.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy

__all__ = ["QueueMode", "QueueCosts", "QueueManager", "CycleReport",
           "DEFAULT_BACKFILL_WINDOW"]

#: Window used when the matcher runs the BACKFILL policy and the queue
#: was not given an explicit ``backfill_window``.
DEFAULT_BACKFILL_WINDOW = 16


class QueueMode(enum.Enum):
    SYNC = "sync"
    ASYNC = "async"


@dataclass(frozen=True)
class QueueCosts:
    """Virtual-time cost model for queue-manager work.

    Defaults are calibrated so a ~100 jobs/min stream loads a 1000-node
    partition smoothly with the exhaustive matcher while the same stream
    at 4000 nodes exhibits the paper's chunking (see the Fig. 6 bench).
    """

    submit_cost: float = 0.25
    """Seconds of Q time to ingest one submission (script write, RPC)."""

    match_overhead: float = 0.002
    """Fixed seconds per match attempt (Q→R round trip)."""

    vertex_cost: float = 2.0e-6
    """Seconds per resource-graph vertex the matcher visits."""


@dataclass
class CycleReport:
    """What one scheduling cycle accomplished."""

    time: float
    intaken: int = 0
    started: List[JobRecord] = field(default_factory=list)
    preempted: List[JobRecord] = field(default_factory=list)
    intake_time: float = 0.0
    match_time: float = 0.0


class QueueManager:
    """FCFS queue in front of a :class:`Matcher`.

    The campaign's throughput-oriented policy is strict FCFS with no
    backfilling, but three richer behaviors are available:

    - *backfill*: up to ``backfill_window`` jobs behind a blocked head
      may start each cycle (auto-enabled with
      :data:`DEFAULT_BACKFILL_WINDOW` when the matcher runs the
      ``BACKFILL`` policy).
    - *gang*: under the ``GANG`` policy, a head whose spec carries a
      ``gang_id`` is matched together with every queued member of that
      gang, all-or-nothing.
    - *preemption*: with ``preemption=True``, a blocked head of higher
      priority evicts the lowest-priority running jobs; evicted jobs
      are requeued directly behind the head for restart.
    """

    def __init__(
        self,
        matcher: Matcher,
        mode: QueueMode = QueueMode.SYNC,
        costs: Optional[QueueCosts] = None,
        backfill_window: int = 0,
        preemption: bool = False,
    ) -> None:
        if backfill_window < 0:
            raise ValueError("backfill_window must be >= 0")
        if backfill_window == 0 and matcher.policy is MatchPolicy.BACKFILL:
            backfill_window = DEFAULT_BACKFILL_WINDOW
        self.matcher = matcher
        self.mode = mode
        self.costs = costs or QueueCosts()
        self.backfill_window = backfill_window
        self.preemption = preemption
        self.backfilled = 0  # jobs started ahead of a blocked head
        self.preempted = 0   # evictions performed for higher-priority heads
        self.gangs_placed = 0
        self.inbox: Deque[JobRecord] = deque()   # submitted, not yet ingested
        self.pending: Deque[JobRecord] = deque()  # ingested, awaiting match
        self.running: Dict[int, JobRecord] = {}
        self.history: List[CycleReport] = []

    # --- submission ------------------------------------------------------

    def submit(self, record: JobRecord) -> None:
        """Drop a job into Q's inbox (asynchronous to the caller)."""
        self.inbox.append(record)

    @property
    def backlog(self) -> int:
        """Jobs submitted but not yet running."""
        return len(self.inbox) + len(self.pending)

    # --- one scheduling cycle ------------------------------------------------

    def cycle(self, now: float, budget: float) -> CycleReport:
        """Run one cycle of Q work within ``budget`` seconds of Q time.

        Returns the jobs started this cycle; the caller (FluxInstance)
        is responsible for scheduling their completions.
        """
        report = CycleReport(time=now)
        if self.mode is QueueMode.SYNC:
            remaining = self._do_intake(report, budget)
            self._do_matching(report, now, remaining)
        else:
            self._do_intake(report, budget)
            self._do_matching(report, now, budget)
        self.history.append(report)
        return report

    def _do_intake(self, report: CycleReport, budget: float) -> float:
        """Move inbox -> pending until the inbox drains or budget runs out.

        Returns the unused budget.
        """
        cost = self.costs.submit_cost
        while self.inbox and budget >= cost:
            self.pending.append(self.inbox.popleft())
            budget -= cost
            report.intaken += 1
            report.intake_time += cost
        return budget

    def _do_matching(self, report: CycleReport, now: float, budget: float) -> None:
        """FCFS match from the head of pending; stop on first failure.

        The campaign's throughput-oriented policy is strict FCFS with no
        backfilling: a blocked head makes everyone wait. Flux's "many
        policy knobs" include backfilling, modeled here as a bounded
        window: when the head cannot place, up to ``backfill_window``
        later jobs are tried this cycle (the head keeps its position).
        Gang heads are matched with their whole ensemble; a blocked
        higher-priority head may preempt when the knob is on.
        """
        while self.pending and budget > 0:
            head = self.pending[0]
            if head.spec.gang_id is not None and self.matcher.policy is MatchPolicy.GANG:
                cost, placed = self._attempt_gang(head, now, report)
                budget -= cost
                if placed:
                    continue
            else:
                cost = self._attempt(head, now, report)
                budget -= cost
                if head.state is JobState.RUNNING:
                    self.pending.popleft()
                    continue
                if self.preemption and budget > 0:
                    budget -= self._attempt_preempt(head, now, report)
                    if head.state is JobState.RUNNING:
                        self.pending.popleft()
                        continue
            # Head blocked. Optionally try a bounded backfill window.
            if self.backfill_window:
                budget = self._backfill(report, now, budget)
            break

    # --- gang co-placement ----------------------------------------------

    def _gang_members(self, gang_id: str) -> List[JobRecord]:
        """Queued members of a gang, head first, in submission order."""
        return [r for r in self.pending if r.spec.gang_id == gang_id]

    def _gang_complete(self, gang_id: str) -> bool:
        """A gang with members still in the inbox is not ready to place:
        starting a partial ensemble would defeat all-or-nothing."""
        return not any(r.spec.gang_id == gang_id for r in self.inbox)

    def _attempt_gang(self, head: JobRecord, now: float,
                      report: CycleReport) -> Tuple[float, bool]:
        """Co-place the head's whole gang; returns (Q-time cost, placed)."""
        gang_id = head.spec.gang_id
        if not self._gang_complete(gang_id):
            return 0.0, False  # wait for the rest of the ensemble
        members = self._gang_members(gang_id)
        visits_before = self.matcher.stats.vertices_visited
        allocs = self.matcher.match_gang([m.spec for m in members])
        cost = (
            self.costs.match_overhead * len(members)
            + (self.matcher.stats.vertices_visited - visits_before) * self.costs.vertex_cost
        )
        report.match_time += cost
        if allocs is None:
            return cost, False
        for record, alloc in zip(members, allocs):
            record.allocation = alloc
            record.state = JobState.RUNNING
            record.start_time = now
            self.running[record.job_id] = record
            report.started.append(record)
            self.pending.remove(record)
        self.gangs_placed += 1
        return cost, True

    # --- preemption -------------------------------------------------------

    def _attempt_preempt(self, head: JobRecord, now: float, report: CycleReport) -> float:
        """Evict lower-priority running jobs to place a blocked head.

        Evicted jobs go back to PENDING directly behind the head (they
        restart as soon as capacity allows) and are reported via
        ``report.preempted`` so the caller can discard their scheduled
        completions.
        """
        victims = [
            (rec.spec.priority, rec.job_id, rec.allocation)
            for rec in self.running.values()
            if rec.allocation is not None
        ]
        if not any(prio < head.spec.priority for prio, _, _ in victims):
            return 0.0
        visits_before = self.matcher.stats.vertices_visited
        outcome = self.matcher.preempt(head.spec, victims)
        cost = (
            self.costs.match_overhead
            + (self.matcher.stats.vertices_visited - visits_before) * self.costs.vertex_cost
        )
        report.match_time += cost
        if outcome is None:
            return cost
        alloc, evicted_ids = outcome
        requeued = [self.running.pop(job_id) for job_id in evicted_ids]
        for record in requeued:
            record.state = JobState.PENDING
            record.allocation = None
            record.start_time = None
            report.preempted.append(record)
            self.preempted += 1
        # Reinsert behind the head, preserving original order.
        for record in reversed(requeued):
            self.pending.insert(1, record)
        head.allocation = alloc
        head.state = JobState.RUNNING
        head.start_time = now
        self.running[head.job_id] = head
        report.started.append(head)
        return cost

    def _attempt(self, record: JobRecord, now: float, report: CycleReport) -> float:
        """Try to place one job; returns the Q-time cost of the attempt."""
        visits_before = self.matcher.stats.vertices_visited
        alloc = self.matcher.match(record.spec)
        cost = (
            self.costs.match_overhead
            + (self.matcher.stats.vertices_visited - visits_before) * self.costs.vertex_cost
        )
        report.match_time += cost
        if alloc is not None:
            record.allocation = alloc
            record.state = JobState.RUNNING
            record.start_time = now
            self.running[record.job_id] = record
            report.started.append(record)
        return cost

    def _backfill(self, report: CycleReport, now: float, budget: float) -> float:
        """Try jobs behind a blocked head, up to the window size.

        Gang members never backfill individually — an ensemble only
        starts all-or-nothing from the head of the queue.
        """
        candidates = list(self.pending)[1: 1 + self.backfill_window]
        for record in candidates:
            if budget <= 0:
                break
            if record.spec.gang_id is not None:
                continue
            budget -= self._attempt(record, now, report)
            if record.state is JobState.RUNNING:
                self.pending.remove(record)
                self.backfilled += 1
        return budget

    # --- completion/cancellation (driven by FluxInstance) ----------------

    def finish(self, record: JobRecord, now: float, state: JobState = JobState.COMPLETED) -> None:
        if record.job_id not in self.running:
            raise KeyError(f"job {record.job_id} is not running")
        del self.running[record.job_id]
        record.state = state
        record.end_time = now
        if record.allocation is not None:
            self.matcher.release(record.allocation)
            record.allocation = None

    def cancel_pending(self, record: JobRecord, now: float) -> bool:
        """Cancel a job that has not started; returns False if not queued."""
        for q in (self.inbox, self.pending):
            try:
                q.remove(record)
            except ValueError:
                continue
            record.state = JobState.CANCELLED
            record.end_time = now
            return True
        return False
