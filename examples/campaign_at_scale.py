#!/usr/bin/env python
"""Replay the Summit campaign (Table 1) in virtual time on this machine.

Runs the discrete-event campaign simulator over the paper's full
allocation ledger (600,600 node hours) and prints the paper-facing
summaries: the Table 1 ledger, §5.1 aggregate counters, Fig. 3-style
length histograms, and the Fig. 5 occupancy headline.

Run:  python examples/campaign_at_scale.py [--small]
"""

import sys

import numpy as np

from repro.core.campaign import CampaignConfig, CampaignSimulator, RunSpec
from repro.util.stats import Histogram, fraction_at_least

SMALL_LEDGER = (RunSpec(100, 6, 2), RunSpec(250, 8, 2), RunSpec(500, 12, 1))


def ascii_hist(hist: Histogram, width: int = 40, unit: str = "") -> None:
    peak = max(int(hist.counts.max()), 1)
    for lo, hi, count in hist.as_series():
        bar = "#" * int(width * count / peak)
        print(f"    {lo:6.1f}-{hi:6.1f} {unit} | {bar} {count}")


def main() -> None:
    small = "--small" in sys.argv
    if small:
        config = CampaignConfig(ledger=SMALL_LEDGER, seed=2021)
    else:
        config = CampaignConfig(seed=2021)  # the full paper ledger
    label = "scaled-down" if small else "full paper"
    print(f"Simulating the {label} ledger (virtual time)...")
    result = CampaignSimulator(config).run()

    print("\n--- Table 1: the allocation ledger ---")
    print(f"  {'#nodes':>8} {'wall-time':>10} {'#runs':>6} {'node hours':>12}")
    for row in result.table1:
        print(f"  {row['nnodes']:>8} {row['walltime_hours']:>9}h "
              f"{row['runs']:>6} {row['node_hours']:>12,.0f}")
    print(f"  total node hours: {result.total_node_hours():,.0f}")

    c = result.counters
    print("\n--- campaign aggregates (paper Section 5.1) ---")
    print(f"  continuum simulated : {c['continuum_ms']:.1f} ms "
          f"({c['snapshots']:,} snapshots)")
    print(f"  patches created     : {c['patches_created']:,}")
    print(f"  CG sims             : {c['cg_sims']:,} "
          f"({c['cg_selection_percent']:.2f}% of patches), "
          f"{c['cg_total_ms']:.1f} ms of CG trajectories")
    print(f"  CG frame candidates : {c['frame_candidates']:,}")
    print(f"  AA sims             : {c['aa_sims']:,} "
          f"({c['aa_selection_percent']:.3f}% of frames), "
          f"{c['aa_total_us']:.0f} us of AA trajectories")
    print(f"  data produced       : {c['total_data_tb']:.0f} TB total, "
          f"{c['data_tb_per_day']:.1f} TB/day at 1000-node pace")

    print("\n--- Fig. 3: simulation length distributions ---")
    cg_hist = Histogram.linear(0, 5.0, 10)
    cg_hist.add(result.cg_lengths_us)
    print("  CG lengths (us):")
    ascii_hist(cg_hist, unit="us")
    aa_hist = Histogram.linear(0, 65.0, 13)
    aa_hist.add(result.aa_lengths_ns)
    print("  AA lengths (ns):")
    ascii_hist(aa_hist, unit="ns")

    print("\n--- Fig. 5: resource occupancy ---")
    gpu = np.array([e.gpu_occupancy for e in result.profile_events])
    cpu = np.array([e.cpu_occupancy for e in result.profile_events])
    print(f"  GPU: mean {gpu.mean():.2%}, median {np.median(gpu):.2%}, "
          f">=98% occupied for {fraction_at_least(gpu, 0.98):.1%} of profile events")
    print(f"  CPU: mean {cpu.mean():.2%}, median {np.median(cpu):.2%}")


if __name__ == "__main__":
    main()
