"""Generic data management (paper Section 4.2).

One abstract byte-stream interface, three interchangeable backends:

- :class:`~repro.datastore.fsstore.FSStore` — plain filesystem, with I/O
  armoring and backups. Best for small checkpoint/log-style files and
  files that must interoperate with external tools.
- :class:`~repro.datastore.taridx.TaridxStore` — our re-implementation
  of ``pytaridx``: append-only indexed tar archives with random access,
  collapsing millions of inodes into a handful of standard tar files.
- :class:`~repro.datastore.kvstore.KVStore` — an in-memory key-value
  cluster modeled on Redis, used as the high-throughput backend for in
  situ feedback.

"Save a Numpy archive into a byte stream that can be redirected
effortlessly to a file, an archive, or a database — all with a single
configuration switch": that switch is :func:`open_store`.
"""

from repro.datastore.base import (
    DataStore, StoreError, StoreUnavailable, KeyNotFound, open_store,
)
from repro.datastore.fsstore import FSStore, FaultInjector
from repro.datastore.taridx import IndexedTar, TaridxStore, recover_index
from repro.datastore.kvstore import KVServer, KVCluster, KVStore, LatencyModel
from repro.datastore.netkv import (
    NetKVServer, NetKVClient, NetKVCluster, NetKVStore, TransportConfig,
    WireProtocolError,
)
from repro.datastore.namespaced import NamespacedStore
from repro.datastore.tiered import TieredStore
from repro.datastore.stats import IOStats, TransportStats
from repro.datastore import serial

__all__ = [
    "DataStore",
    "StoreError",
    "StoreUnavailable",
    "KeyNotFound",
    "open_store",
    "FSStore",
    "FaultInjector",
    "IndexedTar",
    "TaridxStore",
    "recover_index",
    "KVServer",
    "KVCluster",
    "KVStore",
    "LatencyModel",
    "NetKVServer",
    "NetKVClient",
    "NetKVCluster",
    "NetKVStore",
    "TransportConfig",
    "TransportStats",
    "WireProtocolError",
    "NamespacedStore",
    "TieredStore",
    "IOStats",
    "serial",
]
