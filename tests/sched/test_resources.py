"""Tests for the hierarchical resource graph."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sched.resources import (
    Allocation,
    Node,
    ResourceGraph,
    lassen_like,
    summit_like,
)
from repro.sched.resources import ResourceError


class TestNode:
    def test_shape(self):
        n = Node(0, ncores=44, ngpus=6, nsockets=2)
        assert n.free_cores == 44
        assert n.free_gpus == 6
        assert n.subtree_size() == 1 + 2 + 44 + 6

    def test_invalid_shapes(self):
        with pytest.raises(ResourceError):
            Node(0, ncores=0, ngpus=1)
        with pytest.raises(ResourceError):
            Node(0, ncores=45, ngpus=6, nsockets=2)  # uneven split

    def test_can_fit(self):
        n = Node(0, 4, 2)
        assert n.can_fit(4, 2)
        assert not n.can_fit(5, 0)
        assert not n.can_fit(0, 3)

    def test_drained_cannot_fit(self):
        n = Node(0, 4, 2)
        n.drained = True
        assert not n.can_fit(1, 0)

    def test_claim_release_roundtrip(self):
        n = Node(0, 4, 2)
        n.claim([0, 1], [0])
        assert n.free_cores == 2 and n.free_gpus == 1
        n.release([0, 1], [0])
        assert n.vacant

    def test_double_claim_rejected(self):
        n = Node(0, 4, 2)
        n.claim([0], [])
        with pytest.raises(ResourceError):
            n.claim([0], [])

    def test_double_release_rejected(self):
        n = Node(0, 4, 2)
        with pytest.raises(ResourceError):
            n.release([0], [])

    def test_socket_mapping(self):
        n = Node(0, ncores=44, ngpus=6, nsockets=2)
        assert n.socket_of_core(0) == 0
        assert n.socket_of_core(21) == 0
        assert n.socket_of_core(22) == 1
        assert n.socket_of_gpu(0) == 0
        assert n.socket_of_gpu(5) == 1

    def test_pick_prefers_gpu_socket(self):
        # GPU 5 lives on socket 1; its cores should come from socket 1.
        n = Node(0, ncores=44, ngpus=6, nsockets=2)
        n.claim([], [0, 1, 2])  # force pick to take a socket-1 GPU
        cores, gpus = n.pick(ncores=3, ngpus=1)
        assert gpus == [3]
        assert all(n.socket_of_core(c) == n.socket_of_gpu(3) for c in cores)

    def test_pick_falls_back_across_sockets(self):
        n = Node(0, ncores=4, ngpus=2, nsockets=2)
        cores, gpus = n.pick(ncores=4, ngpus=1)
        assert sorted(cores) == [0, 1, 2, 3]

    def test_pick_infeasible_raises(self):
        n = Node(0, 2, 1)
        with pytest.raises(ResourceError):
            n.pick(3, 0)


class TestResourceGraph:
    def test_presets(self):
        g = summit_like(10)
        assert g.total_cores == 440 and g.total_gpus == 60
        g2 = lassen_like(10)
        assert g2.total_gpus == 40

    def test_claim_updates_aggregates(self):
        g = summit_like(2)
        alloc = g.claim([(0, [0, 1, 2], [0])])
        assert g.used_cores == 3 and g.used_gpus == 1
        g.release(alloc)
        assert g.used_cores == 0 and g.used_gpus == 0

    def test_claim_is_atomic(self):
        g = summit_like(2)
        g.claim([(1, [0], [])])
        with pytest.raises(ResourceError):
            g.claim([(0, [5], []), (1, [0], [])])  # second part conflicts
        # first part must have been rolled back
        assert g.nodes[0].free_cores == 44

    def test_feasible_mask_matches_nodes(self):
        g = summit_like(4)
        g.claim([(1, list(range(44)), list(range(6)))])
        mask = g.feasible_mask(3, 1)
        np.testing.assert_array_equal(mask, [True, False, True, True])

    def test_feasible_mask_exclusive(self):
        g = summit_like(3)
        g.claim([(0, [0], [])])
        mask = g.feasible_mask(0, 0, exclusive=True)
        np.testing.assert_array_equal(mask, [False, True, True])

    def test_drain_excludes_from_feasibility(self):
        g = summit_like(3)
        g.drain(1)
        assert list(g.feasible_ids(1, 0)) == [0, 2]
        assert g.drained_nodes() == [1]
        g.undrain(1)
        assert list(g.feasible_ids(1, 0)) == [0, 1, 2]

    def test_first_feasible_wraps_around(self):
        g = summit_like(4)
        ids, scanned = g.first_feasible(start=3, need=2, ncores=1, ngpus=0)
        assert ids == [3, 0]
        assert scanned <= 4

    def test_first_feasible_counts_scan(self):
        g = summit_like(10)
        for i in range(5):  # fill nodes 0-4 completely
            g.claim([(i, list(range(44)), list(range(6)))])
        ids, scanned = g.first_feasible(start=0, need=1, ncores=1, ngpus=0)
        assert ids == [5]
        assert scanned == 6  # inspected nodes 0..5

    def test_first_feasible_not_enough(self):
        g = summit_like(2)
        ids, scanned = g.first_feasible(start=0, need=5, ncores=1, ngpus=0)
        assert len(ids) == 2
        assert scanned >= 2

    def test_total_vertices(self):
        g = summit_like(10)
        assert g.total_vertices() == 1 + 10 * (1 + 2 + 44 + 6)

    def test_needs_a_node(self):
        with pytest.raises(ResourceError):
            ResourceGraph(0, 4, 1)


@given(
    ops=st.lists(st.tuples(st.integers(0, 3), st.integers(1, 4), st.integers(0, 2)), max_size=30)
)
def test_property_array_mirror_stays_consistent(ops):
    """The vectorized arrays always agree with per-node bookkeeping."""
    g = ResourceGraph(4, cores_per_node=8, gpus_per_node=2)
    allocs = []
    for node_id, ncores, ngpus in ops:
        node = g.nodes[node_id]
        if node.can_fit(ncores, ngpus):
            cores, gpus = node.pick(ncores, ngpus)
            allocs.append(g.claim([(node_id, cores, gpus)]))
        elif allocs:
            g.release(allocs.pop())
        for n in g.nodes:
            assert g._fc[n.node_id] == n.free_cores
            assert g._fg[n.node_id] == n.free_gpus
