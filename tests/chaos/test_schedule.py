"""FaultSchedule DSL: ordering, serialization, seeded sampling."""

import json

import pytest

from repro.chaos import FAULT_KINDS, FaultEvent, FaultSchedule
from repro.util.rng import RngStream


def test_builder_keeps_events_sorted():
    sched = (FaultSchedule()
             .shard_up(400.0, 1)
             .shard_down(90.0, 1)
             .delay(150.0, 0.3)
             .heal(450.0))
    assert [e.kind for e in sched] == ["shard_down", "delay", "shard_up", "heal"]
    assert [e.at for e in sched] == sorted(e.at for e in sched)


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(10.0, "meteor_strike")
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "heal")


def test_json_round_trip():
    sched = (FaultSchedule()
             .shard_down(30.0, 2)
             .garble(60.0, 0.25)
             .stall(90.0, 3)
             .checkpoint_restore(120.0)
             .clock_skip(150.0, 300.0))
    clone = FaultSchedule.from_json(json.loads(json.dumps(sched.to_json())))
    assert clone == sched
    assert clone.dumps() == sched.dumps()


def test_without_and_replaced_are_copies():
    sched = FaultSchedule().shard_down(10.0, 0).heal(20.0)
    smaller = sched.without(0)
    assert len(smaller) == 1 and len(sched) == 2
    assert smaller.events[0].kind == "heal"
    swapped = sched.replaced(1, FaultEvent(5.0, "heal"))
    assert [e.at for e in swapped] == [5.0, 10.0]  # re-sorted
    assert [e.at for e in sched] == [10.0, 20.0]


def test_sample_is_deterministic_per_seed():
    a = FaultSchedule.sample(RngStream(7).child("campaign-0"), rounds=10)
    b = FaultSchedule.sample(RngStream(7).child("campaign-0"), rounds=10)
    c = FaultSchedule.sample(RngStream(8).child("campaign-0"), rounds=10)
    assert a == b
    assert a != c


def test_sample_respects_bounds():
    for i in range(20):
        sched = FaultSchedule.sample(
            RngStream(3).child(f"campaign-{i}"), rounds=5,
            round_seconds=60.0, nshards=4, max_events=6)
        assert 1 <= len(sched) <= 6
        for event in sched:
            assert 0.0 <= event.at <= 5 * 60.0
            assert event.kind in FAULT_KINDS
