"""Per-scale performance models calibrated to the paper's published rates.

§4.1 gives the production throughputs on Summit:

- GridSim2D: ~0.96 ms/day of continuum time on 3600 MPI ranks
  (150 nodes × 24 cores);
- ddcMD: ~1.04 µs/day per GPU at ~140k particles;
- AMBER: ~13.98 ns/day per GPU at ~1.575M atoms.

§5.1 adds the observed deviations the Fig. 4 distributions show:
continuum performance is multi-modal (one mode per allocation size);
CG ran ~20% slow for about a third of the campaign due to an MPI
mis-compile; both particle scales have tight spreads around the mean
with a slow tail. The campaign simulator draws every simulation's rate
from these models, which is what regenerates Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["PerfSample", "PerformanceModel"]

# Published reference points.
CONTINUUM_REF_CORES = 3600
CONTINUUM_REF_RATE = 0.96  # ms/day
CG_REF_PARTICLES = 140_000
CG_REF_RATE = 1.04  # µs/day/GPU
AA_REF_ATOMS = 1_575_000
AA_REF_RATE = 13.98  # ns/day/GPU


@dataclass(frozen=True)
class PerfSample:
    """One simulation's sampled performance point (a Fig. 4 dot)."""

    scale: str  # "continuum" | "cg" | "aa"
    system_size: float  # cores / particles / atoms
    rate: float  # ms/day, µs/day, or ns/day


class PerformanceModel:
    """Seeded sampler of per-simulation throughput."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.015,
        slow_tail_prob: float = 0.03,
        slow_tail_factor: float = 0.75,
        mpi_bug_factor: float = 0.8,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.jitter = jitter
        self.slow_tail_prob = slow_tail_prob
        self.slow_tail_factor = slow_tail_factor
        self.mpi_bug_factor = mpi_bug_factor

    # --- deterministic scaling laws ----------------------------------------

    @staticmethod
    def continuum_rate(ncores: int) -> float:
        """Expected ms/day at an allocation of ``ncores`` MPI ranks.

        Strong scaling with modest parallel overhead: near-linear below
        the reference size (the paper's smaller allocations ran
        "scaled-down performance"), flat above it.
        """
        if ncores < 1:
            raise ValueError("ncores must be >= 1")
        frac = min(ncores / CONTINUUM_REF_CORES, 1.0)
        return CONTINUUM_REF_RATE * frac**0.95

    @staticmethod
    def cg_rate(nparticles: float) -> float:
        """Expected µs/day/GPU; inversely proportional to system size."""
        if nparticles <= 0:
            raise ValueError("nparticles must be positive")
        return CG_REF_RATE * (CG_REF_PARTICLES / nparticles)

    @staticmethod
    def aa_rate(natoms: float) -> float:
        """Expected ns/day/GPU; inversely proportional to system size."""
        if natoms <= 0:
            raise ValueError("natoms must be positive")
        return AA_REF_RATE * (AA_REF_ATOMS / natoms)

    # --- stochastic samplers (one call per simulation) ----------------------

    def _noise(self) -> float:
        base = self.rng.normal(1.0, self.jitter)
        if self.rng.random() < self.slow_tail_prob:
            base *= self.slow_tail_factor  # the "slowest runs" of Fig. 4
        return max(base, 0.1)

    def sample_continuum(self, ncores: int) -> PerfSample:
        rate = self.continuum_rate(ncores) * max(self.rng.normal(1.0, self.jitter), 0.1)
        return PerfSample("continuum", float(ncores), rate)

    def sample_cg(self, mpi_bug: bool = False) -> PerfSample:
        """One CG simulation: size ~ N(140k, 1k), rate from the law.

        ``mpi_bug`` applies the ~20% slowdown of the mis-compiled epoch
        (§5.1) — about the first third of the campaign.
        """
        size = self.rng.normal(CG_REF_PARTICLES, 1000.0)
        rate = self.cg_rate(size) * self._noise()
        if mpi_bug:
            rate *= self.mpi_bug_factor
        return PerfSample("cg", size, rate)

    def sample_aa(self) -> PerfSample:
        """One AA simulation: size ~ N(1.575M, 8k)."""
        size = self.rng.normal(AA_REF_ATOMS, 8000.0)
        rate = self.aa_rate(size) * self._noise()
        return PerfSample("aa", size, rate)
