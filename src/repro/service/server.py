"""The control-plane daemon front end: stdlib HTTP over the registry.

``repro serve`` builds a :class:`ControlPlaneServer`: one
``ThreadingHTTPServer`` (no third-party web framework — the container
bakes in only the scientific stack) whose handler parses JSON, hands
the request to :func:`repro.service.api.dispatch`, and writes the JSON
response. Handler threads are plain request workers; all campaign state
lives behind the thread-safe :class:`~repro.service.registry.CampaignRegistry`.

Shutdown discipline (the "draining and restarting safely" runbook in
OPERATIONS.md automates this order):

1. stop accepting TCP connections,
2. cancel or finish campaigns and join their control threads,
3. drain the shared worker pool,
4. close the shared store (only if the server opened it).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro import trace
from repro._version import __version__
from repro.datastore.base import DataStore, open_store
from repro.service import api
from repro.service.registry import CampaignRegistry, ServiceConfig

__all__ = ["ControlPlaneServer"]

_MAX_BODY = 1 << 20  # 1 MiB of JSON is far beyond any legal request


class _Handler(BaseHTTPRequestHandler):
    """One request: parse → dispatch → JSON reply. No state of its own."""

    server_version = f"repro-control/{__version__}"
    protocol_version = "HTTP/1.1"

    # The registry is attached to the TCP server by ControlPlaneServer.
    def _registry(self) -> CampaignRegistry:
        return self.server.registry  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (telemetry covers this)."""

    def _read_body(self) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None, None
        if length > _MAX_BODY:
            return None, f"request body over {_MAX_BODY} bytes"
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, f"request body is not valid JSON: {exc}"
        return body, None

    def _respond(self, status: int, payload: Any,
                 extra_headers: Optional[Dict[str, str]] = None) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _handle(self, method: str) -> None:
        parts = urlsplit(self.path)
        query = dict(parse_qsl(parts.query))
        body, error = self._read_body()
        if error is not None:
            self._respond(400, {"error": error})
            return
        try:
            status, payload = api.dispatch(
                self._registry(), method, parts.path, query, body)
        except Exception as exc:  # a handler bug must not kill the daemon
            status, payload = 500, {"error": f"internal: {exc}"}
        headers = None
        if status == 405 and isinstance(payload, dict) and "allow" in payload:
            headers = {"Allow": ", ".join(payload["allow"])}
        self._respond(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")


class ControlPlaneServer:
    """The long-running daemon: HTTP front end + campaign registry.

    Parameters
    ----------
    store_url:
        Shared backend URL (``kv://…``, ``netkv://…``, ``fs://…``); used
        when no open ``store`` is given. The server owns (and closes) a
        store it opened itself, never one it was handed.
    host, port:
        Bind address; port 0 picks a free port (tests).
    config:
        Registry knobs (quotas, pool size, shares).
    trace_capacity:
        Span ring-buffer size for the daemon-wide tracer. The server
        enables tracing at start if nothing else has; a tracer that was
        already live is left untouched (and not disabled at stop).
    """

    def __init__(self, store_url: str = "kv://2",
                 host: str = "127.0.0.1", port: int = 0,
                 config: Optional[ServiceConfig] = None,
                 store: Optional[DataStore] = None,
                 trace_capacity: int = 65536) -> None:
        owns_store = store is None
        backend = store if store is not None else open_store(store_url)
        self.registry = CampaignRegistry(backend, config=config,
                                         owns_store=owns_store)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.registry = self.registry  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._trace_capacity = trace_capacity
        self._owns_tracer = False

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]  # type: ignore[return-value]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ControlPlaneServer":
        if trace.get_tracer() is None and self._trace_capacity > 0:
            trace.enable(capacity=self._trace_capacity)
            self._owns_tracer = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="control-plane-http", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """The safe-shutdown order (see module docstring)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.registry.shutdown(timeout=timeout)
        if self._owns_tracer:
            trace.disable()
            self._owns_tracer = False

    def __enter__(self) -> "ControlPlaneServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
