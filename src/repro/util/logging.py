"""Namespaced logger setup for the repro package."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str, level: int = logging.WARNING) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Handlers are attached once per process; repeated calls are cheap and
    idempotent.
    """
    logger = logging.getLogger(f"repro.{name}" if not name.startswith("repro") else name)
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        root.setLevel(level)
    return logger
