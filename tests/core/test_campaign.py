"""Tests for the discrete-event campaign simulator."""

import numpy as np
import pytest

from repro.core.campaign import (
    PAPER_LEDGER,
    CampaignConfig,
    CampaignResult,
    CampaignSimulator,
    RunSpec,
)

# A small ledger that still exercises multi-run carry-over.
SMALL_LEDGER = (RunSpec(20, 3, 2), RunSpec(40, 4, 1))


@pytest.fixture(scope="module")
def small_result():
    cfg = CampaignConfig(ledger=SMALL_LEDGER, seed=7)
    return CampaignSimulator(cfg).run()


class TestLedger:
    def test_paper_ledger_node_hours(self):
        total = sum(r.node_hours for r in PAPER_LEDGER)
        assert total == 600_600  # "over 600,000 node hours"

    def test_table1_rows_match_ledger(self, small_result):
        assert len(small_result.table1) == 2
        assert small_result.table1[0] == {
            "nnodes": 20, "walltime_hours": 3, "runs": 2, "node_hours": 120
        }
        assert small_result.total_node_hours() == 120 + 160


class TestEmergentDistributions:
    def test_cg_and_aa_sims_exist(self, small_result):
        assert len(small_result.cg_lengths_us) > 50
        assert len(small_result.aa_lengths_ns) > 5

    def test_lengths_within_caps(self, small_result):
        cg = np.array(small_result.cg_lengths_us)
        aa = np.array(small_result.aa_lengths_ns)
        assert np.all(cg > 0) and np.all(cg <= 5.0)
        assert np.all(aa > 0) and np.all(aa <= 65.0)

    def test_lengths_vary(self, small_result):
        cg = np.array(small_result.cg_lengths_us)
        assert cg.std() > 0.01  # a distribution, not a constant

    def test_more_cg_than_aa(self, small_result):
        # The paper's mix: ~3.6x more CG sims than AA.
        assert len(small_result.cg_lengths_us) > len(small_result.aa_lengths_ns)

    def test_carryover_lengths_exceed_single_run(self):
        # With two 3h runs back-to-back, resumed sims accumulate more
        # simulated time than one run alone could deliver.
        one = CampaignSimulator(
            CampaignConfig(ledger=(RunSpec(20, 3, 1),), seed=7)
        ).run()
        two = CampaignSimulator(
            CampaignConfig(ledger=(RunSpec(20, 3, 2),), seed=7)
        ).run()
        assert max(two.cg_lengths_us) > max(one.cg_lengths_us) * 1.5


class TestOccupancy:
    def test_gpu_occupancy_high(self, small_result):
        gpu = np.array([e.gpu_occupancy for e in small_result.profile_events])
        assert np.median(gpu) > 0.95

    def test_cpu_occupancy_lower_than_gpu(self, small_result):
        gpu = np.array([e.gpu_occupancy for e in small_result.profile_events])
        cpu = np.array([e.cpu_occupancy for e in small_result.profile_events])
        assert cpu.mean() < gpu.mean()

    def test_profile_cadence(self, small_result):
        # 10-minute profiling over 3+3+4 hours => 6*(18)-ish events.
        expected = int((3 + 3 + 4) * 6)
        assert abs(len(small_result.profile_events) - expected) <= 3


class TestPerfSamples:
    def test_samples_for_all_scales(self, small_result):
        scales = {s.scale for s in small_result.perf_samples}
        assert scales == {"continuum", "cg", "aa"}

    def test_counters_internally_consistent(self, small_result):
        c = small_result.counters
        assert c["cg_sims"] == len(small_result.cg_lengths_us)
        assert c["aa_sims"] == len(small_result.aa_lengths_ns)
        assert c["node_hours"] == 280
        assert c["snapshots"] > 0
        assert c["patches_created"] == c["snapshots"] * 333
        assert 0 < c["cg_selection_percent"] < 100
        assert c["total_data_tb"] > 0

    def test_mpi_bug_epoch_slows_early_cg(self):
        # First third of node-hours uses the slow build: early CG perf
        # samples are slower on average than late ones.
        cfg = CampaignConfig(ledger=(RunSpec(20, 4, 6),), seed=3)
        sim = CampaignSimulator(cfg)
        res = sim.run()
        cg = [s for s in res.perf_samples if s.scale == "cg"]
        n = len(cg)
        early = np.mean([s.rate for s in cg[: n // 3]])
        late = np.mean([s.rate for s in cg[-n // 3:]])
        assert early < late


class TestDeterminism:
    def test_same_seed_same_result(self):
        cfg = CampaignConfig(ledger=(RunSpec(10, 2, 1),), seed=11)
        a = CampaignSimulator(cfg).run()
        b = CampaignSimulator(cfg).run()
        assert a.cg_lengths_us == b.cg_lengths_us
        assert a.counters == b.counters

    def test_different_seed_differs(self):
        a = CampaignSimulator(
            CampaignConfig(ledger=(RunSpec(10, 2, 1),), seed=1)
        ).run()
        b = CampaignSimulator(
            CampaignConfig(ledger=(RunSpec(10, 2, 1),), seed=2)
        ).run()
        assert a.cg_lengths_us != b.cg_lengths_us


class TestLoadCurves:
    def test_load_curve_recorded_per_size(self, small_result):
        assert set(small_result.load_curves) == {20, 40}
        curve = small_result.load_curves[20]
        assert len(curve) > 0
        times = [t for t, _ in curve]
        assert times == sorted(times)

    def test_submission_throttle_limits_ramp(self):
        # The throttle grants 100/min in poll-sized windows (2 min =>
        # 200 jobs); loading 240 GPUs therefore spans two windows.
        cfg = CampaignConfig(ledger=(RunSpec(40, 2, 1),), seed=5)
        res = CampaignSimulator(cfg).run()
        curve = [t for t, name in res.load_curves[40] if name.endswith("-sim")]
        in_first_window = sum(1 for t in curve if t <= 120.0)
        assert in_first_window <= 200
        assert max(curve) > 120.0  # the rest arrived in a later window
