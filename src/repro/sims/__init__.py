"""Simulation substrates for the three resolution scales (paper §4.1).

The paper's scales run on GridSim2D (C++/MPI DDFT), CUDA ddcMD
(Martini CG), and GPU AMBER (all-atom). None of those are available
here, so each scale is re-implemented as a small, seeded, vectorized
NumPy engine that produces the *same kinds of outputs* the workflow
consumes — density snapshots, CG trajectories with protein–lipid RDFs,
AA trajectories with secondary-structure observables — at laptop scale.
DESIGN.md records the substitution rationale per scale.

- :mod:`~repro.sims.continuum` — DDFT lipid-density dynamics with
  protein particles (the macro model).
- :mod:`~repro.sims.cg` — Martini-like coarse-grained Langevin MD with
  online RDF analysis (the micro model).
- :mod:`~repro.sims.aa` — all-atom-like refinement with secondary-
  structure analysis (the finest model).
- :mod:`~repro.sims.mapping` — createsim (continuum→CG) and
  backmapping (CG→AA).
"""

from repro.sims.continuum import ContinuumSim, ContinuumConfig, Snapshot
from repro.sims.cg import CGSim, CGConfig, CGForceField, CGAnalysis
from repro.sims.aa import AASim, AAConfig, SecondaryStructureAnalysis
from repro.sims.mapping import createsim, backmap, CGSystem, AASystem

__all__ = [
    "ContinuumSim",
    "ContinuumConfig",
    "Snapshot",
    "CGSim",
    "CGConfig",
    "CGForceField",
    "CGAnalysis",
    "AASim",
    "AAConfig",
    "SecondaryStructureAnalysis",
    "createsim",
    "backmap",
    "CGSystem",
    "AASystem",
]
