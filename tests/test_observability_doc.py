"""Keeps OBSERVABILITY.md and the telemetry code in sync.

Same spirit as ``tests/test_extending_doc.py``: the guide documents the
telemetry surface field by field, so these assertions fail whenever a
field is added, renamed, or dropped without the docs (or docstrings)
following.
"""

import dataclasses
import os
import re

from repro.core.telemetry import TelemetryReport
from repro.datastore.stats import IOStats, LatencyHistogram, TransportStats
from repro.util.locks import LockStats

DOC = os.path.join(os.path.dirname(__file__), "..", "OBSERVABILITY.md")

with open(DOC, encoding="utf-8") as fh:
    GUIDE = fh.read()


def backticked(text):
    return set(re.findall(r"`([A-Za-z_][A-Za-z0-9_.]*)`", text))


GUIDE_TOKENS = backticked(GUIDE)


class TestGuideCoversCode:
    def test_every_telemetry_report_field_is_documented(self):
        fields = {f.name for f in dataclasses.fields(TelemetryReport)}
        assert fields <= GUIDE_TOKENS

    def test_every_iostats_counter_is_documented(self):
        assert set(IOStats().as_dict()) <= GUIDE_TOKENS

    def test_every_transport_counter_is_documented(self):
        assert set(TransportStats().as_dict()) <= GUIDE_TOKENS

    def test_latency_summary_keys_are_documented(self):
        keys = set(LatencyHistogram().as_dict()) - {"count"}  # count is generic
        assert keys <= GUIDE_TOKENS

    def test_every_lockstats_counter_is_documented(self):
        assert set(LockStats().as_dict()) <= GUIDE_TOKENS

    def test_trace_stages_are_documented(self):
        for stage in ("wm", "select", "schedule", "store", "feedback", "netkv"):
            assert f"`{stage}`" in GUIDE, f"stage {stage} missing from the guide"


class TestDocstringsCoverFields:
    """Every public counter field is named in its class docstring."""

    def test_iostats_docstring(self):
        doc = IOStats.__doc__
        for name in IOStats().as_dict():
            assert name in doc, f"IOStats docstring misses {name}"

    def test_transport_stats_docstring(self):
        doc = TransportStats.__doc__
        for name in TransportStats().as_dict():
            assert name in doc, f"TransportStats docstring misses {name}"

    def test_latency_histogram_docstring(self):
        doc = LatencyHistogram.__doc__
        for name in LatencyHistogram().as_dict():
            assert name in doc, f"LatencyHistogram docstring misses {name}"

    def test_lockstats_docstring(self):
        doc = LockStats.__doc__
        for name in LockStats().as_dict():
            assert name in doc, f"LockStats docstring misses {name}"

    def test_telemetry_report_docstring(self):
        doc = TelemetryReport.__doc__
        for f in dataclasses.fields(TelemetryReport):
            assert f.name in doc, f"TelemetryReport docstring misses {f.name}"

    def test_docstrings_state_units(self):
        for cls in (IOStats, LatencyHistogram, TransportStats, LockStats):
            text = cls.__doc__.lower()
            assert any(u in text for u in ("bytes", "count", "millisecond")), (
                f"{cls.__name__} docstring must state units"
            )
