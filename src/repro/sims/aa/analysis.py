"""AA analysis: per-residue secondary structure.

§4.1 (7): "the secondary structures of the proteins are calculated from
AA frames and analyzed to determine the most common pattern of protein
secondary structure observed in the AA simulations." The production
code shells out to an external tool (~2 s per frame — the cost modeled
in the Fig. 8 bench); here the classification itself is geometric: the
turning angle at each interior backbone atom decides helix / extended /
coil.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["classify_backbone", "SecondaryStructureAnalysis", "consensus_pattern"]

# Turning-angle windows (degrees): tight turns read as helix, straight
# segments as extended strand, everything else as coil.
HELIX_RANGE = (60.0, 120.0)
SHEET_MIN = 150.0


def classify_backbone(
    positions: np.ndarray, backbone: np.ndarray, box: Optional[float] = None
) -> str:
    """Secondary-structure string ('H'/'E'/'C'), one char per residue.

    The turning angle at residue i is the interior angle of the triangle
    (i-1, i, i+1); terminal residues copy their neighbour's class.
    """
    backbone = np.asarray(backbone, dtype=np.int64)
    if backbone.size < 3:
        return "C" * int(backbone.size)
    chain = np.asarray(positions, dtype=np.float64)[backbone]
    prev_vec = chain[:-2] - chain[1:-1]
    next_vec = chain[2:] - chain[1:-1]
    if box is not None:
        prev_vec -= box * np.round(prev_vec / box)
        next_vec -= box * np.round(next_vec / box)
    dots = np.einsum("ij,ij->i", prev_vec, next_vec)
    norms = np.linalg.norm(prev_vec, axis=1) * np.linalg.norm(next_vec, axis=1)
    cosang = np.clip(dots / np.maximum(norms, 1e-12), -1.0, 1.0)
    angles = np.degrees(np.arccos(cosang))
    codes = np.where(
        (angles >= HELIX_RANGE[0]) & (angles <= HELIX_RANGE[1]),
        "H",
        np.where(angles >= SHEET_MIN, "E", "C"),
    )
    inner = "".join(codes)
    return inner[0] + inner + inner[-1]


def consensus_pattern(patterns: Iterable[str]) -> str:
    """Most common SS code per residue position across many frames.

    This is the aggregation step of AA→CG feedback: "determine the most
    common pattern of protein secondary structure observed".
    """
    patterns = list(patterns)
    if not patterns:
        raise ValueError("need at least one pattern")
    length = len(patterns[0])
    if any(len(p) != length for p in patterns):
        raise ValueError("all patterns must have equal length")
    out = []
    for i in range(length):
        counts = Counter(p[i] for p in patterns)
        # Deterministic tie-break: most common, then alphabetical.
        best = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[0][0]
        out.append(best)
    return "".join(out)


class SecondaryStructureAnalysis:
    """Per-simulation SS analysis over a stream of AA frames."""

    def __init__(self, backbone: np.ndarray, box: Optional[float] = None) -> None:
        self.backbone = np.asarray(backbone, dtype=np.int64)
        self.box = box
        self.patterns: List[str] = []

    def analyze_frame(self, positions: np.ndarray) -> str:
        """Classify one frame; records and returns the SS string."""
        pattern = classify_backbone(positions, self.backbone, self.box)
        self.patterns.append(pattern)
        return pattern

    def consensus(self) -> str:
        return consensus_pattern(self.patterns)

    def helicity(self) -> float:
        """Fraction of residue observations classified as helix."""
        if not self.patterns:
            return 0.0
        total = sum(len(p) for p in self.patterns)
        h = sum(p.count("H") for p in self.patterns)
        return h / total

    def composition(self) -> dict:
        """Fraction of observations per SS class across all frames."""
        if not self.patterns:
            return {"H": 0.0, "E": 0.0, "C": 0.0}
        total = sum(len(p) for p in self.patterns)
        return {
            code: sum(p.count(code) for p in self.patterns) / total
            for code in ("H", "E", "C")
        }

    def transition_counts(self) -> dict:
        """Per-residue SS transitions between consecutive frames.

        Returns ``{(from, to): count}`` over all residues and frame
        pairs — the stability signal that tells the feedback loop how
        settled the consensus is.
        """
        counts: dict = {}
        for prev, curr in zip(self.patterns, self.patterns[1:]):
            if len(prev) != len(curr):
                raise ValueError("inconsistent chain lengths across frames")
            for a, b in zip(prev, curr):
                counts[(a, b)] = counts.get((a, b), 0) + 1
        return counts

    def stability(self) -> float:
        """Fraction of residue observations that kept their SS class
        between consecutive frames (1.0 = perfectly settled)."""
        counts = self.transition_counts()
        total = sum(counts.values())
        if total == 0:
            return 1.0
        same = sum(n for (a, b), n in counts.items() if a == b)
        return same / total
