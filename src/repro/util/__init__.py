"""Shared utilities: virtual time, discrete events, RNG, armoring, stats.

Everything in :mod:`repro` that touches time, randomness, or fallible
I/O goes through this package so that campaign-scale runs are both fast
(virtual time) and deterministic (seeded RNG streams).
"""

from repro.util.clock import VirtualClock, EventLoop, Event
from repro.util.rng import RngStream, spawn_rngs
from repro.util.armor import armored_call, ArmorError, RetryPolicy
from repro.util.locks import SharedState, try_acquire
from repro.util.stats import Summary, summarize, Histogram, percentile_of
from repro.util import units

__all__ = [
    "VirtualClock",
    "EventLoop",
    "Event",
    "RngStream",
    "spawn_rngs",
    "armored_call",
    "ArmorError",
    "RetryPolicy",
    "SharedState",
    "try_acquire",
    "Summary",
    "summarize",
    "Histogram",
    "percentile_of",
    "units",
]
