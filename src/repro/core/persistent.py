"""Persistent workflows across elastic allocations ("The Next Leap").

The paper's closing outlook: "There is a growing need for developing
persistent workflows to seamlessly connect software stacks and data
services across allocations and even across clusters ... In future
iterations of MuMMI, we envision a persistent workflow that can
coordinate variable sized allocations as resources become available on
different clusters."

This module implements that envisioned capability on top of the
campaign machinery:

- :class:`AllocationBroker` — a model of one or more computing centers
  offering allocations of varying size and length as resources free up
  (seeded, so experiments are reproducible);
- :class:`PersistentCampaign` — a campaign whose simulation registry,
  selectors and counters survive across every granted allocation, on
  whichever cluster it lands (Summit-shaped 6-GPU nodes, Lassen-shaped
  4-GPU nodes, ...), exactly the "decouple compute from the system
  state" idea.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.campaign import CampaignConfig, CampaignResult, CampaignSimulator
from repro.sched.resources import ResourceGraph, lassen_like, summit_like
from repro.util import units

__all__ = ["ClusterSpec", "Allocation", "AllocationBroker", "PersistentCampaign"]


@dataclass(frozen=True)
class ClusterSpec:
    """One computing center the broker can grant allocations on."""

    name: str
    graph_builder: Callable[[int], ResourceGraph]
    max_nodes: int
    typical_queue_hours: float = 2.0
    """Mean gap between allocation grants on this cluster."""

    min_nodes: int = 10
    max_walltime_hours: float = 24.0


@dataclass(frozen=True)
class Allocation:
    """One granted batch allocation."""

    cluster: str
    nnodes: int
    walltime_hours: float
    granted_at_hours: float
    graph_builder: Callable[[int], ResourceGraph] = field(compare=False, repr=False,
                                                          default=summit_like)

    @property
    def node_hours(self) -> float:
        return self.nnodes * self.walltime_hours


DEFAULT_CLUSTERS: Tuple[ClusterSpec, ...] = (
    ClusterSpec("summit", summit_like, max_nodes=4000, typical_queue_hours=4.0),
    ClusterSpec("lassen", lassen_like, max_nodes=600, typical_queue_hours=1.5),
)


class AllocationBroker:
    """Grants variable-sized allocations as (simulated) resources free up.

    Grants on each cluster arrive as a Poisson-ish process; sizes and
    walltimes are drawn between each cluster's bounds. The broker hands
    out allocations in global grant-time order — the stream a persistent
    workflow would subscribe to.
    """

    def __init__(
        self,
        clusters: Tuple[ClusterSpec, ...] = DEFAULT_CLUSTERS,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not clusters:
            raise ValueError("broker needs at least one cluster")
        self.clusters = clusters
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._next_grant = {
            c.name: float(self.rng.exponential(c.typical_queue_hours)) for c in clusters
        }

    def next_allocation(self) -> Allocation:
        """The next grant across all clusters, advancing broker time."""
        name = min(self._next_grant, key=self._next_grant.get)
        spec = next(c for c in self.clusters if c.name == name)
        at = self._next_grant[name]
        nnodes = int(self.rng.integers(spec.min_nodes, spec.max_nodes + 1))
        walltime = float(self.rng.uniform(2.0, spec.max_walltime_hours))
        self._next_grant[name] = at + walltime + float(
            self.rng.exponential(spec.typical_queue_hours)
        )
        return Allocation(
            cluster=name,
            nnodes=nnodes,
            walltime_hours=walltime,
            granted_at_hours=at,
            graph_builder=spec.graph_builder,
        )

    def take(self, n: int) -> List[Allocation]:
        return [self.next_allocation() for _ in range(n)]


class PersistentCampaign(CampaignSimulator):
    """A campaign that consumes broker allocations until a budget is met.

    Simulation state (the registry and in-flight lists) persists across
    every allocation regardless of which cluster granted it; node-hour
    accounting, occupancy profiles and emergent length distributions
    aggregate over the whole span.
    """

    def __init__(
        self,
        broker: AllocationBroker,
        node_hour_budget: float,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        if node_hour_budget <= 0:
            raise ValueError("node_hour_budget must be positive")
        super().__init__(config or CampaignConfig(ledger=()))
        self.broker = broker
        self.node_hour_budget = node_hour_budget
        self.allocations_used: List[Allocation] = []
        self._total_node_hours = node_hour_budget  # for the mpi-bug epoch rule

    def run(self) -> CampaignResult:
        c = self.config
        continuum_ms_total = 0.0
        spent = 0.0
        by_cluster: Dict[str, float] = {}
        while spent < self.node_hour_budget:
            alloc = self.broker.next_allocation()
            mpi_bug = spent < c.mpi_bug_fraction * self.node_hour_budget
            run_info = self._execute_run(
                alloc.nnodes, alloc.walltime_hours, mpi_bug,
                graph_builder=alloc.graph_builder,
            )
            continuum_ms_total += run_info["continuum_ms"]
            spent += alloc.node_hours
            self._node_hours_done = spent
            self.runs_completed += 1
            by_cluster[alloc.cluster] = by_cluster.get(alloc.cluster, 0.0) + alloc.node_hours
            self.allocations_used.append(alloc)
            self.result.load_curves[alloc.nnodes] = run_info["start_log"]

        self.result.table1 = [
            {
                "nnodes": a.nnodes,
                "walltime_hours": a.walltime_hours,
                "runs": 1,
                "node_hours": a.node_hours,
                "cluster": a.cluster,
            }
            for a in self.allocations_used
        ]
        for entry in self.registry.values():
            if entry.length <= 0:
                continue
            if entry.scale == "cg":
                self.result.cg_lengths_us.append(min(entry.length, entry.cap))
            else:
                self.result.aa_lengths_ns.append(min(entry.length, entry.cap))
        self._finalize_counters(continuum_ms_total)
        self.result.counters["node_hours"] = spent
        self.result.counters["clusters_used"] = len(by_cluster)
        for name, hours in by_cluster.items():
            self.result.counters[f"node_hours_{name}"] = hours
        return self.result
