"""The Workflow Manager: the four concurrent coordination tasks.

§4.4 defines the WM's job: consume coarse-scale data (Task 1), select
important configurations (Task 2), schedule and manage jobs (Task 3),
and facilitate feedback (Task 4) — while tracking everything for
checkpoint/restore.

This WM runs the *real* three-scale pipeline at laptop scale: an actual
DDFT continuum simulation feeds the Patch Creator; patches are encoded
by the (NumPy) ML encoder and ranked by the farthest-point Patch
Selector; selected patches become CG systems via createsim and run on
the CG engine whose online analysis streams RDFs into the feedback
store and frame candidates into the binned Frame Selector; selected
frames are backmapped and refined at the AA scale; and the two feedback
paths update the continuum couplings and the CG force field in situ.

Scale-out behaviour (occupancy, 24k jobs, TBs/day) is the campaign
simulator's job (:mod:`repro.core.campaign`); this class is the
functional workflow.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro import trace
from repro.datastore.aio import LoopThread
from repro.core.feedback import FeedbackManager
from repro.core.jobs import JobTracker, JobTypeConfig
from repro.core.patches import Patch, PatchCreator
from repro.datastore.base import DataStore
from repro.ml.encoder import PatchEncoder
from repro.sampling.binned import BinnedSampler, BinSpec
from repro.sampling.fps import FarthestPointSampler
from repro.sampling.points import Point
from repro.sched.adapter import SchedulerAdapter, ThreadAdapter
from repro.util.locks import SharedState
from repro.sims.aa.analysis import SecondaryStructureAnalysis
from repro.sims.aa.engine import AAConfig, AASim
from repro.sims.cg.analysis import CGAnalysis, FrameCandidate
from repro.sims.cg.engine import CGConfig, CGSim
from repro.sims.cg.forcefield import CGForceField
from repro.sims.continuum.ddft import ContinuumSim
from repro.sims.mapping.backmap import backmap
from repro.sims.mapping.createsim import createsim
from repro.sims.mapping.systems import AASystem, CGSystem

__all__ = ["WorkflowConfig", "WorkflowManager"]


@dataclass(frozen=True)
class WorkflowConfig:
    """Tunable knobs of the functional workflow."""

    max_cg_sims: int = 2
    """Concurrent CG simulations (GPU-job stand-ins)."""

    max_aa_sims: int = 1
    cg_ready_target: int = 2
    """Prepared CG systems kept in anticipation (§4.4 Task 3: 'sets of CG
    and AA simulations are kept prepared ... a trade-off between
    readiness ... and simulating stale configurations')."""

    aa_ready_target: int = 1
    beads_per_type: int = 25
    """Lipid beads per type in createsim (small for laptop scale)."""

    cg_chunks_per_job: int = 3
    cg_steps_per_chunk: int = 40
    aa_chunks_per_job: int = 2
    aa_steps_per_chunk: int = 30
    patch_queue_cap: int = 1000
    frame_bins: int = 6
    frame_randomness: float = 0.1
    seed: int = 0


class WorkflowManager:
    """Coordinates the three scales over real (small) simulations.

    Parameters
    ----------
    macro:
        The running continuum simulation.
    encoder:
        Patch encoder producing the 9-D novelty space. Its input dim
        must match ``n_inner_types * patch_grid**2``.
    forcefield:
        The shared CG force field (AA→CG feedback mutates it).
    store:
        DataStore for patches, RDFs and SS patterns (one store, three
        namespaces; any backend).
    adapter:
        Scheduler adapter executing job bodies (ThreadAdapter by
        default).
    feedback_managers:
        Managers whose ``run_iteration`` the WM drives each round.
    """

    def __init__(
        self,
        macro: ContinuumSim,
        encoder: PatchEncoder,
        forcefield: CGForceField,
        store: DataStore,
        adapter: Optional[SchedulerAdapter] = None,
        config: Optional[WorkflowConfig] = None,
        patch_creator: Optional[PatchCreator] = None,
        feedback_managers: Sequence[FeedbackManager] = (),
        patch_queues: Optional[Sequence[str]] = None,
        queue_router: Optional[Callable[[Patch], str]] = None,
    ) -> None:
        self.config = config or WorkflowConfig()
        self.macro = macro
        self.encoder = encoder
        self.forcefield = forcefield
        self.store = store
        # A WM owns only the adapter it created itself. Shared adapters
        # (the control plane's fair-share pool) belong to their daemon:
        # close() must not shut them down under other tenants.
        self._owns_adapter = adapter is None
        self.adapter = adapter if adapter is not None else ThreadAdapter(max_workers=2)
        self.patch_creator = patch_creator or PatchCreator(patch_grid=9, store=store)
        self.feedback_managers = list(feedback_managers)
        self.rng = np.random.default_rng(self.config.seed)

        # Task 2 state: the two selectors, shared across tasks -> locked.
        # Queue layout + routing are application choices (§4.4 Task 2:
        # the production Patch Selector keeps five queues for different
        # protein configurations); the default is the two-state layout.
        if queue_router is None:
            queue_router = lambda patch: (  # noqa: E731 - tiny default
                "ras-raf" if patch.protein_state == 1 else "ras"
            )
            patch_queues = patch_queues or ("ras", "ras-raf")
        elif patch_queues is None:
            raise ValueError("queue_router requires an explicit patch_queues list")
        self.queue_router = queue_router
        self.patch_selector = FarthestPointSampler(
            dim=encoder.latent_dim,
            queues=list(patch_queues),
            queue_cap=self.config.patch_queue_cap,
        )
        self.frame_selector = BinnedSampler(
            [
                BinSpec(0.0, 4.0, self.config.frame_bins),   # RAS-RAF separation
                BinSpec(0.0, np.pi, self.config.frame_bins),  # orientation
                BinSpec(0.0, 3.0, self.config.frame_bins),   # radius of gyration
            ],
            randomness=self.config.frame_randomness,
            rng=np.random.default_rng(self.config.seed + 1),
        )
        # Shared across WM tasks and analysis threads; blocking lock
        # with contention counters (§4.4 "Parallelism and Locking").
        self._selector_guard = SharedState(None)

        # Coroutine round machinery. Adapters whose completions always
        # settle (ThreadAdapter, TenantAdapter) let the round barrier be
        # an asyncio.gather over per-job settle futures on a dedicated
        # loop thread; inline/virtual adapters (ChaosAdapter, Flux)
        # keep the legacy pool-join round.
        self._async_rounds = bool(getattr(self.adapter, "settles_async", False))
        self._loop_thread: Optional[LoopThread] = None
        self._loop_lock = threading.Lock()
        self._collecting = False  # True while an async round gathers settles
        self._round_inflight: List[Future] = []

        # Task 3 state: ready buffers and trackers per job type.
        self.cg_ready: List[CGSystem] = []
        self.aa_ready: List[AASystem] = []
        self._buffer_lock = threading.Lock()
        self._patch_by_id: Dict[str, Patch] = {}
        self._frame_by_id: Dict[str, FrameCandidate] = {}
        self._frame_systems: Dict[str, CGSystem] = {}

        self.trackers = {
            name: JobTracker(JobTypeConfig(name=name, ncores=cores, ngpus=gpus),
                             self.adapter, rng=np.random.default_rng(self.config.seed + i))
            for i, (name, cores, gpus) in enumerate(
                [("createsim", 24, 0), ("cg-sim", 2, 1), ("backmap", 18, 0), ("aa-sim", 2, 1)]
            )
        }

        # Counters mirrored into the checkpoint. Job bodies run in
        # adapter worker threads and bump cg_finished / aa_finished /
        # frames_seen concurrently with the round driver's own updates,
        # so every mutation goes through _bump under this lock.
        self._counters_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "snapshots": 0,
            "patches": 0,
            "patches_selected": 0,
            "cg_spawned": 0,
            "cg_finished": 0,
            "frames_seen": 0,
            "frames_selected": 0,
            "aa_spawned": 0,
            "aa_finished": 0,
            "feedback_iterations": 0,
            # Candidates discarded at restore because their side-table
            # entry did not survive; without these the pipeline
            # conservation invariant (created = selected + queued +
            # dropped + duplicates + pruned) cannot balance.
            "patches_pruned": 0,
            "frames_pruned": 0,
        }
        self.rounds = 0

    def _bump(self, name: str, n: int = 1) -> None:
        """Thread-safe counter increment (job bodies run in worker threads)."""
        with self._counters_lock:
            self.counters[name] += n

    def counters_snapshot(self) -> Dict[str, int]:
        """Consistent copy of the pipeline counters."""
        with self._counters_lock:
            return dict(self.counters)

    # ------------------------------------------------------------------
    # Task 1: process coarse-scale data
    # ------------------------------------------------------------------

    def task1_process_macro(self, advance_us: float = 1.0) -> int:
        """Advance the continuum, cut patches, encode, enqueue candidates."""
        with trace.span("wm.task1") as sp:
            steps = max(1, int(round(advance_us / self.macro.config.dt)))
            self.macro.step(steps)
            snapshot = self.macro.snapshot()
            patches = self.patch_creator.create(snapshot)
            if patches:
                encodings = self.encoder.encode(np.stack([p.flat() for p in patches]))
                # Encoding already ran in batch; feed the selector in batch
                # too — grouped per queue, one add_batch per group, under a
                # single lock acquisition.
                by_queue: Dict[str, List[Point]] = {}
                for patch, z in zip(patches, encodings):
                    queue = self.queue_router(patch)
                    by_queue.setdefault(queue, []).append(
                        Point(id=patch.patch_id, coords=z)
                    )
                    self._patch_by_id[patch.patch_id] = patch
                with self._selector_guard.locked():
                    for queue, points in by_queue.items():
                        self.patch_selector.add_batch(points, queue=queue)
            if sp:
                sp.set(patches=len(patches))
        self._bump("snapshots")
        self._bump("patches", len(patches))
        return len(patches)

    # ------------------------------------------------------------------
    # Task 3: schedule and manage jobs (which triggers Task 2 selections)
    # ------------------------------------------------------------------

    def _launch(self, tracker: JobTracker, tag: str,
                fn: Callable[[], object]) -> None:
        """Launch one job, registering it with the active round barrier.

        Inside an async round every launch contributes a settle future
        the barrier gathers on; the settle hook is tag-keyed in the
        tracker, so a retried job keeps the round waiting until its
        resubmission reaches a terminal state.
        """
        on_settled = None
        if self._collecting:
            settle: Future = Future()
            self._round_inflight.append(settle)
            on_settled = lambda record: settle.set_result(record)  # noqa: E731
        tracker.launch(tag=tag, fn=trace.wrap(fn), on_settled=on_settled)

    def _fill_cg_buffer(self) -> int:
        """Launch createsim jobs until the ready buffer will hit target."""
        launched = 0
        tracker = self.trackers["createsim"]
        while (
            len(self.cg_ready) + tracker.nactive() < self.config.cg_ready_target
            and self.patch_selector.ncandidates() > 0
        ):
            with trace.span("wm.select") as sp:
                with self._selector_guard.locked():
                    selected = self.patch_selector.select(1, now=float(self.rounds))
                if sp and selected:
                    sp.set(patch=selected[0].id)
            if not selected:
                break
            patch = self._patch_by_id.pop(selected[0].id)
            self._bump("patches_selected")

            def setup_job(patch=patch):
                with trace.span("wm.createsim", patch=patch.patch_id):
                    system = createsim(
                        patch.densities,
                        box=patch.box_nm / 10.0,  # nm -> engine units
                        with_raf=patch.protein_state == 1,
                        patch_id=patch.patch_id,
                        forcefield=self.forcefield,
                        beads_per_type=self.config.beads_per_type,
                        seed=int(self.rng.integers(2**31)),
                    )
                    with self._buffer_lock:
                        self.cg_ready.append(system)
                return system.nparticles

            self._launch(tracker, patch.patch_id, setup_job)
            launched += 1
        return launched

    def _spawn_cg_sims(self) -> int:
        """Start CG simulation jobs from the ready buffer."""
        spawned = 0
        tracker = self.trackers["cg-sim"]
        while tracker.nactive() < self.config.max_cg_sims:
            with self._buffer_lock:
                if not self.cg_ready:
                    break
                system = self.cg_ready.pop(0)
            with self._counters_lock:
                sim_id = f"cg{self.counters['cg_spawned']:05d}"
                self.counters["cg_spawned"] += 1

            def cg_job(system=system, sim_id=sim_id):
                return self._run_cg_sim(system, sim_id)

            self._launch(tracker, sim_id, cg_job)
            spawned += 1
        return spawned

    def _run_cg_sim(self, system: CGSystem, sim_id: str) -> float:
        """The CG simulation + co-scheduled analysis job body."""
        with trace.span("wm.cg_sim", sim=sim_id):
            cfg = CGConfig(box=system.box, n_lipids=1, seed=int(self.rng.integers(2**31)))
            sim = CGSim(system.positions, system.type_ids, self.forcefield, cfg,
                        bonds=system.bonds)
            analysis = CGAnalysis(sim, sim_id=sim_id)
            for chunk in range(self.config.cg_chunks_per_job):
                sim.step(self.config.cg_steps_per_chunk)
                out = analysis.analyze()
                self.store.write(
                    f"rdf/live/{sim_id}-{chunk:03d}", out["rdf"].to_bytes()
                )
                candidate = out["candidate"]
                with self._selector_guard.locked():
                    self.frame_selector.add(
                        Point(id=candidate.frame_id, coords=candidate.encoding)
                    )
                    self._frame_by_id[candidate.frame_id] = candidate
                    self._frame_systems[candidate.frame_id] = CGSystem(
                        positions=sim.positions.copy(),
                        type_ids=sim.type_ids.copy(),
                        bonds=sim.bonds.copy(),
                        box=system.box,
                        source_patch=system.source_patch,
                    )
                    self._bump("frames_seen")
        self._bump("cg_finished")
        return sim.time

    def _fill_aa_buffer(self) -> int:
        """Select frames and launch backmapping jobs."""
        launched = 0
        tracker = self.trackers["backmap"]
        while (
            len(self.aa_ready) + tracker.nactive() < self.config.aa_ready_target
            and self.frame_selector.ncandidates() > 0
        ):
            with trace.span("wm.select") as sp:
                with self._selector_guard.locked():
                    selected = self.frame_selector.select(1, now=float(self.rounds))
                    if not selected:
                        break
                    frame_id = selected[0].id
                    self._frame_by_id.pop(frame_id, None)
                    system = self._frame_systems.pop(frame_id)
                if sp:
                    sp.set(frame=frame_id)
            self._bump("frames_selected")

            def backmap_job(system=system, frame_id=frame_id):
                with trace.span("wm.backmap", frame=frame_id):
                    aa = backmap(system, self.forcefield, frame_id=frame_id,
                                 seed=int(self.rng.integers(2**31)))
                    with self._buffer_lock:
                        self.aa_ready.append(aa)
                return aa.natoms

            self._launch(tracker, frame_id, backmap_job)
            launched += 1
        return launched

    def _spawn_aa_sims(self) -> int:
        spawned = 0
        tracker = self.trackers["aa-sim"]
        while tracker.nactive() < self.config.max_aa_sims:
            with self._buffer_lock:
                if not self.aa_ready:
                    break
                system = self.aa_ready.pop(0)
            with self._counters_lock:
                sim_id = f"aa{self.counters['aa_spawned']:05d}"
                self.counters["aa_spawned"] += 1

            def aa_job(system=system, sim_id=sim_id):
                return self._run_aa_sim(system, sim_id)

            self._launch(tracker, sim_id, aa_job)
            spawned += 1
        return spawned

    def _run_aa_sim(self, system: AASystem, sim_id: str) -> float:
        with trace.span("wm.aa_sim", sim=sim_id):
            sim = AASim(system.positions, system.bonds, system.backbone,
                        config=AAConfig(box=system.box, seed=int(self.rng.integers(2**31))))
            analysis = SecondaryStructureAnalysis(system.backbone, box=system.box)
            for chunk in range(self.config.aa_chunks_per_job):
                sim.step(self.config.aa_steps_per_chunk)
                pattern = analysis.analyze_frame(sim.positions)
                self.store.write(
                    f"ss/live/{sim_id}-{chunk:03d}",
                    pattern.encode("utf-8"),
                )
        self._bump("aa_finished")
        return sim.time

    def task3_manage_jobs(self) -> Dict[str, int]:
        """One scan-and-replace pass over all four job types."""
        with trace.span("schedule.manage") as sp:
            launched = {
                "createsim": self._fill_cg_buffer(),
                "cg": self._spawn_cg_sims(),
                "backmap": self._fill_aa_buffer(),
                "aa": self._spawn_aa_sims(),
            }
            if sp:
                sp.set(**launched)
        return launched

    # ------------------------------------------------------------------
    # Task 4: feedback
    # ------------------------------------------------------------------

    def task4_feedback(self) -> int:
        """Run one iteration of every registered feedback manager."""
        n = 0
        with trace.span("wm.task4"):
            for manager in self.feedback_managers:
                manager.run_iteration(now=float(self.rounds))
                n += 1
        self._bump("feedback_iterations", n)
        return n

    def lock_stats(self) -> Dict[str, int]:
        """Selector-lock contention counters (profiling, §4.4)."""
        return self._selector_guard.stats.as_dict()

    # ------------------------------------------------------------------
    # The round driver
    # ------------------------------------------------------------------

    def round(self, advance_us: float = 1.0, wait: bool = True) -> Dict[str, int]:
        """One coordination round across all four tasks.

        With ``wait=True`` (default) the round blocks until every job
        launched this round settled — deterministic laptop mode. With
        ``wait=False`` jobs overlap rounds like the production WM.

        On adapters that settle every job (``settles_async``) the
        waiting round runs as a coroutine on a dedicated loop thread:
        CPU-bound tasks offload through ``run_in_executor`` and the
        barrier is an ``asyncio.gather`` over per-job settle futures —
        not a pool join — so the barrier covers exactly this round's
        jobs (including their retries) and never another tenant's.
        The sync signature is a facade; callers block either way.
        """
        if wait and self._async_rounds:
            parent = trace.current_id()
            self._ensure_loop().run(self._round_async(advance_us, parent))
        else:
            self._round_sync(advance_us, wait)
        self.rounds += 1
        return self.counters_snapshot()

    def _round_sync(self, advance_us: float, wait: bool) -> None:
        """Legacy inline round (chaos/virtual adapters, overlap mode)."""
        with trace.span("wm.round", round=self.rounds):
            self.task1_process_macro(advance_us)
            self.task3_manage_jobs()
            # Any adapter that can block on completion (thread pool,
            # chaos harness) supports deterministic rounds; virtual-time
            # adapters (Flux) never block.
            if wait and hasattr(self.adapter, "wait_all"):
                self.adapter.wait_all()
                # Setup jobs may have refilled buffers; start the sims now.
                self.task3_manage_jobs()
                self.adapter.wait_all()
            self.task4_feedback()

    async def _round_async(self, advance_us: float,
                           parent: Optional[int]) -> None:
        """Coroutine round: offload CPU tasks, gather on settle futures.

        Runs on this WM's private loop thread, so holding the
        ``wm.round`` span across awaits is safe (nothing else traces on
        this thread); job bodies and offloads run in executor threads
        and parent back through ``trace.wrap``. Task 3 itself stays on
        the loop — launching is non-blocking and its selector critical
        sections are short.
        """
        loop = asyncio.get_running_loop()
        offload = getattr(self.adapter, "executor", None)
        with trace.inherit(parent):
            with trace.span("wm.round", round=self.rounds):
                await loop.run_in_executor(
                    offload,
                    trace.wrap(functools.partial(
                        self.task1_process_macro, advance_us)),
                )
                self._collecting = True
                try:
                    self.task3_manage_jobs()
                    await self._gather_settled()
                    # Setup jobs may have refilled buffers; start sims now.
                    self.task3_manage_jobs()
                    await self._gather_settled()
                finally:
                    self._collecting = False
                await loop.run_in_executor(
                    offload, trace.wrap(self.task4_feedback))

    async def _gather_settled(self) -> None:
        """The round barrier: await every settle future launched so far.

        Settle hooks fire from executor threads; ``wrap_future`` bridges
        them onto this loop. Futures carry job records, never
        exceptions — a failed job is data (the tracker retried or
        abandoned it), not a barrier error.
        """
        while self._round_inflight:
            batch, self._round_inflight = self._round_inflight, []
            await asyncio.gather(*(asyncio.wrap_future(f) for f in batch))

    def _ensure_loop(self) -> LoopThread:
        """The WM's round loop thread, (re)created lazily."""
        with self._loop_lock:
            if self._loop_thread is None or not self._loop_thread.is_alive():
                self._loop_thread = LoopThread(name="wm-round-loop")
            return self._loop_thread

    def run(self, nrounds: int, advance_us: float = 1.0,
            wait: bool = True) -> Dict[str, int]:
        for _ in range(nrounds):
            self.round(advance_us, wait=wait)
        return self.counters_snapshot()

    def status(self) -> Dict[str, object]:
        """One addressable snapshot of this workflow's coordination state.

        The control plane's :class:`~repro.service.registry.CampaignHandle`
        serves this over HTTP; it is also handy interactively. Everything
        here is owned by *this* instance — no module or process globals —
        which is what lets one daemon host many WMs side by side.
        """
        with self._buffer_lock:
            ready = {"cg": len(self.cg_ready), "aa": len(self.aa_ready)}
        with self._selector_guard.locked():
            selectors = {
                "patch_candidates": self.patch_selector.ncandidates(),
                "frame_candidates": self.frame_selector.ncandidates(),
            }
        return {
            "rounds": self.rounds,
            "counters": self.counters_snapshot(),
            "ready_buffers": ready,
            "selectors": selectors,
            "active_jobs": {name: t.nactive() for name, t in self.trackers.items()},
            "macro_time_us": self.macro.time_us,
            "coupling_version": self.macro.coupling_version,
            "ff_version": self.forcefield.version,
        }

    def close(self) -> None:
        """Drain in-flight jobs and release the adapter if this WM owns it.

        Campaigns used to die with their process, leaking pool threads on
        abnormal exits; a service-hosted WM must instead shut down cleanly
        while its shared substrate (adapter pool, store) keeps serving
        other tenants.
        """
        self._quiesce()
        if self._owns_adapter:
            shutdown = getattr(self.adapter, "shutdown", None)
            if shutdown is not None:
                shutdown()
        with self._loop_lock:
            loop_thread, self._loop_thread = self._loop_thread, None
        if loop_thread is not None:
            loop_thread.stop()

    # ------------------------------------------------------------------
    # Checkpoint / restore (§4.4 resilience)
    # ------------------------------------------------------------------

    def _quiesce(self) -> None:
        """Flush in-flight jobs before snapshotting state.

        ``run(wait=False)`` (and the production WM generally) leaves the
        final round's jobs in flight; a checkpoint taken at that moment
        used to strand them — their patches were already popped from the
        side tables, their outputs not yet in the ready buffers, so a
        restore silently lost that work. Blocking adapters drain first;
        virtual-time adapters (no ``wait_all``) have nothing to flush.
        """
        flush = getattr(self.adapter, "flush", None)
        if flush is not None:
            flush()
        elif hasattr(self.adapter, "wait_all"):
            self.adapter.wait_all()

    def checkpoint(self, key: str = "wm/checkpoint") -> None:
        """Persist WM counters, selector state, histories — and the
        patch/frame side tables the selectors' candidate ids resolve
        against, so a restored WM can actually materialize the
        candidates its selectors still hold. In-flight jobs are flushed
        first and the resulting ready buffers persisted, so nothing the
        pipeline already paid for is stranded by a restore."""
        from repro.sampling.persistence import save_sampler

        self._quiesce()
        with self._selector_guard.locked():
            save_sampler(self.store, f"{key}/patch-selector", self.patch_selector)
            save_sampler(self.store, f"{key}/frame-selector", self.frame_selector)
            patches = dict(self._patch_by_id)
            frames = [c.to_json() for c in self._frame_by_id.values()]
            systems = dict(self._frame_systems)
        side = {f"{key}/patch-table/{pid}": p.to_bytes()
                for pid, p in patches.items()}
        side.update({f"{key}/frame-table/{fid}": s.to_bytes()
                     for fid, s in systems.items()})
        with self._buffer_lock:
            side.update({f"{key}/ready/cg/{i:04d}": s.to_bytes()
                         for i, s in enumerate(self.cg_ready)})
            side.update({f"{key}/ready/aa/{i:04d}": s.to_bytes()
                         for i, s in enumerate(self.aa_ready)})
        stale = [
            k
            for prefix in (f"{key}/patch-table/", f"{key}/frame-table/",
                           f"{key}/ready/")
            for k in self.store.keys(prefix)
            if k not in side
        ]
        if stale:
            self.store.delete_many(stale)
        if side:
            self.store.write_many(side)
        self.store.write_json(f"{key}/frame-candidates", frames)
        payload = {
            "rounds": self.rounds,
            "counters": self.counters_snapshot(),
            "patch_history": self.patch_selector.history_rows(),
            "frame_history": self.frame_selector.history_rows(),
            "macro_time_us": self.macro.time_us,
            "coupling_version": self.macro.coupling_version,
            "ff_version": self.forcefield.version,
            "ss_pattern": self.forcefield.ss_pattern,
        }
        self.store.write_json(key, payload)

    def restore(self, key: str = "wm/checkpoint") -> Dict:
        """Reload counters, selector state, and side tables; returns the
        payload. Selector candidates whose side-table entry did not
        survive (e.g. a checkpoint written by an older version) are
        pruned — selecting one would otherwise KeyError the round
        driver instead of producing a job."""
        from repro.sampling.persistence import load_sampler

        payload = self.store.read_json(key)
        self.rounds = int(payload["rounds"])
        with self._counters_lock:
            self.counters.update({k: int(v) for k, v in payload["counters"].items()})
        patch_prefix = f"{key}/patch-table/"
        patch_table = {
            k[len(patch_prefix):]: Patch.from_bytes(v)
            for k, v in self.store.read_present(self.store.keys(patch_prefix)).items()
        }
        frame_prefix = f"{key}/frame-table/"
        frame_table = {
            k[len(frame_prefix):]: CGSystem.from_bytes(v)
            for k, v in self.store.read_present(self.store.keys(frame_prefix)).items()
        }
        candidates = {}
        if self.store.exists(f"{key}/frame-candidates"):
            candidates = {
                row["frame_id"]: FrameCandidate.from_json(row)
                for row in self.store.read_json(f"{key}/frame-candidates")
            }
        cg_rows = self.store.read_present(sorted(self.store.keys(f"{key}/ready/cg/")))
        aa_rows = self.store.read_present(sorted(self.store.keys(f"{key}/ready/aa/")))
        with self._buffer_lock:
            self.cg_ready = [CGSystem.from_bytes(cg_rows[k]) for k in sorted(cg_rows)]
            self.aa_ready = [AASystem.from_bytes(aa_rows[k]) for k in sorted(aa_rows)]
        with self._selector_guard.locked():
            if self.store.exists(f"{key}/patch-selector"):
                load_sampler(self.store, f"{key}/patch-selector", self.patch_selector)
            if self.store.exists(f"{key}/frame-selector"):
                load_sampler(self.store, f"{key}/frame-selector", self.frame_selector)
            self._patch_by_id = patch_table
            self._frame_systems = frame_table
            self._frame_by_id = candidates
            for pid in self.patch_selector.candidate_ids() - set(patch_table):
                self.patch_selector.remove(pid)
                self._bump("patches_pruned")
            for fid in self.frame_selector.candidate_ids() - set(frame_table):
                self.frame_selector.discard(fid)
                self._frame_by_id.pop(fid, None)
                self._bump("frames_pruned")
        return payload
