"""Executes every Python code block in EXTENDING.md.

The extension guide promises runnable recipes; this test keeps that
promise honest by running each fenced ``python`` block verbatim.
"""

import os
import re

import pytest

DOC = os.path.join(os.path.dirname(__file__), "..", "EXTENDING.md")


def code_blocks():
    with open(DOC, encoding="utf-8") as fh:
        text = fh.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


BLOCKS = code_blocks()


def test_guide_has_expected_number_of_examples():
    assert len(BLOCKS) == 7


@pytest.mark.parametrize("index", range(len(BLOCKS)))
def test_code_block_runs(index):
    namespace = {"__name__": f"extending_block_{index}"}
    exec(compile(BLOCKS[index], f"EXTENDING.md[block {index}]", "exec"), namespace)
