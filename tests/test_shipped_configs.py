"""The example config files shipped in examples/configs/ must stay valid."""

import os

import pytest

from repro.core.config import (
    application_kwargs,
    campaign_config,
    job_types,
    load_config_file,
    workflow_config,
)

CONFIG_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "configs")


def config_path(name):
    return os.path.join(CONFIG_DIR, name)


class TestLaptopConfig:
    def test_loads_and_validates(self):
        doc = load_config_file(config_path("laptop.toml"))
        kwargs = application_kwargs(doc)
        assert kwargs["store_url"].startswith("kv://")
        assert workflow_config(doc).max_cg_sims == 2

    def test_builds_a_runnable_application(self):
        from repro.app.builder import build_application

        doc = load_config_file(config_path("laptop.toml"))
        app = build_application(**application_kwargs(doc))
        counters = app.run(nrounds=1)
        assert counters["snapshots"] == 1


class TestPaperCampaignConfig:
    def test_ledger_matches_table1(self):
        doc = load_config_file(config_path("paper_campaign.toml"))
        cfg = campaign_config(doc)
        total = sum(r.node_hours for r in cfg.ledger)
        assert total == 600_600
        assert cfg.seed == 2021

    def test_job_sections_valid(self):
        doc = load_config_file(config_path("paper_campaign.toml"))
        types = job_types(doc)
        assert set(types) == {"cg-sim", "aa-sim", "createsim", "backmap"}
        assert types["createsim"].ncores == 24
        assert types["backmap"].max_retries == 2

    def test_scaled_version_runs(self):
        """A shrunk copy of the paper ledger actually executes."""
        from repro.core.campaign import CampaignSimulator, RunSpec
        import dataclasses

        doc = load_config_file(config_path("paper_campaign.toml"))
        cfg = campaign_config(doc)
        small = dataclasses.replace(
            cfg, ledger=(RunSpec(20, 2, 1),)
        )
        result = CampaignSimulator(small).run()
        assert result.total_node_hours() == 40
