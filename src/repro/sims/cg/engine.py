"""The CG Langevin engine (our ddcMD).

Brownian (overdamped Langevin) dynamics of Martini-like beads in a
periodic 2-D membrane plane::

    x += mobility * F(x) * dt + sqrt(2 * D * dt) * xi

Non-bonded forces come from the force field's soft-core pair potential
over a periodic neighbour list (``scipy.spatial.cKDTree`` with
``boxsize``, cross-checked against a brute-force path in the tests);
protein beads are chained by harmonic bonds whose stiffness tracks the
secondary-structure pattern — the parameter AA→CG feedback refines
mid-campaign via :meth:`CGSim.apply_feedback`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.sims.cg.forcefield import CGForceField
from repro.sims.cg.forcefield import martini_like

__all__ = ["CGConfig", "CGSim"]


@dataclass(frozen=True)
class CGConfig:
    """Size and numerics of one CG simulation."""

    box: float = 12.0
    """Periodic box side (reduced units ~ nm; paper patches are 30 nm)."""

    n_lipids: int = 300
    """Lipid beads (the paper's systems average ~140k particles; tests
    use hundreds — the workflow does not care)."""

    dt: float = 1e-4
    """Time step (reduced time units; one unit ≈ 1 ns of CG time)."""

    temperature: float = 1.0
    mobility: float = 1.0
    seed: int = 0
    neighbor_method: str = "tree"
    """'tree' (cKDTree, default), 'cells' (linked-cell lists, the
    classic MD structure), or 'brute' (O(n²) reference path)."""

    def __post_init__(self) -> None:
        if self.box <= 0 or self.dt <= 0 or self.n_lipids < 1:
            raise ValueError("box, dt positive and n_lipids >= 1 required")
        if self.neighbor_method not in ("tree", "cells", "brute"):
            raise ValueError("neighbor_method must be 'tree', 'cells' or 'brute'")


class CGSim:
    """One coarse-grained simulation instance.

    Positions/types may come from :func:`repro.sims.mapping.createsim`
    (the production path) or be synthesized by :meth:`random_system`.
    """

    def __init__(
        self,
        positions: np.ndarray,
        type_ids: np.ndarray,
        forcefield: CGForceField,
        config: Optional[CGConfig] = None,
        bonds: Optional[np.ndarray] = None,
    ) -> None:
        self.config = config or CGConfig()
        self.ff = forcefield
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        if positions.shape[1] != 2:
            raise ValueError("positions must be (n, 2)")
        self.positions = positions % self.config.box
        self.type_ids = np.asarray(type_ids, dtype=np.int64)
        if self.type_ids.shape != (positions.shape[0],):
            raise ValueError("type_ids must match positions")
        # bonds: (m, 3) rows of (i, j, rest_length); stiffness per row set
        # from the force field's SS pattern (cycled if shorter).
        self.bonds = (
            np.empty((0, 3)) if bonds is None else np.asarray(bonds, dtype=np.float64)
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.time = 0.0
        self.step_count = 0
        self._refresh_bond_stiffness()
        self._refresh_exclusions()

    def _refresh_exclusions(self) -> None:
        """Bonded pairs are excluded from non-bonded interactions
        (standard MD exclusions; bonds alone set their geometry)."""
        n = self.positions.shape[0]
        if self.bonds.shape[0]:
            bi = self.bonds[:, 0].astype(np.int64)
            bj = self.bonds[:, 1].astype(np.int64)
            lo = np.minimum(bi, bj)
            hi = np.maximum(bi, bj)
            self._excluded_keys = np.unique(lo * n + hi)
        else:
            self._excluded_keys = np.empty(0, dtype=np.int64)

    def _filter_excluded(self, ii: np.ndarray, jj: np.ndarray):
        if self._excluded_keys.size == 0 or ii.size == 0:
            return ii, jj
        n = self.positions.shape[0]
        keys = np.minimum(ii, jj) * n + np.maximum(ii, jj)
        keep = ~np.isin(keys, self._excluded_keys)
        return ii[keep], jj[keep]

    # --- construction helpers ------------------------------------------------

    @classmethod
    def random_system(
        cls,
        forcefield: Optional[CGForceField] = None,
        config: Optional[CGConfig] = None,
        n_protein_beads: int = 6,
    ) -> "CGSim":
        """A lipid bath plus one RAS-RAF protein chain in the middle."""
        ff = forcefield or martini_like()
        cfg = config or CGConfig()
        rng = np.random.default_rng(cfg.seed)
        lipid_names = ff.lipid_type_names()
        lipid_pos = rng.random((cfg.n_lipids, 2)) * cfg.box
        lipid_types = rng.integers(0, len(lipid_names), size=cfg.n_lipids)
        # Protein chain: half RAS beads, half RAF, spaced at ~0.5 units.
        prot_pos = np.empty((n_protein_beads, 2))
        center = np.array([cfg.box / 2, cfg.box / 2])
        for k in range(n_protein_beads):
            prot_pos[k] = center + np.array([0.45 * k, 0.0])
        ras_id = ff.index_of("RAS")
        raf_id = ff.index_of("RAF")
        half = n_protein_beads // 2
        prot_types = np.array([ras_id] * half + [raf_id] * (n_protein_beads - half))
        positions = np.vstack([lipid_pos, prot_pos])
        type_ids = np.concatenate([lipid_types, prot_types])
        # Chain bonds between consecutive protein beads.
        first = cfg.n_lipids
        bonds = np.array(
            [[first + k, first + k + 1, 0.45] for k in range(n_protein_beads - 1)]
        )
        return cls(positions, type_ids, ff, cfg, bonds=bonds)

    # --- feedback interface ------------------------------------------------------

    def apply_feedback(self, ss_pattern: str) -> None:
        """AA→CG feedback: refine bonded parameters from a new SS string."""
        self.ff.update_secondary_structure(ss_pattern)
        self._refresh_bond_stiffness()

    def _refresh_bond_stiffness(self) -> None:
        nb = self.bonds.shape[0]
        if nb == 0:
            self._bond_k = np.empty(0)
            return
        per_segment = self.ff.bond_stiffness()
        if per_segment.size == 0:
            self._bond_k = np.full(nb, 10.0)
        else:
            self._bond_k = per_segment[np.arange(nb) % per_segment.size].astype(float)

    # --- forces ----------------------------------------------------------------

    def _min_image(self, d: np.ndarray) -> np.ndarray:
        box = self.config.box
        return d - box * np.round(d / box)

    def _pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        rc = self.ff.cutoff
        if self.config.neighbor_method == "tree":
            tree = cKDTree(self.positions, boxsize=self.config.box)
            pairs = tree.query_pairs(rc, output_type="ndarray")
            return (pairs[:, 0], pairs[:, 1]) if pairs.size else (np.empty(0, int), np.empty(0, int))
        if self.config.neighbor_method == "cells":
            return self._pairs_cells(rc)
        return self._pairs_brute(rc)

    def _pairs_brute(self, rc: float) -> Tuple[np.ndarray, np.ndarray]:
        n = self.positions.shape[0]
        ii, jj = np.triu_indices(n, k=1)
        d = self._min_image(self.positions[ii] - self.positions[jj])
        r2 = np.einsum("ij,ij->i", d, d)
        keep = r2 < rc * rc
        return ii[keep], jj[keep]

    def _pairs_cells(self, rc: float) -> Tuple[np.ndarray, np.ndarray]:
        """Linked-cell pair search: O(n) candidates at fixed density.

        The box splits into cells no smaller than the cutoff; each cell
        interacts only with itself and a half stencil of neighbours (so
        every pair is generated exactly once). Falls back to brute force
        when the box holds fewer than 3x3 cells, where the periodic
        stencil would alias.
        """
        box = self.config.box
        ncell = int(box // rc)
        if ncell < 3:
            return self._pairs_brute(rc)
        cell_size = box / ncell
        cxy = np.floor(self.positions / cell_size).astype(np.int64) % ncell
        cell_id = cxy[:, 0] * ncell + cxy[:, 1]
        order = np.argsort(cell_id, kind="stable")
        sorted_ids = cell_id[order]
        bins = np.arange(ncell * ncell + 1)
        starts = np.searchsorted(sorted_ids, bins[:-1])
        ends = np.searchsorted(sorted_ids, bins[1:])
        # Half stencil: self + E, N, NE, NW — each unordered cell pair once.
        stencil = ((0, 0), (1, 0), (0, 1), (1, 1), (1, -1))
        out_i, out_j = [], []
        for cx in range(ncell):
            base = cx * ncell
            for cy in range(ncell):
                c = base + cy
                a = order[starts[c]: ends[c]]
                if a.size == 0:
                    continue
                for ox, oy in stencil:
                    if ox == 0 and oy == 0:
                        if a.size < 2:
                            continue
                        ti, tj = np.triu_indices(a.size, k=1)
                        pi, pj = a[ti], a[tj]
                    else:
                        nc = ((cx + ox) % ncell) * ncell + (cy + oy) % ncell
                        b = order[starts[nc]: ends[nc]]
                        if b.size == 0:
                            continue
                        pi = np.repeat(a, b.size)
                        pj = np.tile(b, a.size)
                    d = self._min_image(self.positions[pi] - self.positions[pj])
                    keep = np.einsum("ij,ij->i", d, d) < rc * rc
                    if keep.any():
                        out_i.append(pi[keep])
                        out_j.append(pj[keep])
        if not out_i:
            return np.empty(0, int), np.empty(0, int)
        return np.concatenate(out_i), np.concatenate(out_j)

    def forces(self) -> Tuple[np.ndarray, float]:
        """Total forces (n, 2) and potential energy."""
        n = self.positions.shape[0]
        F = np.zeros((n, 2))
        energy = 0.0
        ii, jj = self._filter_excluded(*self._pairs())
        if ii.size:
            d = self._min_image(self.positions[ii] - self.positions[jj])
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            r = np.maximum(r, 1e-9)  # overlapping beads: huge but finite force
            U, Fmag = self.ff.pair_energy_force(r, self.type_ids[ii], self.type_ids[jj])
            fvec = (Fmag / r)[:, None] * d
            np.add.at(F, ii, fvec)
            np.add.at(F, jj, -fvec)
            energy += float(U.sum())
        if self.bonds.shape[0]:
            bi = self.bonds[:, 0].astype(int)
            bj = self.bonds[:, 1].astype(int)
            r0 = self.bonds[:, 2]
            d = self._min_image(self.positions[bi] - self.positions[bj])
            r = np.maximum(np.sqrt(np.einsum("ij,ij->i", d, d)), 1e-9)
            k = self._bond_k
            energy += float(np.sum(0.5 * k * (r - r0) ** 2))
            fmag = -k * (r - r0)
            fvec = (fmag / r)[:, None] * d
            np.add.at(F, bi, fvec)
            np.add.at(F, bj, -fvec)
        return F, energy

    # --- integration -----------------------------------------------------------

    def step(self, nsteps: int = 1) -> None:
        c = self.config
        sigma = np.sqrt(2.0 * c.mobility * c.temperature * c.dt)
        for _ in range(nsteps):
            F, _ = self.forces()
            noise = self.rng.standard_normal(self.positions.shape) * sigma
            self.positions = (self.positions + c.mobility * F * c.dt + noise) % c.box
            self.time += c.dt
            self.step_count += 1

    # --- views used by analysis ----------------------------------------------

    def protein_mask(self) -> np.ndarray:
        prot_ids = [self.ff.index_of(nm) for nm in self.ff.protein_type_names()]
        return np.isin(self.type_ids, prot_ids)

    # --- checkpointing (§4.4: all simulations checkpoint themselves) -----------

    def state_dict(self) -> Dict:
        return {
            "positions": self.positions.copy(),
            "type_ids": self.type_ids.copy(),
            "bonds": self.bonds.copy(),
            "time": self.time,
            "step_count": self.step_count,
            "rng_state": self.rng.bit_generator.state,
            "ss_pattern": self.ff.ss_pattern,
        }

    def load_state_dict(self, state: Dict) -> None:
        if state["positions"].shape != self.positions.shape:
            raise ValueError("checkpoint shape mismatch")
        self.positions = state["positions"].copy()
        self.type_ids = state["type_ids"].copy()
        self.bonds = state["bonds"].copy()
        self.time = float(state["time"])
        self.step_count = int(state["step_count"])
        self.rng.bit_generator.state = state["rng_state"]
        self.ff.update_secondary_structure(state["ss_pattern"])
        self._refresh_bond_stiffness()
        self._refresh_exclusions()
