"""Extension bench: durable-shard overhead and migration throughput.

Persistence must not buy durability by serializing the hot path: the
WAL appends on the event loop and fsyncs in coalesced group commits,
so a pipelined MSET pays a handful of fsync batches, not one per key.
This bench measures the same 600x64B pipelined workload as
``pipelining_600x64B`` (BENCH_netkv_cluster.json) against in-memory
and durable async shards and records the overhead ratio, plus the
throughput of ``migrate_slots`` moving half a keyspace between live
shards. Results land in ``BENCH_netkv_persist.json``.
"""

from __future__ import annotations

import time

import pytest
from conftest import record_json, report

from repro.datastore.aio import AsyncNetKVServer
from repro.datastore.netkv import NetKVCluster, TransportConfig, key_slot
from repro.datastore.wal import DurabilityConfig

pytestmark = [pytest.mark.multi_server, pytest.mark.async_transport,
              pytest.mark.persist]

BENCH_JSON = "BENCH_netkv_persist.json"
NKEYS = 600
PAYLOAD = b"x" * 64


def _cluster(servers):
    # Short route_refresh: the migration benchmark would otherwise pay
    # two full default-length (1.5 s) stale-route grace waits, which
    # measures the safety sleep rather than the copy throughput.
    return NetKVCluster([s.address for s in servers],
                        config=TransportConfig(route_refresh=0.05))


def _timed_pipeline(cluster, items):
    keys = [k for k, _ in items]
    t0 = time.perf_counter()
    cluster.mset(items)
    t_mset = time.perf_counter() - t0
    t0 = time.perf_counter()
    values = cluster.mget(keys)
    t_mget = time.perf_counter() - t0
    assert values == [v for _, v in items]
    return t_mset, t_mget


class TestDurableOverhead:
    def test_group_commit_keeps_pipelining_cheap(self, tmp_path):
        items = [(f"bench/{i:04d}", PAYLOAD) for i in range(NKEYS)]

        mem_servers = [AsyncNetKVServer().start() for _ in range(2)]
        wal_servers = [
            AsyncNetKVServer(persist_dir=str(tmp_path / f"shard{i}"),
                             durability=DurabilityConfig(fsync=True)).start()
            for i in range(2)
        ]
        mem = _cluster(mem_servers)
        wal = _cluster(wal_servers)
        try:
            # Warm both paths (connections, first-touch allocation).
            mem.mset(items[:32]); mem.mget([k for k, _ in items[:32]])
            wal.mset(items[:32]); wal.mget([k for k, _ in items[:32]])

            mem_mset, mem_mget = _timed_pipeline(mem, items)
            wal_mset, wal_mget = _timed_pipeline(wal, items)

            write_overhead = wal_mset / mem_mset
            read_overhead = wal_mget / mem_mget
            fsync_batches = sum(s.wal.fsync_batches for s in wal_servers)

            report("ext_netkv_persist_overhead", [
                f"keys                 {NKEYS} x {len(PAYLOAD)} B",
                f"in-memory mset       {mem_mset:.4f} s",
                f"durable mset         {wal_mset:.4f} s "
                f"({write_overhead:.2f}x, {fsync_batches} fsync batches)",
                f"in-memory mget       {mem_mget:.4f} s",
                f"durable mget         {wal_mget:.4f} s "
                f"({read_overhead:.2f}x)",
            ])
            record_json(BENCH_JSON, "durable_pipelining_600x64B", {
                "nkeys": NKEYS,
                "payload_bytes": len(PAYLOAD),
                "mem_mset_s": mem_mset,
                "wal_mset_s": wal_mset,
                "write_overhead_x": write_overhead,
                "mem_mget_s": mem_mget,
                "wal_mget_s": wal_mget,
                "read_overhead_x": read_overhead,
                "fsync_batches": fsync_batches,
            })
            # Group commit must coalesce: a 600-key mset pays a few
            # fsync passes per shard, never one per key.
            assert fsync_batches < 2 * 20
            # Reads never touch the WAL; any large gap is a regression.
            assert read_overhead < 3.0
        finally:
            mem.close()
            wal.close()
            for s in mem_servers + wal_servers:
                s.stop()


class TestMigrationThroughput:
    def test_migrate_half_the_keyspace(self, tmp_path):
        servers = [
            AsyncNetKVServer(persist_dir=str(tmp_path / f"shard{i}"),
                             durability=DurabilityConfig(fsync=True)).start()
            for i in range(3)
        ]
        cluster = _cluster(servers)
        try:
            items = [(f"mig/{i:05d}", PAYLOAD) for i in range(2000)]
            cluster.mset(items)
            moving = sorted({key_slot(k) for k, _ in items
                             if key_slot(k) % 2 == 0})

            t0 = time.perf_counter()
            result = cluster.migrate_slots(moving, 2)
            elapsed = time.perf_counter() - t0
            moved = result["keys_moved"]
            assert moved > 0
            keys_per_s = moved / elapsed

            # Every key still readable from its (possibly new) home.
            values = cluster.mget([k for k, _ in items])
            assert values == [v for _, v in items]

            report("ext_netkv_persist_migration", [
                f"keyspace             {len(items)} keys",
                f"slots moved          {result['slots']}",
                f"keys moved           {moved}",
                f"migration wall       {elapsed:.3f} s "
                f"({keys_per_s:,.0f} keys/s)",
                f"routing epoch        {result['epoch']}",
            ])
            record_json(BENCH_JSON, "migration_throughput", {
                "nkeys": len(items),
                "slots_moved": result["slots"],
                "keys_moved": moved,
                "migrate_s": elapsed,
                "keys_per_s": keys_per_s,
            })
        finally:
            cluster.close()
            for s in servers:
                s.stop()
