"""Property-based tests for queue-manager ordering invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.flux import FluxInstance
from repro.sched.jobspec import JobSpec, JobState
from repro.sched.matcher import MatchPolicy
from repro.sched.resources import summit_like
from repro.util.clock import EventLoop

job_strategy = st.tuples(
    st.integers(1, 6),      # ncores
    st.integers(0, 2),      # ngpus
    st.floats(10.0, 500.0),  # duration
)


@settings(max_examples=25, deadline=None)
@given(jobs=st.lists(job_strategy, min_size=1, max_size=30))
def test_property_fcfs_start_order_follows_submission(jobs):
    """Without backfilling, same-feasibility jobs start in submit order:
    job i never starts strictly after job j>i when both eventually run
    and i was runnable whenever j was (single-node GPU jobs are
    interchangeable here, so start times must be non-decreasing in
    submission order among identical requests)."""
    loop = EventLoop()
    flux = FluxInstance(summit_like(2), loop, policy=MatchPolicy.FIRST_MATCH)
    records = [
        flux.submit(JobSpec(name="j", ncores=c, ngpus=g, duration=d))
        for c, g, d in jobs
    ]
    loop.run_until(100_000.0)
    # Everything eventually completes (requests always fit one node).
    assert all(r.state is JobState.COMPLETED for r in records)
    # Identical requests start in submission order.
    by_shape = {}
    for r in records:
        by_shape.setdefault((r.spec.ncores, r.spec.ngpus), []).append(r.start_time)
    for starts in by_shape.values():
        assert starts == sorted(starts)


@settings(max_examples=20, deadline=None)
@given(
    njobs=st.integers(1, 40),
    seed=st.integers(0, 1000),
)
def test_property_no_resource_leaks(njobs, seed):
    """After every job completes, the graph is exactly as free as new."""
    rng = np.random.default_rng(seed)
    loop = EventLoop()
    flux = FluxInstance(summit_like(2), loop)
    for _ in range(njobs):
        flux.submit(JobSpec(name="x", ncores=int(rng.integers(1, 5)),
                            ngpus=int(rng.integers(0, 3)),
                            duration=float(rng.uniform(10, 300))))
    loop.run_until(1_000_000.0)
    assert flux.graph.used_cores == 0
    assert flux.graph.used_gpus == 0
    counts = flux.counts()
    assert counts["completed"] == njobs
