"""Farthest-point sampling over capped candidate queues (the Patch Selector core).

Novelty ranking follows Bhatia et al. (2021): a candidate's importance
is its L2 distance to the nearest *already-selected* point in encoding
space; selecting the farthest point steers the ensemble toward
configurations unlike anything simulated so far.

Scaling devices from §4.4 Task 2, all reproduced here:

- multiple named in-memory queues, each capped (default 35,000);
- candidate ingest is O(1) — ranks are stale until a selection asks
  for them (the "caching scheme to postpone expensive computations");
- rank updates are one vectorized nearest-neighbour query per queue
  against a pluggable exact/approximate index.

**Why incremental FPS is exact.** A candidate's novelty is
``min over selected s of d(c, s)``. That minimum satisfies the classic
farthest-point recurrence: after selecting a new point ``x``,

    novelty'(c) = min(novelty(c), d(c, x))

so the selector keeps, per queue, a contiguous coordinate matrix and a
cached min-distance-to-selected array, and after each pick folds in
distances *to the newly selected point only* with an elementwise
minimum — then picks with a single ``argmax`` (FIFO tie-break on
arrival order, matching a stable descending sort). Because every
backend computes the per-pair distance with the same floating-point
formula on both its full-query and delta paths (see
:mod:`repro.sampling.ann`), the folded minimum is the *same floats* a
recompute-from-scratch would produce, and the selected id sequence is
identical — :meth:`FarthestPointSampler.rank` remains that exact
recompute path, used for introspection and as the oracle in the
equivalence tests. Candidates that arrive mid-stream are marked
pending and priced with one vectorized index query at the next
selection, so ingest stays O(1). The cost per pick drops from
O(n·(index rebuild + full rank + sort)) to O(n) amortized.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import trace
from repro.sampling.ann import KDTreeIndex, NeighborIndex
from repro.sampling.base import Sampler
from repro.sampling.points import Point
from repro.sampling.queues import CandidateQueue, QueueFullPolicy

__all__ = ["FarthestPointSampler"]

DEFAULT_QUEUE = "default"


class _QueueCache:
    """Per-queue novelty cache: contiguous coords + min-dist-to-selected.

    Rows use swap-delete (order is *not* arrival order); ``seq`` holds
    each candidate's arrival number for the FIFO tie-break. A row whose
    ``mindist`` is NaN is *pending*: it arrived after the last sync and
    gets priced by one vectorized index query at the next selection.
    """

    __slots__ = ("ids", "row_of", "coords", "mindist", "seq", "n",
                 "synced", "epoch", "next_seq")

    def __init__(self, dim: int, epoch: int, capacity: int = 256) -> None:
        self.coords = np.empty((capacity, dim), dtype=np.float64)
        self.mindist = np.empty(capacity, dtype=np.float64)
        self.seq = np.empty(capacity, dtype=np.int64)
        self.ids: List[str] = []
        self.row_of: Dict[str, int] = {}
        self.n = 0
        self.synced = 0      # selected points folded into mindist so far
        self.epoch = epoch   # index epoch mindist was computed under
        self.next_seq = 0

    def _grow(self, need: int) -> None:
        cap = self.coords.shape[0]
        if need <= cap:
            return
        new_cap = max(2 * cap, need)
        for name in ("coords", "mindist", "seq"):
            old = getattr(self, name)
            shape = (new_cap,) + old.shape[1:]
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self.n] = old[: self.n]
            setattr(self, name, grown)

    def append(self, point: Point) -> None:
        self._grow(self.n + 1)
        row = self.n
        self.coords[row] = point.coords
        self.mindist[row] = np.nan  # pending: priced at next selection
        self.seq[row] = self.next_seq
        self.next_seq += 1
        self.ids.append(point.id)
        self.row_of[point.id] = row
        self.n += 1

    def remove(self, point_id: str) -> None:
        row = self.row_of.pop(point_id)
        last = self.n - 1
        if row != last:
            self.coords[row] = self.coords[last]
            self.mindist[row] = self.mindist[last]
            self.seq[row] = self.seq[last]
            moved = self.ids[last]
            self.ids[row] = moved
            self.row_of[moved] = row
        self.ids.pop()
        self.n -= 1


class FarthestPointSampler(Sampler):
    """Dynamic farthest-point selection with incremental rank updates.

    Parameters
    ----------
    dim:
        Encoding dimensionality (9 for the paper's patches).
    queues:
        Names of candidate queues (the paper uses five, one per protein
        configuration class). Defaults to a single queue.
    queue_cap:
        Per-queue candidate cap (paper: 35,000).
    index:
        Nearest-neighbour backend over the selected set; defaults to an
        exact KD-tree. Swap in :class:`~repro.sampling.ann.ProjectionIndex`
        for FAISS-style approximate queries.
    """

    def __init__(
        self,
        dim: int,
        queues: Optional[Sequence[str]] = None,
        queue_cap: int = 35_000,
        index: Optional[NeighborIndex] = None,
        queue_policy: QueueFullPolicy = QueueFullPolicy.DROP_OLDEST,
    ) -> None:
        super().__init__()
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        names = list(queues) if queues else [DEFAULT_QUEUE]
        self.queues: Dict[str, CandidateQueue] = {
            name: CandidateQueue(name, cap=queue_cap, policy=queue_policy) for name in names
        }
        self.index = index if index is not None else KDTreeIndex()
        self._caches: Dict[str, _QueueCache] = {
            name: _QueueCache(dim, self.index.epoch) for name in names
        }
        self._selected_ids: List[str] = []
        self._sel_coords = np.empty((256, dim), dtype=np.float64)
        self._sel_n = 0
        self._index_dirty = False
        self.last_update_seconds = 0.0  # cost of the most recent rank update
        self.full_recomputes = 0  # cache invalidations paid as full queries
        self.delta_updates = 0    # incremental recurrence folds

    # --- ingest (cheap) ------------------------------------------------------

    def _queue_and_cache(self, queue: str) -> Tuple[CandidateQueue, _QueueCache]:
        try:
            return self.queues[queue], self._caches[queue]
        except KeyError:
            raise KeyError(f"unknown queue {queue!r}; have {sorted(self.queues)}") from None

    def _ingest(self, q: CandidateQueue, cache: _QueueCache, point: Point) -> bool:
        evicted = None
        if q.full and q.policy is QueueFullPolicy.DROP_OLDEST and point.id not in q:
            evicted = q.oldest()
        if not q.add(point):
            return False
        if evicted is not None:
            cache.remove(evicted)
        cache.append(point)
        return True

    def add(self, point: Point, queue: str = DEFAULT_QUEUE) -> None:
        """O(1) ingest into one queue; no ranking happens here."""
        if point.dim != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {point.dim}")
        q, cache = self._queue_and_cache(queue)
        self._ingest(q, cache, point)

    def add_batch(self, points: Sequence[Point], queue: str = DEFAULT_QUEUE) -> int:
        """Ingest a batch into one queue; returns how many were accepted
        (duplicates and DROP_NEW refusals are not)."""
        q, cache = self._queue_and_cache(queue)
        accepted = 0
        for point in points:
            if point.dim != self.dim:
                raise ValueError(f"expected dim {self.dim}, got {point.dim}")
            if self._ingest(q, cache, point):
                accepted += 1
        return accepted

    def remove(self, point_id: str, queue: Optional[str] = None) -> Point:
        """Withdraw a candidate without selecting it (KeyError if absent)."""
        names = [queue] if queue is not None else list(self.queues)
        for name in names:
            q, cache = self._queue_and_cache(name)
            if point_id in q:
                cache.remove(point_id)
                return q.pop(point_id)
        raise KeyError(f"no candidate {point_id!r} in queues {sorted(names)}")

    def ncandidates(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def candidate_ids(self) -> set:
        """Snapshot of every queued candidate id across all queues."""
        return {p.id for q in self.queues.values() for p in q.points()}

    def nselected(self) -> int:
        return len(self._selected_ids)

    def selected_coords(self) -> np.ndarray:
        """Read-only view of the selected set's coordinates, (n, dim)."""
        view = self._sel_coords[: self._sel_n]
        view.setflags(write=False)
        return view

    # --- selection (expensive, on demand) --------------------------------------

    def _refresh_index(self) -> None:
        if self._index_dirty or self.index.size != self._sel_n:
            self.index.build(self._sel_coords[: self._sel_n].copy())
            self._index_dirty = False

    def _sync(self, cache: _QueueCache) -> None:
        """Bring one queue's min-dist cache up to date with the selected set.

        Three tiers, cheapest first: nothing to do; fold the few newly
        selected points with the FPS recurrence (and price pending rows
        with one vectorized query); full recompute only when the index
        semantically rebuilt (epoch bump — e.g. an approximate index
        retrained its cells, or a checkpoint restore).
        """
        nsel = self._sel_n
        if cache.epoch != self.index.epoch:
            if cache.n:
                cache.mindist[: cache.n] = self.index.nearest_distance(
                    cache.coords[: cache.n]
                )
                self.full_recomputes += 1
            cache.epoch = self.index.epoch
            cache.synced = nsel
            return
        if cache.n == 0:
            cache.synced = nsel
            return
        md = cache.mindist[: cache.n]
        pending = np.isnan(md)
        if nsel > cache.synced:
            live = ~pending
            if live.any():
                delta = self.index.delta_distance(
                    cache.coords[: cache.n][live],
                    self._sel_coords[cache.synced : nsel],
                )
                md[live] = np.minimum(md[live], delta)
                self.delta_updates += 1
        if pending.any():
            md[pending] = self.index.nearest_distance(cache.coords[: cache.n][pending])
        cache.synced = nsel

    def rank(self, queue: str) -> List[tuple]:
        """(point, novelty) for every candidate in a queue, best first.

        This is the exact-recompute path: novelty comes from one full
        index query over the queue's cached coordinate matrix, ignoring
        the incremental min-dist cache — introspection, and the oracle
        the incremental engine is tested against. Before anything has
        been selected every candidate is infinitely novel and arrival
        order breaks the tie.
        """
        q, cache = self._queue_and_cache(queue)
        if cache.n == 0:
            return []
        self._refresh_index()
        dists = self.index.nearest_distance(cache.coords[: cache.n])
        # Descending novelty, FIFO tie-break — same order a stable
        # descending sort over arrival-ordered rows would give.
        order = np.lexsort((cache.seq[: cache.n], -dists))
        return [(q.get(cache.ids[i]), float(dists[i])) for i in order]

    def _round_robin(self, names: List[str]) -> Iterator[str]:
        """Yield the next non-empty queue, rotating across ``names``."""
        cursor = 0
        while True:
            for _ in range(len(names)):
                name = names[cursor % len(names)]
                cursor += 1
                if len(self.queues[name]):
                    break
            else:
                return  # all queues empty
            yield name

    def select(self, k: int, now: float = 0.0, queue: Optional[str] = None) -> List[Point]:
        """Consume the ``k`` most novel candidates.

        With multiple queues and no explicit ``queue``, selections are
        taken round-robin across non-empty queues so every protein
        configuration class keeps getting simulated.

        True farthest-point semantics: after each pick the selected set
        (and hence every remaining candidate's novelty) is updated —
        incrementally, via the recurrence described in the module
        docstring, in O(n) per pick instead of a full re-rank.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if queue is not None and queue not in self.queues:
            raise KeyError(f"unknown queue {queue!r}; have {sorted(self.queues)}")
        t0 = time.perf_counter()
        stats0 = self.index.stats.as_dict()
        with trace.span("select.patch") as sp:
            chosen: List[Point] = []
            names = [queue] if queue is not None else list(self.queues)
            self._refresh_index()
            for name in self._round_robin(names):
                if len(chosen) >= k:
                    break
                q, cache = self.queues[name], self._caches[name]
                self._sync(cache)
                md = cache.mindist[: cache.n]
                ties = np.flatnonzero(md == md.max())
                row = int(ties[np.argmin(cache.seq[: cache.n][ties])])
                best = q.pop(cache.ids[row])
                cache.remove(best.id)
                self._mark_selected(best)
                chosen.append(best)
            if sp:
                stats1 = self.index.stats.as_dict()
                sp.set(k=k, chosen=len(chosen), candidates=self.ncandidates(),
                       index_adds=stats1["adds"] - stats0["adds"],
                       index_builds=stats1["builds"] - stats0["builds"],
                       distance_evals=stats1["distance_evals"] - stats0["distance_evals"])
        self.last_update_seconds = time.perf_counter() - t0
        self._record(now, chosen, detail=f"queue={queue or 'round-robin'}")
        return chosen

    def _mark_selected(self, point: Point) -> None:
        if self._sel_n >= self._sel_coords.shape[0]:
            grown = np.empty((2 * self._sel_coords.shape[0], self.dim), dtype=np.float64)
            grown[: self._sel_n] = self._sel_coords[: self._sel_n]
            self._sel_coords = grown
        self._sel_coords[self._sel_n] = point.coords
        self._sel_n += 1
        self._selected_ids.append(point.id)
        self.index.add(np.asarray(point.coords, dtype=np.float64)[None, :])

    def seed_selected(self, points: Sequence[Point]) -> None:
        """Declare points as already simulated (checkpoint restore path)."""
        for p in points:
            if p.dim != self.dim:
                raise ValueError(f"expected dim {self.dim}, got {p.dim}")
            self._mark_selected(p)

    def _rebuild_caches(self) -> None:
        """Recreate every queue cache from queue contents (restore path).

        All rows come back pending, and the index is marked for a full
        rebuild, so the next selection recomputes novelty from scratch.
        """
        self._index_dirty = True
        for name, q in self.queues.items():
            cache = _QueueCache(self.dim, epoch=-1, capacity=max(len(q), 256))
            for p in q.points():
                cache.append(p)
            self._caches[name] = cache

    # --- introspection --------------------------------------------------------

    def queue_sizes(self) -> Dict[str, int]:
        return {name: len(q) for name, q in self.queues.items()}

    def dropped(self) -> int:
        return sum(q.dropped for q in self.queues.values())

    def duplicates(self) -> int:
        """Silently-ignored duplicate ingests across all queues (dedup)."""
        return sum(q.duplicates for q in self.queues.values())

    def engine_stats(self) -> Dict[str, int]:
        """Incremental-engine counters: index ops plus cache behaviour."""
        out = self.index.stats.as_dict()
        out["full_recomputes"] = self.full_recomputes
        out["delta_updates"] = self.delta_updates
        return out
