"""Tests for job specs and the two matcher policies."""

import pytest

from repro.sched.jobspec import JobRecord, JobSpec, JobState
from repro.sched.matcher import Matcher, MatchPolicy
from repro.sched.resources import summit_like


class TestJobSpec:
    def test_defaults(self):
        s = JobSpec(name="cg-sim", ncores=2, ngpus=1)
        assert s.total_cores == 2 and s.total_gpus == 1

    def test_multi_node_totals(self):
        s = JobSpec(name="continuum", nnodes=150, ncores=24)
        assert s.total_cores == 150 * 24

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(nnodes=0),
            dict(ncores=-1),
            dict(ngpus=-2),
            dict(ncores=0, ngpus=0),
            dict(duration=-5.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            JobSpec(name="bad", **{**dict(ncores=1), **kwargs})

    def test_exclusive_may_request_zero(self):
        s = JobSpec(name="bundle", exclusive=True, ncores=0, ngpus=0)
        assert s.exclusive

    def test_terminal_states(self):
        assert JobState.COMPLETED.is_terminal
        assert JobState.FAILED.is_terminal
        assert JobState.CANCELLED.is_terminal
        assert not JobState.PENDING.is_terminal
        assert not JobState.RUNNING.is_terminal


class TestJobRecord:
    def test_ids_are_unique(self):
        a = JobRecord(spec=JobSpec(name="x", ncores=1))
        b = JobRecord(spec=JobSpec(name="x", ncores=1))
        assert a.job_id != b.job_id

    def test_wait_and_run_times(self):
        r = JobRecord(spec=JobSpec(name="x", ncores=1), submit_time=10.0)
        assert r.wait_time is None and r.run_time is None
        r.start_time = 15.0
        r.end_time = 40.0
        assert r.wait_time == 5.0
        assert r.run_time == 25.0

    def test_history_row(self):
        r = JobRecord(spec=JobSpec(name="cg", ncores=3, ngpus=1, tag="sim7"))
        row = r.to_dict()
        assert row["name"] == "cg" and row["tag"] == "sim7"
        assert row["state"] == "pending"


GPU_JOB = JobSpec(name="cg-sim", ncores=3, ngpus=1)


class TestMatcherBasics:
    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_match_claims_resources(self, policy):
        g = summit_like(2)
        m = Matcher(g, policy)
        alloc = m.match(GPU_JOB)
        assert alloc is not None
        assert alloc.ncores == 3 and alloc.ngpus == 1
        assert g.used_gpus == 1

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_release_returns_resources(self, policy):
        g = summit_like(1)
        m = Matcher(g, policy)
        alloc = m.match(GPU_JOB)
        m.release(alloc)
        assert g.used_cores == 0 and g.used_gpus == 0

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_fills_machine_exactly(self, policy):
        g = summit_like(2)  # 12 GPUs
        m = Matcher(g, policy)
        allocs = [m.match(GPU_JOB) for _ in range(12)]
        assert all(a is not None for a in allocs)
        assert m.match(GPU_JOB) is None  # 13th GPU job cannot fit
        assert m.stats.failed == 1

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_multi_node_job(self, policy):
        g = summit_like(5)
        m = Matcher(g, policy)
        alloc = m.match(JobSpec(name="continuum", nnodes=3, ncores=24))
        assert alloc.nnodes == 3
        assert alloc.ncores == 72

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_multi_node_infeasible(self, policy):
        g = summit_like(2)
        m = Matcher(g, policy)
        assert m.match(JobSpec(name="big", nnodes=3, ncores=1)) is None

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_exclusive_job_takes_whole_node(self, policy):
        g = summit_like(2)
        m = Matcher(g, policy)
        alloc = m.match(JobSpec(name="bundle", exclusive=True))
        assert alloc.ncores == 44 and alloc.ngpus == 6

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_exclusive_skips_partially_used_nodes(self, policy):
        g = summit_like(2)
        m = Matcher(g, policy)
        m.match(GPU_JOB)  # dirties one node
        alloc = m.match(JobSpec(name="bundle", exclusive=True))
        assert alloc is not None
        dirty = {nid for nid, _, _ in alloc.items}
        assert g.nodes[list(dirty)[0]].vacant is False  # it claimed the clean one

    @pytest.mark.parametrize("policy", list(MatchPolicy))
    def test_drained_node_not_used(self, policy):
        g = summit_like(2)
        g.drain(0)
        m = Matcher(g, policy)
        for _ in range(6):
            alloc = m.match(GPU_JOB)
            assert alloc.node_ids() == [1]
        assert m.match(GPU_JOB) is None


class TestPolicyDifferences:
    def test_low_id_packs_low_nodes_first(self):
        g = summit_like(4)
        m = Matcher(g, MatchPolicy.LOW_ID_FIRST)
        nodes_used = [m.match(GPU_JOB).node_ids()[0] for _ in range(12)]
        assert nodes_used == [0] * 6 + [1] * 6

    def test_first_match_rotates(self):
        g = summit_like(4)
        m = Matcher(g, MatchPolicy.FIRST_MATCH)
        nodes_used = [m.match(GPU_JOB).node_ids()[0] for _ in range(4)]
        assert nodes_used == [0, 1, 2, 3]  # round-robin across nodes

    def test_exhaustive_visits_far_more_on_vacant_machine(self):
        g = summit_like(100)
        exhaustive = Matcher(summit_like(100), MatchPolicy.LOW_ID_FIRST)
        greedy = Matcher(g, MatchPolicy.FIRST_MATCH)
        exhaustive.match(GPU_JOB)
        greedy.match(GPU_JOB)
        ratio = exhaustive.stats.vertices_visited / greedy.stats.vertices_visited
        assert ratio > 50  # "too many choices": orders of magnitude more work

    def test_visit_accounting_exhaustive(self):
        g = summit_like(10)
        m = Matcher(g, MatchPolicy.LOW_ID_FIRST)
        m.match(GPU_JOB)
        subtree = g.node_subtree_size
        # 10 node checks + 10 feasible subtrees ranked + 4 picked resources
        assert m.stats.vertices_visited == 10 + 10 * (subtree - 1) + 4

    def test_stats_counters(self):
        g = summit_like(1)
        m = Matcher(g, MatchPolicy.FIRST_MATCH)
        for _ in range(6):
            m.match(GPU_JOB)
        m.match(GPU_JOB)
        assert m.stats.calls == 7
        assert m.stats.matched == 6
        assert m.stats.failed == 1
        assert m.stats.visits_per_call() > 0
