"""Durable-shard integration tests: crash/restart recovery over the wire.

The WAL unit tests (test_wal.py) prove the log itself; these prove the
shard: an ``AsyncNetKVServer`` started with ``persist_dir`` acks a
mutation only after the record is fsynced, so killing the process (or
here, stopping the server without any orderly flush of the backend)
and restarting on the same directory recovers exactly the acked set —
including tombstones — and the SNAPSHOT wire command compacts the log
while serving.
"""

from __future__ import annotations

import contextlib
import json
import time

import pytest

from repro.datastore.aio import AsyncNetKVServer
from repro.datastore.base import KeyNotFound, StoreError, StoreUnavailable
from repro.datastore.netkv import (
    NetKVClient,
    NetKVCluster,
    NetKVServer,
    TransportConfig,
    key_slot,
)
from repro.datastore.wal import DurabilityConfig

pytestmark = [pytest.mark.persist, pytest.mark.async_transport]

FAST = TransportConfig(op_timeout=2.0, connect_timeout=2.0, retries=1,
                       backoff_base=0.01, backoff_max=0.05,
                       route_refresh=0.05)

# Tests restart shards repeatedly; skipping the real fsync keeps them
# fast without weakening what they check (recovery reads the same
# bytes either way — fsync only matters when the *kernel* dies).
NOSYNC = DurabilityConfig(fsync=False)


def durable_server(tmp_path, name, port=0, durability=NOSYNC):
    srv = AsyncNetKVServer(port=port, persist_dir=str(tmp_path / name),
                           durability=durability)
    return srv.start()


@contextlib.contextmanager
def client_for(server):
    client = NetKVClient(server.address, config=FAST)
    try:
        yield client
    finally:
        client.close()


def test_restart_recovers_acked_writes(tmp_path):
    srv = durable_server(tmp_path, "shard0")
    port = srv.address[1]
    with client_for(srv) as c:
        for i in range(200):
            c.set(f"k{i}", b"v%d" % i)
        c.mset([(f"m{i}", b"mv%d" % i) for i in range(50)])
    srv.stop()

    srv = durable_server(tmp_path, "shard0", port=port)
    try:
        assert srv.wal is not None and len(srv.wal.recovered) == 250
        with client_for(srv) as c:
            assert c.get("k0") == b"v0"
            assert c.get("k199") == b"v199"
            assert c.mget([f"m{i}" for i in range(50)]) == [
                b"mv%d" % i for i in range(50)]
    finally:
        srv.stop()


def test_restart_does_not_resurrect_deletes(tmp_path):
    srv = durable_server(tmp_path, "shard0")
    with client_for(srv) as c:
        c.set("keep", b"1")
        c.set("gone", b"2")
        c.delete("gone")
    srv.stop()

    # Two restart generations: replay must apply the delete both times.
    for _ in range(2):
        srv = durable_server(tmp_path, "shard0")
        try:
            with client_for(srv) as c:
                assert c.get("keep") == b"1"
                with pytest.raises(KeyNotFound):
                    c.get("gone")
        finally:
            srv.stop()


def test_restart_preserves_rename_and_flush(tmp_path):
    srv = durable_server(tmp_path, "shard0")
    with client_for(srv) as c:
        c.set("old", b"x")
        c.rename("old", "new")
        c.set("pre-flush", b"y")
        c._roundtrip("FLUSH 0")  # no public client wrapper; wire op
        c.set("post-flush", b"z")
    srv.stop()

    srv = durable_server(tmp_path, "shard0")
    try:
        with client_for(srv) as c:
            assert c.get("post-flush") == b"z"
            for missing in ("old", "new", "pre-flush"):
                with pytest.raises(KeyNotFound):
                    c.get(missing)
    finally:
        srv.stop()


def test_snapshot_command_compacts_and_recovery_uses_it(tmp_path):
    srv = durable_server(tmp_path, "shard0")
    with client_for(srv) as c:
        for i in range(100):
            c.set("hot", b"v%d" % i)  # 100 WAL records, one live key
        info = c.snapshot()
        assert info["keys"] == 1
        assert info["wal_bytes"] > 0  # cumulative bytes logged since open
        assert info["snapshots"] >= 1
        c.set("after", b"tail")  # lands in the fresh post-snapshot log
    srv.stop()

    srv = durable_server(tmp_path, "shard0")
    try:
        assert srv.wal is not None
        # One snapshot frame ("hot") + one log frame ("after") — the
        # 99 overwritten versions were compacted away.
        assert srv.wal.info()["replayed_records"] == 2
        with client_for(srv) as c:
            assert c.get("hot") == b"v99"
            assert c.get("after") == b"tail"
    finally:
        srv.stop()


def test_snapshot_refused_without_persistence():
    srv = NetKVServer().start()  # threaded baseline: no WAL at all
    try:
        with client_for(srv) as c:
            with pytest.raises(StoreError, match="no persistence"):
                c.snapshot()
    finally:
        srv.stop()
    srv = AsyncNetKVServer().start()  # async but in-memory
    try:
        with client_for(srv) as c:
            with pytest.raises(StoreError, match="no persistence"):
                c.snapshot()
    finally:
        srv.stop()


@pytest.mark.multi_server
def test_migration_survives_restart_of_both_shards(tmp_path):
    """Move slots between durable shards, crash both, verify the world.

    Migration rewrites the *placement*; persistence rewrites *history*.
    The combination is the dangerous case: after cutover the moved keys
    live in the destination's WAL, so restarting every shard must still
    serve every key from its new home (the routing map is also written
    to the shards' WALs, so a fresh client recovers it too — see
    test_migration_is_visible_to_other_cluster_instances).
    """
    servers = [durable_server(tmp_path, f"shard{i}") for i in range(3)]
    cluster = NetKVCluster([s.address for s in servers], config=FAST,
                           replication=2, probe_cooldown=0.05)
    try:
        for i in range(120):
            cluster.set(f"key{i}", b"val%d" % i)
        moving = sorted({key_slot(f"key{i}") % 16384 for i in range(120)
                         if key_slot(f"key{i}") % 3 == 0})
        result = cluster.migrate_slots(moving, 2)
        assert result["slots"] >= 1

        # Crash/restart every shard on its durable directory.
        ports = [s.address[1] for s in servers]
        for s in servers:
            s.stop()
        servers = [durable_server(tmp_path, f"shard{i}", port=ports[i])
                   for i in range(3)]

        for i in range(120):
            assert cluster.get(f"key{i}") == b"val%d" % i
        health = cluster.replica_health()
        assert health["migrating_slots"] == 0
    finally:
        cluster.close()
        for s in servers:
            s.stop()


@pytest.mark.multi_server
def test_migration_is_visible_to_other_cluster_instances(tmp_path):
    """A migration run from one process must reroute every *other*
    client too.

    The serve daemon scenario: cluster A is a long-lived client, a
    separate CLI process (cluster B) migrates slots and prunes the
    source copies. A's in-memory slot map is now stale — under
    per-instance routing it would read the pruned source window and
    get KeyNotFound for acked keys. The shared routing map published
    to the shards closes that hole: A adopts it within one
    ``route_refresh`` interval and keeps resolving every key.

    Four shards with replication=2 make the source window [0, 1] and
    destination window [2, 3] disjoint, so a stale map really would
    miss — no surviving overlap replica can mask the bug.
    """
    servers = [durable_server(tmp_path, f"shard{i}") for i in range(4)]
    a = NetKVCluster([s.address for s in servers], config=FAST,
                     replication=2, probe_cooldown=0.05)
    b = NetKVCluster([s.address for s in servers], config=FAST,
                     replication=2, probe_cooldown=0.05)
    try:
        for i in range(90):
            a.set(f"key{i}", b"val%d" % i)
        moving = sorted({key_slot(f"key{i}") for i in range(90)
                         if key_slot(f"key{i}") % 4 == 0})
        result = b.migrate_slots(moving, 2)
        assert result["slots"] >= 1 and result["epoch"] > 0

        # A never heard about the migration directly; its next ops
        # poll the shared map (the migration itself outlasts one
        # refresh interval, so A's poll timer is already due).
        for i in range(90):
            assert a.get(f"key{i}") == b"val%d" % i
        assert a.stats.route_refreshes >= 1
        health = a.replica_health()
        assert health["routing_epoch"] == result["epoch"]
        assert health["migrating_slots"] == 0
        assert health["draining_slots"] == 0

        # And A's *writes* land on the new window: B reads them back.
        a.set("post-migrate", b"fresh")
        assert b.get("post-migrate") == b"fresh"

        # A brand-new instance learns the map from the shards alone
        # (give it one refresh interval: the first poll is lazy).
        c = NetKVCluster([s.address for s in servers], config=FAST,
                         replication=2, probe_cooldown=0.05)
        try:
            time.sleep(0.06)
            for i in range(90):
                assert c.get(f"key{i}") == b"val%d" % i
            assert c.replica_health()["routing_epoch"] == result["epoch"]
        finally:
            c.close()
    finally:
        a.close()
        b.close()
        for s in servers:
            s.stop()


@pytest.mark.multi_server
def test_nonconverging_drain_aborts_and_rolls_back(tmp_path):
    """A drain that never converges must abort before cutover, not
    fall through to it: cutting over with keys still in flight would
    let cleanup prune source copies that were never delivered."""
    servers = [durable_server(tmp_path, f"shard{i}") for i in range(2)]
    cluster = NetKVCluster([s.address for s in servers], config=FAST,
                           replication=1, probe_cooldown=0.05)
    try:
        for i in range(40):
            cluster.set(f"key{i}", b"val%d" % i)
        moving = sorted({key_slot(f"key{i}") for i in range(40)
                         if key_slot(f"key{i}") % 2 == 0})
        # Simulate a copy phase that can never finish (e.g. a writer
        # racing the drain faster than it can chase).
        cluster._copy_pass = lambda *a, **k: 1
        with pytest.raises(StoreUnavailable, match="did not converge"):
            cluster.migrate_slots(moving, 1)
        del cluster._copy_pass  # restore the real method

        # Rolled back: no slot stuck migrating or draining, ownership
        # unchanged, every key still served from its source window.
        health = cluster.replica_health()
        assert health["migrating_slots"] == 0
        assert health["draining_slots"] == 0
        assert health["slot_overrides"] == 0
        for i in range(40):
            assert cluster.get(f"key{i}") == b"val%d" % i

        # The abort is not sticky: the same migration succeeds once
        # the copy pass can make progress again.
        result = cluster.migrate_slots(moving, 1)
        assert result["slots"] == len(moving)
        for i in range(40):
            assert cluster.get(f"key{i}") == b"val%d" % i
    finally:
        cluster.close()
        for s in servers:
            s.stop()


@pytest.mark.multi_server
def test_interrupted_cleanup_resumes_on_rerun(tmp_path):
    """A failure after cutover leaves the slots draining; re-running
    the same migration finishes the straggler pass and cleanup rather
    than stranding stale source copies forever."""
    servers = [durable_server(tmp_path, f"shard{i}") for i in range(2)]
    cluster = NetKVCluster([s.address for s in servers], config=FAST,
                           replication=1, probe_cooldown=0.05)
    try:
        for i in range(40):
            cluster.set(f"key{i}", b"val%d" % i)
        moving = sorted({key_slot(f"key{i}") for i in range(40)
                         if key_slot(f"key{i}") % 2 == 0})

        real_cleanup = cluster._cleanup_moved
        calls = {"n": 0}

        def flaky_cleanup(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise StoreUnavailable("cleanup interrupted")
            return real_cleanup(*args, **kwargs)

        cluster._cleanup_moved = flaky_cleanup
        with pytest.raises(StoreUnavailable, match="cleanup interrupted"):
            cluster.migrate_slots(moving, 1)

        # Cutover stood (the drain converged) but cleanup did not run:
        # the slots stay draining and every key is served from the new
        # authoritative window.
        health = cluster.replica_health()
        assert health["migrating_slots"] == 0
        assert health["draining_slots"] == len(moving)
        for i in range(40):
            assert cluster.get(f"key{i}") == b"val%d" % i

        # Re-running the same migration resumes: no slots to re-copy,
        # just the straggler pass and the deferred cleanup.
        result = cluster.migrate_slots(moving, 1)
        assert result["slots"] == 0
        assert calls["n"] == 2
        health = cluster.replica_health()
        assert health["draining_slots"] == 0
        for i in range(40):
            assert cluster.get(f"key{i}") == b"val%d" % i
    finally:
        cluster.close()
        for s in servers:
            s.stop()


def test_recovered_payloads_are_exact_bytes(tmp_path):
    """Binary-unfriendly payloads (newlines, NULs, frame-like bytes)
    must round-trip through the WAL byte-for-byte."""
    nasty = [b"", b"\n", b"\x00" * 8, b"OK 3\nabc", bytes(range(256))]
    srv = durable_server(tmp_path, "shard0")
    with client_for(srv) as c:
        for i, v in enumerate(nasty):
            c.set(f"n{i}", v)
    srv.stop()
    srv = durable_server(tmp_path, "shard0")
    try:
        with client_for(srv) as c:
            for i, v in enumerate(nasty):
                assert c.get(f"n{i}") == v
    finally:
        srv.stop()


def test_snapshot_info_is_json_clean(tmp_path):
    srv = durable_server(tmp_path, "shard0")
    try:
        with client_for(srv) as c:
            c.set("k", b"v")
            info = c.snapshot()
        # The CLI prints this dict; it must stay JSON-serializable.
        json.dumps(info)
        assert info["recovered_keys"] == 0
        assert info["fsync"] is False
    finally:
        srv.stop()
